"""Setuptools entry point.

A classic setup.py is kept (and pyproject.toml carries no [build-system]
table) so that ``pip install -e .`` works in fully offline environments
where the 'wheel' package is unavailable: pip then uses the legacy
``setup.py develop`` path, which needs only setuptools.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "mu-cuDNN reproduction: accelerating deep learning frameworks "
        "with micro-batching (CLUSTER 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
