"""Property-based tests (hypothesis) on the convolution kernels.

These exercise the algebraic identities convolution must satisfy regardless
of geometry: linearity in both operands, locality/shift structure, and --
the paper's core invariant -- exact decomposability over the batch axis.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.enums import ConvType, FwdAlgo
from repro.cudnn.kernels import direct, fft, winograd
from repro.cudnn.workspace import is_supported
from tests.conftest import assert_close

SMALL = dict(max_examples=25, deadline=None)


@st.composite
def small_geometry(draw, stride_ok=True):
    r = draw(st.sampled_from([1, 3, 5]))
    stride = draw(st.sampled_from([1, 2])) if stride_ok else 1
    pad = draw(st.integers(0, r - 1)) if r > 1 else 0
    h = draw(st.integers(max(r, 4), 12))
    w = draw(st.integers(max(r, 4), 12))
    return ConvGeometry(
        ConvType.FORWARD,
        n=draw(st.integers(1, 4)),
        c=draw(st.integers(1, 4)),
        h=h,
        w=w,
        k=draw(st.integers(1, 4)),
        r=r,
        s=r,
        pad_h=pad,
        pad_w=pad,
        stride_h=stride,
        stride_w=stride,
    )


def _operands(g, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(g.x_desc.shape).astype(np.float32)
    w = rng.standard_normal(g.w_desc.shape).astype(np.float32)
    return x, w


@settings(**SMALL)
@given(g=small_geometry(), seed=st.integers(0, 2**16))
def test_batch_decomposition_forward(g, seed):
    """The paper's section II claim: the mini-batch loop has no cross-sample
    dependency, so conv(concat(x1, x2)) == concat(conv(x1), conv(x2))."""
    if g.n < 2:
        return
    x, w = _operands(g, seed)
    split = g.n // 2
    whole = direct.forward(g, x, w)
    top = direct.forward(g.with_batch(split), x[:split], w)
    bottom = direct.forward(g.with_batch(g.n - split), x[split:], w)
    # Equality up to FP32 reassociation: BLAS blocking may differ with the
    # batch extent, so the sums are the same only mathematically.
    assert_close(np.concatenate([top, bottom]), whole, tol=1e-5)


@settings(**SMALL)
@given(g=small_geometry(), seed=st.integers(0, 2**16))
def test_backward_filter_accumulation(g, seed):
    """dw over the batch equals the exact sum of per-slice dws computed in
    float64 order -- the accumulation identity BackwardFilter splitting
    relies on (up to FP32 reassociation, hence the tolerance)."""
    if g.n < 2:
        return
    rng = np.random.default_rng(seed)
    x, w = _operands(g, seed)
    dy = rng.standard_normal(g.y_desc.shape).astype(np.float32)
    gw = g.with_type(ConvType.BACKWARD_FILTER)
    whole = direct.backward_filter(gw, x, dy)
    split = g.n // 2
    parts = (
        direct.backward_filter(gw.with_batch(split), x[:split], dy[:split])
        + direct.backward_filter(gw.with_batch(g.n - split), x[split:], dy[split:])
    )
    assert_close(parts, whole, tol=1e-3)


@settings(**SMALL)
@given(g=small_geometry(), seed=st.integers(0, 2**16),
       a=st.floats(-3, 3), b=st.floats(-3, 3))
def test_linearity_in_input(g, seed, a, b):
    x1, w = _operands(g, seed)
    x2, _ = _operands(g, seed + 1)
    lhs = direct.forward(g, np.float32(a) * x1 + np.float32(b) * x2, w)
    rhs = a * direct.forward(g, x1, w) + b * direct.forward(g, x2, w)
    assert_close(lhs, rhs, tol=5e-3)


@settings(**SMALL)
@given(g=small_geometry(), seed=st.integers(0, 2**16))
def test_linearity_in_filter(g, seed):
    x, w1 = _operands(g, seed)
    _, w2 = _operands(g, seed + 1)
    lhs = direct.forward(g, x, w1 + w2)
    rhs = direct.forward(g, x, w1) + direct.forward(g, x, w2)
    assert_close(lhs, rhs, tol=5e-3)


@settings(**SMALL)
@given(g=small_geometry(stride_ok=False), seed=st.integers(0, 2**16))
def test_fft_matches_direct_property(g, seed):
    if not is_supported(g, FwdAlgo.FFT):
        return
    x, w = _operands(g, seed)
    assert_close(fft.forward(g, x, w), direct.forward(g, x, w), tol=2e-3)


@settings(**SMALL)
@given(g=small_geometry(stride_ok=False), seed=st.integers(0, 2**16))
def test_winograd_matches_direct_property(g, seed):
    if not is_supported(g, FwdAlgo.WINOGRAD):
        return
    x, w = _operands(g, seed)
    assert_close(winograd.forward(g, x, w), direct.forward(g, x, w), tol=2e-3)


@settings(**SMALL)
@given(seed=st.integers(0, 2**16), n=st.integers(1, 4))
def test_delta_filter_is_identity(seed, n):
    """A centered 1x1... actually a delta 3x3 filter with pad 1 copies the
    input channel: conv(x, delta) == x."""
    rng = np.random.default_rng(seed)
    g = ConvGeometry(ConvType.FORWARD, n, 1, 8, 8, 1, 3, 3, 1, 1)
    x = rng.standard_normal(g.x_desc.shape).astype(np.float32)
    w = np.zeros(g.w_desc.shape, dtype=np.float32)
    w[0, 0, 1, 1] = 1.0
    np.testing.assert_allclose(direct.forward(g, x, w), x, rtol=0, atol=0)


@settings(**SMALL)
@given(seed=st.integers(0, 2**16))
def test_constant_input_averaging_filter(seed):
    """Constant input through an all-ones kernel (no padding) yields
    C * R * S everywhere -- a closed-form cross-check."""
    g = ConvGeometry(ConvType.FORWARD, 2, 3, 7, 7, 2, 3, 3, 0, 0)
    x = np.ones(g.x_desc.shape, dtype=np.float32)
    w = np.ones(g.w_desc.shape, dtype=np.float32)
    y = direct.forward(g, x, w)
    np.testing.assert_allclose(y, 27.0)
