"""Tests for the WR DP trace (the paper's Fig. 5 illustration tool)."""

import math

import pytest

from repro.core.benchmarker import benchmark_kernel
from repro.core.policies import BatchSizePolicy
from repro.core.wr import optimize_from_benchmark, trace_wr
from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.enums import ConvType
from repro.errors import OptimizationError
from repro.units import MIB
from tests.test_benchmarker import synth_benchmark

CONV2 = ConvGeometry(ConvType.FORWARD, 256, 64, 27, 27, 192, 5, 5, 2, 2)


class TestTraceWR:
    def test_final_row_matches_optimizer(self, timing_handle):
        bench = benchmark_kernel(timing_handle, CONV2, BatchSizePolicy.POWER_OF_TWO)
        rows = trace_wr(bench, 64 * MIB)
        opt = optimize_from_benchmark(bench, 64 * MIB)
        last = rows[-1]
        assert last.batch == 256
        assert last.time == pytest.approx(opt.time)
        assert last.configuration.canonical() == opt.canonical() \
            if hasattr(opt, "canonical") else True
        assert last.configuration.micro_batch_sizes() == opt.micro_batch_sizes()

    def test_every_row_internally_consistent(self, timing_handle):
        bench = benchmark_kernel(timing_handle, CONV2.with_batch(32),
                                 BatchSizePolicy.ALL)
        for row in trace_wr(bench, 16 * MIB):
            assert row.configuration.batch == row.batch
            assert row.configuration.time == pytest.approx(row.time)
            assert row.configuration.workspace <= 16 * MIB
            assert row.chosen_micro in row.configuration.micros

    def test_times_reflect_marginal_structure(self):
        """T(i) - T(i - m_i) == T1(m_i) where m_i is the chosen micro."""
        bench = synth_benchmark(8, {1: [(1.0, 0)], 2: [(1.5, 0)], 8: [(9.0, 0)]})
        rows = {r.batch: r for r in trace_wr(bench, 0)}
        for i, row in rows.items():
            prev = rows[i - row.chosen_micro.micro_batch].time \
                if i - row.chosen_micro.micro_batch > 0 else 0.0
            assert row.time == pytest.approx(prev + row.chosen_micro.time)

    def test_skips_uncomposable_rows(self):
        bench = synth_benchmark(6, {2: [(1.0, 0)]})  # odd batches unreachable
        rows = trace_wr(bench, 0)
        assert [r.batch for r in rows] == [2, 4, 6]

    def test_infeasible_raises(self):
        bench = synth_benchmark(4, {4: [(1.0, 100)]})
        with pytest.raises(OptimizationError):
            trace_wr(bench, 10)

    def test_division_onset_visible(self, timing_handle):
        """The trace shows where dividing starts to pay: once the chosen
        micro stops equaling the full batch, it stays a strict summand."""
        bench = benchmark_kernel(timing_handle, CONV2, BatchSizePolicy.POWER_OF_TWO)
        rows = trace_wr(bench, 64 * MIB)
        divided = [r for r in rows if len(r.configuration) > 1]
        assert divided, "expected division under the 64 MiB limit"
        assert divided[-1].batch == 256
