"""Tests for the persistent plan store (``src/repro/persistence``).

Covers the ISSUE's acceptance criteria directly: snapshots are
byte-deterministic regardless of store history, all three merge policies
behave as documented (with conflict reports), warm-start is GPU-isolated
and answers previously-seen requests with **zero** solver invocations
(spy-counted), and damaged or wrong-version files surface as taxonomy
errors rather than tracebacks.
"""

import json
import os

import pytest

from repro.core.cache import BenchmarkCache
from repro.core.config import Configuration, MicroConfig
from repro.cudnn.enums import FwdAlgo
from repro.cudnn.perfmodel import PerfResult
from repro.cudnn.status import Status
from repro.errors import (
    MergeConflictError,
    PersistenceError,
    SnapshotCorruptError,
    SnapshotVersionError,
)
from repro.persistence import (
    MERGE_POLICIES,
    PersistentPlanStore,
    SNAPSHOT_KIND,
    SNAPSHOT_SCHEMA_VERSION,
    canonical_gpu,
    load_snapshot,
    merge_snapshots,
    plans_of,
    save_snapshot,
    snapshot_service,
    snapshot_store,
    to_json,
    validate_snapshot,
    warm_start,
)
from repro.service import PlanKey, PlanRequest, PlanService, PlanStore
from repro.telemetry.clock import ManualClock
from repro.units import MIB
from tests.conftest import make_geometry

GPU = "p100-sxm2"


def fake_config(micro: int = 4, time: float = 0.001) -> Configuration:
    return Configuration((MicroConfig(micro, FwdAlgo.IMPLICIT_GEMM, time, 0),))


def make_key(i: int, gpu: str = GPU) -> PlanKey:
    return PlanKey(gpu=gpu, kernel=f"k{i}", policy="powerOfTwo",
                   workspace_limit=MIB)


def filled_store(order, clock=None):
    """A store holding plans for the given key indices, in that order."""
    store = PlanStore(clock=clock or ManualClock())
    for i in order:
        store.put(make_key(i), fake_config(micro=2 ** (i % 4)))
    return store


def make_doc(order=(0, 1, 2), clock=None, bench=None):
    return snapshot_store(filled_store(order, clock), GPU, bench_cache=bench)


class TestByteDeterminism:
    def test_same_contents_serialize_identically(self):
        # Insertion order is history, not content; the bytes must not see it.
        a = to_json(make_doc(order=(0, 1, 2, 3)))
        b = to_json(make_doc(order=(3, 1, 0, 2)))
        assert a == b

    def test_access_history_does_not_change_bytes(self):
        store = filled_store((0, 1, 2))
        before = to_json(snapshot_store(store, GPU))
        store.get(make_key(2))  # LRU reorder
        store.get(make_key(0))
        assert to_json(snapshot_store(store, GPU)) == before

    def test_save_twice_is_byte_identical(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        save_snapshot(a, make_doc())
        save_snapshot(b, make_doc())
        assert a.read_bytes() == b.read_bytes()

    def test_serialization_ends_with_newline(self):
        assert to_json(make_doc()).endswith("}\n")


class TestRoundtrip:
    def test_plans_survive_save_load(self, tmp_path):
        path = tmp_path / "snap.json"
        save_snapshot(path, make_doc(order=(0, 1)))
        loaded = load_snapshot(path)
        got = list(plans_of(loaded))
        assert [key for key, _, _ in got] == [make_key(0), make_key(1)]
        assert got[0][1] == fake_config(micro=1)

    def test_bench_sections_survive(self, tmp_path):
        bench = BenchmarkCache()
        bench.put_benchmark(GPU, make_geometry(), [
            PerfResult(FwdAlgo.FFT, Status.SUCCESS, 0.001, 1024),
        ])
        path = tmp_path / "snap.json"
        save_snapshot(path, make_doc(bench=bench))
        assert load_snapshot(path)["bench"]["benchmarks"]

    def test_stored_at_is_preserved(self, tmp_path):
        clock = ManualClock(start=7.5)
        path = tmp_path / "snap.json"
        save_snapshot(path, make_doc(order=(0,), clock=clock))
        (_, _, stored_at), = plans_of(load_snapshot(path))
        assert stored_at == 7.5


class TestValidation:
    def test_empty_file_is_corrupt(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("")
        with pytest.raises(SnapshotCorruptError, match="empty"):
            load_snapshot(path)

    def test_truncated_file_is_corrupt(self, tmp_path):
        path = tmp_path / "snap.json"
        save_snapshot(path, make_doc())
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(SnapshotCorruptError, match="not valid JSON"):
            load_snapshot(path)

    def test_missing_file_is_persistence_error(self, tmp_path):
        with pytest.raises(PersistenceError, match="cannot read"):
            load_snapshot(tmp_path / "never-written.json")

    def test_wrong_kind_is_rejected(self):
        doc = make_doc()
        doc["kind"] = "something-else"
        with pytest.raises(SnapshotCorruptError, match="not a plan snapshot"):
            validate_snapshot(doc)

    def test_future_schema_version_is_version_error(self):
        doc = make_doc()
        doc["schema_version"] = SNAPSHOT_SCHEMA_VERSION + 1
        with pytest.raises(SnapshotVersionError, match="not readable"):
            validate_snapshot(doc)

    def test_non_object_document_is_corrupt(self):
        with pytest.raises(SnapshotCorruptError, match="expected a JSON object"):
            validate_snapshot([1, 2, 3])

    def test_damaged_plan_entry_names_its_key(self):
        doc = make_doc(order=(0,))
        name = next(iter(doc["plans"]))
        doc["plans"][name]["configuration"] = {"micros": "garbage"}
        with pytest.raises(SnapshotCorruptError, match="k0"):
            validate_snapshot(doc)

    def test_damaged_key_fields_are_corrupt(self):
        doc = make_doc(order=(0,))
        name = next(iter(doc["plans"]))
        doc["plans"][name]["key"]["workspace_limit"] = "lots"
        with pytest.raises(SnapshotCorruptError, match="workspace_limit"):
            validate_snapshot(doc)

    def test_damaged_bench_section_is_corrupt(self):
        doc = make_doc()
        doc["bench"] = {"benchmarks": [], "configurations": {}}
        with pytest.raises(SnapshotCorruptError, match="bench"):
            validate_snapshot(doc)

    def test_save_validates_before_writing(self, tmp_path):
        path = tmp_path / "snap.json"
        with pytest.raises(SnapshotCorruptError):
            save_snapshot(path, {"kind": "nope"})
        assert not path.exists()


class TestAtomicSave:
    def test_no_temp_file_litter(self, tmp_path):
        path = tmp_path / "snap.json"
        save_snapshot(path, make_doc())
        save_snapshot(path, make_doc(order=(0, 1, 2, 3)))
        assert os.listdir(tmp_path) == ["snap.json"]

    def test_creates_missing_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "snap.json"
        assert save_snapshot(path, make_doc()) == path
        assert path.exists()


class TestMergePolicies:
    """All three conflict policies, satellite-tested as documented."""

    def conflicting_pair(self):
        """Two documents answering key k0 differently (k1/k2 disjoint)."""
        local_store = PlanStore(clock=ManualClock(start=10.0))
        local_store.put(make_key(0), fake_config(micro=2))
        local_store.put(make_key(1), fake_config())
        incoming_store = PlanStore(clock=ManualClock(start=20.0))
        incoming_store.put(make_key(0), fake_config(micro=8))  # conflict
        incoming_store.put(make_key(2), fake_config())
        return (snapshot_store(local_store, GPU),
                snapshot_store(incoming_store, GPU))

    def config_of(self, doc, key):
        for got_key, configuration, _ in plans_of(doc):
            if got_key == key:
                return configuration
        raise AssertionError(f"{key} not in document")

    def test_policy_list_is_stable(self):
        assert MERGE_POLICIES == ("keep-local", "keep-newer", "error")

    def test_unknown_policy_is_rejected(self):
        local, incoming = self.conflicting_pair()
        with pytest.raises(MergeConflictError, match="unknown merge policy"):
            merge_snapshots(local, incoming, policy="keep-theirs")

    def test_keep_local_keeps_the_local_plan(self):
        local, incoming = self.conflicting_pair()
        merged, report = merge_snapshots(local, incoming, policy="keep-local")
        assert self.config_of(merged, make_key(0)) == fake_config(micro=2)
        assert report.conflicts == [str(make_key(0))]
        assert report.plans_added == 1          # k2
        assert report.plans_kept_local == 1     # k0

    def test_keep_newer_takes_the_younger_entry(self):
        local, incoming = self.conflicting_pair()  # incoming stored later
        merged, report = merge_snapshots(local, incoming, policy="keep-newer")
        assert self.config_of(merged, make_key(0)) == fake_config(micro=8)
        assert report.plans_replaced == 1
        assert report.conflicts == [str(make_key(0))]

    def test_keep_newer_tie_keeps_local(self):
        local, incoming = self.conflicting_pair()
        name = str(make_key(0))
        incoming["plans"][name]["stored_at"] = local["plans"][name]["stored_at"]
        merged, report = merge_snapshots(local, incoming, policy="keep-newer")
        assert self.config_of(merged, make_key(0)) == fake_config(micro=2)
        assert report.plans_replaced == 0

    def test_error_policy_raises_and_names_the_key(self):
        local, incoming = self.conflicting_pair()
        with pytest.raises(MergeConflictError, match="k0"):
            merge_snapshots(local, incoming, policy="error")

    def test_error_policy_accepts_disjoint_documents(self):
        merged, report = merge_snapshots(
            make_doc(order=(0, 1)), make_doc(order=(2, 3)), policy="error"
        )
        assert report.plans_added == 2
        assert len(merged["plans"]) == 4

    def test_agreement_is_not_a_conflict(self):
        merged, report = merge_snapshots(
            make_doc(order=(0, 1)), make_doc(order=(0, 1)), policy="error"
        )
        assert report.conflicts == []
        assert report.plans_kept_local == 2

    def test_inputs_are_not_mutated(self):
        local, incoming = self.conflicting_pair()
        before = to_json(local)
        merge_snapshots(local, incoming, policy="keep-newer")
        assert to_json(local) == before

    def test_merged_document_is_valid_and_deterministic(self):
        local, incoming = self.conflicting_pair()
        merged, _ = merge_snapshots(local, incoming)
        validate_snapshot(merged)
        again, _ = merge_snapshots(local, incoming)
        assert to_json(merged) == to_json(again)

    def test_bench_conflicts_keep_local_and_are_counted(self):
        a = BenchmarkCache()
        a.put_benchmark(GPU, make_geometry(), [
            PerfResult(FwdAlgo.FFT, Status.SUCCESS, 0.001, 64),
        ])
        b = BenchmarkCache()
        b.put_benchmark(GPU, make_geometry(), [
            PerfResult(FwdAlgo.GEMM, Status.SUCCESS, 0.002, 64),
        ])
        b.put_benchmark(GPU, make_geometry(c=7), [
            PerfResult(FwdAlgo.GEMM, Status.SUCCESS, 0.002, 64),
        ])
        merged, report = merge_snapshots(make_doc(bench=a), make_doc(bench=b))
        assert report.bench_conflicts == 1
        assert report.bench_added == 1
        local_rows = make_doc(bench=a)["bench"]["benchmarks"]
        for name, rows in local_rows.items():
            assert merged["bench"]["benchmarks"][name] == rows

    def test_bench_conflict_raises_under_error_policy(self):
        a = BenchmarkCache()
        a.put_benchmark(GPU, make_geometry(), [
            PerfResult(FwdAlgo.FFT, Status.SUCCESS, 0.001, 64),
        ])
        b = BenchmarkCache()
        b.put_benchmark(GPU, make_geometry(), [
            PerfResult(FwdAlgo.GEMM, Status.SUCCESS, 0.002, 64),
        ])
        with pytest.raises(MergeConflictError, match="bench"):
            merge_snapshots(make_doc(bench=a), make_doc(bench=b),
                            policy="error")


class TestWarmStart:
    GEOMETRIES = {"a": make_geometry(c=3), "b": make_geometry(c=7)}

    def solved_snapshot(self):
        """Solve some requests on a spy service, return (doc, answers)."""
        with PlanService(GPU, clock=ManualClock(),
                         solve_fn=lambda r: (fake_config(), 0.1)) as service:
            answers = {
                k: service.request(PlanRequest(
                    kernel=k, geometry=g, workspace_limit=MIB))
                for k, g in self.GEOMETRIES.items()
            }
            return snapshot_service(service), answers

    def test_warm_service_answers_with_zero_solver_invocations(self):
        doc, cold = self.solved_snapshot()
        solves = []

        def spy(request):
            solves.append(request.kernel)
            return fake_config(), 0.1

        with PlanService(GPU, clock=ManualClock(), solve_fn=spy) as warm:
            assert warm_start(warm, doc) == 2
            for kernel, cold_answer in cold.items():
                got = warm.request(PlanRequest(
                    kernel=kernel, geometry=self.GEOMETRIES[kernel],
                    workspace_limit=MIB))
                assert got.configuration == cold_answer.configuration
                assert got.source == "cached"
        assert solves == []                     # the acceptance criterion
        assert warm.stats.solver_invocations == 0

    def test_foreign_gpu_plans_are_skipped(self):
        store = PlanStore(clock=ManualClock())
        store.put(make_key(0), fake_config())
        store.put(make_key(1, gpu="v100-sxm2"), fake_config())
        doc = snapshot_store(store, GPU)
        with PlanService(GPU, clock=ManualClock(),
                         solve_fn=lambda r: (fake_config(), 0.1)) as service:
            assert warm_start(service, doc) == 1
            assert make_key(0) in service.store
            assert make_key(1, gpu="v100-sxm2") not in service.store

    def test_foreign_gpu_bench_rows_are_filtered(self):
        bench = BenchmarkCache()
        bench.put_benchmark("v100-sxm2", make_geometry(), [
            PerfResult(FwdAlgo.FFT, Status.SUCCESS, 0.001, 64),
        ])
        doc = snapshot_store(PlanStore(clock=ManualClock()), GPU,
                             bench_cache=bench)
        with PlanService(GPU, clock=ManualClock(),
                         solve_fn=lambda r: (fake_config(), 0.1)) as service:
            warm_start(service, doc)
            assert service.bench_cache.get_benchmark(
                "v100-sxm2", make_geometry()) is None

    def test_warm_start_rejects_damaged_documents(self):
        with PlanService(GPU, clock=ManualClock(),
                         solve_fn=lambda r: (fake_config(), 0.1)) as service:
            with pytest.raises(SnapshotCorruptError):
                warm_start(service, {"kind": "nope"})


class TestCanonicalGpu:
    def test_aliases_resolve(self):
        assert canonical_gpu("P100") == "p100-sxm2"
        assert canonical_gpu("p100-sxm2") == "p100-sxm2"

    def test_unknown_names_pass_through(self):
        assert canonical_gpu("synthetic-test-gpu") == "synthetic-test-gpu"


class TestPersistentPlanStore:
    def test_write_through_on_every_put(self, tmp_path):
        path = tmp_path / "snap.json"
        store = PersistentPlanStore(path, gpu=GPU, clock=ManualClock())
        store.put(make_key(0), fake_config())
        assert path.exists()
        (key, configuration, _), = plans_of(load_snapshot(path))
        assert key == make_key(0)
        assert configuration == fake_config()

    def test_warm_loads_at_construction(self, tmp_path):
        path = tmp_path / "snap.json"
        first = PersistentPlanStore(path, gpu=GPU, clock=ManualClock())
        first.put(make_key(0), fake_config())
        first.put(make_key(1), fake_config(micro=8))
        second = PersistentPlanStore(path, gpu=GPU, clock=ManualClock())
        assert second.loaded_plans == 2
        assert second.get(make_key(1)) == fake_config(micro=8)

    def test_warm_load_is_gpu_filtered(self, tmp_path):
        path = tmp_path / "snap.json"
        store = PlanStore(clock=ManualClock())
        store.put(make_key(0), fake_config())
        store.put(make_key(1, gpu="v100-sxm2"), fake_config())
        save_snapshot(path, snapshot_store(store, GPU))
        reloaded = PersistentPlanStore(path, gpu=GPU, clock=ManualClock())
        assert reloaded.loaded_plans == 1
        assert make_key(1, gpu="v100-sxm2") not in reloaded

    def test_bench_cache_round_trips(self, tmp_path):
        path = tmp_path / "snap.json"
        bench = BenchmarkCache()
        bench.put_benchmark(GPU, make_geometry(), [
            PerfResult(FwdAlgo.FFT, Status.SUCCESS, 0.001, 64),
        ])
        first = PersistentPlanStore(path, gpu=GPU, clock=ManualClock(),
                                    bench_cache=bench)
        first.put(make_key(0), fake_config())
        fresh_bench = BenchmarkCache()
        second = PersistentPlanStore(path, gpu=GPU, clock=ManualClock(),
                                     bench_cache=fresh_bench)
        assert second.loaded_bench_rows == 1
        assert fresh_bench.get_benchmark(GPU, make_geometry()) is not None

    def test_sync_every_batches_writes(self, tmp_path):
        path = tmp_path / "snap.json"
        store = PersistentPlanStore(path, gpu=GPU, clock=ManualClock(),
                                    sync_every=3)
        store.put(make_key(0), fake_config())
        store.put(make_key(1), fake_config())
        assert not path.exists()
        store.put(make_key(2), fake_config())
        assert path.exists()
        assert len(list(plans_of(load_snapshot(path)))) == 3

    def test_save_flushes_pending_puts(self, tmp_path):
        path = tmp_path / "snap.json"
        store = PersistentPlanStore(path, gpu=GPU, clock=ManualClock(),
                                    sync_every=100)
        store.put(make_key(0), fake_config())
        assert not path.exists()
        assert store.save() == path
        assert len(list(plans_of(load_snapshot(path)))) == 1

    def test_invalid_sync_every_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="sync_every"):
            PersistentPlanStore(tmp_path / "s.json", gpu=GPU, sync_every=0)

    def test_corrupt_file_refuses_to_construct(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("{broken")
        with pytest.raises(SnapshotCorruptError):
            PersistentPlanStore(path, gpu=GPU)

    def test_resave_after_reload_is_byte_identical(self, tmp_path):
        path = tmp_path / "snap.json"
        first = PersistentPlanStore(path, gpu=GPU, clock=ManualClock())
        first.put(make_key(0), fake_config())
        first.put(make_key(1), fake_config(micro=8))
        before = path.read_bytes()
        second = PersistentPlanStore(path, gpu=GPU, clock=ManualClock())
        second.save()
        assert path.read_bytes() == before

    def test_service_write_through_end_to_end(self, tmp_path):
        path = tmp_path / "snap.json"
        store = PersistentPlanStore(path, gpu=GPU, clock=ManualClock())
        with PlanService(GPU, clock=ManualClock(), store=store,
                         solve_fn=lambda r: (fake_config(), 0.1)) as service:
            service.request(PlanRequest(kernel="a", geometry=make_geometry(),
                                        workspace_limit=MIB))
        assert len(list(plans_of(load_snapshot(path)))) == 1


class TestSnapshotDocumentShape:
    """Pin the schema constants the on-disk format contract depends on."""

    def test_kind_and_version(self):
        doc = make_doc()
        assert doc["kind"] == SNAPSHOT_KIND == "repro.plan-snapshot"
        assert doc["schema_version"] == SNAPSHOT_SCHEMA_VERSION == 1

    def test_document_is_pure_json(self, tmp_path):
        text = to_json(make_doc())
        assert json.loads(text)  # round-trips through the stdlib
