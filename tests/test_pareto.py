"""Tests for desirable configuration sets (paper section III-C1).

Includes an empirical check of the paper's pruning theorem: removing
non-Pareto configurations never changes the WD ILP optimum.
"""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.benchmarker import benchmark_kernel
from repro.core.pareto import (
    assert_valid_front,
    configuration_front,
    desirable_set,
    pareto_front,
)
from repro.core.policies import BatchSizePolicy
from repro.core.wr import optimize_from_benchmark
from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.enums import ConvType
from repro.errors import OptimizationError
from repro.units import MIB
from tests.test_benchmarker import synth_benchmark

CONV2 = ConvGeometry(ConvType.FORWARD, 256, 64, 27, 27, 192, 5, 5, 2, 2)


class TestParetoFront:
    def test_basic(self):
        pts = [(1.0, 10), (2.0, 5), (3.0, 1), (2.5, 8), (0.5, 20)]
        front = pareto_front(pts, lambda p: p[0], lambda p: p[1])
        assert front == [(3.0, 1), (2.0, 5), (1.0, 10), (0.5, 20)]

    def test_duplicates_collapse(self):
        pts = [(1.0, 10), (1.0, 10), (1.0, 10)]
        assert len(pareto_front(pts, lambda p: p[0], lambda p: p[1])) == 1

    def test_equal_ws_keeps_fastest(self):
        pts = [(2.0, 10), (1.0, 10)]
        assert pareto_front(pts, lambda p: p[0], lambda p: p[1]) == [(1.0, 10)]

    @given(st.lists(st.tuples(st.floats(0.01, 100), st.integers(0, 1000)),
                    min_size=1, max_size=50))
    def test_front_properties(self, pts):
        front = pareto_front(pts, lambda p: p[0], lambda p: p[1])
        # 1. No front member dominates another.
        for a, b in itertools.combinations(front, 2):
            assert not (a[0] <= b[0] and a[1] <= b[1] and (a[0] < b[0] or a[1] < b[1]))
            assert not (b[0] <= a[0] and b[1] <= a[1] and (b[0] < a[0] or b[1] < a[1]))
        # 2. Every input point is weakly dominated by some front member.
        for p in pts:
            assert any(f[0] <= p[0] and f[1] <= p[1] for f in front)
        # 3. Sorted by workspace ascending, time strictly descending.
        wss = [f[1] for f in front]
        times = [f[0] for f in front]
        assert wss == sorted(wss)
        assert times == sorted(times, reverse=True)


def brute_force_desirable(table: dict[int, list[tuple[float, int]]], n: int,
                          limit: int) -> set[tuple[float, int]]:
    """Exhaustive (time, workspace) Pareto points over all partitions of n
    with all per-part algorithm choices (exponential: tiny n only)."""
    options = {
        s: [(t, ws) for t, ws in entries if ws <= limit]
        for s, entries in table.items()
    }
    options = {s: o for s, o in options.items() if o}
    points: set[tuple[float, int]] = set()

    def rec(remaining: int, t_acc: float, ws_acc: int, min_size: int):
        if remaining == 0:
            points.add((round(t_acc, 9), ws_acc))
            return
        for size, opts in options.items():
            if size > remaining or size < min_size:
                continue
            for t, ws in opts:
                rec(remaining - size, t_acc + t, max(ws_acc, ws), size)

    rec(n, 0.0, 0, 1)
    front = pareto_front(sorted(points), lambda p: p[0], lambda p: p[1])
    return set(front)


class TestDesirableSet:
    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 6), data=st.data())
    def test_matches_exhaustive_front(self, n, data):
        sizes = sorted(set(data.draw(
            st.lists(st.integers(1, n), min_size=1, max_size=3))) | {1})
        table = {
            s: [(data.draw(st.floats(0.01, 10.0)), data.draw(st.integers(0, 50)))
                for _ in range(data.draw(st.integers(1, 3)))]
            for s in sizes
        }
        limit = 50
        bench = synth_benchmark(n, table)
        front = desirable_set(bench, workspace_limit=limit)
        got = {(round(c.time, 9), c.workspace) for c in front}
        expected = brute_force_desirable(table, n, limit)
        assert got == expected

    def test_wr_optimum_on_front(self, timing_handle):
        """Paper: WR(B) is an element of the desirable set."""
        bench = benchmark_kernel(timing_handle, CONV2, BatchSizePolicy.POWER_OF_TWO)
        for limit in (8 * MIB, 64 * MIB, 120 * MIB):
            front = desirable_set(bench, workspace_limit=limit)
            wr = optimize_from_benchmark(bench, limit)
            feasible = [c for c in front if c.workspace <= limit]
            assert min(c.time for c in feasible) == pytest.approx(wr.time)

    def test_front_is_valid_and_sorted(self, timing_handle):
        bench = benchmark_kernel(timing_handle, CONV2, BatchSizePolicy.POWER_OF_TWO)
        front = desirable_set(bench, workspace_limit=120 * MIB)
        assert_valid_front(front)
        wss = [c.workspace for c in front]
        assert wss == sorted(wss)
        assert all(c.batch == 256 for c in front)
        assert all(c.workspace <= 120 * MIB for c in front)

    def test_front_size_modest(self, timing_handle):
        """Paper: at most ~68 desirable configurations per AlexNet kernel."""
        bench = benchmark_kernel(timing_handle, CONV2, BatchSizePolicy.ALL)
        front = desirable_set(bench, workspace_limit=120 * MIB)
        assert 2 <= len(front) <= 100

    def test_max_front_cap_keeps_fastest(self, timing_handle):
        bench = benchmark_kernel(timing_handle, CONV2, BatchSizePolicy.POWER_OF_TWO)
        full = desirable_set(bench, workspace_limit=120 * MIB)
        capped = desirable_set(bench, workspace_limit=120 * MIB, max_front=3)
        assert len(capped) <= 3
        assert capped[-1].time == pytest.approx(full[-1].time)

    def test_infeasible_raises(self):
        bench = synth_benchmark(4, {4: [(1.0, 100)]})
        with pytest.raises(OptimizationError):
            desirable_set(bench, workspace_limit=10)

    def test_uncomposable_raises(self):
        bench = synth_benchmark(5, {2: [(1.0, 0)]})
        with pytest.raises(OptimizationError):
            desirable_set(bench, workspace_limit=100)


class TestPruningTheoremEmpirically:
    """Section III-C1's proof: the ILP optimum over pruned (desirable) sets
    equals the optimum over ALL configurations."""

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_ilp_optimum_preserved(self, data):
        n = data.draw(st.integers(2, 5))
        num_kernels = data.draw(st.integers(1, 3))
        tables = []
        for _ in range(num_kernels):
            table = {
                s: [(data.draw(st.floats(0.1, 5.0)), data.draw(st.integers(0, 20)))
                    for _ in range(2)]
                for s in (1, 2)
            }
            tables.append(table)
        capacity = data.draw(st.integers(5, 40))

        def all_points(table):
            pts = set()

            def rec(remaining, t, ws, min_size):
                if remaining == 0:
                    pts.add((round(t, 9), ws))
                    return
                for size, opts in table.items():
                    if size > remaining or size < min_size:
                        continue
                    for tt, ww in opts:
                        rec(remaining - size, t + tt, max(ws, ww), size)

            rec(n, 0.0, 0, 1)
            return sorted(pts)

        def mckp_best(point_sets):
            best = math.inf
            for combo in itertools.product(*point_sets):
                if sum(p[1] for p in combo) <= capacity:
                    best = min(best, sum(p[0] for p in combo))
            return best

        full_sets = [all_points(t) for t in tables]
        pruned_sets = []
        for table in tables:
            bench = synth_benchmark(n, table)
            try:
                front = desirable_set(bench, workspace_limit=capacity)
            except OptimizationError:
                return  # infeasible kernel: nothing to compare
            pruned_sets.append([(round(c.time, 9), c.workspace) for c in front])

        full_best = mckp_best(full_sets)
        pruned_best = mckp_best(pruned_sets)
        if math.isinf(full_best):
            assert math.isinf(pruned_best)
        else:
            assert pruned_best == pytest.approx(full_best)
