"""Tests for batch-size policies (paper section III-D)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.policies import BatchSizePolicy, candidate_sizes


class TestParse:
    @pytest.mark.parametrize("name,expected", [
        ("all", BatchSizePolicy.ALL),
        ("powerOfTwo", BatchSizePolicy.POWER_OF_TWO),
        ("POWEROFTWO", BatchSizePolicy.POWER_OF_TWO),
        ("undivided", BatchSizePolicy.UNDIVIDED),
        (" Undivided ", BatchSizePolicy.UNDIVIDED),
    ])
    def test_paper_spellings(self, name, expected):
        assert BatchSizePolicy.parse(name) == expected

    def test_unknown(self):
        with pytest.raises(ValueError):
            BatchSizePolicy.parse("half")


class TestCandidateSizes:
    def test_undivided(self):
        assert candidate_sizes(BatchSizePolicy.UNDIVIDED, 256) == [256]

    def test_power_of_two(self):
        assert candidate_sizes(BatchSizePolicy.POWER_OF_TWO, 256) == \
            [1, 2, 4, 8, 16, 32, 64, 128, 256]

    def test_power_of_two_non_power_batch(self):
        # The original batch must stay available (never worse than cuDNN).
        sizes = candidate_sizes(BatchSizePolicy.POWER_OF_TWO, 100)
        assert sizes == [1, 2, 4, 8, 16, 32, 64, 100]

    def test_all(self):
        assert candidate_sizes(BatchSizePolicy.ALL, 5) == [1, 2, 3, 4, 5]

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            candidate_sizes(BatchSizePolicy.ALL, 0)

    def test_cost_scaling_matches_paper(self):
        """all costs O(B) benchmark points, powerOfTwo O(log B)."""
        n_all = len(candidate_sizes(BatchSizePolicy.ALL, 1024))
        n_p2 = len(candidate_sizes(BatchSizePolicy.POWER_OF_TWO, 1024))
        assert n_all == 1024
        assert n_p2 == 11


@given(batch=st.integers(1, 4096))
def test_invariants_all_policies(batch):
    for policy in BatchSizePolicy:
        sizes = candidate_sizes(policy, batch)
        assert sizes == sorted(set(sizes))        # ascending, unique
        assert batch in sizes                     # undivided always available
        assert all(1 <= s <= batch for s in sizes)


@given(batch=st.integers(1, 4096))
def test_power_of_two_composability(batch):
    """Any batch is a sum of the powerOfTwo candidate sizes (binary
    expansion), so the WR DP is always feasible under this policy."""
    sizes = set(candidate_sizes(BatchSizePolicy.POWER_OF_TWO, batch))
    remaining = batch
    for s in sorted(sizes, reverse=True):
        while s <= remaining:
            remaining -= s
    assert remaining == 0
