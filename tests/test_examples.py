"""Smoke tests for the runnable examples (bitrot guard).

The two numerics-heavy examples (quickstart, train_microbatched) are
excluded here -- they multiply real tensors for tens of seconds and their
logic is covered by the semantics tests; the rest run the simulated
clock only and finish in about a second each.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    ("wd_inception.py", ["--total-mib", "60"], "WD speedup over WR"),
    ("memory_report.py", ["--model", "alexnet"], "largest per-layer memory cut"),
    ("offline_benchmark.py", [], "workers spent 0 s benchmarking"),
    ("data_parallel_scaling.py", [], "Weak scaling"),
    ("alexnet_caffe_time.py",
     ["--policies", "undivided,powerOfTwo", "--workspaces", "64",
      "--iterations", "1"],
     "Summary"),
    ("serve_plans.py", [], "clients never waited on a stalled solve"),
    ("persist_and_serve.py", [], "0 solver invocations (plans identical: True)"),
    ("cluster_serve.py", [], "plan identical to a single-shard service: True"),
]


@pytest.mark.parametrize("script,args,marker", FAST_EXAMPLES,
                         ids=[e[0] for e in FAST_EXAMPLES])
def test_example_runs(script, args, marker):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert marker in proc.stdout


def test_all_examples_are_accounted_for():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    covered = {e[0] for e in FAST_EXAMPLES} | {
        "quickstart.py", "train_microbatched.py",  # numerics-heavy, see module docstring
    }
    assert on_disk == covered
