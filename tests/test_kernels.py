"""Numeric equivalence tests: every algorithm family vs the direct reference.

This is correctness invariant 2 of DESIGN.md: all kernels (GEMM, precomp,
FFT, FFT-tiling, Winograd) must agree with the vectorized loop nest for all
three operation types across strides, pads, and awkward shapes.
"""

import numpy as np
import pytest

from repro.cudnn import kernels
from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.enums import BwdDataAlgo, BwdFilterAlgo, ConvType, FwdAlgo
from repro.cudnn.kernels import direct, gemm, im2col, precomp
from repro.cudnn.workspace import is_supported
from repro.errors import BadParamError, NotSupportedError
from tests.conftest import assert_close, make_geometry, random_operands

GEOMETRIES = [
    pytest.param(make_geometry(n=3, c=5, h=13, w=11, k=7, r=3, s=3, pad=1), id="3x3-odd"),
    pytest.param(make_geometry(n=2, c=4, h=27, w=27, k=6, r=5, s=5, pad=2), id="5x5-conv2ish"),
    pytest.param(make_geometry(n=2, c=3, h=35, w=35, k=4, r=11, s=11, pad=0, stride=4), id="11x11-s4"),
    pytest.param(make_geometry(n=2, c=8, h=9, w=9, k=5, r=1, s=1, pad=0), id="1x1"),
    pytest.param(make_geometry(n=2, c=3, h=40, w=37, k=4, r=3, s=3, pad=1), id="multi-tile"),
    pytest.param(make_geometry(n=1, c=1, h=4, w=4, k=1, r=3, s=3, pad=0), id="minimal"),
    pytest.param(make_geometry(n=2, c=3, h=15, w=15, k=4, r=3, s=3, pad=0, dilation=2), id="dilated"),
    pytest.param(make_geometry(n=5, c=2, h=10, w=14, k=3, r=3, s=3, pad=2), id="pad2-3x3"),
]


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(7)
    cache = {}

    def get(g):
        if g not in cache:
            cache[g] = random_operands(rng, g)
        return cache[g]

    return get


@pytest.mark.parametrize("g", GEOMETRIES)
class TestAllFamiliesAgree:
    def test_forward(self, g, operands):
        x, w, _ = operands(g)
        ref = direct.forward(g, x, w)
        tested = 0
        for algo in FwdAlgo:
            if is_supported(g, algo):
                assert_close(kernels.forward(g, x, w, algo), ref,
                             context=f"fwd {algo.name}")
                tested += 1
        assert tested >= 3  # gemm families always present

    def test_backward_data(self, g, operands):
        x, w, dy = operands(g)
        gd = g.with_type(ConvType.BACKWARD_DATA)
        ref = direct.backward_data(gd, dy, w)
        for algo in BwdDataAlgo:
            if is_supported(gd, algo):
                assert_close(kernels.backward_data(gd, dy, w, algo), ref,
                             context=f"bwd_data {algo.name}")

    def test_backward_filter(self, g, operands):
        x, w, dy = operands(g)
        gw = g.with_type(ConvType.BACKWARD_FILTER)
        ref = direct.backward_filter(gw, x, dy)
        for algo in BwdFilterAlgo:
            if is_supported(gw, algo):
                assert_close(kernels.backward_filter(gw, x, dy, algo), ref,
                             context=f"bwd_filter {algo.name}")


class TestAdjointConsistency:
    """backward_data/backward_filter are the true adjoints of forward:
    <conv(x, w), dy> == <x, bwd_data(dy, w)> == <w, bwd_filter(x, dy)>."""

    @pytest.mark.parametrize("g", GEOMETRIES)
    def test_inner_product_identity(self, g, operands):
        x, w, dy = operands(g)
        y = direct.forward(g, x, w)
        dx = direct.backward_data(g.with_type(ConvType.BACKWARD_DATA), dy, w)
        dw = direct.backward_filter(g.with_type(ConvType.BACKWARD_FILTER), x, dy)
        lhs = float(np.vdot(y.astype(np.float64), dy.astype(np.float64)))
        via_x = float(np.vdot(x.astype(np.float64), dx.astype(np.float64)))
        via_w = float(np.vdot(w.astype(np.float64), dw.astype(np.float64)))
        scale = max(abs(lhs), 1.0)
        assert abs(lhs - via_x) / scale < 1e-3
        assert abs(lhs - via_w) / scale < 1e-3


class TestDispatcher:
    def test_rejects_wrong_conv_type(self, operands):
        g = make_geometry()
        x, w, dy = operands(g)
        with pytest.raises(BadParamError):
            kernels.forward(g.with_type(ConvType.BACKWARD_DATA), x, w,
                            FwdAlgo.IMPLICIT_GEMM)

    def test_rejects_unsupported_algo(self, operands):
        g = make_geometry(stride=2)
        x, w, _ = operands(g)
        with pytest.raises(NotSupportedError):
            kernels.forward(g, x, w, FwdAlgo.WINOGRAD)

    def test_rejects_bad_shapes(self):
        g = make_geometry()
        x = np.zeros((1, 1, 1, 1), dtype=np.float32)
        w = np.zeros(g.w_desc.shape, dtype=np.float32)
        with pytest.raises(BadParamError):
            kernels.forward(g, x, w, FwdAlgo.IMPLICIT_GEMM)


class TestIm2col:
    def test_col2im_is_adjoint_of_im2col(self):
        """<im2col(x), c> == <x, col2im(c)> for random c (adjoint pair)."""
        rng = np.random.default_rng(3)
        g = make_geometry(n=2, c=3, h=7, w=6, k=2, r=3, s=3, pad=1, stride=2)
        x = rng.standard_normal(g.x_desc.shape).astype(np.float32)
        col = im2col.im2col(g, x)
        c = rng.standard_normal(col.shape).astype(np.float32)
        lhs = float(np.vdot(col.astype(np.float64), c.astype(np.float64)))
        rhs = float(np.vdot(x.astype(np.float64),
                            im2col.col2im(g, c).astype(np.float64)))
        assert abs(lhs - rhs) / max(abs(lhs), 1.0) < 1e-4

    def test_gemm_call_counting(self):
        rng = np.random.default_rng(5)
        g = make_geometry()
        x, w, _ = random_operands(rng, g)
        gemm.reset_call_count()
        im2col.forward(g, x, w)
        assert gemm.CALL_COUNT == 1
        precomp.forward(g, x, w)
        assert gemm.CALL_COUNT == 2

    def test_sgemm_validates_dims(self):
        with pytest.raises(ValueError):
            gemm.sgemm(np.zeros((2, 3), np.float32), np.zeros((4, 5), np.float32))
        with pytest.raises(ValueError):
            gemm.sgemm(np.zeros(3, np.float32), np.zeros((3, 2), np.float32))


class TestPrecomp:
    def test_index_bytes_positive_and_batch_free(self):
        g = make_geometry(n=16)
        assert precomp.precomputed_index_bytes(g) == \
            precomp.precomputed_index_bytes(g.with_batch(1))
        assert precomp.precomputed_index_bytes(g) > 0

    def test_padding_taps_are_zero(self):
        """The gather's zero sentinel must behave exactly like zero padding."""
        rng = np.random.default_rng(11)
        g = make_geometry(n=1, c=1, h=4, w=4, k=1, r=3, s=3, pad=2)
        x = rng.standard_normal(g.x_desc.shape).astype(np.float32)
        w = rng.standard_normal(g.w_desc.shape).astype(np.float32)
        assert_close(precomp.forward(g, x, w), direct.forward(g, x, w))


class TestOutputDtypeAndContiguity:
    @pytest.mark.parametrize("g", GEOMETRIES[:3])
    def test_fp32_contiguous(self, g, operands):
        x, w, dy = operands(g)
        for algo in FwdAlgo:
            if is_supported(g, algo):
                y = kernels.forward(g, x, w, algo)
                assert y.dtype == np.float32
                assert y.flags["C_CONTIGUOUS"]
