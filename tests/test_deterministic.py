"""Tests for the deterministic-algorithms mode."""

import numpy as np
import pytest

from repro.core import BatchSizePolicy, Options, UcudnnHandle
from repro.core.benchmarker import benchmark_kernel
from repro.core.cache import BenchmarkCache
from repro.core.options import ENV_DETERMINISTIC
from repro.cudnn import api
from repro.cudnn.descriptors import (
    ConvolutionDescriptor,
    FilterDescriptor,
    TensorDescriptor,
)
from repro.cudnn.enums import (
    BwdDataAlgo,
    BwdFilterAlgo,
    ConvType,
    FwdAlgo,
    algos_for,
    is_deterministic,
)
from repro.units import MIB
from tests.conftest import make_geometry


class TestPredicate:
    def test_forward_all_deterministic(self):
        assert all(is_deterministic(ConvType.FORWARD, a) for a in FwdAlgo)

    def test_atomics_algorithms_flagged(self):
        assert not is_deterministic(ConvType.BACKWARD_DATA, BwdDataAlgo.ALGO_0)
        assert not is_deterministic(ConvType.BACKWARD_FILTER, BwdFilterAlgo.ALGO_0)
        assert is_deterministic(ConvType.BACKWARD_DATA, BwdDataAlgo.ALGO_1)
        assert is_deterministic(ConvType.BACKWARD_FILTER, BwdFilterAlgo.ALGO_1)


class TestBenchmarkerFilter:
    def test_filter_removes_atomics_entries(self, timing_handle):
        g = make_geometry(n=8).with_type(ConvType.BACKWARD_FILTER)
        plain = benchmark_kernel(timing_handle, g, BatchSizePolicy.UNDIVIDED)
        det = benchmark_kernel(timing_handle, g, BatchSizePolicy.UNDIVIDED,
                               deterministic_only=True)
        plain_algos = {r.algo for r in plain.results[8]}
        det_algos = {r.algo for r in det.results[8]}
        assert BwdFilterAlgo.ALGO_0 in plain_algos
        assert BwdFilterAlgo.ALGO_0 not in det_algos
        assert det_algos < plain_algos

    def test_shared_cache_serves_both_settings(self, timing_handle):
        g = make_geometry(n=8).with_type(ConvType.BACKWARD_DATA)
        cache = BenchmarkCache()
        benchmark_kernel(timing_handle, g, BatchSizePolicy.UNDIVIDED, cache=cache)
        det = benchmark_kernel(timing_handle, g, BatchSizePolicy.UNDIVIDED,
                               cache=cache, deterministic_only=True)
        assert det.benchmark_time == 0.0  # cache hit
        assert all(is_deterministic(ConvType.BACKWARD_DATA, r.algo)
                   for r in det.results[8])


class TestHandleIntegration:
    def _run_backward(self, handle, rng):
        xd = TensorDescriptor(16, 4, 10, 10)
        wd = FilterDescriptor(8, 4, 3, 3)
        cd = ConvolutionDescriptor(1, 1)
        g = api.make_geometry(ConvType.FORWARD, xd, wd, cd)
        x = rng.standard_normal(xd.shape).astype(np.float32)
        w = rng.standard_normal(wd.shape).astype(np.float32)
        dy = rng.standard_normal(g.y_desc.shape).astype(np.float32)
        for ct in ConvType:
            api.get_algorithm(handle, api.make_geometry(ct, xd, wd, cd),
                              api.AlgoPreference.SPECIFY_WORKSPACE_LIMIT, 1 * MIB)
        api.convolution_backward_data(
            handle, wd, w, g.y_desc, dy, cd, None, 0, xd
        )
        api.convolution_backward_filter(
            handle, xd, x, g.y_desc, dy, cd, None, 0, wd
        )
        return handle.configurations()

    def test_configurations_avoid_atomics(self, rng):
        handle = UcudnnHandle(options=Options(
            policy=BatchSizePolicy.POWER_OF_TWO, deterministic=True,
            workspace_limit=1 * MIB,
        ))
        configs = self._run_backward(handle, rng)
        for g, config in configs.items():
            for micro in config:
                assert is_deterministic(g.conv_type, micro.algo), (g, micro)

    def test_cache_keys_distinguish_modes(self, rng, tmp_path):
        """A config optimized without the flag must not leak into a
        deterministic handle via the shared file DB."""
        db = str(tmp_path / "db.json")
        plain = UcudnnHandle(options=Options(
            policy=BatchSizePolicy.POWER_OF_TWO, workspace_limit=1 * MIB,
            benchmark_db=db))
        self._run_backward(plain, np.random.default_rng(0))
        plain.cache.save()
        det = UcudnnHandle(options=Options(
            policy=BatchSizePolicy.POWER_OF_TWO, workspace_limit=1 * MIB,
            benchmark_db=db, deterministic=True))
        configs = self._run_backward(det, np.random.default_rng(0))
        for g, config in configs.items():
            for micro in config:
                assert is_deterministic(g.conv_type, micro.algo)


class TestEnv:
    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("0", False), ("", False), ("no", False),
    ])
    def test_env_parsing(self, value, expected):
        assert Options.from_env({ENV_DETERMINISTIC: value}).deterministic is expected
