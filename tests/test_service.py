"""Tests for the plan-compilation service (``src/repro/service``).

Covers the ISSUE's acceptance criteria directly: concurrent identical
requests cost exactly one solver invocation (spy-counted), timeouts and
solver faults degrade to a valid ``undivided`` fallback plan with a
provenance marker, admission control refuses every over-limit request with
:class:`~repro.errors.ServiceOverloadedError`, and the soak driver is
byte-deterministic under a :class:`~repro.telemetry.clock.ManualClock`.
"""

import threading

import pytest

import repro.observability as observability
from repro.core.config import Configuration, MicroConfig
from repro.cudnn.enums import FwdAlgo
from repro.errors import (
    DeadlineExceededError,
    ServiceOverloadedError,
    SolverError,
)
from repro.service import (
    ACTION_FAIL,
    ACTION_STALL,
    FaultInjector,
    PlanKey,
    PlanRequest,
    PlanService,
    PlanStore,
    SoakConfig,
    run_soak,
)
from repro.telemetry.clock import ManualClock
from repro.units import MIB
from tests.conftest import make_geometry


def fake_config(micro: int = 4) -> Configuration:
    return Configuration((MicroConfig(micro, FwdAlgo.IMPLICIT_GEMM, 0.001, 0),))


def make_request(kernel: str = "conv", c: int = 3, n: int = 4, **kw) -> PlanRequest:
    return PlanRequest(kernel=kernel, geometry=make_geometry(c=c, n=n), **kw)


def make_key(i: int) -> PlanKey:
    return PlanKey(gpu="g", kernel=f"k{i}", policy="powerOfTwo",
                   workspace_limit=MIB)


class TestCoalescing:
    def test_concurrent_identical_requests_share_one_solve(self):
        release = threading.Event()
        calls = []
        calls_lock = threading.Lock()

        def solve(request):
            with calls_lock:
                calls.append(request.kernel)
            assert release.wait(timeout=10)
            return fake_config(), 0.25

        svc = PlanService(clock=ManualClock(), solve_fn=solve, workers=4)
        try:
            tickets = [svc.submit(make_request()) for _ in range(6)]
            sources = [t.source for t in tickets]
            assert sources.count("fresh") == 1
            assert sources.count("coalesced") == 5
            release.set()
            responses = [svc.wait(t) for t in tickets]
            assert len(calls) == 1  # the spy saw exactly one invocation
            assert svc.stats.solver_invocations == 1
            assert svc.stats.fresh == 1 and svc.stats.coalesced == 5
            assert all(r.configuration == fake_config() for r in responses)
        finally:
            release.set()
            svc.close()

    def test_later_request_hits_the_plan_store(self):
        svc = PlanService(
            clock=ManualClock(),
            solve_fn=lambda r: (fake_config(), 0.1),
        )
        try:
            first = svc.request(make_request())
            second = svc.request(make_request())
            assert first.source == "fresh"
            assert second.source == "cached"
            assert svc.stats.solver_invocations == 1
            assert svc.stats.cache_hits == 1
        finally:
            svc.close()

    def test_distinct_keys_do_not_coalesce(self):
        svc = PlanService(
            clock=ManualClock(), solve_fn=lambda r: (fake_config(), 0.1)
        )
        try:
            a = svc.request(make_request(kernel="a", c=3))
            b = svc.request(make_request(kernel="b", c=8))
            c = svc.request(make_request(kernel="a", c=3, workspace_limit=MIB))
            assert (a.source, b.source, c.source) == ("fresh",) * 3
            assert svc.stats.solver_invocations == 3
        finally:
            svc.close()


class TestDegradation:
    def test_timeout_falls_back_to_undivided(self):
        release = threading.Event()

        def stalled(request):
            assert release.wait(timeout=10)
            return fake_config(), 0.25

        svc = PlanService(clock=ManualClock(), solve_fn=stalled)
        try:
            request = make_request(n=32)
            response = svc.request(
                PlanRequest(kernel="conv", geometry=request.geometry,
                            deadline_s=0.05)
            )
            assert response.source == "fallback"
            assert response.degraded
            assert response.fallback_reason == "timeout"
            # The fallback is the plain-cuDNN answer: one undivided micro.
            assert response.configuration.is_undivided
            [micro] = response.configuration.micros
            assert micro.micro_batch == 32
            assert svc.stats.fallbacks_timeout == 1
        finally:
            release.set()
            svc.close()

    def test_solver_fault_falls_back_with_reason(self):
        def broken(request):
            raise SolverError("injected")

        svc = PlanService(clock=ManualClock(), solve_fn=broken)
        try:
            response = svc.request(make_request(n=16))
            assert response.source == "fallback"
            assert response.fallback_reason == "solver_error"
            assert response.configuration.is_undivided
            assert svc.stats.fallbacks_error == 1
        finally:
            svc.close()

    def test_fallback_plans_are_not_stored(self):
        def broken(request):
            raise SolverError("injected")

        svc = PlanService(clock=ManualClock(), solve_fn=broken)
        try:
            request = make_request(n=16)
            response = svc.request(request)
            assert response.source == "fallback"
            assert svc.store.get(request.key(svc.gpu_name)) is None
        finally:
            svc.close()

    def test_disabled_fallback_raises_deadline_error_on_timeout(self):
        release = threading.Event()

        def stalled(request):
            assert release.wait(timeout=10)
            return fake_config(), 0.25

        svc = PlanService(clock=ManualClock(), solve_fn=stalled,
                          fallback=False)
        try:
            with pytest.raises(DeadlineExceededError):
                svc.request(make_request(deadline_s=0.05))
            assert svc.stats.deadline_errors == 1
        finally:
            release.set()
            svc.close()

    def test_disabled_fallback_reraises_solver_error(self):
        def broken(request):
            raise SolverError("injected")

        svc = PlanService(clock=ManualClock(), solve_fn=broken,
                          fallback=False)
        try:
            with pytest.raises(SolverError):
                svc.request(make_request())
        finally:
            svc.close()


class TestAdmissionControl:
    def test_over_limit_submission_raises(self):
        release = threading.Event()

        def stalled(request):
            assert release.wait(timeout=10)
            return fake_config(), 0.25

        svc = PlanService(clock=ManualClock(), solve_fn=stalled,
                          max_pending=2, workers=1)
        try:
            t1 = svc.submit(make_request(kernel="a", c=3))
            t2 = svc.submit(make_request(kernel="b", c=8))
            with pytest.raises(ServiceOverloadedError):
                svc.submit(make_request(kernel="c", c=16))
            assert svc.stats.overloaded == 1
            assert svc.pending == 2
            release.set()
            svc.wait(t1)
            svc.wait(t2)
            assert svc.pending == 0
            # Capacity freed: the next submission is admitted again.
            assert svc.request(make_request(kernel="c", c=16)).source == "fresh"
        finally:
            release.set()
            svc.close()

    def test_wave_refuses_each_over_limit_request(self):
        svc = PlanService(clock=ManualClock(),
                          solve_fn=lambda r: (fake_config(), 0.1),
                          max_pending=3)
        try:
            wave = svc.wave()
            for _ in range(3):
                wave.add(make_request())
            for _ in range(4):  # every over-limit add raises, individually
                with pytest.raises(ServiceOverloadedError):
                    wave.add(make_request())
            assert svc.stats.overloaded == 4
            assert len(wave.serve()) == 3
        finally:
            svc.close()


class TestWave:
    def test_wave_coalesces_and_records_sources(self):
        svc = PlanService(clock=ManualClock(),
                          solve_fn=lambda r: (fake_config(), 0.5))
        try:
            wave = svc.wave()
            for _ in range(4):
                wave.add(make_request())
            responses = wave.serve()
            assert [r.source for r in responses] == [
                "fresh", "coalesced", "coalesced", "coalesced",
            ]
            assert svc.stats.solver_invocations == 1
            # The solve's simulated duration advanced the manual clock and
            # became every waiter's latency.
            assert all(r.latency_s == 0.5 for r in responses)
            # A second wave is served from the plan store.
            wave2 = svc.wave()
            wave2.add(make_request())
            assert wave2.serve()[0].source == "cached"
        finally:
            svc.close()

    def test_wave_deadline_degrades_to_fallback(self):
        svc = PlanService(clock=ManualClock(),
                          solve_fn=lambda r: (fake_config(), 10.0))
        try:
            wave = svc.wave()
            wave.add(make_request(n=16, deadline_s=1.0))
            wave.add(make_request(n=16))  # no deadline: gets the exact plan
            slow, patient = wave.serve()
            assert slow.source == "fallback"
            assert slow.fallback_reason == "timeout"
            assert slow.configuration.is_undivided
            assert patient.source == "coalesced"
            assert patient.configuration == fake_config()
        finally:
            svc.close()

    def test_wave_injected_fault_degrades_all_sharers(self):
        faults = FaultInjector(script={0: ACTION_FAIL})
        svc = PlanService(clock=ManualClock(),
                          solve_fn=lambda r: (fake_config(), 0.1),
                          faults=faults)
        try:
            wave = svc.wave()
            wave.add(make_request(n=16))
            wave.add(make_request(n=16))
            responses = wave.serve()
            assert [r.fallback_reason for r in responses] == [
                "solver_error", "solver_error",
            ]
            assert all(r.configuration.is_undivided for r in responses)
        finally:
            svc.close()

    def test_provenance_records_serving_sources(self):
        svc = PlanService(clock=ManualClock(),
                          solve_fn=lambda r: (fake_config(), 0.1))
        try:
            with observability.capture(clock=ManualClock()) as rec:
                wave = svc.wave()
                wave.add(make_request())
                wave.add(make_request())
                wave.serve()
                wave2 = svc.wave()
                wave2.add(make_request())
                wave2.serve()
            served = rec.events_named("service.served")
            assert [e.detail["source"] for e in served] == [
                "fresh", "coalesced", "cached",
            ]
        finally:
            svc.close()


class TestPlanStore:
    def test_lru_eviction_order(self):
        store = PlanStore(capacity=2)
        store.put(make_key(1), fake_config())
        store.put(make_key(2), fake_config())
        assert store.get(make_key(1)) is not None  # refresh 1's recency
        store.put(make_key(3), fake_config())  # evicts 2, the LRU entry
        assert store.get(make_key(2)) is None
        assert store.get(make_key(1)) is not None
        assert store.get(make_key(3)) is not None
        assert store.stats.evictions == 1
        assert len(store) == 2

    def test_ttl_expires_entries_lazily(self):
        clock = ManualClock()
        store = PlanStore(ttl_s=10.0, clock=clock)
        store.put(make_key(1), fake_config())
        clock.advance(9.0)
        assert store.get(make_key(1)) is not None
        clock.advance(2.0)
        assert store.get(make_key(1)) is None
        assert store.stats.expirations == 1
        assert make_key(1) not in store

    def test_snapshot_counters(self):
        store = PlanStore(capacity=4)
        store.put(make_key(1), fake_config())
        store.get(make_key(1))
        store.get(make_key(2))
        snap = store.snapshot()
        assert snap == {"hits": 1, "misses": 1, "evictions": 0,
                        "expirations": 0, "warm_hits": 0,
                        "invalidations": 0, "size": 1, "capacity": 4}

    def test_validation(self):
        with pytest.raises(ValueError):
            PlanStore(capacity=0)
        with pytest.raises(ValueError):
            PlanStore(ttl_s=0)

    def test_invalidate_matching_drops_and_counts(self):
        store = PlanStore()
        for i in range(4):
            store.put(make_key(i), fake_config())
        removed = store.invalidate_matching(lambda k: k.kernel in ("k1", "k3"))
        assert sorted(k.kernel for k in removed) == ["k1", "k3"]
        assert store.stats.invalidations == 2
        assert make_key(1) not in store
        assert make_key(2) in store
        # Nothing left to match: a second pass is a no-op.
        assert store.invalidate_matching(lambda k: k.kernel == "k1") == []
        assert store.stats.invalidations == 2

    def test_warm_marker_cleared_on_expiry_and_overwrite(self):
        """THR001-audit regression: warm markers must die with their entry.

        A key restored from a snapshot, then expired (or overwritten by a
        local solve), must not count later hits as ``warm_hits`` -- the
        served plan no longer comes from the snapshot.
        """
        clock = ManualClock()
        store = PlanStore(ttl_s=10.0, clock=clock)
        store.restore(make_key(1), fake_config(), stored_at=clock.now())
        clock.advance(11.0)
        assert store.get(make_key(1)) is None  # expired
        store.put(make_key(1), fake_config())
        assert store.get(make_key(1)) is not None
        assert store.stats.warm_hits == 0
        # Overwrite path: a restored key re-solved locally loses the marker.
        store.restore(make_key(2), fake_config(), stored_at=clock.now())
        store.put(make_key(2), fake_config())
        assert store.get(make_key(2)) is not None
        assert store.stats.warm_hits == 0

    def test_warm_marker_cleared_on_eviction(self):
        """The warm-key set must not leak entries past their eviction."""
        store = PlanStore(capacity=1)
        store.restore(make_key(1), fake_config(), stored_at=0.0)
        store.put(make_key(2), fake_config())  # evicts the restored key
        assert make_key(1) not in store._warm_keys
        store.restore(make_key(1), fake_config(), stored_at=0.0)
        assert store.get(make_key(1)) is not None
        assert store.stats.warm_hits == 1  # re-restored: warm again


class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        a = FaultInjector(seed=3, fail_rate=0.3, stall_rate=0.3)
        b = FaultInjector(seed=3, fail_rate=0.3, stall_rate=0.3)
        assert [a.next_action() for _ in range(50)] == [
            b.next_action() for _ in range(50)
        ]

    def test_script_overrides_without_shifting_schedule(self):
        plain = FaultInjector(seed=5, fail_rate=0.5)
        scripted = FaultInjector(seed=5, fail_rate=0.5,
                                 script={1: ACTION_STALL})
        baseline = [plain.next_action() for _ in range(6)]
        observed = [scripted.next_action() for _ in range(6)]
        assert observed[1] == ACTION_STALL
        assert observed[:1] == baseline[:1]
        assert observed[2:] == baseline[2:]  # later draws unshifted

    def test_reset_replays_the_schedule(self):
        inj = FaultInjector(seed=9, fail_rate=0.4, stall_rate=0.3)
        first = [inj.next_action() for _ in range(20)]
        inj.reset()
        assert [inj.next_action() for _ in range(20)] == first
        assert inj.invocations == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(fail_rate=1.2)
        with pytest.raises(ValueError):
            FaultInjector(fail_rate=0.7, stall_rate=0.7)
        with pytest.raises(ValueError):
            FaultInjector(script={0: "explode"})


class TestSoak:
    def test_soak_guarantees_under_shared_load(self):
        report = run_soak(SoakConfig(clients=64, rounds=4, seed=1,
                                     max_pending=64))
        assert report.healthy
        assert report.dropped == 0 and report.errored == 0
        assert report.served == report.admitted == report.submitted
        # Coalescing + the plan store make the solver strictly cheaper than
        # one invocation per request.
        assert 0 < report.solver_invocations < report.submitted
        assert report.by_source.get("coalesced", 0) > 0
        assert report.by_source.get("cached", 0) > 0

    def test_soak_refuses_exactly_the_over_limit_requests(self):
        report = run_soak(SoakConfig(clients=80, rounds=2, seed=0,
                                     max_pending=64))
        assert report.overloaded == 2 * (80 - 64)
        assert report.admitted == 2 * 64
        assert report.submitted == report.admitted + report.overloaded
        assert report.healthy

    def test_soak_is_byte_deterministic_with_faults(self):
        config = SoakConfig(clients=32, rounds=3, seed=7, max_pending=64,
                            deadline_s=1.0, fail_rate=0.2, stall_rate=0.2,
                            stall_s=5.0, capacity=16, bench_capacity=32)
        assert run_soak(config).to_json() == run_soak(config).to_json()

    def test_soak_fallbacks_are_valid_undivided_plans(self):
        config = SoakConfig(clients=16, rounds=2, seed=0, max_pending=64,
                            fail_rate=1.0)  # every solve faults
        report = run_soak(config)
        assert report.healthy
        assert report.by_source == {"fallback": report.served}
        assert report.fallback_reasons == {"solver_error": report.served}

    def test_soak_unknown_network_is_rejected(self):
        with pytest.raises(ValueError):
            run_soak(SoakConfig(network="vgg19"))


class TestServiceValidation:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PlanService(max_pending=0)
        with pytest.raises(ValueError):
            PlanService(workers=0)

    def test_closed_service_refuses_submissions(self):
        svc = PlanService(clock=ManualClock(),
                          solve_fn=lambda r: (fake_config(), 0.1))
        svc.close()
        with pytest.raises(ServiceOverloadedError):
            svc.submit(make_request())

    def test_metrics_summary_shape(self):
        svc = PlanService(clock=ManualClock(),
                          solve_fn=lambda r: (fake_config(), 0.1))
        try:
            svc.request(make_request())
            summary = svc.metrics_summary()
            assert summary["service"]["requests"] == 1
            assert summary["service"]["fresh"] == 1
            assert summary["store"]["size"] == 1
            assert set(summary["bench_cache"]) == {
                "hits", "misses", "evictions",
            }
        finally:
            svc.close()


class TestBenchmarkRefresh:
    """A benchmark refresh invalidates exactly the derived plans and the
    delta solver repairs them without any full network solve."""

    @staticmethod
    def _serve(svc, geometries, limit=64 * MIB):
        requests = [
            PlanRequest(kernel=name, geometry=g, workspace_limit=limit)
            for name, g in geometries.items()
        ]
        return {r.kernel: svc.request(r) for r in requests}

    def test_refresh_invalidates_and_delta_resolves(self):
        geometries = {
            "a": make_geometry(c=3, n=4),
            "b": make_geometry(c=8, n=4),
        }
        svc = PlanService()
        try:
            served = self._serve(svc, geometries)
            target = geometries["a"]
            rows = svc.bench_cache.get_benchmark(svc.gpu_name, target)
            assert rows
            import dataclasses
            mutated = [dataclasses.replace(r, time=r.time * 2.0)
                       for r in rows]
            assert svc.refresh_benchmark(target, mutated) == 1
            assert svc.stats.invalidated_plans == 1
            assert svc.stats.delta_resolves == 1
            assert svc.store.stats.invalidations == 1
            # The untouched kernel's plan survived; the refreshed one was
            # re-solved in place, so the next request is a store hit.
            before = svc.stats.solver_invocations
            reserved = self._serve(svc, geometries)
            assert {r.source for r in reserved.values()} == {"cached"}
            assert svc.stats.solver_invocations == before
            assert reserved["b"].configuration == served["b"].configuration
        finally:
            svc.close()

    def test_identical_rows_are_a_noop(self):
        g = make_geometry(c=3, n=4)
        svc = PlanService()
        try:
            self._serve(svc, {"a": g})
            rows = svc.bench_cache.get_benchmark(svc.gpu_name, g)
            assert svc.refresh_benchmark(g, list(rows)) == 0
            assert svc.stats.invalidated_plans == 0
            assert svc.stats.delta_resolves == 0
        finally:
            svc.close()

    def test_other_gpu_refresh_is_ignored(self):
        g = make_geometry(c=3, n=4)
        svc = PlanService()
        try:
            self._serve(svc, {"a": g})
            rows = svc.bench_cache.get_benchmark(svc.gpu_name, g)
            import dataclasses
            mutated = [dataclasses.replace(r, time=r.time * 2.0)
                       for r in rows]
            # Same shared cache, different GPU name: first put inserts
            # (no listener), second changes rows but targets another GPU.
            svc.bench_cache.put_benchmark("other-gpu", g, list(rows))
            svc.bench_cache.put_benchmark("other-gpu", g, mutated)
            assert svc.stats.invalidated_plans == 0
            assert len(svc.store) == 1
        finally:
            svc.close()
