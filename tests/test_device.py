"""Tests for simulated GPU devices, allocator, and node."""

import pytest

from repro.cudnn.device import (
    DeviceMemory,
    Gpu,
    Node,
    available_gpus,
    gpu_spec,
)
from repro.errors import AllocFailedError, BadParamError
from repro.units import GIB


class TestGpuSpec:
    def test_paper_table1_specs(self):
        # Table I: P100-SXM2 10.6 SP TFlop/s, 16 GiB @ 732 GB/s.
        p100 = gpu_spec("p100-sxm2")
        assert p100.peak_sp_flops == pytest.approx(10.6e12)
        assert p100.mem_bandwidth == pytest.approx(732e9)
        assert p100.mem_bytes == 16 * GIB
        v100 = gpu_spec("v100")
        assert v100.peak_sp_flops == pytest.approx(15.7e12)

    def test_aliases(self):
        assert gpu_spec("p100") is gpu_spec("P100-SXM2")

    def test_unknown_gpu(self):
        with pytest.raises(BadParamError):
            gpu_spec("a100")

    def test_available(self):
        assert available_gpus() == ["k80", "p100-sxm2", "v100-sxm2"]


class TestDeviceMemory:
    def test_alloc_free_cycle(self):
        mem = DeviceMemory(1000)
        a = mem.alloc(400, tag="data")
        assert mem.in_use == 400
        b = mem.alloc(600, tag="workspace")
        assert mem.in_use == 1000
        assert mem.peak == 1000
        mem.free(a)
        assert mem.in_use == 600
        assert mem.peak == 1000  # peak is a high-water mark
        mem.free(b)
        assert mem.in_use == 0

    def test_oom(self):
        mem = DeviceMemory(100)
        mem.alloc(60)
        with pytest.raises(AllocFailedError):
            mem.alloc(41)
        mem.alloc(40)  # exactly fits

    def test_zero_byte_allocation_is_legal(self):
        mem = DeviceMemory(10)
        ident = mem.alloc(0, tag="workspace")
        assert mem.in_use == 0
        mem.free(ident)

    def test_double_free_detected(self):
        mem = DeviceMemory(10)
        ident = mem.alloc(5)
        mem.free(ident)
        with pytest.raises(BadParamError):
            mem.free(ident)

    def test_negative_alloc_rejected(self):
        with pytest.raises(BadParamError):
            DeviceMemory(10).alloc(-1)

    def test_live_by_tag(self):
        mem = DeviceMemory(1000)
        mem.alloc(100, tag="param")
        mem.alloc(200, tag="param")
        mem.alloc(50, tag="data")
        assert mem.live_by_tag() == {"param": 300, "data": 50}

    def test_capacity_validation(self):
        with pytest.raises(BadParamError):
            DeviceMemory(0)


class TestGpu:
    def test_clock_accumulates(self):
        gpu = Gpu.create("p100-sxm2")
        gpu.run_kernel(1e-3)
        gpu.run_kernel(2e-3)
        assert gpu.clock == pytest.approx(3e-3)
        assert gpu.kernels_launched == 2
        gpu.reset_clock()
        assert gpu.clock == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(BadParamError):
            Gpu.create("k80").run_kernel(-1.0)

    def test_memory_capacity_from_spec(self):
        gpu = Gpu.create("k80")
        assert gpu.memory.capacity == gpu.spec.mem_bytes


class TestNode:
    def test_homogeneous_gpus(self):
        node = Node("p100-sxm2", num_gpus=4)
        assert node.num_gpus == 4
        assert all(g.spec.name == "p100-sxm2" for g in node.gpus)
        # Independent clocks and allocators.
        node.gpus[0].run_kernel(1.0)
        assert node.gpus[1].clock == 0.0

    def test_needs_one_gpu(self):
        with pytest.raises(BadParamError):
            Node("k80", num_gpus=0)
