"""Tests for grouped convolution (``cudnnSetConvolutionGroupCount``)."""

import dataclasses

import numpy as np
import pytest

from repro.core import BatchSizePolicy, Options, UcudnnHandle
from repro.cudnn import kernels
from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.enums import BwdDataAlgo, BwdFilterAlgo, ConvType, FwdAlgo
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.cudnn.kernels import direct
from repro.cudnn.perfmodel import PerfModel
from repro.cudnn.device import P100_SXM2
from repro.cudnn.workspace import is_supported, workspace_size
from repro.errors import BadParamError
from repro.frameworks.model_zoo import build_alexnet_grouped
from repro.units import MIB
from tests.conftest import assert_close


def grouped_geometry(groups=2, n=3, c=8, k=6, hw=9, r=3, pad=1):
    return ConvGeometry(ConvType.FORWARD, n, c, hw, hw, k, r, r, pad, pad,
                        groups=groups)


def reference_grouped_forward(g, x, w):
    """Group loop over the direct reference kernel."""
    sub = g.group_geometry()
    cg, kg = g.c // g.groups, g.k // g.groups
    outs = [
        direct.forward(sub, x[:, gi * cg:(gi + 1) * cg], w[gi * kg:(gi + 1) * kg])
        for gi in range(g.groups)
    ]
    return np.concatenate(outs, axis=1)


class TestGeometry:
    def test_filter_carries_per_group_channels(self):
        g = grouped_geometry()
        assert g.w_desc.shape == (6, 4, 3, 3)
        assert g.y_desc.c == 6

    def test_macs_scale_down_by_groups(self):
        g1 = grouped_geometry(groups=1)
        g2 = grouped_geometry(groups=2)
        assert g2.macs == g1.macs // 2

    def test_indivisible_channels_rejected(self):
        with pytest.raises(BadParamError):
            grouped_geometry(groups=3, c=8, k=6)

    def test_group_geometry(self):
        sub = grouped_geometry(groups=2).group_geometry()
        assert (sub.c, sub.k, sub.groups) == (4, 3, 1)
        assert grouped_geometry(groups=1).group_geometry() is not None

    def test_cache_key_distinguishes_groups(self):
        assert grouped_geometry(groups=1).cache_key() != \
            grouped_geometry(groups=2).cache_key()

    def test_surgery_preserves_groups(self):
        g = grouped_geometry(groups=2)
        assert g.with_batch(1).groups == 2
        assert g.with_type(ConvType.BACKWARD_DATA).groups == 2


class TestModels:
    def test_workspace_is_one_groups_worth(self):
        g2 = grouped_geometry(groups=2, n=16, c=32, k=32, hw=14)
        assert workspace_size(g2, FwdAlgo.FFT) == \
            workspace_size(g2.group_geometry(), FwdAlgo.FFT)
        assert workspace_size(g2, FwdAlgo.FFT) < \
            workspace_size(dataclasses.replace(g2, groups=1), FwdAlgo.FFT)

    def test_time_composes_across_groups(self):
        pm = PerfModel(P100_SXM2)
        g2 = grouped_geometry(groups=2, n=16, c=32, k=32, hw=14)
        assert pm.time(g2, FwdAlgo.WINOGRAD) == pytest.approx(
            2 * pm.time(g2.group_geometry(), FwdAlgo.WINOGRAD)
        )

    def test_support_follows_subproblem(self):
        g = grouped_geometry(groups=2)
        assert is_supported(g, FwdAlgo.WINOGRAD)
        assert not is_supported(dataclasses.replace(g, stride_h=2, stride_w=2),
                                FwdAlgo.WINOGRAD)


class TestNumerics:
    @pytest.mark.parametrize("algo", [FwdAlgo.IMPLICIT_GEMM, FwdAlgo.GEMM,
                                      FwdAlgo.FFT, FwdAlgo.WINOGRAD])
    def test_forward_matches_group_loop(self, rng, algo):
        g = grouped_geometry(groups=2)
        x = rng.standard_normal(g.x_desc.shape).astype(np.float32)
        w = rng.standard_normal(g.w_desc.shape).astype(np.float32)
        assert_close(kernels.forward(g, x, w, algo),
                     reference_grouped_forward(g, x, w), context=algo.name)

    def test_backward_adjoints(self, rng):
        g = grouped_geometry(groups=4, c=8, k=8)
        x = rng.standard_normal(g.x_desc.shape).astype(np.float32)
        w = rng.standard_normal(g.w_desc.shape).astype(np.float32)
        dy = rng.standard_normal(g.y_desc.shape).astype(np.float32)
        y = kernels.forward(g, x, w, FwdAlgo.IMPLICIT_GEMM)
        dx = kernels.backward_data(g.with_type(ConvType.BACKWARD_DATA), dy, w,
                                   BwdDataAlgo.ALGO_0)
        dw = kernels.backward_filter(g.with_type(ConvType.BACKWARD_FILTER), x,
                                     dy, BwdFilterAlgo.ALGO_1)
        lhs = float(np.vdot(y.astype(np.float64), dy.astype(np.float64)))
        assert abs(lhs - float(np.vdot(x.astype(np.float64), dx.astype(np.float64)))) \
            < 1e-3 * max(abs(lhs), 1.0)
        assert abs(lhs - float(np.vdot(w.astype(np.float64), dw.astype(np.float64)))) \
            < 1e-3 * max(abs(lhs), 1.0)

    def test_groups_equal_channels_is_depthwise(self, rng):
        """groups == c == k degenerates to depthwise convolution."""
        g = grouped_geometry(groups=4, c=4, k=4)
        x = rng.standard_normal(g.x_desc.shape).astype(np.float32)
        w = rng.standard_normal(g.w_desc.shape).astype(np.float32)  # (4,1,3,3)
        y = kernels.forward(g, x, w, FwdAlgo.IMPLICIT_GEMM)
        for ch in range(4):
            sub = dataclasses.replace(g, c=1, k=1, groups=1)
            expected = direct.forward(sub, x[:, ch:ch + 1], w[ch:ch + 1])
            assert_close(y[:, ch:ch + 1], expected)


class TestGroupedAlexNet:
    def test_bvlc_channel_plan(self):
        net = build_alexnet_grouped(batch=4).setup(
            CudnnHandle(mode=ExecMode.TIMING), workspace_limit=8 * MIB
        )
        conv2 = net.layer("conv2")
        assert conv2.w_desc.shape == (256, 48, 5, 5)  # 96/2 input channels
        assert net.blobs["c2"].shape == (4, 256, 27, 27)
        conv4 = net.layer("conv4")
        assert conv4.w_desc.shape == (384, 192, 3, 3)
        # ~61M params, like the original AlexNet.
        params = sum(p.count for p in net.params())
        assert 55e6 < params < 65e6

    def test_trains_numerically(self, rng):
        net = build_alexnet_grouped(batch=2, num_classes=5).setup(
            CudnnHandle(), workspace_limit=8 * MIB, rng=rng
        )
        x = rng.standard_normal((2, 3, 227, 227)).astype(np.float32)
        loss = net.forward({"data": x}, np.array([0, 4]))
        assert np.isfinite(loss)
        net.backward()
        assert float(np.abs(net.layer("conv2").params[0].grad).sum()) > 0

    def test_micro_batching_grouped_conv2(self):
        """WR still divides the grouped conv2 under a tight limit, and the
        division is over the batch (groups are orthogonal to it)."""
        handle = UcudnnHandle(
            mode=ExecMode.TIMING,
            options=Options(policy=BatchSizePolicy.POWER_OF_TWO,
                            workspace_limit=16 * MIB),
        )
        net = build_alexnet_grouped(batch=256).setup(
            handle, workspace_limit=16 * MIB
        )
        net.forward()
        net.backward()
        g = net.layer("conv2").geometry(ConvType.FORWARD)
        config = handle.configurations()[g]
        assert config.batch == 256
        assert config.workspace <= 16 * MIB
