"""Tests for non-square kernels/strides/pads through the whole stack."""

import numpy as np
import pytest

from repro.core import BatchSizePolicy, Options, UcudnnHandle
from repro.cudnn import kernels
from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.enums import ConvType, FwdAlgo
from repro.cudnn.handle import CudnnHandle
from repro.cudnn.kernels import direct
from repro.cudnn.workspace import is_supported
from repro.frameworks.layers import Convolution, InnerProduct, SoftmaxWithLoss
from repro.frameworks.layers.base import Context
from repro.frameworks.net import Net
from repro.units import MIB
from tests.conftest import assert_close


@pytest.fixture
def rect_geometry():
    """A 1x7 'asymmetric' kernel (inception-v3 style factorized conv)."""
    return ConvGeometry(ConvType.FORWARD, 4, 6, 12, 14, 8, 1, 7,
                        pad_h=0, pad_w=3)


class TestRectangularKernels:
    def test_output_dims(self, rect_geometry):
        y = rect_geometry.y_desc
        assert (y.h, y.w) == (12, 14)

    @pytest.mark.parametrize("algo", [FwdAlgo.IMPLICIT_GEMM, FwdAlgo.GEMM,
                                      FwdAlgo.FFT, FwdAlgo.FFT_TILING])
    def test_families_agree(self, rng, rect_geometry, algo):
        g = rect_geometry
        if not is_supported(g, algo):
            pytest.skip(f"{algo.name} unsupported here")
        x = rng.standard_normal(g.x_desc.shape).astype(np.float32)
        w = rng.standard_normal(g.w_desc.shape).astype(np.float32)
        assert_close(kernels.forward(g, x, w, algo),
                     direct.forward(g, x, w), context=algo.name)

    def test_winograd_rejects_non_square(self, rect_geometry):
        assert not is_supported(rect_geometry, FwdAlgo.WINOGRAD)

    def test_asymmetric_stride(self, rng):
        g = ConvGeometry(ConvType.FORWARD, 2, 3, 16, 16, 4, 3, 3,
                         pad_h=1, pad_w=1, stride_h=2, stride_w=1)
        assert (g.y_desc.h, g.y_desc.w) == (8, 16)
        x = rng.standard_normal(g.x_desc.shape).astype(np.float32)
        w = rng.standard_normal(g.w_desc.shape).astype(np.float32)
        assert_close(kernels.forward(g, x, w, FwdAlgo.GEMM),
                     direct.forward(g, x, w))


class TestConvolutionLayerPairs:
    def test_tuple_parameters(self):
        ctx = Context(CudnnHandle(), workspace_limit=1 * MIB,
                      rng=np.random.default_rng(0))
        conv = Convolution("c", 8, kernel_size=(1, 7), pad=(0, 3))
        out = conv.setup(ctx, [(2, 4, 10, 12)])
        assert out[0] == (2, 8, 10, 12)
        assert conv.w_desc.shape == (8, 4, 1, 7)

    def test_int_parameters_unchanged(self):
        ctx = Context(CudnnHandle(), workspace_limit=1 * MIB,
                      rng=np.random.default_rng(0))
        conv = Convolution("c", 8, 3, pad=1)
        assert conv.setup(ctx, [(2, 4, 10, 10)])[0] == (2, 8, 10, 10)

    def test_bad_tuple_rejected(self):
        with pytest.raises(ValueError):
            Convolution("c", 8, kernel_size=(1, 2, 3))

    def test_factorized_conv_trains(self, rng):
        """Inception-v3-style 1x7 then 7x1 factorization, end to end."""
        net = Net("factorized", {"data": (2, 3, 12, 12)})
        net.add(Convolution("c1", 6, (1, 7), pad=(0, 3)), "data", "a")
        net.add(Convolution("c2", 6, (7, 1), pad=(3, 0)), "a", "b")
        net.add(InnerProduct("fc", 4), "b", "logits")
        net.add(SoftmaxWithLoss("loss"), "logits", "loss")
        net.setup(CudnnHandle(), workspace_limit=1 * MIB,
                  rng=np.random.default_rng(1))
        x = rng.standard_normal((2, 3, 12, 12)).astype(np.float32)
        loss = net.forward({"data": x}, np.array([0, 3]))
        assert np.isfinite(loss)
        net.backward()

    def test_ucudnn_handles_rectangular(self, rng):
        """WR through the interposition layer on a 1x7 kernel."""
        handle = UcudnnHandle(options=Options(
            policy=BatchSizePolicy.POWER_OF_TWO, workspace_limit=1 * MIB))
        net = Net("rect", {"data": (8, 4, 10, 12)})
        net.add(Convolution("c", 8, (1, 7), pad=(0, 3)), "data", "y")
        net.add(InnerProduct("fc", 2), "y", "logits")
        net.add(SoftmaxWithLoss("loss"), "logits", "loss")
        net.setup(handle, workspace_limit=1 * MIB, rng=np.random.default_rng(2))
        x = rng.standard_normal((8, 4, 10, 12)).astype(np.float32)
        loss = net.forward({"data": x}, np.zeros(8, dtype=np.int64))
        net.backward()
        assert np.isfinite(loss)
        for g, config in handle.configurations().items():
            assert config.workspace <= 1 * MIB
