"""Tests for the WR dynamic program (paper section III-B).

The key theorem checked here: the DP finds the true optimum over all
compositions of the mini-batch from measured sizes -- verified against an
exhaustive partition enumeration on randomized synthetic cost tables.
"""

import math
from functools import lru_cache

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policies import BatchSizePolicy
from repro.core.wr import optimize_from_benchmark, optimize_kernel
from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.enums import ConvType
from repro.errors import OptimizationError
from repro.units import MIB
from tests.conftest import make_geometry
from tests.test_benchmarker import synth_benchmark

CONV2 = ConvGeometry(ConvType.FORWARD, 256, 64, 27, 27, 192, 5, 5, 2, 2)


def brute_force_optimum(table: dict[int, list[tuple[float, int]]], n: int,
                        limit: int) -> float:
    """Minimum total time over all partitions of ``n`` (exponential)."""
    best_at = {}
    for size, entries in table.items():
        feasible = [t for t, ws in entries if ws <= limit]
        if feasible:
            best_at[size] = min(feasible)

    @lru_cache(maxsize=None)
    def solve(remaining: int) -> float:
        if remaining == 0:
            return 0.0
        best = math.inf
        for size, t in best_at.items():
            if size <= remaining:
                best = min(best, t + solve(remaining - size))
        return best

    return solve(n)


class TestDPOptimality:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1, 14),
        data=st.data(),
    )
    def test_matches_brute_force(self, n, data):
        sizes = data.draw(st.lists(st.integers(1, n), min_size=1, max_size=4,
                                   unique=True))
        if 1 not in sizes:
            sizes.append(1)  # keep the instance feasible
        table = {
            s: [(data.draw(st.floats(0.01, 10.0)), data.draw(st.integers(0, 100)))
                for _ in range(data.draw(st.integers(1, 3)))]
            for s in sizes
        }
        limit = data.draw(st.integers(0, 100))
        # Ensure feasibility: at least one zero-workspace entry at size 1.
        table[1].append((5.0, 0))
        bench = synth_benchmark(n, table)
        config = optimize_from_benchmark(bench, limit)
        expected = brute_force_optimum(table, n, limit)
        assert config.time == pytest.approx(expected)
        assert config.batch == n
        assert config.workspace <= limit

    def test_prefers_division_when_beneficial(self):
        # Dividing 4 = 2 + 2 at 1.0 each beats undivided 3.0.
        bench = synth_benchmark(4, {4: [(3.0, 0)], 2: [(1.0, 0)]})
        config = optimize_from_benchmark(bench, 0)
        assert config.micro_batch_sizes() == (2, 2)
        assert config.time == pytest.approx(2.0)

    def test_keeps_batch_whole_when_best(self):
        bench = synth_benchmark(4, {4: [(1.0, 0)], 2: [(0.9, 0)]})
        config = optimize_from_benchmark(bench, 0)
        assert config.is_undivided

    def test_mixed_sizes(self):
        # 6 = 4 + 2 with t(4)=1, t(2)=0.7 beats 3x2 (2.1) and its own 1.9... 1.7.
        bench = synth_benchmark(6, {6: [(5.0, 0)], 4: [(1.0, 0)], 2: [(0.7, 0)]})
        config = optimize_from_benchmark(bench, 0)
        assert sorted(config.micro_batch_sizes()) == [2, 4]

    def test_workspace_constraint_changes_choice(self):
        bench = synth_benchmark(4, {4: [(3.0, 0), (1.0, 100)], 2: [(1.2, 10)]})
        assert optimize_from_benchmark(bench, 100).time == pytest.approx(1.0)
        assert optimize_from_benchmark(bench, 10).time == pytest.approx(2.4)
        assert optimize_from_benchmark(bench, 0).time == pytest.approx(3.0)

    def test_infeasible_when_nothing_fits(self):
        bench = synth_benchmark(4, {4: [(1.0, 100)]})
        with pytest.raises(OptimizationError):
            optimize_from_benchmark(bench, 50)

    def test_uncomposable_batch(self):
        bench = synth_benchmark(5, {2: [(1.0, 0)]})  # 5 not a sum of 2s
        with pytest.raises(OptimizationError):
            optimize_from_benchmark(bench, 0)


class TestOnPerfModel:
    def test_conv2_paper_shape(self, timing_handle):
        """Fig. 9: at 64 MiB, WR divides conv2 and engages the FFT family
        with a large speedup; undivided stays on the GEMM family."""
        res = optimize_kernel(timing_handle, CONV2, 64 * MIB,
                              BatchSizePolicy.POWER_OF_TWO)
        assert not res.configuration.is_undivided
        assert res.speedup_vs_undivided > 1.5
        assert res.configuration.workspace <= 64 * MIB
        names = {m.algo.name for m in res.configuration}
        assert names <= {"FFT", "FFT_TILING"}

    def test_tight_limit_no_gain(self, timing_handle):
        """Fig. 10's 8 MiB column: nothing useful fits, mu-cuDNN == cuDNN."""
        res = optimize_kernel(timing_handle, CONV2, 1 * MIB,
                              BatchSizePolicy.POWER_OF_TWO)
        assert res.speedup_vs_undivided == pytest.approx(1.0, abs=0.05)

    def test_generous_limit_no_division_needed(self, timing_handle):
        """Fig. 10's 512 MiB column: everything fits undivided."""
        res = optimize_kernel(timing_handle, CONV2, 512 * MIB,
                              BatchSizePolicy.POWER_OF_TWO)
        assert res.configuration.time <= res.undivided_time
        assert res.speedup_vs_undivided == pytest.approx(1.0, abs=0.02)

    def test_all_at_least_as_good_as_power_of_two(self, timing_handle):
        all_res = optimize_kernel(timing_handle, CONV2, 64 * MIB,
                                  BatchSizePolicy.ALL)
        p2_res = optimize_kernel(timing_handle, CONV2, 64 * MIB,
                                 BatchSizePolicy.POWER_OF_TWO)
        assert all_res.configuration.time <= p2_res.configuration.time + 1e-12

    def test_undivided_policy_equals_plain_cudnn(self, timing_handle):
        res = optimize_kernel(timing_handle, CONV2, 64 * MIB,
                              BatchSizePolicy.UNDIVIDED)
        assert res.configuration.is_undivided
        assert res.speedup_vs_undivided == pytest.approx(1.0)

    def test_never_slower_than_undivided(self, timing_handle):
        """mu-cuDNN's guarantee: the DP can always fall back to undivided."""
        for limit_mib in (1, 8, 64, 512):
            res = optimize_kernel(timing_handle, CONV2, limit_mib * MIB,
                                  BatchSizePolicy.POWER_OF_TWO)
            assert res.configuration.time <= res.undivided_time + 1e-12

    def test_result_covers_batch_exactly(self, timing_handle):
        g = make_geometry(n=24, c=8, k=16, h=14, w=14)  # non-power-of-two
        res = optimize_kernel(timing_handle, g, 4 * MIB,
                              BatchSizePolicy.POWER_OF_TWO)
        assert res.configuration.batch == 24
