"""Tests for the parallel micro-configuration evaluation (section III-D)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.benchmarker import benchmark_kernel
from repro.core.cache import BenchmarkCache
from repro.core.policies import BatchSizePolicy
from repro.cudnn.device import Node
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.parallel import (
    benchmark_kernels_parallel,
    schedule_lpt,
    schedule_round_robin,
)
from tests.conftest import make_geometry


class TestSchedulers:
    @given(durations=st.lists(st.floats(0.001, 10.0), min_size=1, max_size=40),
           workers=st.integers(1, 8))
    @settings(max_examples=50)
    def test_lpt_bounds(self, durations, workers):
        sched = schedule_lpt(durations, workers)
        total = sum(durations)
        longest = max(durations)
        # Every unit assigned exactly once.
        assigned = sorted(u for worker in sched.assignments for u in worker)
        assert assigned == list(range(len(durations)))
        # Makespan sanity: between the trivial lower bounds and LPT's 4/3 bound.
        lower = max(total / workers, longest)
        assert sched.makespan >= lower - 1e-9
        assert sched.makespan <= (4 / 3) * lower + longest  # generous envelope
        # Loads recompute correctly.
        for w, units in enumerate(sched.assignments):
            assert sched.loads[w] == pytest.approx(
                sum(durations[u] for u in units)
            )

    def test_lpt_beats_round_robin_on_skewed_loads(self):
        """The benchmark-unit distribution is skewed (large micro-batches
        cost far more); LPT handles that, naive striping does not."""
        durations = [8.0, 7.0, 1.0, 1.0, 1.0, 1.0]
        lpt = schedule_lpt(durations, 2)
        rr = schedule_round_robin(durations, 2)
        assert lpt.makespan == pytest.approx(10.0)
        assert rr.makespan == pytest.approx(10.0)
        durations = [8.0, 1.0, 8.0, 1.0]  # striping lands both 8s on worker 0
        assert schedule_lpt(durations, 2).makespan == pytest.approx(9.0)
        assert schedule_round_robin(durations, 2).makespan == pytest.approx(16.0)

    def test_single_worker_is_serial(self):
        sched = schedule_lpt([1.0, 2.0, 3.0], 1)
        assert sched.makespan == pytest.approx(6.0)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            schedule_lpt([1.0], 0)


class TestParallelEvaluator:
    def geometries(self):
        return {
            "a": make_geometry(n=16, c=8, k=8, h=13, w=13),
            "b": make_geometry(n=16, c=16, k=16, h=9, w=9),
            "c": make_geometry(n=16, c=4, k=32, h=27, w=27, r=5, s=5, pad=2),
        }

    def test_results_identical_to_serial(self):
        """Homogeneous GPUs: parallel evaluation changes only the cost."""
        geoms = self.geometries()
        node = Node("p100-sxm2", num_gpus=4)
        par = benchmark_kernels_parallel(node, geoms, BatchSizePolicy.POWER_OF_TWO)
        serial_handle = CudnnHandle(mode=ExecMode.TIMING)
        for key, g in geoms.items():
            serial = benchmark_kernel(serial_handle, g, BatchSizePolicy.POWER_OF_TWO)
            assert par.benchmarks[key].sizes == serial.sizes
            for size in serial.sizes:
                assert [r.time for r in par.benchmarks[key].results[size]] == \
                    [r.time for r in serial.results[size]]

    def test_speedup_with_four_gpus(self):
        """Parallel makespan approaches serial / num_gpus for many units."""
        geoms = self.geometries()
        node1 = Node("p100-sxm2", num_gpus=1)
        node4 = Node("p100-sxm2", num_gpus=4)
        serial = benchmark_kernels_parallel(node1, geoms, BatchSizePolicy.ALL)
        par = benchmark_kernels_parallel(node4, geoms, BatchSizePolicy.ALL)
        assert serial.parallel_time == pytest.approx(serial.serial_time)
        assert par.serial_time == pytest.approx(serial.serial_time)
        assert 2.0 < par.speedup <= 4.0 + 1e-9

    def test_gpu_clocks_charged(self):
        node = Node("p100-sxm2", num_gpus=2)
        benchmark_kernels_parallel(node, self.geometries(),
                                   BatchSizePolicy.POWER_OF_TWO)
        assert all(g.clock > 0 for g in node.gpus)

    def test_cache_hits_not_scheduled(self):
        geoms = self.geometries()
        cache = BenchmarkCache()
        node = Node("p100-sxm2", num_gpus=2)
        first = benchmark_kernels_parallel(node, geoms,
                                           BatchSizePolicy.POWER_OF_TWO, cache=cache)
        assert first.parallel_time > 0
        second = benchmark_kernels_parallel(Node("p100-sxm2", 2), geoms,
                                            BatchSizePolicy.POWER_OF_TWO, cache=cache)
        assert second.parallel_time == 0.0
        assert second.benchmarks.keys() == first.benchmarks.keys()
        for key in geoms:
            assert second.benchmarks[key].sizes == first.benchmarks[key].sizes
