"""Tests for the parallel micro-configuration evaluation (section III-D)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.benchmarker import benchmark_kernel
from repro.core.cache import BenchmarkCache
from repro.core.policies import BatchSizePolicy
from repro.cudnn.device import Node
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.parallel import (
    benchmark_kernels_parallel,
    schedule_lpt,
    schedule_round_robin,
)
from tests.conftest import make_geometry


class TestSchedulers:
    @given(durations=st.lists(st.floats(0.001, 10.0), min_size=1, max_size=40),
           workers=st.integers(1, 8))
    @settings(max_examples=50)
    def test_lpt_bounds(self, durations, workers):
        sched = schedule_lpt(durations, workers)
        total = sum(durations)
        longest = max(durations)
        # Every unit assigned exactly once.
        assigned = sorted(u for worker in sched.assignments for u in worker)
        assert assigned == list(range(len(durations)))
        # Makespan sanity: between the trivial lower bounds and LPT's 4/3 bound.
        lower = max(total / workers, longest)
        assert sched.makespan >= lower - 1e-9
        assert sched.makespan <= (4 / 3) * lower + longest  # generous envelope
        # Loads recompute correctly.
        for w, units in enumerate(sched.assignments):
            assert sched.loads[w] == pytest.approx(
                sum(durations[u] for u in units)
            )

    def test_lpt_beats_round_robin_on_skewed_loads(self):
        """The benchmark-unit distribution is skewed (large micro-batches
        cost far more); LPT handles that, naive striping does not."""
        durations = [8.0, 7.0, 1.0, 1.0, 1.0, 1.0]
        lpt = schedule_lpt(durations, 2)
        rr = schedule_round_robin(durations, 2)
        assert lpt.makespan == pytest.approx(10.0)
        assert rr.makespan == pytest.approx(10.0)
        durations = [8.0, 1.0, 8.0, 1.0]  # striping lands both 8s on worker 0
        assert schedule_lpt(durations, 2).makespan == pytest.approx(9.0)
        assert schedule_round_robin(durations, 2).makespan == pytest.approx(16.0)

    def test_single_worker_is_serial(self):
        sched = schedule_lpt([1.0, 2.0, 3.0], 1)
        assert sched.makespan == pytest.approx(6.0)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            schedule_lpt([1.0], 0)

    def test_empty_task_list_is_a_valid_schedule(self):
        sched = schedule_lpt([], 3)
        assert sched.assignments == [[], [], []]
        assert sched.makespan == 0.0
        assert schedule_lpt([], 0).assignments == []
        assert schedule_round_robin([], 0).makespan == 0.0

    @given(durations=st.lists(st.floats(0.001, 10.0), min_size=1, max_size=20),
           workers=st.integers(1, 6), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=50)
    def test_determinism_and_permutation_invariance(self, durations, workers,
                                                    seed):
        """Equal inputs give equal schedules, and permuting the input
        permutes the assignment consistently: worker *loads* (the quantity
        placement is about) are a function of the duration multiset alone."""
        import random

        assert schedule_lpt(durations, workers) == \
            schedule_lpt(durations, workers)
        shuffled = list(durations)
        random.Random(seed).shuffle(shuffled)
        a = schedule_lpt(durations, workers)
        b = schedule_lpt(shuffled, workers)
        assert sorted(a.loads) == pytest.approx(sorted(b.loads))
        assert a.makespan == pytest.approx(b.makespan)

    def test_ties_break_by_task_and_worker_index(self):
        """Four identical tasks on two idle workers: ascending task ids
        alternate over ascending worker ids -- heap insertion accidents
        never decide placement."""
        sched = schedule_lpt([2.0, 2.0, 2.0, 2.0], 2)
        assert sched.assignments == [[0, 2], [1, 3]]

    def test_golden_skewed_schedule(self):
        """The documented LPT trace for one skewed load (cluster-steal
        shape: two expensive cold solves among cheap warm ones)."""
        sched = schedule_lpt([8.0, 1.0, 8.0, 1.0, 1.0], 3)
        assert sched.assignments == [[0], [2], [1, 3, 4]]
        assert sched.loads == pytest.approx([8.0, 8.0, 3.0])
        assert sched.makespan == pytest.approx(8.0)

    def test_initial_loads_seed_the_workers(self):
        """Pre-committed load steers placement (the cluster scheduler seeds
        thieves with their retained groups) and is included in ``loads``."""
        sched = schedule_lpt([4.0, 1.0], 2, initial_loads=[5.0, 0.0])
        assert sched.assignments == [[], [0, 1]]
        assert sched.loads == pytest.approx([5.0, 5.0])

    def test_initial_loads_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="initial_loads"):
            schedule_lpt([1.0], 2, initial_loads=[0.0])


class TestParallelEvaluator:
    def geometries(self):
        return {
            "a": make_geometry(n=16, c=8, k=8, h=13, w=13),
            "b": make_geometry(n=16, c=16, k=16, h=9, w=9),
            "c": make_geometry(n=16, c=4, k=32, h=27, w=27, r=5, s=5, pad=2),
        }

    def test_results_identical_to_serial(self):
        """Homogeneous GPUs: parallel evaluation changes only the cost."""
        geoms = self.geometries()
        node = Node("p100-sxm2", num_gpus=4)
        par = benchmark_kernels_parallel(node, geoms, BatchSizePolicy.POWER_OF_TWO)
        serial_handle = CudnnHandle(mode=ExecMode.TIMING)
        for key, g in geoms.items():
            serial = benchmark_kernel(serial_handle, g, BatchSizePolicy.POWER_OF_TWO)
            assert par.benchmarks[key].sizes == serial.sizes
            for size in serial.sizes:
                assert [r.time for r in par.benchmarks[key].results[size]] == \
                    [r.time for r in serial.results[size]]

    def test_speedup_with_four_gpus(self):
        """Parallel makespan approaches serial / num_gpus for many units."""
        geoms = self.geometries()
        node1 = Node("p100-sxm2", num_gpus=1)
        node4 = Node("p100-sxm2", num_gpus=4)
        serial = benchmark_kernels_parallel(node1, geoms, BatchSizePolicy.ALL)
        par = benchmark_kernels_parallel(node4, geoms, BatchSizePolicy.ALL)
        assert serial.parallel_time == pytest.approx(serial.serial_time)
        assert par.serial_time == pytest.approx(serial.serial_time)
        assert 2.0 < par.speedup <= 4.0 + 1e-9

    def test_gpu_clocks_charged(self):
        node = Node("p100-sxm2", num_gpus=2)
        benchmark_kernels_parallel(node, self.geometries(),
                                   BatchSizePolicy.POWER_OF_TWO)
        assert all(g.clock > 0 for g in node.gpus)

    def test_cache_hits_not_scheduled(self):
        geoms = self.geometries()
        cache = BenchmarkCache()
        node = Node("p100-sxm2", num_gpus=2)
        first = benchmark_kernels_parallel(node, geoms,
                                           BatchSizePolicy.POWER_OF_TWO, cache=cache)
        assert first.parallel_time > 0
        second = benchmark_kernels_parallel(Node("p100-sxm2", 2), geoms,
                                            BatchSizePolicy.POWER_OF_TWO, cache=cache)
        assert second.parallel_time == 0.0
        assert second.benchmarks.keys() == first.benchmarks.keys()
        for key in geoms:
            assert second.benchmarks[key].sizes == first.benchmarks[key].sizes
