"""Tests for the sharded cluster service (``src/repro/cluster``).

Covers the ISSUE's acceptance criteria directly: placement is stable and
snapshot-able (the shard-map document round-trips and rejects hand-edits),
plans are byte-identical to a single-shard service's for the same key,
work stealing fires exactly at the watermark and respects thief headroom,
a mixed-device soak is byte-deterministic with zero drops, per-shard
counters appear as labeled Prometheus series, and a merged cluster
snapshot warm-starts a fresh cluster with zero solver invocations.
"""

import pytest

import repro.telemetry as telemetry
from repro.cluster import ClusterService, ClusterTicket, ShardMap, stable_shard_hash
from repro.cluster.shardmap import SHARD_MAP_KIND, SHARD_MAP_SCHEMA_VERSION
from repro.core.config import Configuration, MicroConfig
from repro.cudnn.enums import FwdAlgo
from repro.errors import ClusterError, ServiceOverloadedError
from repro.persistence import (
    load_snapshot,
    save_snapshot,
    snapshot_service,
    validate_snapshot,
    warm_start,
)
from repro.persistence.snapshot import plans_of
from repro.service import PlanRequest, PlanService, SoakConfig, run_soak
from repro.telemetry.clock import ManualClock
from repro.telemetry.exporters import prometheus_text
from repro.units import MIB
from tests.conftest import make_geometry

DEVICES = ("p100-sxm2", "v100-sxm2")


def fake_config(micro: int = 4) -> Configuration:
    return Configuration((MicroConfig(micro, FwdAlgo.IMPLICIT_GEMM, 0.001, 0),))


def fake_solve(request):
    return fake_config(), 0.25


def make_request(kernel: str = "conv", c: int = 3, **kw) -> PlanRequest:
    return PlanRequest(kernel=kernel, geometry=make_geometry(c=c),
                       workspace_limit=64 * MIB, **kw)


def make_cluster(devices=("p100-sxm2",), shards=2, **kw):
    kw.setdefault("clock_factory", ManualClock)
    kw.setdefault("solve_fn", fake_solve)
    return ClusterService(devices, shards, **kw)


def serve_wave(cluster, requests):
    wave = cluster.wave()
    for request in requests:
        wave.add(request)
    return wave.serve()


class TestShardMap:
    def test_round_robin_striping(self):
        m = ShardMap(DEVICES, 4)
        assert m.shard_devices == {
            "shard-0": "p100-sxm2", "shard-1": "v100-sxm2",
            "shard-2": "p100-sxm2", "shard-3": "v100-sxm2",
        }
        assert m.device_shards == {
            "p100-sxm2": ["shard-0", "shard-2"],
            "v100-sxm2": ["shard-1", "shard-3"],
        }
        assert m.primary_device == "p100-sxm2"

    def test_stable_hash_is_process_independent(self):
        # sha256("p100-sxm2|conv1")[:8] as a big-endian integer -- a golden
        # value: placement must survive PYTHONHASHSEED and interpreter
        # upgrades, or warm-started shards would see foreign keys.
        assert stable_shard_hash("p100-sxm2", "conv1") == 0x02635CA072CE9DCA

    def test_placement_is_device_confined(self):
        m = ShardMap(DEVICES, 4)
        for kernel in ("conv1", "conv2", "fc6", "anything at all"):
            for device in DEVICES:
                home = m.shard_for(device, kernel)
                assert home in m.device_shards[device]

    def test_two_maps_agree(self):
        a, b = ShardMap(DEVICES, 4), ShardMap(DEVICES, 4)
        for kernel in ("conv1", "conv2", "conv3"):
            assert a.shard_for("v100-sxm2", kernel) == \
                b.shard_for("v100-sxm2", kernel)

    def test_unknown_device_and_shard_are_typed(self):
        m = ShardMap(DEVICES, 2)
        with pytest.raises(ClusterError, match="no shard serves"):
            m.shard_for("k80", "conv1")
        with pytest.raises(ClusterError, match="unknown shard"):
            m.device_of("shard-9")

    def test_too_few_shards_rejected(self):
        with pytest.raises(ValueError, match="cannot cover"):
            ShardMap(DEVICES, 1)
        with pytest.raises(ValueError, match="at least one device"):
            ShardMap((), 0)

    def test_document_round_trip(self):
        m = ShardMap(DEVICES, 4)
        rebuilt = ShardMap.from_dict(m.to_dict())
        for kernel in ("conv1", "fc6"):
            assert rebuilt.shard_for("p100-sxm2", kernel) == \
                m.shard_for("p100-sxm2", kernel)
        assert m.to_json().endswith("\n")
        assert m.to_dict()["kind"] == SHARD_MAP_KIND
        assert m.to_dict()["schema_version"] == SHARD_MAP_SCHEMA_VERSION

    def test_document_damage_is_typed(self):
        document = ShardMap(DEVICES, 4).to_dict()
        with pytest.raises(ClusterError, match="must be an object"):
            ShardMap.from_dict([document])
        with pytest.raises(ClusterError, match="not a shard map"):
            ShardMap.from_dict({**document, "kind": "something-else"})
        with pytest.raises(ClusterError, match="schema version"):
            ShardMap.from_dict({**document, "schema_version": 99})
        with pytest.raises(ClusterError, match="string list"):
            ShardMap.from_dict({**document, "devices": "p100-sxm2"})
        with pytest.raises(ClusterError, match="must be an integer"):
            ShardMap.from_dict({**document, "shards": True})
        with pytest.raises(ClusterError, match="inconsistent"):
            ShardMap.from_dict({**document, "shards": 1,
                                "assignments": None})

    def test_hand_edited_assignments_rejected(self):
        document = ShardMap(DEVICES, 4).to_dict()
        document["assignments"]["shard-0"] = "v100-sxm2"
        with pytest.raises(ClusterError, match="hand-editing"):
            ShardMap.from_dict(document)


class TestRouting:
    def test_shard_hint_pins(self):
        with make_cluster(shards=2) as cluster:
            assert cluster.route(make_request(shard="shard-1")) == "shard-1"

    def test_device_hint_routes_within_its_group(self):
        with make_cluster(DEVICES, 4) as cluster:
            sid = cluster.route(make_request(shard="v100-sxm2"))
            assert sid in cluster.map.device_shards["v100-sxm2"]

    def test_no_hint_routes_by_primary_device(self):
        with make_cluster(DEVICES, 4) as cluster:
            sid = cluster.route(make_request())
            assert sid in cluster.map.device_shards["p100-sxm2"]

    def test_bad_hints_are_typed(self):
        with make_cluster(shards=2) as cluster:
            with pytest.raises(ClusterError):
                cluster.route(make_request(shard="shard-7"))
            with pytest.raises(ClusterError):
                cluster.route(make_request(shard="k80"))

    def test_negative_watermark_rejected(self):
        with pytest.raises(ValueError, match="steal_watermark"):
            ClusterService(("p100-sxm2",), 1, steal_watermark=-1)


class TestPlanIdentity:
    def test_cluster_plan_identical_to_single_service(self):
        """Sharding changes where a key is solved, never what the answer is."""
        request = make_request(kernel="conv1")
        with ClusterService(("p100-sxm2",), 2,
                            clock_factory=ManualClock) as cluster:
            clustered = cluster.request(request)
        with PlanService("p100-sxm2", clock=ManualClock()) as single:
            solo = single.request(request)
        assert clustered.configuration == solo.configuration
        assert clustered.source == solo.source == "fresh"


class TestWorkStealing:
    def test_overflow_is_stolen_past_the_watermark(self):
        with make_cluster(shards=2, steal_watermark=2) as cluster:
            responses = serve_wave(cluster, [
                make_request(kernel=f"k{i}", c=3 + i, shard="shard-0")
                for i in range(3)
            ])
            assert [r.shard for r in responses] == \
                ["shard-0", "shard-0", "shard-1"]
            cluster_view = cluster.metrics_summary()["cluster"]
            assert cluster_view["steals"] == 1
            assert cluster_view["steals_by_shard"] == {"shard-0": 0,
                                                       "shard-1": 1}
            # The stolen fresh plan was copied back to its hash home, so
            # the key's next wave hits at home.
            stolen_key = make_request(kernel="k2", c=5).key("p100-sxm2")
            assert stolen_key in cluster.shard("shard-0").store
            assert stolen_key in cluster.shard("shard-1").store

    def test_no_steal_at_or_below_the_watermark(self):
        with make_cluster(shards=2, steal_watermark=2) as cluster:
            responses = serve_wave(cluster, [
                make_request(kernel=f"k{i}", c=3 + i, shard="shard-0")
                for i in range(2)
            ])
            assert {r.shard for r in responses} == {"shard-0"}
            assert cluster.metrics_summary()["cluster"]["steals"] == 0

    def test_watermark_zero_disables_stealing(self):
        with make_cluster(shards=2, steal_watermark=0) as cluster:
            responses = serve_wave(cluster, [
                make_request(kernel=f"k{i}", c=3 + i, shard="shard-0")
                for i in range(5)
            ])
            assert {r.shard for r in responses} == {"shard-0"}
            assert cluster.metrics_summary()["cluster"]["steals"] == 0

    def test_stealing_never_crosses_devices(self):
        with make_cluster(DEVICES, 2, steal_watermark=1) as cluster:
            # shard-0 (p100) drowns; shard-1 (v100) idles.  Its plans would
            # be wrong for p100 keys, so everything stays home.
            responses = serve_wave(cluster, [
                make_request(kernel=f"k{i}", c=3 + i, shard="shard-0")
                for i in range(4)
            ])
            assert {r.shard for r in responses} == {"shard-0"}
            assert cluster.metrics_summary()["cluster"]["steals"] == 0

    def test_steal_respects_thief_headroom(self):
        with make_cluster(shards=2, steal_watermark=2,
                          max_pending=5) as cluster:
            # shard-0: three groups, the overflow one carrying 3 requests;
            # shard-1: one group of 3, leaving headroom 2 < 3 -- the steal
            # must return home rather than blow the thief's admission limit.
            requests = (
                [make_request(kernel="k0", c=3, shard="shard-0"),
                 make_request(kernel="k1", c=4, shard="shard-0")]
                + [make_request(kernel="k2", c=5, shard="shard-0")] * 3
                + [make_request(kernel="k9", c=6, shard="shard-1")] * 3
            )
            responses = serve_wave(cluster, requests)
            assert len(responses) == len(requests)
            assert [r.shard for r in responses] == \
                ["shard-0"] * 5 + ["shard-1"] * 3
            assert cluster.metrics_summary()["cluster"]["steals"] == 0

    def test_zero_drop_and_arrival_order(self):
        with make_cluster(DEVICES, 4, steal_watermark=1) as cluster:
            requests = [
                make_request(kernel=f"k{i}", c=3 + i, shard=DEVICES[i % 2])
                for i in range(10)
            ]
            responses = serve_wave(cluster, requests)
            assert len(responses) == len(requests)
            assert [r.kernel for r in responses] == \
                [r.kernel for r in requests]

    def test_wave_serves_once(self):
        with make_cluster() as cluster:
            wave = cluster.wave()
            wave.add(make_request())
            wave.serve()
            with pytest.raises(ServiceOverloadedError, match="already served"):
                wave.serve()


class TestFacade:
    def test_submit_wait_stamps_the_shard(self):
        with make_cluster(shards=2) as cluster:
            ticket = cluster.submit(make_request(kernel="conv1"))
            assert isinstance(ticket, ClusterTicket)
            response = cluster.wait(ticket)
            assert response.shard == ticket.shard
            assert response.configuration == fake_config()

    def test_request_blocking_path(self):
        with make_cluster(shards=2) as cluster:
            response = cluster.request(make_request(kernel="conv1"))
            assert response.shard == cluster.route(make_request(kernel="conv1"))

    def test_store_view_spans_all_shards(self):
        with make_cluster(shards=2, capacity=8) as cluster:
            serve_wave(cluster, [
                make_request(kernel=f"k{i}", c=3 + i, shard=f"shard-{i % 2}")
                for i in range(4)
            ])
            assert len(cluster.store) == 4
            key = make_request(kernel="k0", c=3).key("p100-sxm2")
            assert key in cluster.store
            snapshot = cluster.store.snapshot()
            assert snapshot["size"] == 4
            assert snapshot["capacity"] == 16  # summed over bounded shards

    def test_store_view_unbounded_capacity(self):
        with make_cluster(shards=2, capacity=None) as cluster:
            assert cluster.store.snapshot()["capacity"] == -1

    def test_stats_sum_over_shards(self):
        with make_cluster(shards=2) as cluster:
            serve_wave(cluster, [
                make_request(kernel=f"k{i}", c=3 + i, shard=f"shard-{i % 2}")
                for i in range(4)
            ])
            assert cluster.stats.solver_invocations == sum(
                shard.stats.solver_invocations for shard in cluster.shards()
            ) == 4

    def test_metrics_summary_keeps_single_service_shape(self):
        with make_cluster(DEVICES, 4) as cluster:
            serve_wave(cluster, [make_request(kernel="k0")])
            summary = cluster.metrics_summary()
            # The admin surface reads these exact keys off one service.
            assert {"gpu", "max_pending", "service", "store", "delta",
                    "bench_cache"} <= set(summary)
            assert set(summary["by_shard"]) == set(cluster.shard_ids)
            assert summary["cluster"]["devices"] == list(DEVICES)

    def test_close_closes_every_shard(self):
        cluster = make_cluster(shards=2)
        assert not cluster.closed
        cluster.close()
        assert cluster.closed
        assert all(shard.closed for shard in cluster.shards())


class TestClusterTelemetry:
    def test_per_shard_labeled_prometheus_series(self):
        with telemetry.capture() as session:
            with make_cluster(shards=2) as cluster:
                serve_wave(cluster, [
                    make_request(kernel=f"k{i}", shard=f"shard-{i % 2}")
                    for i in range(4)
                ])
                serve_wave(cluster, [  # second wave: plan hits at home
                    make_request(kernel="k0", c=3, shard="shard-0")
                ])
            text = prometheus_text(session.metrics)
        for sid in ("shard-0", "shard-1"):
            assert f'repro_cluster_shard_routed_total{{shard="{sid}"}}' in text
            assert f'repro_cluster_shard_solves_total{{shard="{sid}"}}' in text
            assert (f'repro_cluster_shard_plan_hits_total{{shard="{sid}"}}'
                    in text)
        assert 'repro_cluster_shard_plan_hits_total{shard="shard-0"} 1' in text


class TestClusterPersistence:
    def test_snapshot_warm_start_round_trip(self, tmp_path):
        requests = [
            make_request(kernel=f"k{i}", c=3 + i, shard=DEVICES[i % 2])
            for i in range(6)
        ]
        with make_cluster(DEVICES, 4) as cold:
            cold_answers = serve_wave(cold, requests)
            document = snapshot_service(cold)
        validate_snapshot(document, "test")
        assert document["meta"]["cluster"] == {
            "devices": list(DEVICES), "shards": 4,
        }
        path = tmp_path / "cluster.json"
        save_snapshot(path, document)
        with make_cluster(DEVICES, 4) as warm:
            restored = warm_start(warm, load_snapshot(path))
            assert restored == 6
            warm_answers = serve_wave(warm, requests)
            assert warm.stats.solver_invocations == 0
            assert all(r.source == "cached" for r in warm_answers)
            assert [r.configuration for r in warm_answers] == \
                [r.configuration for r in cold_answers]

    def test_warm_start_routes_plans_to_their_home_shards(self):
        with make_cluster(DEVICES, 4) as cold:
            serve_wave(cold, [
                make_request(kernel=f"k{i}", c=3 + i, shard=DEVICES[i % 2])
                for i in range(6)
            ])
            document = snapshot_service(cold)
        with make_cluster(DEVICES, 4) as warm:
            warm_start(warm, document)
            for key, _configuration, _stored_at in plans_of(document):
                home = warm.map.shard_for(key.gpu, key.kernel)
                assert key in warm.shard(home).store

    def test_warm_start_skips_foreign_devices(self):
        with make_cluster(DEVICES, 4) as cold:
            serve_wave(cold, [
                make_request(kernel=f"k{i}", c=3 + i, shard=DEVICES[i % 2])
                for i in range(6)
            ])
            document = snapshot_service(cold)
        with make_cluster(("p100-sxm2",), 2) as narrow:
            restored = warm_start(narrow, document)
            assert restored == 3  # only the p100 half of the keys
            assert len(narrow.store) == 3


class TestClusterSoak:
    CONFIG = dict(clients=12, rounds=2, shards=4, devices=DEVICES,
                  steal_watermark=2, tenant_mix="train:2,infer:1",
                  fail_rate=0.05)

    def test_mixed_device_soak_is_byte_deterministic(self):
        a = run_soak(SoakConfig(**self.CONFIG))
        b = run_soak(SoakConfig(**self.CONFIG))
        assert a.to_json() == b.to_json()
        assert a.healthy and a.dropped == 0
        assert a.served == a.admitted
        # Every serving shard and tenant shows up in the breakdowns.
        assert set(a.by_shard) <= {f"shard-{i}" for i in range(4)}
        assert sum(a.by_shard.values()) == a.served
        assert set(a.by_tenant) == {"train", "infer"}
        assert sum(a.by_tenant.values()) == a.served
        report = a.as_dict()
        assert report["config"]["shards"] == 4
        assert report["config"]["tenant_mix"] == "train:2,infer:1"

    def test_default_soak_report_has_no_cluster_keys(self):
        report = run_soak(SoakConfig(clients=4, rounds=1))
        document = report.as_dict()
        assert "by_shard" not in document
        assert "by_tenant" not in document
        for key in ("shards", "devices", "steal_watermark", "tenant_mix"):
            assert key not in document["config"]
