"""Tests for distributed request tracing and the introspection surface.

Covers the observability ISSUE's acceptance criteria directly: one
serve+client session yields ONE connected Chrome trace (client span parents
server span parents solve span, stitched by deterministic ids), the
``/requestz`` ring is bounded, thread-safe, and byte-deterministic, tracing
costs zero span/record allocations when off (ZOV001), a deliberately
silent server surfaces as :class:`~repro.errors.DeadlineExceededError`
(ERR001), and the soak report's stage breakdown is byte-identical across
two seeded runs (DET001).
"""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

import repro.telemetry as telemetry
from repro.core.config import Configuration, MicroConfig
from repro.cudnn.enums import FwdAlgo
from repro.errors import DeadlineExceededError, WireProtocolError
from repro.service import PlanRequest, PlanService, RequestLog
from repro.service.introspection import STAGES, RequestRecord
from repro.service.soak import SoakConfig, run_soak
from repro.telemetry import ManualClock, TraceIdSource, deadline_class
from repro.telemetry.exporters import chrome_trace, prometheus_text
from repro.telemetry.spans import Span
from repro.units import MIB
from repro.wire import PlanClient, PlanServer
from repro.wire.admin import AdminServer
from repro.wire.protocol import (
    encode_envelope,
    request_to_wire,
    span_from_wire,
    span_to_wire,
)
from tests.conftest import make_geometry

GPU = "p100-sxm2"


def fake_config(micro: int = 4) -> Configuration:
    return Configuration((MicroConfig(micro, FwdAlgo.IMPLICIT_GEMM, 0.001, 0),))


def spy_solve(request):
    return fake_config(), 0.1


def make_request(**kw) -> PlanRequest:
    kw.setdefault("kernel", "conv1")
    kw.setdefault("geometry", make_geometry())
    kw.setdefault("workspace_limit", MIB)
    return PlanRequest(**kw)


@pytest.fixture
def traced():
    """One enabled telemetry session on a manual clock; always disabled."""
    clock = ManualClock()
    session = telemetry.enable(clock=clock)
    try:
        yield clock, session
    finally:
        telemetry.disable()


class TestDeadlineClass:
    def test_no_deadline_is_none(self):
        assert deadline_class(None) == "none"

    def test_sub_second_budgets_are_strict(self):
        assert deadline_class(0.05) == "strict"
        assert deadline_class(1.0) == "strict"

    def test_longer_budgets_are_relaxed(self):
        assert deadline_class(1.5) == "relaxed"


class TestTraceIdSource:
    def test_ids_are_deterministic_and_zero_padded(self):
        source = TraceIdSource("req")
        assert [source.next() for _ in range(3)] == [
            "req-000001", "req-000002", "req-000003"
        ]

    def test_equal_prefixes_mint_equal_sequences(self):
        a, b = TraceIdSource("soak"), TraceIdSource("soak")
        assert [a.next() for _ in range(5)] == [b.next() for _ in range(5)]

    def test_concurrent_minting_never_duplicates(self):
        source = TraceIdSource("t")
        minted: list[str] = []
        lock = threading.Lock()

        def mint():
            ids = [source.next() for _ in range(200)]
            with lock:
                minted.extend(ids)

        threads = [threading.Thread(target=mint) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(minted) == len(set(minted)) == 1600


class TestSpanWireCodec:
    def tree(self) -> Span:
        root = Span("wire.server.request", attributes={"kernel": "conv1"},
                    start=1.0, end=4.0, trace_id="req-000001",
                    span_id="s2", parent_span_id="s1")
        child = Span("service.request", start=1.5, end=3.5,
                     trace_id="req-000001", span_id="s3",
                     parent_span_id="s2",
                     links=[{"trace_id": "req-000002"}])
        root.children.append(child)
        return root

    def test_round_trips_identity_links_and_children(self):
        back = span_from_wire(span_to_wire(self.tree()))
        assert back.name == "wire.server.request"
        assert (back.trace_id, back.span_id, back.parent_span_id) == (
            "req-000001", "s2", "s1")
        assert back.attributes == {"kernel": "conv1"}
        (child,) = back.children
        assert child.links == [{"trace_id": "req-000002"}]
        assert span_to_wire(back) == span_to_wire(self.tree())

    def test_unknown_keys_are_tolerated(self):
        wired = span_to_wire(self.tree())
        wired["future_field"] = {"anything": True}
        wired["children"][0]["other"] = 7
        back = span_from_wire(wired)
        assert back.children[0].name == "service.request"

    @pytest.mark.parametrize("mutate", [
        lambda w: w.pop("name"),
        lambda w: w.__setitem__("name", 3),
        lambda w: w.__setitem__("start", "soon"),
        lambda w: w.__setitem__("children", "nope"),
        lambda w: w.__setitem__("links", [{"trace_id": 5}]),
        lambda w: w.__setitem__("trace_id", 12),
    ])
    def test_malformed_trees_are_protocol_errors(self, mutate):
        wired = span_to_wire(self.tree())
        mutate(wired)
        with pytest.raises(WireProtocolError):
            span_from_wire(wired)

    def test_non_object_tree_is_a_protocol_error(self):
        with pytest.raises(WireProtocolError):
            span_from_wire(["not", "a", "span"])

    def test_untraced_request_bytes_are_unchanged(self):
        """No ``trace`` key -- pre-tracing peers see identical frames."""
        wired = request_to_wire(make_request())
        assert "trace" not in wired
        assert b"trace" not in encode_envelope("plan", wired, 1)

    def test_traced_request_round_trips_context(self):
        from repro.wire.protocol import request_from_wire
        request = make_request(trace_id="req-000009", parent_span_id="s1")
        back = request_from_wire(request_to_wire(request))
        assert back.trace_id == "req-000009"
        assert back.parent_span_id == "s1"

    def test_corrupt_trace_block_is_a_protocol_error(self):
        from repro.wire.protocol import request_from_wire
        wired = request_to_wire(make_request(trace_id="req-000001"))
        wired["trace"]["trace_id"] = 99
        with pytest.raises(WireProtocolError):
            request_from_wire(wired)


class TestGoldenTraceChain:
    """The tentpole: one request, one connected cross-process timeline."""

    def serve_one(self, clock):
        service = PlanService(GPU, clock=clock, solve_fn=spy_solve,
                              request_log=RequestLog())
        with service, PlanServer(service) as server:
            with PlanClient(server.host, server.port, timeout_s=10.0) as c:
                response = c.plan(make_request(client="golden"))
        return service, response

    def test_client_server_and_solve_spans_form_one_chain(self, traced):
        clock, session = traced
        service, response = self.serve_one(clock)
        assert response.source == "fresh"

        (cspan,) = [r for r in session.tracer.roots()
                    if r.name == "wire.client.request"]
        assert (cspan.trace_id, cspan.span_id) == ("req-000001", "s1")
        assert cspan.attributes["source"] == "fresh"

        adopted = [ch for ch in cspan.children if ch.origin == "server"]
        by_name = {s.name: s for s in adopted}
        sspan = by_name["wire.server.request"]
        solve = by_name["service.solve"]
        # Server span parents under the client span ...
        assert sspan.parent_span_id == cspan.span_id
        (tspan,) = [s for s in sspan.walk() if s.name == "service.request"]
        # ... service span under the server span ...
        assert tspan.parent_span_id == sspan.span_id
        # ... and the worker-thread solve under the service span.
        assert solve.parent_span_id == tspan.span_id
        for span in (sspan, tspan, solve):
            assert span.trace_id == "req-000001"
            assert span.end is not None

    def test_shared_manual_clock_adopts_with_zero_offset(self, traced):
        clock, session = traced
        self.serve_one(clock)
        (cspan,) = [r for r in session.tracer.roots()
                    if r.name == "wire.client.request"]
        for adopted in (ch for ch in cspan.children if ch.origin == "server"):
            assert cspan.start <= adopted.start
            assert adopted.end <= (cspan.end or adopted.end)

    def test_chrome_trace_renders_remote_process_and_flows(self, traced):
        clock, session = traced
        self.serve_one(clock)
        trace = chrome_trace(session.tracer)
        events = trace["traceEvents"]
        remote = [e for e in events if e.get("pid") == 2]
        assert any(e.get("name") == "wire.server.request" for e in remote)
        starts = [e for e in events if e.get("ph") == "s"]
        finishes = [e for e in events if e.get("ph") == "f"]
        assert starts and finishes
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}

    def test_serialize_stage_is_amended_onto_the_ring(self, traced):
        clock, _ = traced
        service, _ = self.serve_one(clock)
        (record,) = service.request_log.records()
        assert record.trace_id == "req-000001"
        assert set(record.stages) == set(STAGES)

    def test_untraced_sessions_open_no_client_spans(self):
        clock = ManualClock()
        service = PlanService(GPU, clock=clock, solve_fn=spy_solve)
        with service, PlanServer(service) as server:
            with PlanClient(server.host, server.port, timeout_s=10.0) as c:
                response = c.plan(make_request())
        assert response.source == "fresh"
        assert telemetry.session() is None


class TestZeroOverheadWhenOff:
    def test_no_span_or_record_allocations_off_path(self, monkeypatch):
        """ZOV001: tracing off means literally zero trace objects built."""
        allocations: list[str] = []
        span_init = Span.__init__
        record_init = RequestRecord.__init__

        def spy_span(self, *args, **kwargs):
            allocations.append("span")
            span_init(self, *args, **kwargs)

        def spy_record(self, *args, **kwargs):
            allocations.append("record")
            record_init(self, *args, **kwargs)

        monkeypatch.setattr(Span, "__init__", spy_span)
        monkeypatch.setattr(RequestRecord, "__init__", spy_record)
        assert not telemetry.enabled()
        service = PlanService(GPU, clock=ManualClock(), solve_fn=spy_solve)
        with service, PlanServer(service) as server:
            with PlanClient(server.host, server.port, timeout_s=10.0) as c:
                response = c.plan(make_request())
        assert response.source == "fresh"
        assert allocations == []

    def test_untraced_requests_skip_the_coalesce_link_table(self):
        service = PlanService(GPU, clock=ManualClock(), solve_fn=spy_solve)
        with service:
            service.request(make_request())
            assert service._coalesced_traces == {}


class TestSilentServerTimeout:
    def test_no_reply_maps_to_deadline_exceeded(self):
        """ERR001: a silent peer is a missed budget, not protocol damage."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()
        held: list[socket.socket] = []

        def hold():
            conn, _ = listener.accept()
            held.append(conn)  # accept, then never answer

        thread = threading.Thread(target=hold, daemon=True)
        thread.start()
        try:
            client = PlanClient(host, port, timeout_s=0.2)
            with pytest.raises(DeadlineExceededError, match="no reply"):
                client.plan(make_request())
            client._closed = True  # transport is dead; skip the bye frame
        finally:
            thread.join(timeout=5.0)
            for conn in held:
                conn.close()
            listener.close()


class TestRequestLog:
    def fill(self, log: RequestLog, count: int) -> None:
        for index in range(count):
            log.record(trace_id=f"t-{index}", key="k", client="c",
                       source="fresh", outcome="ok", latency_s=0.0)

    def test_ring_is_bounded_and_counts_drops(self):
        log = RequestLog(capacity=4)
        self.fill(log, 10)
        assert len(log) == 4
        assert log.dropped == 6
        assert [r.seq for r in log.records()] == [6, 7, 8, 9]

    def test_amend_stage_targets_the_newest_matching_record(self):
        log = RequestLog(capacity=8)
        log.record(trace_id="t", key="k", client="c", source="fresh",
                   outcome="ok", latency_s=0.0, stages={"queue": 0.1})
        log.record(trace_id="t", key="k", client="c", source="cached",
                   outcome="ok", latency_s=0.0)
        log.amend_stage("t", "serialize", 0.5)
        older, newer = log.records()
        assert "serialize" not in older.stages
        assert newer.stages["serialize"] == 0.5

    def test_concurrent_writers_never_corrupt_the_ring(self):
        log = RequestLog(capacity=64)
        workers, per_worker = 8, 250

        def write(worker: int):
            for index in range(per_worker):
                log.record(trace_id=f"w{worker}-{index}", key="k",
                           client=f"w{worker}", source="fresh",
                           outcome="ok", latency_s=0.0)
                log.amend_stage(f"w{worker}-{index}", "serialize", 0.001)

        threads = [threading.Thread(target=write, args=(w,))
                   for w in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(log) == 64
        assert log.dropped == workers * per_worker - 64
        seqs = [r.seq for r in log.records()]
        assert seqs == sorted(seqs) and len(set(seqs)) == 64
        json.loads(log.to_json())  # still one canonical document

    def test_to_json_is_byte_deterministic(self):
        a, b = RequestLog(capacity=4), RequestLog(capacity=4)
        self.fill(a, 6)
        self.fill(b, 6)
        assert a.to_json() == b.to_json()
        assert a.to_json().endswith("\n")


class TestLabeledHistograms:
    def test_deadline_classes_split_series_and_carry_exemplars(self, traced):
        _, session = traced
        telemetry.observe("service.request_latency_seconds", 0.2,
                          labels={"deadline_class": "strict"},
                          exemplar="req-000001")
        telemetry.observe("service.request_latency_seconds", 7.0,
                          labels={"deadline_class": "none"})
        text = prometheus_text(session.metrics)
        assert 'deadline_class="strict"' in text
        assert 'deadline_class="none"' in text
        assert '# {trace_id="req-000001"}' in text
        assert text.count("# TYPE repro_service_request_latency_seconds") == 1


class TestAdminEndpoints:
    def scrape(self, admin: AdminServer, path: str) -> tuple[int, bytes]:
        try:
            with urllib.request.urlopen(
                f"http://{admin.address}{path}", timeout=5.0
            ) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as err:
            return err.code, err.read()

    def test_endpoints_cover_health_metrics_and_requests(self):
        service = PlanService(GPU, clock=ManualClock(), solve_fn=spy_solve,
                              request_log=RequestLog())
        with service:
            service.request(make_request(trace_id="req-000001"))
            with AdminServer(service, wire_stats=lambda: {"frames_in": 3}) \
                    as admin:
                status, body = self.scrape(admin, "/healthz")
                assert status == 200
                assert json.loads(body) == {"status": "ok"}

                status, body = self.scrape(admin, "/readyz")
                assert status == 200
                ready = json.loads(body)
                assert ready["ready"] is True and ready["gpu"] == GPU

                status, body = self.scrape(admin, "/metrics")
                assert status == 200
                text = body.decode()
                assert "repro_service_requests 1" in text
                assert "repro_wire_frames_in 3" in text
                assert "repro_requestz_records 1" in text

                status, body = self.scrape(admin, "/requestz")
                assert status == 200
                document = json.loads(body)
                assert document["records"][0]["trace_id"] == "req-000001"

                status, body = self.scrape(admin, "/nope")
                assert status == 404
                assert "/requestz" in json.loads(body)["paths"][-1]

    def test_readyz_is_503_once_the_service_closes(self):
        service = PlanService(GPU, clock=ManualClock(), solve_fn=spy_solve)
        with AdminServer(service) as admin:
            service.close()
            status, body = self.scrape(admin, "/readyz")
            assert status == 503
            assert json.loads(body)["ready"] is False

    def test_requestz_without_a_ring_serves_the_empty_shape(self):
        service = PlanService(GPU, clock=ManualClock(), solve_fn=spy_solve)
        with service, AdminServer(service) as admin:
            status, body = self.scrape(admin, "/requestz")
            assert status == 200
            assert json.loads(body) == {
                "capacity": 0, "dropped": 0, "records": []
            }

    def test_requestz_scrapes_are_byte_identical_across_runs(self):
        """The CI gate: two identical seeded runs, ``cmp``-equal scrapes."""

        def one_run() -> bytes:
            clock = ManualClock()
            ids = TraceIdSource("req")
            service = PlanService(GPU, clock=clock, solve_fn=spy_solve,
                                  request_log=RequestLog())
            with service, AdminServer(service) as admin:
                for _ in range(3):
                    service.request(make_request(trace_id=ids.next()))
                return self.scrape(admin, "/requestz")[1]

        assert one_run() == one_run()


class TestSlowRequestLog:
    def test_threshold_crossing_emits_one_structured_line(self):
        lines: list[str] = []
        service = PlanService(GPU, clock=ManualClock(), solve_fn=spy_solve,
                              slow_request_s=-1.0, slow_log=lines.append)
        with service:
            service.request(make_request(trace_id="req-000001",
                                         deadline_s=30.0))
        (line,) = lines
        entry = json.loads(line)
        assert entry["event"] == "slow_request"
        assert entry["trace_id"] == "req-000001"
        assert entry["kernel"] == "conv1"
        assert entry["deadline_s"] == 30.0
        assert "explain --explain-kernel conv1" in entry["explain"]
        assert set(entry["stages"]) <= set(STAGES)

    def test_fast_requests_stay_silent(self):
        lines: list[str] = []
        service = PlanService(GPU, clock=ManualClock(), solve_fn=spy_solve,
                              slow_request_s=60.0, slow_log=lines.append)
        with service:
            service.request(make_request())
        assert lines == []


class TestSoakStageBreakdown:
    CONFIG = SoakConfig(clients=8, rounds=2, seed=3, max_pending=64,
                        workspace_limits_mib=(8,), capacity=16,
                        bench_capacity=32)

    def test_report_carries_per_stage_percentiles(self):
        report = run_soak(self.CONFIG)
        assert report.healthy
        assert set(report.stage_percentiles_s) == set(STAGES)
        for stage in STAGES:
            assert set(report.stage_percentiles_s[stage]) == {
                "p50", "p90", "p99"
            }
        assert "queue p50" in report.table.render()

    def test_stage_breakdown_is_byte_deterministic(self):
        assert run_soak(self.CONFIG).to_json() == run_soak(self.CONFIG).to_json()
