"""Tests for the extension features beyond the paper's minimal surface:

* true CONVOLUTION mode (cuDNN supports both modes; frameworks use
  cross-correlation),
* the greedy halve-until-it-fits division baseline (ablation comparator),
* repeated-measurement (median) benchmarking for noisy handles.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.benchmarker import benchmark_kernel
from repro.core.policies import BatchSizePolicy
from repro.core.wr import optimize_from_benchmark, optimize_greedy_halving
from repro.cudnn import kernels
from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.enums import (
    BwdDataAlgo,
    BwdFilterAlgo,
    ConvType,
    ConvolutionMode,
    FwdAlgo,
)
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.cudnn.kernels import direct
from repro.cudnn.workspace import is_supported, workspace_size
from repro.errors import OptimizationError
from repro.units import MIB
from tests.conftest import assert_close, make_geometry, random_operands

CONV2 = ConvGeometry(ConvType.FORWARD, 256, 64, 27, 27, 192, 5, 5, 2, 2)


def conv_mode(g: ConvGeometry) -> ConvGeometry:
    import dataclasses
    return dataclasses.replace(g, mode=ConvolutionMode.CONVOLUTION)


class TestTrueConvolutionMode:
    @pytest.mark.parametrize("algo", [FwdAlgo.IMPLICIT_GEMM, FwdAlgo.FFT,
                                      FwdAlgo.WINOGRAD, FwdAlgo.GEMM])
    def test_forward_equals_flipped_correlation(self, rng, algo):
        g = make_geometry(n=2, c=3, h=9, w=9, k=4, r=3, s=3, pad=1)
        gm = conv_mode(g)
        x, w, _ = random_operands(rng, g)
        expected = direct.forward(g, x, np.ascontiguousarray(w[:, :, ::-1, ::-1]))
        got = kernels.forward(gm, x, w, algo)
        assert_close(got, expected, context=algo.name)

    def test_backward_ops_are_consistent_adjoints(self, rng):
        """<conv(x,w), dy> == <x, bwd_data> == <w, bwd_filter> in CONV mode."""
        g = conv_mode(make_geometry(n=2, c=3, h=8, w=8, k=4, r=3, s=3, pad=1))
        x, w, dy = random_operands(rng, g)
        y = kernels.forward(g, x, w, FwdAlgo.IMPLICIT_GEMM)
        dx = kernels.backward_data(g.with_type(ConvType.BACKWARD_DATA), dy, w,
                                   BwdDataAlgo.ALGO_0)
        dw = kernels.backward_filter(g.with_type(ConvType.BACKWARD_FILTER), x, dy,
                                     BwdFilterAlgo.ALGO_1)
        lhs = float(np.vdot(y.astype(np.float64), dy.astype(np.float64)))
        assert abs(lhs - float(np.vdot(x.astype(np.float64), dx.astype(np.float64)))) \
            < 1e-3 * max(abs(lhs), 1.0)
        assert abs(lhs - float(np.vdot(w.astype(np.float64), dw.astype(np.float64)))) \
            < 1e-3 * max(abs(lhs), 1.0)

    def test_mode_preserved_by_geometry_surgery(self):
        g = conv_mode(make_geometry(n=8))
        assert g.with_batch(4).mode == ConvolutionMode.CONVOLUTION
        assert g.with_type(ConvType.BACKWARD_DATA).mode == ConvolutionMode.CONVOLUTION

    def test_mode_in_cache_key(self):
        g = make_geometry()
        assert g.cache_key() != conv_mode(g).cache_key()

    def test_symmetric_filter_modes_agree(self, rng):
        """With a spatially symmetric filter the two modes coincide."""
        g = make_geometry(n=2, c=2, h=7, w=7, k=3, r=3, s=3, pad=1)
        x, w, _ = random_operands(rng, g)
        w_sym = (w + w[:, :, ::-1, ::-1]) / 2
        a = kernels.forward(g, x, w_sym, FwdAlgo.IMPLICIT_GEMM)
        b = kernels.forward(conv_mode(g), x, w_sym, FwdAlgo.IMPLICIT_GEMM)
        assert_close(a, b, tol=1e-5)

    def test_workspace_and_time_mode_independent(self, timing_handle):
        g = make_geometry(n=16)
        gm = conv_mode(g)
        for algo in FwdAlgo:
            if is_supported(g, algo):
                assert workspace_size(g, algo) == workspace_size(gm, algo)
                assert timing_handle.perf.time(g, algo) == \
                    timing_handle.perf.time(gm, algo)


class TestGreedyBaseline:
    def test_dp_never_loses_to_greedy(self, timing_handle):
        for limit_mib in (1, 8, 64, 512):
            bench = benchmark_kernel(timing_handle, CONV2, BatchSizePolicy.ALL)
            dp = optimize_from_benchmark(bench, limit_mib * MIB)
            greedy = optimize_greedy_halving(timing_handle, CONV2, limit_mib * MIB)
            assert dp.time <= greedy.time + 1e-12, limit_mib
            assert greedy.workspace <= limit_mib * MIB
            assert greedy.batch == 256

    def test_greedy_covers_non_power_of_two(self, timing_handle):
        g = CONV2.with_batch(100)
        greedy = optimize_greedy_halving(timing_handle, g, 32 * MIB)
        assert greedy.batch == 100
        assert greedy.workspace <= 32 * MIB

    def test_greedy_actually_divides_under_pressure(self, timing_handle):
        greedy = optimize_greedy_halving(timing_handle, CONV2, 64 * MIB)
        assert greedy.num_micro_batches > 1

    @settings(max_examples=10, deadline=None)
    @given(limit_mib=st.integers(1, 256))
    def test_greedy_always_feasible(self, limit_mib):
        handle = CudnnHandle(mode=ExecMode.TIMING)
        greedy = optimize_greedy_halving(handle, CONV2, limit_mib * MIB)
        assert greedy.workspace <= limit_mib * MIB
        assert greedy.batch == CONV2.n

    def test_unsatisfiable_limit_raises_optimization_error(self, timing_handle):
        """Regression: an unsatisfiable limit used to crash with an
        AttributeError (``None.algo``) instead of a diagnosable error."""
        with pytest.raises(OptimizationError, match="no algorithm fits"):
            optimize_greedy_halving(timing_handle, CONV2, -1)


class TestSampledBenchmarking:
    def test_invalid_samples(self, timing_handle):
        with pytest.raises(ValueError):
            benchmark_kernel(timing_handle, make_geometry(), samples=0)

    def test_deterministic_handle_samples_identical(self, timing_handle):
        g = make_geometry(n=8)
        one = benchmark_kernel(timing_handle, g, BatchSizePolicy.UNDIVIDED)
        many = benchmark_kernel(timing_handle, g, BatchSizePolicy.UNDIVIDED,
                                samples=5)
        assert [r.time for r in one.results[8]] == \
            [r.time for r in many.results[8]]
        # ... but the benchmarking bill is 5x.
        assert many.benchmark_time == pytest.approx(5 * one.benchmark_time)

    def test_median_tames_jitter(self):
        """With noise, the 9-sample median lands closer to the true time
        than single samples do on average."""
        g = make_geometry(n=16, c=16, k=16, h=14, w=14)
        truth = {
            r.algo: r.time
            for r in benchmark_kernel(
                CudnnHandle(mode=ExecMode.TIMING), g, BatchSizePolicy.UNDIVIDED
            ).results[16]
        }
        noisy_handle = CudnnHandle(mode=ExecMode.TIMING, jitter=0.3)
        single_err, median_err = 0.0, 0.0
        for _ in range(5):
            single = benchmark_kernel(noisy_handle, g, BatchSizePolicy.UNDIVIDED)
            med = benchmark_kernel(noisy_handle, g, BatchSizePolicy.UNDIVIDED,
                                   samples=9)
            for r in single.results[16]:
                single_err += abs(r.time - truth[r.algo]) / truth[r.algo]
            for r in med.results[16]:
                median_err += abs(r.time - truth[r.algo]) / truth[r.algo]
        assert median_err < single_err

    def test_noisy_wr_stays_near_optimal_with_samples(self):
        """End-to-end robustness: a jittered handle with median sampling
        produces a configuration whose TRUE time is within 20% of the
        noise-free optimum."""
        clean = CudnnHandle(mode=ExecMode.TIMING)
        bench_clean = benchmark_kernel(clean, CONV2, BatchSizePolicy.POWER_OF_TWO)
        optimum = optimize_from_benchmark(bench_clean, 64 * MIB)

        noisy = CudnnHandle(mode=ExecMode.TIMING, jitter=0.2)
        bench_noisy = benchmark_kernel(noisy, CONV2, BatchSizePolicy.POWER_OF_TWO,
                                       samples=9)
        chosen = optimize_from_benchmark(bench_noisy, 64 * MIB)
        # Re-cost the chosen configuration with the true (noise-free) model.
        true_time = sum(
            clean.perf.time(CONV2.with_batch(m.micro_batch), m.algo)
            for m in chosen
        )
        assert true_time <= optimum.time * 1.2
