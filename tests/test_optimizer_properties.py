"""Cross-cutting property tests on the optimizers (hypothesis-driven).

Monotonicity and consistency laws that must hold for every workload the
perf model can produce, not just the paper's layers.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.benchmarker import benchmark_kernel
from repro.core.pareto import desirable_set
from repro.core.policies import BatchSizePolicy, candidate_sizes
from repro.core.wr import optimize_from_benchmark
from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.enums import ConvType
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.units import MIB

SETTINGS = dict(max_examples=15, deadline=None)


@st.composite
def model_geometry(draw):
    """Geometries in the perf model's realistic operating range."""
    r = draw(st.sampled_from([1, 3, 5, 7]))
    stride = draw(st.sampled_from([1, 1, 1, 2]))  # mostly unit stride
    return ConvGeometry(
        conv_type=draw(st.sampled_from(list(ConvType))),
        n=draw(st.sampled_from([8, 16, 32, 64])),
        c=draw(st.sampled_from([3, 16, 64, 128])),
        h=27, w=27,
        k=draw(st.sampled_from([16, 64, 192])),
        r=r, s=r,
        pad_h=r // 2, pad_w=r // 2,
        stride_h=stride, stride_w=stride,
    )


@pytest.fixture(scope="module")
def handle():
    return CudnnHandle(mode=ExecMode.TIMING)


class TestWRProperties:
    @settings(**SETTINGS)
    @given(g=model_geometry(), data=st.data())
    def test_monotone_in_workspace_limit(self, handle, g, data):
        """More workspace never makes WR slower."""
        bench = benchmark_kernel(handle, g, BatchSizePolicy.POWER_OF_TWO)
        limits = sorted(data.draw(st.lists(
            st.integers(0, 512 * MIB), min_size=2, max_size=4)))
        times = [optimize_from_benchmark(bench, lim).time for lim in limits]
        for earlier, later in zip(times, times[1:]):
            assert later <= earlier + 1e-15

    @settings(**SETTINGS)
    @given(g=model_geometry(), limit_mib=st.sampled_from([0, 1, 8, 64, 512]))
    def test_never_worse_than_undivided(self, handle, g, limit_mib):
        bench = benchmark_kernel(handle, g, BatchSizePolicy.POWER_OF_TWO)
        config = optimize_from_benchmark(bench, limit_mib * MIB)
        undiv = bench.fastest_micro(g.n, limit_mib * MIB)
        assert config.time <= undiv.time + 1e-15
        assert config.workspace <= limit_mib * MIB
        assert config.batch == g.n

    @settings(**SETTINGS)
    @given(g=model_geometry())
    def test_policy_refinement(self, handle, g):
        """all <= powerOfTwo <= undivided (finer candidate sets only help)."""
        limit = 32 * MIB
        times = {}
        for policy in BatchSizePolicy:
            bench = benchmark_kernel(handle, g, policy)
            times[policy] = optimize_from_benchmark(bench, limit).time
        assert times[BatchSizePolicy.ALL] <= \
            times[BatchSizePolicy.POWER_OF_TWO] + 1e-15
        assert times[BatchSizePolicy.POWER_OF_TWO] <= \
            times[BatchSizePolicy.UNDIVIDED] + 1e-15


class TestDesirableSetProperties:
    @settings(**SETTINGS)
    @given(g=model_geometry())
    def test_front_envelope_contains_wr_at_every_limit(self, handle, g):
        """For any limit, the best feasible front point equals WR's optimum
        -- the front is the complete answer to all limits at once."""
        bench = benchmark_kernel(handle, g, BatchSizePolicy.POWER_OF_TWO)
        front = desirable_set(bench, workspace_limit=512 * MIB)
        for limit in (0, 1 * MIB, 16 * MIB, 512 * MIB):
            feasible = [c for c in front if c.workspace <= limit]
            if not feasible:
                continue
            wr = optimize_from_benchmark(bench, limit)
            assert min(c.time for c in feasible) == pytest.approx(wr.time)

    @settings(**SETTINGS)
    @given(g=model_geometry())
    def test_front_grows_with_limit(self, handle, g):
        """Raising the cap never removes points below it."""
        bench = benchmark_kernel(handle, g, BatchSizePolicy.POWER_OF_TWO)
        small = desirable_set(bench, workspace_limit=8 * MIB)
        large = desirable_set(bench, workspace_limit=512 * MIB)
        small_pts = {(round(c.time, 12), c.workspace) for c in small}
        large_pts = {(round(c.time, 12), c.workspace) for c in large}
        # Every small-front point is either in the large front or dominated
        # by a large-front point that the small cap excluded.
        for t, w in small_pts:
            assert (t, w) in large_pts or any(
                lt <= t and lw <= w for lt, lw in large_pts
            )


class TestCandidateSizeLaws:
    @given(batch=st.integers(1, 2048))
    def test_power_of_two_is_subset_of_all(self, batch):
        p2 = set(candidate_sizes(BatchSizePolicy.POWER_OF_TWO, batch))
        al = set(candidate_sizes(BatchSizePolicy.ALL, batch))
        un = set(candidate_sizes(BatchSizePolicy.UNDIVIDED, batch))
        assert un <= p2 <= al
