"""Tests for the simulated cuDNN API entry points."""

import numpy as np
import pytest

from repro.cudnn import api
from repro.cudnn.descriptors import (
    ConvolutionDescriptor,
    FilterDescriptor,
    TensorDescriptor,
)
from repro.cudnn.enums import BwdFilterAlgo, ConvType, FwdAlgo
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.cudnn.kernels import direct
from repro.errors import (
    BadParamError,
    NotSupportedError,
    WorkspaceTooSmallError,
)
from repro.units import MIB
from tests.conftest import assert_close


@pytest.fixture
def setup(rng):
    xd = TensorDescriptor(6, 4, 10, 10)
    wd = FilterDescriptor(8, 4, 3, 3)
    cd = ConvolutionDescriptor(1, 1)
    g = api.make_geometry(ConvType.FORWARD, xd, wd, cd)
    x = rng.standard_normal(xd.shape).astype(np.float32)
    w = rng.standard_normal(wd.shape).astype(np.float32)
    dy = rng.standard_normal(g.y_desc.shape).astype(np.float32)
    return xd, wd, cd, g, x, w, dy


class TestMakeGeometry:
    def test_validates_output_descriptor(self, setup):
        xd, wd, cd, g, *_ = setup
        bad_y = TensorDescriptor(6, 8, 5, 5)
        with pytest.raises(BadParamError):
            api.make_geometry(ConvType.FORWARD, xd, wd, cd, bad_y)

    def test_accepts_correct_output(self, setup):
        xd, wd, cd, g, *_ = setup
        assert api.make_geometry(ConvType.FORWARD, xd, wd, cd, g.y_desc) == g


class TestGetAlgorithm:
    def test_prefer_fastest(self, handle, setup):
        *_, g, _, _, _ = setup[:4] + setup[4:]
        g = setup[3]
        algo = api.get_algorithm(handle, g, api.AlgoPreference.PREFER_FASTEST)
        assert algo == handle.perf.find_all(g)[0].algo

    def test_no_workspace(self, handle, setup):
        g = setup[3]
        algo = api.get_algorithm(handle, g, api.AlgoPreference.NO_WORKSPACE)
        assert api.get_workspace_size(handle, g, algo) == 0

    def test_limit_respected(self, handle, setup):
        g = setup[3]
        algo = api.get_algorithm(
            handle, g, api.AlgoPreference.SPECIFY_WORKSPACE_LIMIT, 1 * MIB
        )
        assert api.get_workspace_size(handle, g, algo) <= 1 * MIB

    def test_limit_required(self, handle, setup):
        g = setup[3]
        with pytest.raises(BadParamError):
            api.get_algorithm(handle, g, api.AlgoPreference.SPECIFY_WORKSPACE_LIMIT)

    def test_fallback_differs_under_tight_limit(self, handle):
        """The Fig. 1 behavior: limits silently change the selection."""
        conv2 = api.make_geometry(
            ConvType.FORWARD,
            TensorDescriptor(256, 64, 27, 27),
            FilterDescriptor(192, 64, 5, 5),
            ConvolutionDescriptor(2, 2),
        )
        fast = api.get_algorithm(handle, conv2, api.AlgoPreference.PREFER_FASTEST)
        tight = api.get_algorithm(
            handle, conv2, api.AlgoPreference.SPECIFY_WORKSPACE_LIMIT, 1 * MIB
        )
        assert fast != tight


class TestWorkspaceSize:
    def test_unsupported_algo_raises(self, handle, setup):
        g = setup[3]
        with pytest.raises(NotSupportedError):
            api.get_workspace_size(handle, g, FwdAlgo.DIRECT)


class TestConvolutionForward:
    def test_numeric_matches_reference(self, handle, setup):
        xd, wd, cd, g, x, w, dy = setup
        ws = api.get_workspace_size(handle, g, FwdAlgo.FFT)
        y = api.convolution_forward(handle, xd, x, wd, w, cd, FwdAlgo.FFT, ws, g.y_desc)
        assert_close(y, direct.forward(g, x, w))

    def test_workspace_too_small(self, handle, setup):
        xd, wd, cd, g, x, w, dy = setup
        ws = api.get_workspace_size(handle, g, FwdAlgo.FFT)
        with pytest.raises(WorkspaceTooSmallError) as exc:
            api.convolution_forward(handle, xd, x, wd, w, cd, FwdAlgo.FFT,
                                    ws - 1, g.y_desc)
        assert exc.value.required == ws
        assert exc.value.provided == ws - 1

    def test_advances_clock(self, handle, setup):
        xd, wd, cd, g, x, w, dy = setup
        before = handle.elapsed
        api.convolution_forward(handle, xd, x, wd, w, cd,
                                FwdAlgo.IMPLICIT_GEMM, 0, g.y_desc)
        assert handle.elapsed > before
        assert handle.elapsed - before == pytest.approx(
            handle.perf.time(g, FwdAlgo.IMPLICIT_GEMM)
        )

    def test_alpha_beta_blending(self, handle, setup):
        xd, wd, cd, g, x, w, dy = setup
        base = direct.forward(g, x, w)
        y = np.ones(g.y_desc.shape, dtype=np.float32)
        out = api.convolution_forward(handle, xd, x, wd, w, cd,
                                      FwdAlgo.IMPLICIT_GEMM, 0, g.y_desc, y,
                                      alpha=2.0, beta=0.5)
        assert_close(out, 2.0 * base + 0.5, tol=1e-4)
        assert out is y  # written in place

    def test_beta_without_output_rejected(self, handle, setup):
        xd, wd, cd, g, x, w, dy = setup
        with pytest.raises(BadParamError):
            api.convolution_forward(handle, xd, x, wd, w, cd,
                                    FwdAlgo.IMPLICIT_GEMM, 0, g.y_desc,
                                    None, beta=1.0)

    def test_timing_mode_returns_none(self, timing_handle, setup):
        xd, wd, cd, g, *_ = setup
        out = api.convolution_forward(timing_handle, xd, None, wd, None, cd,
                                      FwdAlgo.IMPLICIT_GEMM, 0, g.y_desc)
        assert out is None
        assert timing_handle.elapsed > 0


class TestBackwardOps:
    def test_backward_data_matches_reference(self, handle, setup):
        xd, wd, cd, g, x, w, dy = setup
        gd = api.make_geometry(ConvType.BACKWARD_DATA, xd, wd, cd)
        from repro.cudnn.enums import BwdDataAlgo
        dx = api.convolution_backward_data(handle, wd, w, g.y_desc, dy, cd,
                                           BwdDataAlgo.ALGO_0, 0, xd)
        assert_close(dx, direct.backward_data(gd, dy, w))

    def test_backward_filter_accumulation(self, handle, setup):
        """cuDNN output-scale: beta=1 adds onto the existing gradient --
        the primitive mu-cuDNN's BackwardFilter splitting is built on."""
        xd, wd, cd, g, x, w, dy = setup
        gw = api.make_geometry(ConvType.BACKWARD_FILTER, xd, wd, cd)
        ref = direct.backward_filter(gw, x, dy)
        dw = np.zeros(wd.shape, dtype=np.float32)
        for _ in range(3):
            api.convolution_backward_filter(handle, xd, x, g.y_desc, dy, cd,
                                            BwdFilterAlgo.ALGO_1,
                                            10**9, wd, dw, beta=1.0)
        assert_close(dw, 3.0 * ref, tol=1e-3)

    def test_backward_filter_beta_zero_overwrites(self, handle, setup):
        xd, wd, cd, g, x, w, dy = setup
        gw = api.make_geometry(ConvType.BACKWARD_FILTER, xd, wd, cd)
        ref = direct.backward_filter(gw, x, dy)
        dw = np.full(wd.shape, 123.0, dtype=np.float32)
        api.convolution_backward_filter(handle, xd, x, g.y_desc, dy, cd,
                                        BwdFilterAlgo.ALGO_1, 10**9, wd, dw,
                                        beta=0.0)
        assert_close(dw, ref)


class TestFindAlgorithms:
    def test_jittered_find_produces_fresh_samples(self):
        handle = CudnnHandle(jitter=0.05)
        g = api.make_geometry(
            ConvType.FORWARD,
            TensorDescriptor(8, 4, 10, 10),
            FilterDescriptor(8, 4, 3, 3),
            ConvolutionDescriptor(1, 1),
        )
        t1 = {r.algo: r.time for r in api.find_algorithms(handle, g) if r.ok}
        t2 = {r.algo: r.time for r in api.find_algorithms(handle, g) if r.ok}
        assert any(t1[a] != t2[a] for a in t1)
