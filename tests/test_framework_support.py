"""Tests for framework support modules: tensors, fillers, data, timing."""

import numpy as np
import pytest

from repro.cudnn.device import DeviceMemory
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.errors import ShapeError
from repro.frameworks import init as fillers
from repro.frameworks.data import (
    CIFAR_SHAPE,
    IMAGENET_SHAPE,
    synthetic_batch,
    synthetic_stream,
)
from repro.frameworks.model_zoo import build_tiny_cnn
from repro.frameworks.tensor import Blob
from repro.frameworks.timing import time_net
from repro.units import MIB


class TestBlob:
    def test_memory_registration(self):
        mem = DeviceMemory(10_000)
        blob = Blob("x", (2, 3, 4, 4), mem, tag="data")
        # data + grad, 4 bytes each element.
        assert mem.in_use == 2 * 2 * 3 * 4 * 4 * 4
        blob.release()
        assert mem.in_use == 0

    def test_without_grad(self):
        mem = DeviceMemory(10_000)
        Blob("x", (2, 3, 4, 4), mem, with_grad=False)
        assert mem.in_use == 2 * 3 * 4 * 4 * 4

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            Blob("x", (0, 3))
        blob = Blob("x", (2, 3))
        with pytest.raises(ShapeError):
            blob.set_data(np.zeros((3, 2), dtype=np.float32))

    def test_ensure_and_zero(self):
        blob = Blob("x", (2, 2))
        assert blob.ensure_data().shape == (2, 2)
        grad = blob.ensure_grad()
        grad[...] = 5.0
        blob.zero_grad()
        assert float(blob.grad.sum()) == 0.0

    def test_sizes(self):
        blob = Blob("x", (3, 5))
        assert blob.count == 15
        assert blob.size_bytes == 60


class TestFillers:
    def test_constant(self):
        w = fillers.constant((3, 4), 2.5)
        assert w.dtype == np.float32
        np.testing.assert_allclose(w, 2.5)

    def test_gaussian_stats(self):
        rng = np.random.default_rng(0)
        w = fillers.gaussian(rng, (200, 200), std=0.01)
        assert abs(float(w.mean())) < 1e-3
        assert float(w.std()) == pytest.approx(0.01, rel=0.05)

    def test_xavier_bounds(self):
        rng = np.random.default_rng(0)
        w = fillers.xavier(rng, (64, 32, 3, 3))
        limit = np.sqrt(6.0 / (32 * 9 + 64 * 9))
        assert float(np.abs(w).max()) <= limit

    def test_msra_variance(self):
        rng = np.random.default_rng(0)
        w = fillers.msra(rng, (256, 64, 3, 3))
        expected_std = np.sqrt(2.0 / (64 * 9))
        assert float(w.std()) == pytest.approx(expected_std, rel=0.05)

    def test_deterministic_given_rng(self):
        a = fillers.msra(np.random.default_rng(7), (8, 8))
        b = fillers.msra(np.random.default_rng(7), (8, 8))
        np.testing.assert_array_equal(a, b)

    def test_registry_complete(self):
        rng = np.random.default_rng(1)
        for name, fn in fillers.FILLERS.items():
            out = fn(rng, (4, 4))
            assert out.shape == (4, 4)
            assert out.dtype == np.float32


class TestSyntheticData:
    def test_shapes_and_ranges(self):
        rng = np.random.default_rng(0)
        x, y = synthetic_batch(rng, 8, CIFAR_SHAPE, 10)
        assert x.shape == (8, 3, 32, 32)
        assert x.dtype == np.float32
        assert y.shape == (8,)
        assert y.min() >= 0 and y.max() < 10

    def test_imagenet_default(self):
        rng = np.random.default_rng(0)
        x, _ = synthetic_batch(rng, 2)
        assert x.shape == (2, *IMAGENET_SHAPE)

    def test_stream_deterministic(self):
        a = synthetic_stream(5, 4, CIFAR_SHAPE, 10)
        b = synthetic_stream(5, 4, CIFAR_SHAPE, 10)
        for _ in range(3):
            xa, ya = next(a)
            xb, yb = next(b)
            np.testing.assert_array_equal(xa, xb)
            np.testing.assert_array_equal(ya, yb)

    def test_stream_advances(self):
        s = synthetic_stream(5, 4, CIFAR_SHAPE, 10)
        x1, _ = next(s)
        x2, _ = next(s)
        assert not np.array_equal(x1, x2)


class TestTimeNet:
    def _net(self):
        handle = CudnnHandle(mode=ExecMode.TIMING)
        return build_tiny_cnn(batch=8).setup(handle, workspace_limit=1 * MIB)

    def test_report_structure(self):
        report = time_net(self._net(), iterations=3)
        assert report.iterations == 3
        assert report.net_name == "tiny_cnn"
        assert len(report.layers) > 0
        assert report.total == pytest.approx(
            report.conv_total + report.other_total
        )
        assert report.total == pytest.approx(
            report.forward_total + report.backward_total
        )

    def test_conv_split(self):
        report = time_net(self._net(), iterations=2)
        conv_names = {l.name for l in report.conv_layers()}
        assert conv_names == {"conv1", "conv2"}
        assert report.conv_total > 0
        assert report.other_total > 0

    def test_mean_is_stable_across_iteration_counts(self):
        """The deterministic model gives identical per-iteration means."""
        a = time_net(self._net(), iterations=1)
        b = time_net(self._net(), iterations=4)
        assert a.total == pytest.approx(b.total, rel=1e-9)

    def test_by_layer_lookup(self):
        report = time_net(self._net(), iterations=1)
        assert report.by_layer()["conv1"].is_conv

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            time_net(self._net(), iterations=0)


class TestChromeTrace:
    def test_export_structure(self):
        import json

        from repro.frameworks.timing import export_chrome_trace

        handle = CudnnHandle(mode=ExecMode.TIMING)
        net = build_tiny_cnn(batch=8).setup(handle, workspace_limit=1 * MIB)
        report = time_net(net, iterations=1)
        trace = json.loads(export_chrome_trace(report))
        events = trace["traceEvents"]
        # Two events per layer: one forward (tid 1), one backward (tid 2).
        assert len(events) == 2 * len(report.layers)
        assert {e["tid"] for e in events} == {1, 2}
        assert all(e["ph"] == "X" and e["dur"] >= 0 for e in events)
        # Events are laid out back to back on a single timeline.
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        # Total duration equals the report's iteration time (in us).
        total_us = sum(e["dur"] for e in events)
        assert total_us == pytest.approx(report.total * 1e6, rel=1e-9)
        # Conv layers are categorized for coloring.
        conv_events = [e for e in events if e["cat"] == "conv"]
        assert len(conv_events) == 2 * len(report.conv_layers())
