"""reprolint tests: golden reports, suppressions, config, CLI, meta-check.

The fixture tree seeds exactly one violation per checkable rule (two for
ERR001/ZOV001, which have two distinct shapes) plus an unparseable file for
``SYN001``; the golden text and JSON reports pin the exact rendering, so any
change to a rule's message, position, severity resolution, sort order, or
the reporters themselves shows up as a diff here.  The meta-test at the
bottom runs the real linter with the real ``pyproject.toml`` config over the
real ``src/`` tree -- the repo must hold its own contracts.
"""

from __future__ import annotations

import json
import pathlib
import textwrap

import pytest

from repro.analysis import (
    LintConfig,
    Report,
    check_source,
    lint_paths,
    load_config,
    render_json,
    render_text,
)
from repro.analysis.cli import main as cli_main
from repro.analysis.config import ConfigError, find_pyproject, path_matches
from repro.analysis.registry import all_rules, get_rule, rule_ids
from repro.analysis.report import render_explanation, render_rules

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

# ---------------------------------------------------------------------------
# Fixture tree: one seeded violation per rule
# ---------------------------------------------------------------------------

FIXTURES: dict[str, str] = {
    "core/determinism_bad.py": '''\
"""DET001 fixture: wall-clock and set iteration in a core module."""
import time


def stamp() -> float:
    return time.time()
''',
    "core/overhead_bad.py": '''\
"""ZOV001 fixture: unguarded telemetry in a loop, chained recorder."""
import repro.observability as observability
import repro.telemetry as telemetry


def hot(sizes: list) -> None:
    for size in sizes:
        telemetry.count("fixture.iterations")
    observability.recorder().record("fixture", n=len(sizes))
''',
    "core/units_bad.py": '''\
"""UNI001 fixture: raw byte-count literal."""
DEFAULT_WORKSPACE = 8 * 1024 * 1024
''',
    "parallel/threads_bad.py": '''\
"""THR001 fixture: lock declared, mutation outside it."""
import threading


class Pool:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.jobs: list = []

    def add(self, job) -> None:
        self.jobs.append(job)
''',
    "core/errors_bad.py": '''\
"""ERR001 fixture: bare except and off-taxonomy raise."""


def swallow() -> None:
    try:
        pass
    except:
        pass


def explode() -> None:
    raise RuntimeError("boom")
''',
    "core/api_bad.py": '''\
"""API001 fixture: public function missing annotations."""


def optimize(kernel, limit=None):
    return kernel
''',
    "parallel/conc_bad.py": '''\
"""CONC fixtures: lock-order cycle, blocking/callback under lock, split."""
import threading
import time

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def ab() -> None:
    with LOCK_A:
        with LOCK_B:
            pass


def ba() -> None:
    with LOCK_B:
        with LOCK_A:
            pass


def sleepy() -> None:
    with LOCK_A:
        time.sleep(0.1)


def fire(callbacks: list) -> None:
    with LOCK_B:
        for callback in callbacks:
            callback()


def grab() -> None:
    LOCK_A.acquire()
''',
    "core/syntax_bad.py": "def broken(:\n",
}

GOLDEN_TEXT = """\
reprolint: 13 finding(s) in 8 of 8 file(s)

core/api_bad.py
  4:1   API001   error  public function `optimize` missing annotations: parameter `kernel`, parameter `limit`, return type

core/determinism_bad.py
  6:12  DET001   error  wall-clock call `time.time()` in deterministic module; take time from an injected Clock (repro.telemetry.clock) instead

core/errors_bad.py
  7:5   ERR001   error  bare `except:` without re-raise swallows taxonomy information; catch the specific repro.errors classes or re-raise
  12:5  ERR001   error  raise of `RuntimeError` outside the repro.errors taxonomy; use the closest taxonomy class (see repro/errors.py) or a precise builtin

core/overhead_bad.py
  8:9   ZOV001   error  telemetry call `telemetry.count(...)` inside a loop without an `if telemetry.enabled():` guard (zero-overhead contract)
  9:5   ZOV001   error  chained recorder call `...recorder().record(...)` can never be guarded; bind the recorder and guard with `if rec:`

core/syntax_bad.py
  1:12  SYN001   error  file does not parse: invalid syntax

core/units_bad.py
  2:21  UNI001   error  raw byte-count literal 8388608 (8 MiB if bytes) -- build sizes with repro.units helpers (mib/kib or * MIB) so the unit is explicit

parallel/conc_bad.py
  11:1  CONC001  error  lock-order cycle: 'parallel/conc_bad.py::LOCK_A' -> 'parallel/conc_bad.py::LOCK_B' -> 'parallel/conc_bad.py::LOCK_A'; path 1: ab (parallel/conc_bad.py) (parallel/conc_bad.py:11) acquires 'parallel/conc_bad.py::LOCK_B' while holding 'parallel/conc_bad.py::LOCK_A' (taken at line 10); path 2: ba (parallel/conc_bad.py) (parallel/conc_bad.py:17) acquires 'parallel/conc_bad.py::LOCK_A' while holding 'parallel/conc_bad.py::LOCK_B' (taken at line 16)
  23:1  CONC002  error  blocking call (time.sleep) while holding lock 'parallel/conc_bad.py::LOCK_A' (taken at line 22); move the blocking work outside the lock or declare the level in [tool.reprolint.locks] blocking-allowed
  29:1  CONC003  error  user callback `callback(...)` (iterated from a listener container) invoked while holding lock 'parallel/conc_bad.py::LOCK_B'; collect callbacks under the lock, invoke them after release
  33:1  CONC004  error  lock `parallel/conc_bad.py::LOCK_A` acquired here is not released in the same function; cross-function acquire/release hides the critical section -- use `with` in one scope

parallel/threads_bad.py
  11:9  THR001   error  mutation of `self.jobs.append(...)` in threaded module outside `with self._lock:` (class Pool owns that lock)

summary
  API001      1  public-annotations
  CONC001     1  lock-order-cycle
  CONC002     1  blocking-under-lock
  CONC003     1  callback-under-lock
  CONC004     1  split-acquire-release
  DET001      1  determinism
  ERR001      2  error-taxonomy
  SYN001      1  unparseable
  THR001      1  thread-safety
  UNI001      1  units
  ZOV001      2  zero-overhead

13 error(s), 0 warning(s)
"""

GOLDEN_JSON = """\
{
  "counts": {
    "UNI001": 1
  },
  "errors": 1,
  "files_checked": 1,
  "schema_version": 1,
  "tool": "reprolint",
  "violations": [
    {
      "col": 21,
      "file": "core/units_bad.py",
      "line": 2,
      "message": "raw byte-count literal 8388608 (8 MiB if bytes) -- build sizes with repro.units helpers (mib/kib or * MIB) so the unit is explicit",
      "rule": "UNI001",
      "severity": "error"
    }
  ],
  "warnings": 0
}
"""


def write_tree(root: pathlib.Path, fixtures: dict[str, str] = FIXTURES) -> pathlib.Path:
    tree = root / "tree"
    for relpath, source in fixtures.items():
        target = tree / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return tree


def lint_fixture_tree(root: pathlib.Path) -> Report:
    return lint_paths([write_tree(root)], LintConfig())


# ---------------------------------------------------------------------------
# Golden reports
# ---------------------------------------------------------------------------


class TestGoldenReports:
    def test_text_report_matches_golden(self, tmp_path):
        assert render_text(lint_fixture_tree(tmp_path)) == GOLDEN_TEXT

    def test_json_report_matches_golden(self, tmp_path):
        tree = write_tree(
            tmp_path, {"core/units_bad.py": FIXTURES["core/units_bad.py"]}
        )
        assert render_json(lint_paths([tree], LintConfig())) == GOLDEN_JSON

    def test_reports_are_byte_deterministic(self, tmp_path):
        a = lint_fixture_tree(tmp_path / "a")
        b = lint_fixture_tree(tmp_path / "b")
        assert render_text(a) == render_text(b)
        assert render_json(a) == render_json(b)

    def test_json_parses_and_agrees_with_text(self, tmp_path):
        report = lint_fixture_tree(tmp_path)
        payload = json.loads(render_json(report))
        assert payload["schema_version"] == 1
        assert payload["errors"] == report.errors == 13
        assert payload["files_checked"] == 8
        assert sum(payload["counts"].values()) == len(payload["violations"])

    def test_clean_tree_renders_clean(self, tmp_path):
        tree = write_tree(tmp_path, {"core/ok.py": "X: int = 1\n"})
        report = lint_paths([tree], LintConfig())
        assert report.exit_code == 0
        assert render_text(report) == "reprolint: clean (1 file(s) checked)\n"

    def test_every_checkable_rule_fires_on_the_fixture_tree(self, tmp_path):
        fired = set(lint_fixture_tree(tmp_path).counts())
        expected = {r.id for r in all_rules() if not r.engine_emitted} | {"SYN001"}
        assert fired == expected


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    def check(self, source: str, relpath: str = "core/mod.py") -> list:
        return check_source(textwrap.dedent(source), relpath, LintConfig())

    def test_line_suppression_silences_and_counts_as_used(self):
        found = self.check(
            """\
            X = 8 * 1024 * 1024  # reprolint: disable=UNI001 -- fixture bytes
            """
        )
        assert found == []

    def test_def_header_suppression_covers_the_whole_block(self):
        found = self.check(
            """\
            import time


            def f() -> float:  # reprolint: disable=DET001 -- fixture
                a = time.time()
                b = time.time()
                return a + b
            """
        )
        assert found == []

    def test_file_level_suppression_covers_the_file(self):
        found = self.check(
            """\
            # reprolint: disable-file=DET001 -- fixture module
            import time

            A = time.time()


            def f() -> float:
                return time.time()
            """
        )
        assert found == []

    def test_unused_suppression_is_reported_as_sup001(self):
        found = self.check("X: int = 1  # reprolint: disable=UNI001\n")
        assert [(v.rule, v.line) for v in found] == [("SUP001", 1)]
        assert "unused suppression" in found[0].message

    def test_unknown_rule_in_suppression_is_reported(self):
        found = self.check("X: int = 1  # reprolint: disable=NOPE99\n")
        assert [v.rule for v in found] == ["SUP001"]
        assert "unknown rule" in found[0].message

    def test_suppressing_a_disabled_rule_is_not_flagged_unused(self):
        config = LintConfig(severity={"UNI001": "off"})
        found = check_source(
            "X: int = 1  # reprolint: disable=UNI001\n", "core/mod.py", config
        )
        assert found == []

    def test_suppression_of_one_rule_keeps_the_other(self):
        found = self.check(
            """\
            import time


            def f(x):  # reprolint: disable=DET001 -- fixture
                return time.time()
            """
        )
        assert [v.rule for v in found] == ["API001"]


# ---------------------------------------------------------------------------
# Config
# ---------------------------------------------------------------------------


class TestConfig:
    def test_round_trip_is_lossless(self):
        config = LintConfig(
            select=("DET001", "UNI001"),
            severity={"UNI001": "warning"},
            exclude=("fixtures/",),
            rules={"uni001": {"min-bytes": 1024}},
        )
        assert LintConfig.from_mapping(config.to_mapping()) == config
        assert LintConfig.from_mapping(LintConfig().to_mapping()) == LintConfig()

    def test_load_config_missing_file_yields_defaults(self, tmp_path):
        assert load_config(tmp_path / "nope.toml") == LintConfig()
        assert load_config(None) == LintConfig()

    def test_load_config_reads_the_repo_pyproject(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        assert set(config.select) == rule_ids()
        assert config.rule_options("UNI001")["min-bytes"] == 1048576

    def test_bad_severity_raises_config_error(self):
        with pytest.raises(ConfigError):
            LintConfig.from_mapping({"severity": {"UNI001": "loud"}})
        with pytest.raises(ConfigError):
            LintConfig.from_mapping({"select": "DET001"})

    def test_severity_override_downgrades_exit_code(self, tmp_path):
        tree = write_tree(
            tmp_path, {"core/units_bad.py": FIXTURES["core/units_bad.py"]}
        )
        report = lint_paths([tree], LintConfig(severity={"UNI001": "warning"}))
        assert report.exit_code == 0 and report.warnings == 1

    def test_select_narrows_the_rule_set(self, tmp_path):
        report = lint_paths(
            [write_tree(tmp_path)], LintConfig(select=("UNI001", "ERR001"))
        )
        assert set(report.counts()) == {"UNI001", "ERR001"}

    def test_global_exclude_skips_files(self, tmp_path):
        report = lint_paths(
            [write_tree(tmp_path)], LintConfig(exclude=("core/",))
        )
        assert set(v.file for v in report.violations) == {
            "parallel/conc_bad.py", "parallel/threads_bad.py"
        }

    def test_path_matches_semantics(self):
        assert path_matches("core/wr.py", ("core/",))
        assert path_matches("core/wr.py", ("core/wr.py",))
        assert path_matches("anything.py", (".",))
        assert not path_matches("cudnn/api.py", ("core/",))

    def test_find_pyproject_walks_up(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[tool.reprolint]\n")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        assert find_pyproject(nested) == tmp_path / "pyproject.toml"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_exit_one_and_report_on_findings(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        tree = write_tree(tmp_path)
        assert cli_main([str(tree)]) == 1
        assert capsys.readouterr().out == GOLDEN_TEXT

    def test_json_format_and_output_file(self, tmp_path, capsys):
        tree = write_tree(
            tmp_path, {"core/units_bad.py": FIXTURES["core/units_bad.py"]}
        )
        out = tmp_path / "reports" / "lint.json"
        assert cli_main(
            [str(tree), "--format", "json", "--output", str(out)]
        ) == 1
        assert capsys.readouterr().out == GOLDEN_JSON
        assert out.read_text(encoding="utf-8") == GOLDEN_JSON

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        tree = write_tree(tmp_path, {"core/ok.py": "X: int = 1\n"})
        assert cli_main([str(tree)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_list_rules_covers_every_registered_rule(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in out

    def test_explain_prints_the_rule_card(self, capsys):
        assert cli_main(["--explain", "ZOV001"]) == 0
        card = capsys.readouterr().out
        assert card == render_explanation("ZOV001")
        for needle in ("invariant:", "why:", "fix:", "suppress with"):
            assert needle in card

    def test_explain_unknown_rule_is_a_usage_error(self, capsys):
        assert cli_main(["--explain", "NOPE99"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_a_usage_error(self, tmp_path, capsys):
        assert cli_main([str(tmp_path / "nowhere")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_config_flag_overrides_discovery(self, tmp_path, capsys):
        tree = write_tree(
            tmp_path, {"core/units_bad.py": FIXTURES["core/units_bad.py"]}
        )
        config = tmp_path / "custom.toml"
        config.write_text('[tool.reprolint]\nselect = ["DET001"]\n')
        assert cli_main([str(tree), "--config", str(config)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_malformed_config_is_a_config_error(self, tmp_path, capsys):
        tree = write_tree(tmp_path, {"core/ok.py": "X: int = 1\n"})
        config = tmp_path / "bad.toml"
        config.write_text('[tool.reprolint]\nselect = "DET001"\n')
        assert cli_main([str(tree), "--config", str(config)]) == 2
        assert "configuration error" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Rule metadata
# ---------------------------------------------------------------------------


class TestRuleRegistry:
    def test_rules_carry_complete_explain_cards(self):
        for rule in all_rules():
            assert rule.id and rule.name and rule.invariant
            assert rule.rationale and rule.fix
            assert rule.default_severity in ("error", "warning")
            assert render_explanation(rule.id) is not None

    def test_list_rules_rendering_is_aligned(self):
        lines = render_rules().splitlines()
        assert len(lines) == len(all_rules())

    def test_engine_emitted_rules_are_not_checkable(self):
        for rule_id in ("SUP001", "SYN001"):
            rule = get_rule(rule_id)
            assert rule is not None and rule.engine_emitted


# ---------------------------------------------------------------------------
# Meta: the repo passes its own linter
# ---------------------------------------------------------------------------


class TestRepoIsClean:
    def test_src_tree_passes_reprolint_with_repo_config(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        report = lint_paths([REPO_ROOT / "src"], config)
        assert report.violations == [], render_text(report)
        assert report.files_checked >= 90
