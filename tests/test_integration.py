"""Cross-module integration tests: the full pipeline, end to end.

Everything at once: a real network, a UcudnnHandle, numeric execution,
WD over an Inception topology, memory accounting, and the file cache --
exercised together the way a downstream user would.
"""

import numpy as np
import pytest

from repro.core import BatchSizePolicy, Options, UcudnnHandle
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.frameworks import time_net
from repro.frameworks.data import synthetic_batch
from repro.frameworks.model_zoo import (
    build_inception_tower,
    build_resnet18,
    build_tiny_cnn,
)
from repro.frameworks.solver import SGDSolver
from repro.memory import memory_report
from repro.units import KIB, MIB


class TestInceptionWDEndToEnd:
    def test_numeric_wd_training_step(self, rng):
        """WD mode driving a real (numeric) Inception module: the first
        convolution triggers benchmarking + Pareto pruning + the ILP, then
        the step runs micro-batched and matches plain cuDNN."""
        def step(handle):
            net = build_inception_tower(batch=8, modules=1, num_classes=5).setup(
                handle, workspace_limit=None, rng=np.random.default_rng(3)
            )
            x = np.random.default_rng(4).standard_normal(
                (8, 192, 28, 28)).astype(np.float32)
            labels = np.array([0, 1, 2, 3, 4, 0, 1, 2])
            loss = net.forward({"data": x}, labels)
            net.backward()
            return loss, net

        ref_loss, _ = step(CudnnHandle())
        handle = UcudnnHandle(options=Options(policy=BatchSizePolicy.POWER_OF_TWO,
                                              total_workspace=4 * MIB))
        wd_loss, _ = step(handle)
        assert wd_loss == pytest.approx(ref_loss, rel=1e-4)
        assert handle.wd_result is not None
        assert handle.wd_result.total_workspace <= 4 * MIB
        # Every one of the module's 18 kernels (6 convs x 3 ops) got a config.
        assert len(handle.configurations()) == 18

    def test_wd_memory_books_balance(self):
        handle = UcudnnHandle(
            mode=ExecMode.TIMING,
            options=Options(policy=BatchSizePolicy.POWER_OF_TWO,
                            total_workspace=32 * MIB),
        )
        net = build_inception_tower(batch=32, modules=2).setup(
            handle, workspace_limit=None
        )
        net.forward()
        net.backward()
        live_ws = handle.gpu.memory.live_by_tag().get("workspace", 0)
        assert live_ws == handle.total_workspace_bytes()
        assert live_ws <= 32 * MIB
        report = memory_report(net, handle)
        # Per-layer attribution can exceed the physical footprint because
        # the two identical inception modules share workspace slots (one
        # slot per distinct geometry); the physical book is `live_ws`.
        assert report.total_workspace >= live_ws
        for layer in report.layers:
            assert layer.workspace_bytes <= 32 * MIB


class TestResNetTimingEndToEnd:
    def test_resnet18_caffe_driver_with_cache_reuse(self, tmp_path):
        """ResNet-18's replicated blocks hit the benchmark cache; a second
        process-equivalent handle reuses the file DB entirely."""
        db = tmp_path / "bench.json"
        handle = UcudnnHandle(
            mode=ExecMode.TIMING,
            options=Options(policy=BatchSizePolicy.POWER_OF_TWO,
                            workspace_limit=64 * MIB,
                            benchmark_db=str(db)),
        )
        net = build_resnet18(batch=128).setup(handle, workspace_limit=64 * MIB)
        report = time_net(net, iterations=1)
        assert report.conv_total > 0
        first_cost = handle.benchmark_time
        assert first_cost > 0
        # 20 conv layers but far fewer distinct geometries: replicated
        # blocks were deduplicated before ever reaching the benchmarker.
        distinct = len(handle.configurations())
        assert distinct < 3 * len(net.conv_layers())
        handle.cache.save()

        second = UcudnnHandle(
            mode=ExecMode.TIMING,
            options=Options(policy=BatchSizePolicy.POWER_OF_TWO,
                            workspace_limit=64 * MIB,
                            benchmark_db=str(db)),
        )
        net2 = build_resnet18(batch=128).setup(second, workspace_limit=64 * MIB)
        time_net(net2, iterations=1)
        assert second.benchmark_time == 0.0  # offline benchmarking, realized


class TestSolverOnUcudnn:
    def test_full_training_loop_under_wd(self):
        """SGD + WD + numeric kernels, several steps, loss decreases."""
        handle = UcudnnHandle(options=Options(
            policy=BatchSizePolicy.POWER_OF_TWO, total_workspace=256 * KIB))
        net = build_tiny_cnn(batch=16).setup(
            handle, workspace_limit=None, rng=np.random.default_rng(0)
        )
        solver = SGDSolver(net, lr=0.05, momentum=0.9)
        x, y = synthetic_batch(np.random.default_rng(1), 16, (3, 16, 16), 10)
        losses = [solver.step({"data": x}, y) for _ in range(12)]
        assert losses[-1] < 0.5 * losses[0]
