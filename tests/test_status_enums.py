"""Tests for the status-code machinery and algorithm enumerations."""

import pytest

from repro.cudnn.enums import (
    ALGOS_FOR,
    AlgoFamily,
    BwdDataAlgo,
    BwdFilterAlgo,
    ConvType,
    FwdAlgo,
    algos_for,
    family_of,
)
from repro.cudnn.status import Status, check, error
from repro.errors import (
    AllocFailedError,
    BadParamError,
    CudnnStatusError,
    ExecutionFailedError,
    NotSupportedError,
    ReproError,
    UcudnnError,
    WorkspaceTooSmallError,
)


class TestStatus:
    def test_success_is_zero(self):
        assert Status.SUCCESS == 0  # the C ABI convention

    def test_check_success_is_noop(self):
        check(Status.SUCCESS)

    @pytest.mark.parametrize("status,exc", [
        (Status.BAD_PARAM, BadParamError),
        (Status.NOT_SUPPORTED, NotSupportedError),
        (Status.ALLOC_FAILED, AllocFailedError),
        (Status.EXECUTION_FAILED, ExecutionFailedError),
        (Status.INTERNAL_ERROR, CudnnStatusError),
    ])
    def test_check_raises_mapped_exception(self, status, exc):
        with pytest.raises(exc) as ei:
            check(status, "context")
        assert ei.value.status == status
        assert "context" in str(ei.value)

    def test_error_builds_without_raising(self):
        e = error(Status.NOT_SUPPORTED, "nope")
        assert isinstance(e, NotSupportedError)
        with pytest.raises(ValueError):
            error(Status.SUCCESS)

    def test_exception_hierarchy(self):
        assert issubclass(WorkspaceTooSmallError, BadParamError)
        assert issubclass(BadParamError, CudnnStatusError)
        assert issubclass(CudnnStatusError, ReproError)
        assert issubclass(UcudnnError, ReproError)

    def test_workspace_error_carries_sizes(self):
        e = WorkspaceTooSmallError(Status.BAD_PARAM, required=100, provided=99)
        assert e.required == 100 and e.provided == 99
        assert "100" in str(e) and "99" in str(e)


class TestEnums:
    def test_cudnn7_fwd_ordinals(self):
        """The file DB stores raw ordinals; they must match cuDNN 7."""
        assert FwdAlgo.IMPLICIT_GEMM == 0
        assert FwdAlgo.IMPLICIT_PRECOMP_GEMM == 1
        assert FwdAlgo.GEMM == 2
        assert FwdAlgo.DIRECT == 3
        assert FwdAlgo.FFT == 4
        assert FwdAlgo.FFT_TILING == 5
        assert FwdAlgo.WINOGRAD == 6
        assert FwdAlgo.WINOGRAD_NONFUSED == 7

    def test_eight_forward_algorithms(self):
        """The paper: 'cuDNN provides up to eight different algorithms'."""
        assert len(list(FwdAlgo)) == 8

    def test_algos_for_matches_registry(self):
        for ct in ConvType:
            assert algos_for(ct) == list(ALGOS_FOR[ct])

    def test_short_tags(self):
        assert ConvType.FORWARD.short == "F"
        assert ConvType.BACKWARD_DATA.short == "BD"
        assert ConvType.BACKWARD_FILTER.short == "BF"

    def test_every_family_reachable(self):
        families = {
            family_of(ct, algo) for ct in ConvType for algo in algos_for(ct)
        }
        assert families == set(AlgoFamily)

    def test_bwd_filter_has_no_fused_winograd(self):
        """cuDNN 7 quirk preserved: BackwardFilter lacks the fused WINOGRAD
        (only NONFUSED, value 5) and has no algorithm 4."""
        values = {int(a) for a in BwdFilterAlgo}
        assert 4 not in values
        assert BwdFilterAlgo.WINOGRAD_NONFUSED == 5
        assert BwdFilterAlgo.FFT_TILING == 6

    def test_bwd_data_six_algorithms(self):
        assert len(list(BwdDataAlgo)) == 6

    def test_family_of_rejects_garbage(self):
        with pytest.raises(ValueError):
            family_of("not-a-type", FwdAlgo.GEMM)
