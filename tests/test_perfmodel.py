"""Tests for the analytic performance model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.device import K80, P100_SXM2, V100_SXM2
from repro.cudnn.enums import ConvType, FwdAlgo, algos_for
from repro.cudnn.perfmodel import PerfModel, family_to_algo
from repro.cudnn.workspace import is_supported
from repro.errors import NotSupportedError
from repro.units import MIB
from tests.conftest import make_geometry

CONV2 = ConvGeometry(ConvType.FORWARD, 256, 64, 27, 27, 192, 5, 5, 2, 2)


@pytest.fixture
def pm():
    return PerfModel(P100_SXM2)


class TestDeterminism:
    def test_time_is_pure(self, pm):
        g = make_geometry()
        assert pm.time(g, FwdAlgo.WINOGRAD) == pm.time(g, FwdAlgo.WINOGRAD)

    def test_find_all_stable(self, pm):
        a = pm.find_all(CONV2)
        b = pm.find_all(CONV2)
        assert [(r.algo, r.time) for r in a] == [(r.algo, r.time) for r in b]

    def test_jitter_zero_by_default(self):
        g = make_geometry()
        assert PerfModel(P100_SXM2).time(g, FwdAlgo.WINOGRAD) == \
            PerfModel(P100_SXM2, jitter=0.0).time(g, FwdAlgo.WINOGRAD)

    def test_jitter_bounded_and_deterministic(self):
        g = make_geometry()
        noisy = PerfModel(P100_SXM2, jitter=0.1)
        base = PerfModel(P100_SXM2).time(g, FwdAlgo.WINOGRAD)
        t1 = noisy.time(g, FwdAlgo.WINOGRAD, sample=1)
        t2 = noisy.time(g, FwdAlgo.WINOGRAD, sample=2)
        assert t1 == noisy.time(g, FwdAlgo.WINOGRAD, sample=1)
        assert abs(t1 / base - 1.0) <= 0.1 + 1e-12
        assert t1 != t2  # different samples differ (almost surely)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            PerfModel(P100_SXM2, jitter=-0.1)


class TestPaperShapes:
    def test_fft_beats_gemm_on_conv2(self, pm):
        """The 5x5 layer is the FFT showcase (Fig. 1/9)."""
        t_fft = pm.time(CONV2, FwdAlgo.FFT)
        t_gemm = pm.time(CONV2, FwdAlgo.IMPLICIT_PRECOMP_GEMM)
        assert 2.0 < t_gemm / t_fft < 10.0

    def test_winograd_wins_3x3(self, pm):
        """AlexNet conv3-5 territory: Winograd should top 3x3 layers."""
        g = ConvGeometry(ConvType.FORWARD, 256, 192, 13, 13, 384, 3, 3, 1, 1)
        best = pm.find_all(g)[0]
        assert best.algo in (FwdAlgo.WINOGRAD, FwdAlgo.WINOGRAD_NONFUSED)

    def test_stride4_layer_gets_gemm_only(self, pm):
        conv1 = ConvGeometry(ConvType.FORWARD, 256, 3, 227, 227, 64, 11, 11,
                             0, 0, 4, 4)
        ok = [r.algo for r in pm.find_all(conv1) if r.ok]
        assert set(ok) <= {FwdAlgo.IMPLICIT_GEMM, FwdAlgo.IMPLICIT_PRECOMP_GEMM,
                           FwdAlgo.GEMM}

    def test_per_sample_time_improves_with_batch(self, pm):
        """Occupancy: small micro-batches are less efficient per sample --
        the force that bounds how finely WR divides."""
        t1 = pm.time(CONV2.with_batch(1), FwdAlgo.IMPLICIT_PRECOMP_GEMM)
        t256 = pm.time(CONV2, FwdAlgo.IMPLICIT_PRECOMP_GEMM)
        assert t1 > t256 / 256

    def test_faster_gpus_are_faster(self):
        g = CONV2
        times = [
            PerfModel(spec).time(g, FwdAlgo.IMPLICIT_PRECOMP_GEMM)
            for spec in (K80, P100_SXM2, V100_SXM2)
        ]
        assert times[0] > times[1] > times[2]

    def test_backward_filter_costs_more_than_forward(self, pm):
        from repro.cudnn.enums import BwdFilterAlgo

        f = pm.time(CONV2, FwdAlgo.IMPLICIT_PRECOMP_GEMM)
        bf = pm.time(CONV2.with_type(ConvType.BACKWARD_FILTER), BwdFilterAlgo.ALGO_1)
        assert bf > f


class TestQueries:
    def test_unsupported_raises(self, pm):
        with pytest.raises(NotSupportedError):
            pm.time(make_geometry(), FwdAlgo.DIRECT)

    def test_query_reports_status(self, pm):
        r = pm.query(make_geometry(), FwdAlgo.DIRECT)
        assert not r.ok and math.isinf(r.time)

    def test_find_all_sorted_and_complete(self, pm):
        results = pm.find_all(CONV2)
        assert len(results) == len(algos_for(ConvType.FORWARD))
        times = [r.time for r in results]
        assert times == sorted(times)

    def test_fastest_respects_limit(self, pm):
        unlimited = pm.fastest(CONV2)
        capped = pm.fastest(CONV2, workspace_limit=64 * MIB)
        assert unlimited.workspace > 64 * MIB
        assert capped.workspace <= 64 * MIB
        assert capped.time >= unlimited.time

    def test_fastest_zero_limit_always_exists(self, pm):
        r = pm.fastest(CONV2, workspace_limit=0)
        assert r is not None and r.workspace == 0

    def test_minus_one_byte_cliff(self, pm):
        """The Fig. 1 mechanism: one byte under the best requirement forces a
        strictly slower algorithm."""
        best = pm.fastest(CONV2)
        fallback = pm.fastest(CONV2, workspace_limit=best.workspace - 1)
        assert fallback.time > best.time


@given(n=st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128, 256]))
def test_times_positive_and_finite_across_batches(n):
    pm = PerfModel(P100_SXM2)
    g = CONV2.with_batch(n)
    for r in pm.find_all(g):
        if r.ok:
            assert 0 < r.time < 10.0  # sane range for one kernel


def test_family_to_algo_roundtrip():
    from repro.cudnn.enums import family_of
    for ct in ConvType:
        for algo in algos_for(ct):
            fam = family_of(ct, algo)
            assert family_of(ct, family_to_algo(ct, fam)) == fam
