"""Tests for the model zoo: layer geometry tables of the paper's networks."""

import numpy as np
import pytest

from repro.cudnn.enums import ConvType
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.frameworks.model_zoo import (
    build_alexnet,
    build_conv_pair,
    build_densenet40,
    build_inception_tower,
    build_resnet18,
    build_resnet50,
    build_tiny_cnn,
)
from repro.units import MIB


def setup_timing(net):
    return net.setup(CudnnHandle(mode=ExecMode.TIMING), workspace_limit=8 * MIB)


class TestAlexNet:
    def test_conv_geometry_table(self):
        """The one-column AlexNet plan the whole evaluation references."""
        net = setup_timing(build_alexnet(batch=256))
        geoms = {k: g for k, g in net.conv_geometries().items()
                 if g.conv_type == ConvType.FORWARD}
        expect = {
            "conv1": (256, 3, 227, 227, 64, 11, 4),
            "conv2": (256, 64, 27, 27, 192, 5, 1),
            "conv3": (256, 192, 13, 13, 384, 3, 1),
            "conv4": (256, 384, 13, 13, 256, 3, 1),
            "conv5": (256, 256, 13, 13, 256, 3, 1),
        }
        for name, (n, c, h, w, k, r, stride) in expect.items():
            g = geoms[f"{name}:Forward"]
            assert (g.n, g.c, g.h, g.w, g.k, g.r, g.stride_h) == \
                (n, c, h, w, k, r, stride), name

    def test_15_conv_kernels(self):
        """5 conv layers x 3 operations = the 15 kernels of Fig. 14."""
        net = setup_timing(build_alexnet(batch=256))
        assert len(net.conv_geometries()) == 15

    def test_fc_shapes(self):
        net = setup_timing(build_alexnet(batch=4))
        assert net.blobs["p5"].shape == (4, 256, 6, 6)
        assert net.blobs["f6"].shape == (4, 4096)
        assert net.blobs["f8"].shape == (4, 1000)

    def test_param_count(self):
        """One-column AlexNet has ~61M parameters."""
        net = setup_timing(build_alexnet(batch=1))
        params = sum(p.count for p in net.params())
        assert 55e6 < params < 65e6

    def test_trains_numerically(self, rng):
        net = build_alexnet(batch=2, num_classes=10).setup(
            CudnnHandle(), workspace_limit=8 * MIB, rng=rng
        )
        x = rng.standard_normal((2, 3, 227, 227)).astype(np.float32)
        loss = net.forward({"data": x}, np.array([1, 2]))
        assert np.isfinite(loss)
        net.backward()


class TestResNet:
    def test_resnet18_stage_shapes(self):
        net = setup_timing(build_resnet18(batch=2))
        assert net.blobs["conv1_c"].shape == (2, 64, 112, 112)
        assert net.blobs["p1"].shape == (2, 64, 56, 56)
        assert net.blobs["res2b_sum"].shape == (2, 64, 56, 56)
        assert net.blobs["res3a_sum"].shape == (2, 128, 28, 28)
        assert net.blobs["res5b_sum"].shape == (2, 512, 7, 7)
        assert net.blobs["logits"].shape == (2, 1000)

    def test_resnet18_conv_count(self):
        # 1 stem + 8 blocks x 2 + 3 projections = 20 conv layers.
        net = setup_timing(build_resnet18(batch=2))
        assert len(net.conv_layers()) == 20

    def test_resnet50_conv_count(self):
        # 1 stem + 16 blocks x 3 + 4 projections = 53 conv layers.
        net = setup_timing(build_resnet50(batch=2))
        assert len(net.conv_layers()) == 53
        assert len(net.conv_geometries()) == 159  # ~paper's ILP scale

    def test_resnet50_bottleneck_shapes(self):
        net = setup_timing(build_resnet50(batch=2))
        assert net.blobs["res2a_sum"].shape == (2, 256, 56, 56)
        assert net.blobs["res5c_sum"].shape == (2, 2048, 7, 7)

    def test_resnet18_param_count(self):
        net = setup_timing(build_resnet18(batch=1))
        params = sum(p.count for p in net.params())
        assert 11e6 < params < 13e6  # ~11.7M

    def test_resnet18_trains(self, rng):
        net = build_resnet18(batch=2, num_classes=4).setup(
            CudnnHandle(), workspace_limit=8 * MIB, rng=rng
        )
        x = rng.standard_normal((2, 3, 224, 224)).astype(np.float32)
        loss = net.forward({"data": x}, np.array([0, 3]))
        assert np.isfinite(loss)
        net.backward()
        conv1 = net.layer("conv1")
        assert float(np.abs(conv1.params[0].grad).sum()) > 0


class TestDenseNet:
    def test_channel_growth(self):
        net = setup_timing(build_densenet40(batch=2, growth_rate=40))
        # Block 1: 16 + 12 * 40 = 496 channels at 32x32.
        assert net.blobs["b1l12_x"].shape == (2, 496, 32, 32)
        assert net.blobs["trans1_p"].shape == (2, 496, 16, 16)
        assert net.blobs["b2l12_x"].shape == (2, 976, 16, 16)
        assert net.blobs["b3l12_x"].shape == (2, 1456, 8, 8)
        assert net.blobs["logits"].shape == (2, 10)

    def test_40_layers(self):
        """L=40: 1 stem + 36 dense + 2 transitions + 1 fc."""
        net = setup_timing(build_densenet40(batch=2))
        assert len(net.conv_layers()) == 39  # 40 minus the final fc
        from repro.frameworks.layers import InnerProduct
        fcs = [l for l in net.layers if isinstance(l, InnerProduct)]
        assert len(fcs) == 1

    def test_trains(self, rng):
        net = build_densenet40(batch=2, growth_rate=4).setup(
            CudnnHandle(), workspace_limit=8 * MIB, rng=rng
        )
        x = rng.standard_normal((2, 3, 32, 32)).astype(np.float32)
        loss = net.forward({"data": x}, np.array([1, 9]))
        assert np.isfinite(loss)
        net.backward()


class TestInception:
    def test_module_output_channels(self):
        net = setup_timing(build_inception_tower(batch=2, modules=1))
        # 64 + 128 + 32 + 32 = 256 (inception_3a widths).
        assert net.blobs["inception_1_y"].shape == (2, 256, 28, 28)

    def test_concurrent_branch_kernels(self):
        """Six conv layers per module -- the WD concurrency workload."""
        net = setup_timing(build_inception_tower(batch=2, modules=2))
        assert len(net.conv_layers()) == 12

    def test_trains(self, rng):
        net = build_inception_tower(batch=2, modules=1, num_classes=5).setup(
            CudnnHandle(), workspace_limit=8 * MIB, rng=rng
        )
        x = rng.standard_normal((2, 192, 28, 28)).astype(np.float32)
        loss = net.forward({"data": x}, np.array([0, 4]))
        assert np.isfinite(loss)
        net.backward()


class TestTinyNets:
    def test_tiny_cnn(self):
        net = setup_timing(build_tiny_cnn(batch=4))
        assert net.blobs["logits"].shape == (4, 10)

    def test_conv_pair(self):
        net = setup_timing(build_conv_pair(batch=4))
        assert net.blobs["logits"].shape == (4, 3)
