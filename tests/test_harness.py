"""Smoke + shape tests for the experiment harness (cheap parameterizations).

The full paper-scale runs live under ``benchmarks/``; here each experiment
is exercised end-to-end with reduced sweeps so the suite stays fast, and the
key qualitative claims are asserted.
"""

import pytest

from repro.core.policies import BatchSizePolicy
from repro.harness import experiments as E
from repro.harness.tables import Table, bar, fmt_ms, fmt_ratio
from repro.units import MIB


class TestTables:
    def test_render(self):
        t = Table("Title", ["a", "bb"])
        t.add("x", 1)
        t.add("yyyy", 22)
        out = t.render()
        assert "Title" in out
        assert "yyyy" in out
        assert out.count("\n") == 5  # title, rule, header, sep, two rows

    def test_row_arity_checked(self):
        t = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_formatters(self):
        assert fmt_ms(0.00123) == "1.23"
        assert fmt_ratio(1.234) == "1.23x"
        assert bar(5, 10, width=10) == "#####"
        assert bar(1, 0) == ""

    def test_to_csv(self):
        t = Table("T", ["name", "value"])
        t.add("plain", 1)
        t.add("with, comma", 'quote " inside')
        csv = t.to_csv().splitlines()
        assert csv[0] == "name,value"
        assert csv[1] == "plain,1"
        assert csv[2] == '"with, comma","quote "" inside"'



class TestFig1:
    def test_conv2_cliff(self):
        res = E.fig1_best_vs_minus_one_byte()
        rows = {r.layer: r for r in res.rows}
        assert set(rows) == {"conv1", "conv2", "conv3", "conv4", "conv5"}
        # The paper's headline: conv2 pays ~4.5x when one byte short.
        assert 3.0 < rows["conv2"].penalty < 7.0
        # Every layer pays at least something (or breaks even).
        assert all(r.penalty >= 1.0 for r in res.rows)
        assert res.worst_penalty == rows["conv2"].penalty
        assert "conv2" in res.table.render()


class TestFig8:
    def test_front_shape(self):
        res = E.fig8_pareto_front(policy=BatchSizePolicy.POWER_OF_TWO)
        front = res.configurations
        assert len(front) >= 3
        wss = [c.workspace for c in front]
        times = [c.time for c in front]
        assert wss == sorted(wss)
        assert times == sorted(times, reverse=True)
        assert all(c.workspace <= res.workspace_limit for c in front)
        # The cheapest point uses (near) zero workspace; the fastest divides.
        assert front[0].workspace < 1 * MIB
        assert not front[-1].is_undivided


class TestFig9:
    def test_policy_ordering(self):
        res = E.fig9_conv2_wr()
        by = res.by_policy()
        assert by["all"].time <= by["powerOfTwo"].time + 1e-12
        assert by["powerOfTwo"].time < by["undivided"].time
        # Paper: ~2.33x for `all` over undivided; we assert the >1.5x band.
        assert by["undivided"].time / by["all"].time > 1.5
        assert by["undivided"].configuration.is_undivided


class TestFig10:
    def test_p100_subset(self):
        res = E.fig10_alexnet_three_gpus(
            gpus=("p100-sxm2",), policies=("undivided", "powerOfTwo"),
            iterations=1,
        )
        # 64 MiB is the sweet spot; 8 MiB gives ~nothing; 512 MiB ~nothing.
        assert res.conv_speedup("p100-sxm2", 64, "powerOfTwo") > 1.3
        assert res.conv_speedup("p100-sxm2", 8, "powerOfTwo") == \
            pytest.approx(1.0, abs=0.1)
        assert res.conv_speedup("p100-sxm2", 512, "powerOfTwo") == \
            pytest.approx(1.0, abs=0.1)
        # Totals include the non-conv time, so total speedup < conv speedup.
        assert res.total_speedup("p100-sxm2", 64, "powerOfTwo") < \
            res.conv_speedup("p100-sxm2", 64, "powerOfTwo")


class TestFig11:
    def test_tf_driver_subset(self):
        res = E.fig11_tensorflow(models=("alexnet",), iterations=1)
        assert res.total_speedup("alexnet", 64, "powerOfTwo") > 1.2
        assert res.total_speedup("alexnet", 8, "powerOfTwo") == \
            pytest.approx(1.0, abs=0.1)


class TestFig12:
    def test_memory_reductions(self):
        res = E.fig12_memory()
        alex = res.models["alexnet"]
        resn = res.models["resnet18"]
        # Paper: up to 3.43x / 2.73x per-layer cuts, negligible slowdown.
        assert alex.max_layer_reduction > 2.0
        assert resn.max_layer_reduction > 2.0
        assert alex.workspace_reduction > 1.5
        assert alex.slowdown < 1.35
        assert resn.slowdown < 1.35


class TestFig13:
    def test_wd_beats_wr_at_equal_total(self):
        res = E.fig13_wr_vs_wd(models=("alexnet",), per_kernel_mib=(8,))
        wd = res.cell("alexnet", "wd", 15 * 8 * MIB, "powerOfTwo")
        wr_undiv = res.cell("alexnet", "wr-undivided", 15 * 8 * MIB, "undivided")
        wr = res.cell("alexnet", "wr", 15 * 8 * MIB, "powerOfTwo")
        assert wd.conv_time <= wr.conv_time + 1e-12
        # Paper: WD@120MiB is ~1.38x faster (convolutions) than undivided.
        assert wr_undiv.conv_time / wd.conv_time > 1.2
        assert wd.workspace_used <= 15 * 8 * MIB


class TestFig14:
    def test_division_concentrates_on_conv2_conv3(self):
        res = E.fig14_workspace_division()
        assert len(res.assignments) == 15
        # Paper: conv2+conv3 receive ~93.7% of the pool.
        assert res.share_of(("conv2", "conv3")) > 0.9
        total = sum(c.workspace for c in res.assignments.values())
        assert total <= res.total_limit


class TestOptimizationCost:
    def test_power_of_two_much_cheaper(self):
        res = E.tab_optimization_cost(node_gpus=4)
        p2 = res.cell("powerOfTwo", 1)
        al = res.cell("all", 1)
        # Paper: 3.82 s vs 34.16 s -- at least several-fold apart.
        assert al.benchmark_time / p2.benchmark_time > 5.0
        # Near-equal optimized quality.
        assert p2.conv_time / al.conv_time < 1.15
        # Parallel evaluation reaches a real speedup.
        p2_par = res.cell("powerOfTwo", 4)
        assert p2.benchmark_time / p2_par.benchmark_time > 2.0


class TestILPStats:
    def test_resnet50_ilp_is_small_and_solvers_agree(self):
        res = E.tab_ilp_stats(per_kernel_mib=(8,))
        by_solver = {r.solver: r for r in res.rows}
        # Paper: 562 binaries after pruning; we assert the same order.
        assert 100 < by_solver["ilp"].num_variables < 2000
        assert by_solver["ilp"].conv_time == \
            pytest.approx(by_solver["mckp"].conv_time)
        assert by_solver["ilp"].solve_time < 10.0


class TestSweepCost:
    def test_sweeps_do_far_less_solver_work(self):
        res = E.tab_sweep_cost(num_limits=8)
        # WR: one DP per occupied breakpoint interval of ~60 distinct
        # kernel classes, vs one per (kernel, limit) pair.
        assert res.wr_per_limit_solves == 159 * len(res.limits_per_kernel)
        assert res.wr_per_limit_solves > 4 * res.wr_dp_solves
        # WD: symmetry aggregation shrinks the ILP, ascending limits warm-
        # start every solve after the first.
        assert res.wd_solved == len(res.totals)
        assert res.wd_aggregated_variables < res.wd_per_copy_variables
        assert 1 <= res.wd_warm_started <= res.wd_solved - 1
        assert res.wd_ilp_nodes > 0
