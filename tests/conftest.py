"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.device import Gpu
from repro.cudnn.enums import ConvType
from repro.cudnn.handle import CudnnHandle, ExecMode


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def handle() -> CudnnHandle:
    """Numeric-mode handle on a P100 (the paper's primary GPU)."""
    return CudnnHandle(gpu=Gpu.create("p100-sxm2"), mode=ExecMode.NUMERIC)


@pytest.fixture
def timing_handle() -> CudnnHandle:
    return CudnnHandle(gpu=Gpu.create("p100-sxm2"), mode=ExecMode.TIMING)


def make_geometry(conv_type=ConvType.FORWARD, n=4, c=3, h=8, w=8, k=5, r=3, s=3,
                  pad=1, stride=1, dilation=1) -> ConvGeometry:
    """Compact geometry constructor for tests."""
    return ConvGeometry(
        conv_type=conv_type, n=n, c=c, h=h, w=w, k=k, r=r, s=s,
        pad_h=pad, pad_w=pad, stride_h=stride, stride_w=stride,
        dilation_h=dilation, dilation_w=dilation,
    )


def random_operands(rng: np.random.Generator, g: ConvGeometry):
    """(x, w, dy) FP32 operands matching a geometry."""
    x = rng.standard_normal(g.x_desc.shape).astype(np.float32)
    w = rng.standard_normal(g.w_desc.shape).astype(np.float32)
    dy = rng.standard_normal(g.y_desc.shape).astype(np.float32)
    return x, w, dy


def assert_close(actual, expected, tol=2e-3, context=""):
    """Relative max-error assertion tuned for FP32 kernel comparisons."""
    actual = np.asarray(actual, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    assert actual.shape == expected.shape, (
        f"{context}: shape {actual.shape} != {expected.shape}"
    )
    scale = max(float(np.abs(expected).max()), 1e-9)
    err = float(np.abs(actual - expected).max()) / scale
    assert err < tol, f"{context}: relative error {err:.3e} >= {tol}"
