"""Tests for the cross-limit sweep solvers and the vectorized fast paths.

The sweep module's whole contract is *exactness*: every answer must equal
the per-limit solver's, bit for bit, including which error an infeasible
limit raises.  These tests pit the sweeps against the per-limit solvers on
hypothesis-generated workloads and limit grids, and pin the equivalences
the fast paths rely on (batched find == per-size find, concurrent
evaluation == serial evaluation).
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.benchmarker import benchmark_kernel
from repro.core.pareto import desirable_set
from repro.core.policies import BatchSizePolicy, candidate_sizes
from repro.core.sweep import (
    prepare_wd_kernels,
    sweep_wd,
    sweep_wr,
    truncate_front,
    wr_breakpoints,
)
from repro.core.wd import WDKernel, solve_from_kernels
from repro.core.wr import optimize_from_benchmark
from repro.cudnn.api import find_algorithms, find_algorithms_batched
from repro.cudnn.device import Node
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.errors import InfeasibleError, NotSupportedError, OptimizationError
from repro.parallel import benchmark_kernels_parallel
from repro.units import MIB
from tests.conftest import make_geometry
from tests.test_optimizer_properties import model_geometry

SETTINGS = dict(max_examples=10, deadline=None)

#: Limit grids mixing the interesting regimes: infeasible (-1), the
#: zero-workspace boundary, byte-granular small limits, and generous caps.
limit_grids = st.lists(
    st.one_of(st.just(-1), st.integers(0, 4096), st.integers(0, 512 * MIB)),
    min_size=1, max_size=6,
)


@pytest.fixture(scope="module")
def handle():
    return CudnnHandle(mode=ExecMode.TIMING)


class TestWRSweep:
    @settings(**SETTINGS)
    @given(g=model_geometry(), data=st.data())
    def test_equals_per_limit_solver_exactly(self, handle, g, data):
        """Same Configuration object contents at every limit, same error on
        infeasible limits -- the sweep is a cache, not an approximation."""
        bench = benchmark_kernel(handle, g, BatchSizePolicy.POWER_OF_TWO)
        limits = data.draw(limit_grids)
        sweep = sweep_wr(bench, limits)
        for limit in limits:
            try:
                expected = optimize_from_benchmark(bench, limit)
            except OptimizationError:
                with pytest.raises(OptimizationError):
                    sweep.configuration(limit)
            else:
                assert sweep.configuration(limit) == expected

    @settings(**SETTINGS)
    @given(g=model_geometry(), data=st.data())
    def test_dp_solve_count_bounded_by_breakpoints(self, handle, g, data):
        bench = benchmark_kernel(handle, g, BatchSizePolicy.POWER_OF_TWO)
        limits = data.draw(limit_grids)
        sweep = sweep_wr(bench, limits)
        assert sweep.dp_solves <= len(set(limits))
        # One interval below each breakpoint plus the unbounded tail.
        assert sweep.dp_solves <= len(sweep.breakpoints) + 1
        assert sweep.dp_solves_saved == len(set(limits)) - sweep.dp_solves

    def test_breakpoints_are_the_measured_workspaces(self, handle):
        bench = benchmark_kernel(handle, make_geometry(n=8),
                                 BatchSizePolicy.POWER_OF_TWO)
        points = set(wr_breakpoints(bench))
        measured = {
            r.workspace
            for size in bench.sizes
            for r in bench.results[size]
        }
        assert points == measured

    def test_limits_in_same_interval_share_one_solve(self, handle):
        bench = benchmark_kernel(handle, make_geometry(n=8),
                                 BatchSizePolicy.POWER_OF_TWO)
        points = wr_breakpoints(bench)
        assert len(points) >= 2
        # Two limits straddling no breakpoint; two straddling one.
        lo, hi = points[-2], points[-1]
        same = sweep_wr(bench, [lo, lo + 1 if lo + 1 < hi else lo])
        assert same.dp_solves == 1
        crossing = sweep_wr(bench, [lo - 1, hi])
        assert crossing.dp_solves == 2


class TestWDSweep:
    @settings(max_examples=8, deadline=None)
    @given(g1=model_geometry(), g2=model_geometry(), data=st.data())
    def test_equals_per_limit_solver_exactly(self, handle, g1, g2, data):
        """Aggregated + warm-started sweep == cold per-copy per-limit solve:
        identical per-kernel assignments, identical errors.  The duplicated
        ``g1`` forces a symmetry class of multiplicity >= 2."""
        geoms = {"a0": g1, "a1": g1, "b": g2}
        kernels = prepare_wd_kernels(handle, geoms,
                                     BatchSizePolicy.POWER_OF_TWO)
        limits = data.draw(limit_grids)
        for solver in ("ilp", "mckp"):
            sweep = sweep_wd(kernels, limits, solver=solver)
            for limit in set(limits):
                try:
                    expected = self._per_limit(kernels, limit, solver)
                except (OptimizationError, InfeasibleError):
                    with pytest.raises((OptimizationError, InfeasibleError)):
                        sweep.result(limit)
                else:
                    result = sweep.result(limit)
                    assert result.assignments == expected.assignments
                    assert result.total_workspace <= limit

    @staticmethod
    def _per_limit(kernels, limit, solver):
        """The baseline: re-prune every front and solve per-copy, cold."""
        truncated = [
            WDKernel(
                key=k.key, geometry=k.geometry, benchmark=k.benchmark,
                desirable=desirable_set(k.benchmark, workspace_limit=limit),
            )
            for k in kernels
        ]
        return solve_from_kernels(truncated, limit, solver=solver)

    @settings(**SETTINGS)
    @given(g=model_geometry(),
           limit=st.one_of(st.just(-1), st.integers(0, 512 * MIB)))
    def test_truncation_equals_per_limit_front(self, handle, g, limit):
        """Prefix truncation of the full front is the per-limit desirable
        set -- dominance is limit-independent."""
        bench = benchmark_kernel(handle, g, BatchSizePolicy.POWER_OF_TWO)
        kernel = WDKernel(key="k", geometry=g, benchmark=bench,
                          desirable=desirable_set(bench, workspace_limit=None))
        try:
            expected = desirable_set(bench, workspace_limit=limit)
        except OptimizationError:
            with pytest.raises(OptimizationError):
                truncate_front(kernel, limit)
        else:
            assert truncate_front(kernel, limit).desirable == expected

    def test_solvers_agree_and_warm_starts_track_feasible_solves(self, handle):
        geoms = {
            "a0": make_geometry(n=16, c=16, k=16, h=13, w=13),
            "a1": make_geometry(n=16, c=16, k=16, h=13, w=13),
            "b": make_geometry(n=16, c=8, k=32, h=9, w=9),
        }
        kernels = prepare_wd_kernels(handle, geoms, BatchSizePolicy.POWER_OF_TWO)
        limits = [m * MIB for m in (2, 8, 32, 128)]
        ilp = sweep_wd(kernels, limits, solver="ilp")
        mckp = sweep_wd(kernels, limits, solver="mckp")
        assert set(ilp.results) == set(mckp.results)
        for limit in ilp.results:
            assert ilp.results[limit].total_time == \
                pytest.approx(mckp.results[limit].total_time, abs=1e-12)
        # All feasible limits after the first can reuse the previous optimum.
        assert ilp.warm_started_solves <= max(0, len(ilp.results) - 1)
        assert mckp.warm_started_solves == 0  # DP solver takes no incumbent


class TestBatchedFind:
    @settings(**SETTINGS)
    @given(g=model_geometry())
    def test_equals_per_size_find(self, g):
        """find_algorithms_batched returns the exact per-size tables and
        burns the exact same number of measurement samples."""
        sizes = candidate_sizes(BatchSizePolicy.ALL, g.n)
        serial_handle = CudnnHandle(mode=ExecMode.TIMING)
        batched_handle = CudnnHandle(mode=ExecMode.TIMING)
        serial = [find_algorithms(serial_handle, g.with_batch(n))
                  for n in sizes]
        batched = find_algorithms_batched(batched_handle, g, sizes)
        assert batched == serial
        assert batched_handle.next_sample() == serial_handle.next_sample()

    def test_grouped_convolution(self):
        g = dataclasses.replace(
            make_geometry(n=16, c=64, k=32, h=13, w=13), groups=2)
        sizes = candidate_sizes(BatchSizePolicy.POWER_OF_TWO, g.n)
        serial = [find_algorithms(CudnnHandle(mode=ExecMode.TIMING),
                                  g.with_batch(n)) for n in sizes]
        batched = find_algorithms_batched(
            CudnnHandle(mode=ExecMode.TIMING), g, sizes)
        assert batched == serial

    def test_jittered_handle_falls_back_to_per_size_sampling(self):
        """With noise the batched path must not be taken (each size needs
        its own sample), but the entry point still works."""
        g = make_geometry(n=8)
        sizes = candidate_sizes(BatchSizePolicy.POWER_OF_TWO, g.n)
        noisy = CudnnHandle(mode=ExecMode.TIMING, jitter=0.2)
        with pytest.raises(NotSupportedError):
            noisy.perf.find_all_batched(g, sizes)
        rows = find_algorithms_batched(noisy, g, sizes)
        assert len(rows) == len(sizes)

    def test_benchmark_kernel_fast_path_equals_serial_path(self):
        """samples=1 takes the batched path, samples>1 the per-size loop; a
        deterministic handle must get identical tables from both."""
        g = make_geometry(n=32, c=16, k=16, h=13, w=13)
        fast = benchmark_kernel(CudnnHandle(mode=ExecMode.TIMING), g,
                                BatchSizePolicy.ALL)
        slow = benchmark_kernel(CudnnHandle(mode=ExecMode.TIMING), g,
                                BatchSizePolicy.ALL, samples=3)
        assert fast.sizes == slow.sizes
        for size in fast.sizes:
            assert fast.results[size] == slow.results[size]


class TestSweepTelemetry:
    """Span parity: the sweep paths must emit the same span vocabulary as
    the per-limit paths they replace (plus their own ``sweep.*`` wrappers),
    so profiles stay comparable whichever solver a harness picks."""

    def test_wr_sweep_spans_cover_per_limit_vocabulary(self, handle):
        import repro.telemetry as telemetry

        bench = benchmark_kernel(handle, make_geometry(n=8),
                                 BatchSizePolicy.POWER_OF_TWO)
        limits = [4096, 8192, 1 * MIB, 8 * MIB]
        with telemetry.capture() as per_limit:
            for limit in limits:
                optimize_from_benchmark(bench, limit)
        with telemetry.capture() as swept:
            sweep = sweep_wr(bench, limits)

        per_limit_names = {s.name for r in per_limit.tracer.roots()
                           for s in r.walk()}
        sweep_names = {s.name for r in swept.tracer.roots() for s in r.walk()}
        assert per_limit_names <= sweep_names
        assert "sweep.wr" in sweep_names
        # One nested WR solve per occupied interval, all under the sweep span.
        (root,) = swept.tracer.roots()
        assert root.name == "sweep.wr"
        nested = [s for s in root.walk() if s.name == "optimize.wr"]
        assert len(nested) == sweep.dp_solves
        assert swept.metrics.value("sweep.intervals_solved") == sweep.dp_solves
        assert swept.metrics.value("sweep.dp_solves_saved") == \
            sweep.dp_solves_saved

    def test_wd_sweep_emits_one_limit_span_per_feasible_limit(self, handle):
        import repro.telemetry as telemetry

        geoms = {
            "a0": make_geometry(n=16, c=16, k=16, h=13, w=13),
            "b": make_geometry(n=16, c=8, k=32, h=9, w=9),
        }
        kernels = prepare_wd_kernels(handle, geoms,
                                     BatchSizePolicy.POWER_OF_TWO)
        limits = [-1] + [m * MIB for m in (2, 8, 32)]
        with telemetry.capture() as session:
            sweep = sweep_wd(kernels, limits, solver="ilp")

        limit_spans = session.tracer.find("sweep.wd.limit")
        assert len(limit_spans) == len(sweep.results)
        assert {s.attributes["limit"] for s in limit_spans} == \
            set(sweep.results)
        for span in limit_spans:
            assert span.attributes["variables"] >= 1
            assert isinstance(span.attributes["warm_start"], bool)
        # The aggregated path still goes through the instrumented ILP core.
        assert session.tracer.find("ilp.solve")
        assert session.metrics.value("sweep.wd.solves") == len(sweep.results)

    def test_wd_sweep_and_per_limit_share_solver_spans(self, handle):
        import repro.telemetry as telemetry

        geoms = {"a": make_geometry(n=16, c=16, k=16, h=13, w=13)}
        kernels = prepare_wd_kernels(handle, geoms,
                                     BatchSizePolicy.POWER_OF_TWO)
        with telemetry.capture() as per_limit:
            solve_from_kernels(kernels, 32 * MIB, solver="ilp")
        with telemetry.capture() as swept:
            sweep_wd(kernels, [32 * MIB], solver="ilp")
        solver_names = {"ilp.solve"}
        per_limit_names = {s.name for r in per_limit.tracer.roots()
                           for s in r.walk()}
        sweep_names = {s.name for r in swept.tracer.roots() for s in r.walk()}
        assert solver_names <= per_limit_names
        assert solver_names <= sweep_names

    def test_batched_find_span_and_counters(self):
        import repro.telemetry as telemetry

        g = make_geometry(n=16)
        sizes = candidate_sizes(BatchSizePolicy.POWER_OF_TWO, g.n)
        handle = CudnnHandle(mode=ExecMode.TIMING)
        with telemetry.capture() as session:
            find_algorithms_batched(handle, g, sizes)
        (span,) = session.tracer.find("perfmodel.batched_find")
        assert span.attributes["kernel"] == g.cache_key()
        assert span.attributes["sizes"] == len(sizes)
        assert span.attributes["supported_algos"] >= 1
        assert session.metrics.value("perfmodel.batched_finds") == 1
        assert session.metrics.value("perfmodel.batched_sizes") == len(sizes)


class TestConcurrentEvaluator:
    def test_concurrent_equals_serial_exactly(self):
        """Thread-pooled evaluation returns the same PerfResult rows (not
        just times) as one-by-one benchmarking on a single handle."""
        geoms = {
            "a": make_geometry(n=16, c=8, k=8, h=13, w=13),
            "b": make_geometry(n=16, c=16, k=16, h=9, w=9),
            "c": make_geometry(n=16, c=4, k=32, h=27, w=27, r=5, s=5, pad=2),
        }
        par = benchmark_kernels_parallel(Node("p100-sxm2", num_gpus=4), geoms,
                                         BatchSizePolicy.ALL)
        serial_handle = CudnnHandle(mode=ExecMode.TIMING)
        for key, g in geoms.items():
            serial = benchmark_kernel(serial_handle, g, BatchSizePolicy.ALL)
            assert par.benchmarks[key].sizes == serial.sizes
            assert par.benchmarks[key].results == serial.results
