"""Per-layer tests: shape inference + finite-difference gradient checks.

DESIGN.md invariant 7: every framework layer's backward pass agrees with a
central-difference numerical gradient on small tensors.
"""

import numpy as np
import pytest

from repro.cudnn.handle import CudnnHandle
from repro.errors import FrameworkError, ShapeError
from repro.frameworks.layers import (
    LRN,
    BatchNorm,
    Concat,
    Context,
    Convolution,
    Dropout,
    Eltwise,
    GlobalAvgPool,
    InnerProduct,
    Pooling,
    ReLU,
    Sigmoid,
    SoftmaxWithLoss,
)
from repro.units import MIB


@pytest.fixture
def ctx():
    return Context(CudnnHandle(), workspace_limit=1 * MIB,
                   rng=np.random.default_rng(0))


def numeric_grad(f, x, eps=1e-3):
    """Central-difference gradient of scalar-valued f at x (float64)."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f(x.astype(np.float32))
        flat[i] = orig - eps
        fm = f(x.astype(np.float32))
        flat[i] = orig
        gflat[i] = (fp - fm) / (2 * eps)
    return grad


def check_input_gradient(ctx, layer, in_shapes, seed=0, tol=5e-2, which=0):
    """Verify layer backward vs numeric gradient of sum(y * probe)."""
    rng = np.random.default_rng(seed)
    layer.setup(ctx, in_shapes)
    inputs = [rng.standard_normal(s).astype(np.float32) * 0.5 for s in in_shapes]
    outputs = layer.forward(ctx, inputs)
    probes = [rng.standard_normal(o.shape).astype(np.float32) for o in outputs]

    def loss_fn(x):
        trial = list(inputs)
        trial[which] = x
        outs = layer.forward(ctx, trial)
        return sum(float(np.vdot(o.astype(np.float64), p)) for o, p in zip(outs, probes))

    expected = numeric_grad(loss_fn, inputs[which])
    layer.forward(ctx, inputs)  # restore caches for backward
    grads = layer.backward(ctx, inputs, outputs, probes)
    got = grads[which]
    scale = max(np.abs(expected).max(), 1e-6)
    assert np.abs(got - expected).max() / scale < tol, layer.name


class TestReLU:
    def test_forward(self, ctx):
        layer = ReLU("r")
        layer.setup(ctx, [(2, 3, 4, 4)])
        x = np.array([[-1.0, 2.0], [0.0, -3.0]], dtype=np.float32)
        layer.in_shapes = [(2, 2)]
        layer.out_shapes = [(2, 2)]
        (y,) = layer.forward(ctx, [x])
        np.testing.assert_array_equal(y, [[0, 2], [0, 0]])

    def test_gradient(self, ctx):
        check_input_gradient(ctx, ReLU("r"), [(2, 3, 5, 5)])

    def test_inplace_capable(self):
        assert ReLU.SUPPORTS_INPLACE


class TestSigmoid:
    def test_gradient(self, ctx):
        check_input_gradient(ctx, Sigmoid("s"), [(2, 3, 4, 4)])


class TestPooling:
    def test_max_shapes_ceil_mode(self, ctx):
        # AlexNet pool1: 55 -> 27 with k3 s2; ResNet pool1: 112 -> 56 k3 s2.
        p = Pooling("p", 3, stride=2)
        assert p.setup(ctx, [(1, 2, 55, 55)])[0] == (1, 2, 27, 27)
        p2 = Pooling("p2", 3, stride=2)
        assert p2.setup(ctx, [(1, 2, 112, 112)])[0] == (1, 2, 56, 56)
        # Ceil mode proper: 7 -> ceil((7-3)/2)+1 = 3 even though floor is 3;
        # 8 -> ceil(5/2)+1 = 4 (floor would give 3).
        p3 = Pooling("p3", 3, stride=2)
        assert p3.setup(ctx, [(1, 1, 8, 8)])[0] == (1, 1, 4, 4)

    def test_max_values(self, ctx):
        p = Pooling("p", 2, stride=2, mode="max")
        p.setup(ctx, [(1, 1, 4, 4)])
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        (y,) = p.forward(ctx, [x])
        np.testing.assert_array_equal(y[0, 0], [[5, 7], [13, 15]])

    def test_avg_values(self, ctx):
        p = Pooling("p", 2, stride=2, mode="avg")
        p.setup(ctx, [(1, 1, 4, 4)])
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        (y,) = p.forward(ctx, [x])
        np.testing.assert_allclose(y[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_gradient(self, ctx):
        check_input_gradient(ctx, Pooling("p", 2, stride=2, mode="max"),
                             [(2, 2, 6, 6)])

    def test_avg_gradient(self, ctx):
        check_input_gradient(ctx, Pooling("p", 3, stride=2, pad=1, mode="avg"),
                             [(2, 2, 7, 7)])

    def test_overlapping_max_gradient(self, ctx):
        check_input_gradient(ctx, Pooling("p", 3, stride=2, mode="max"),
                             [(1, 2, 7, 7)])

    def test_bad_mode(self):
        with pytest.raises(ShapeError):
            Pooling("p", 2, mode="median")


class TestGlobalAvgPool:
    def test_shape_and_value(self, ctx):
        g = GlobalAvgPool("g")
        assert g.setup(ctx, [(2, 3, 5, 5)])[0] == (2, 3, 1, 1)
        x = np.ones((2, 3, 5, 5), dtype=np.float32)
        np.testing.assert_allclose(g.forward(ctx, [x])[0], 1.0)

    def test_gradient(self, ctx):
        check_input_gradient(ctx, GlobalAvgPool("g"), [(2, 3, 4, 4)])


class TestInnerProduct:
    def test_shape(self, ctx):
        fc = InnerProduct("fc", 7)
        assert fc.setup(ctx, [(4, 3, 2, 2)])[0] == (4, 7)
        assert fc.fan_in == 12

    def test_gradient_input(self, ctx):
        check_input_gradient(ctx, InnerProduct("fc", 5), [(3, 4, 2, 2)])

    def test_gradient_weights(self, ctx):
        rng = np.random.default_rng(1)
        fc = InnerProduct("fc", 4)
        fc.setup(ctx, [(3, 6)])
        x = rng.standard_normal((3, 6)).astype(np.float32)
        (y,) = fc.forward(ctx, [x])
        probe = rng.standard_normal(y.shape).astype(np.float32)
        w0 = fc.params[0].data.copy()

        def loss_fn(wflat):
            fc.params[0].data = wflat.reshape(w0.shape).astype(np.float32)
            out = fc.forward(ctx, [x])[0]
            fc.params[0].data = w0
            return float(np.vdot(out.astype(np.float64), probe))

        expected = numeric_grad(loss_fn, w0.copy())
        fc.params[0].zero_grad()
        fc.backward(ctx, [x], [y], [probe])
        scale = max(np.abs(expected).max(), 1e-6)
        assert np.abs(fc.params[0].grad - expected).max() / scale < 5e-2


class TestLRN:
    def test_identity_at_zero_alpha(self, ctx):
        lrn = LRN("n", alpha=0.0)
        lrn.setup(ctx, [(2, 6, 3, 3)])
        x = np.random.default_rng(0).standard_normal((2, 6, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(lrn.forward(ctx, [x])[0], x, rtol=1e-6)

    def test_matches_reference_formula(self, ctx):
        lrn = LRN("n", local_size=3, alpha=0.3, beta=0.75, k=2.0)
        lrn.setup(ctx, [(1, 4, 2, 2)])
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 4, 2, 2)).astype(np.float32)
        (y,) = lrn.forward(ctx, [x])
        # Naive loop reference.
        ref = np.zeros_like(x)
        for c in range(4):
            lo, hi = max(0, c - 1), min(4, c + 2)
            denom = (2.0 + 0.3 / 3 * (x[:, lo:hi] ** 2).sum(axis=1)) ** 0.75
            ref[:, c] = x[:, c] / denom
        np.testing.assert_allclose(y, ref, rtol=1e-4)

    def test_gradient(self, ctx):
        check_input_gradient(ctx, LRN("n", local_size=3), [(2, 5, 3, 3)],
                             tol=5e-2)

    def test_even_size_rejected(self):
        with pytest.raises(ValueError):
            LRN("n", local_size=4)


class TestBatchNorm:
    def test_normalizes_in_train(self, ctx):
        bn = BatchNorm("bn")
        bn.setup(ctx, [(8, 3, 4, 4)])
        rng = np.random.default_rng(3)
        x = (rng.standard_normal((8, 3, 4, 4)) * 5 + 2).astype(np.float32)
        (y,) = bn.forward(ctx, [x])
        assert abs(float(y.mean())) < 1e-4
        assert float(y.std()) == pytest.approx(1.0, abs=1e-2)

    def test_running_stats_used_in_test_phase(self):
        ctx = Context(CudnnHandle(), rng=np.random.default_rng(0), phase="train")
        bn = BatchNorm("bn", momentum=0.0)  # running stats = last batch
        bn.setup(ctx, [(8, 2, 4, 4)])
        rng = np.random.default_rng(4)
        x = (rng.standard_normal((8, 2, 4, 4)) * 3 + 1).astype(np.float32)
        bn.forward(ctx, [x])
        ctx.phase = "test"
        (y,) = bn.forward(ctx, [x])
        assert abs(float(y.mean())) < 1e-3

    def test_gradient(self, ctx):
        check_input_gradient(ctx, BatchNorm("bn"), [(4, 3, 3, 3)], tol=5e-2)


class TestMerge:
    def test_concat_shapes(self, ctx):
        c = Concat("c")
        assert c.setup(ctx, [(2, 3, 4, 4), (2, 5, 4, 4)])[0] == (2, 8, 4, 4)

    def test_concat_mismatch(self, ctx):
        with pytest.raises(ShapeError):
            Concat("c").setup(ctx, [(2, 3, 4, 4), (2, 5, 3, 3)])

    def test_concat_roundtrip(self, ctx):
        c = Concat("c")
        c.setup(ctx, [(2, 3, 4, 4), (2, 5, 4, 4)])
        rng = np.random.default_rng(5)
        a = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        b = rng.standard_normal((2, 5, 4, 4)).astype(np.float32)
        (y,) = c.forward(ctx, [a, b])
        dy = rng.standard_normal(y.shape).astype(np.float32)
        ga, gb = c.backward(ctx, [a, b], [y], [dy])
        np.testing.assert_array_equal(ga, dy[:, :3])
        np.testing.assert_array_equal(gb, dy[:, 3:])

    def test_concat_gradients_each_input(self, ctx):
        check_input_gradient(ctx, Concat("c"), [(2, 2, 3, 3), (2, 3, 3, 3)], which=0)
        check_input_gradient(ctx, Concat("c2"), [(2, 2, 3, 3), (2, 3, 3, 3)], which=1)

    def test_eltwise_sum_and_gradient(self, ctx):
        e = Eltwise("e")
        e.setup(ctx, [(2, 3, 4, 4)] * 3)
        xs = [np.full((2, 3, 4, 4), float(i), dtype=np.float32) for i in range(3)]
        (y,) = e.forward(ctx, xs)
        np.testing.assert_allclose(y, 3.0)
        check_input_gradient(ctx, Eltwise("e2"), [(2, 2, 3, 3)] * 2, which=1)

    def test_eltwise_shape_mismatch(self, ctx):
        with pytest.raises(ShapeError):
            Eltwise("e").setup(ctx, [(2, 3, 4, 4), (2, 3, 4, 5)])


class TestDropout:
    def test_inverted_scaling_preserves_expectation(self, ctx):
        d = Dropout("d", ratio=0.5)
        d.setup(ctx, [(64, 8, 8, 8)])
        x = np.ones((64, 8, 8, 8), dtype=np.float32)
        (y,) = d.forward(ctx, [x])
        assert float(y.mean()) == pytest.approx(1.0, abs=0.05)
        assert set(np.unique(y)) <= {0.0, 2.0}

    def test_test_phase_is_identity(self):
        ctx = Context(CudnnHandle(), rng=np.random.default_rng(0), phase="test")
        d = Dropout("d", ratio=0.5)
        d.setup(ctx, [(2, 3, 4, 4)])
        x = np.random.default_rng(1).standard_normal((2, 3, 4, 4)).astype(np.float32)
        np.testing.assert_array_equal(d.forward(ctx, [x])[0], x)

    def test_backward_uses_same_mask(self, ctx):
        d = Dropout("d", ratio=0.3)
        d.setup(ctx, [(4, 2, 3, 3)])
        x = np.ones((4, 2, 3, 3), dtype=np.float32)
        (y,) = d.forward(ctx, [x])
        dy = np.ones_like(x)
        (dx,) = d.backward(ctx, [x], [y], [dy])
        np.testing.assert_array_equal((y != 0), (dx != 0))

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            Dropout("d", ratio=1.0)


class TestSoftmaxWithLoss:
    def test_loss_value_uniform(self, ctx):
        sm = SoftmaxWithLoss("loss")
        sm.setup(ctx, [(4, 10)])
        sm.set_labels(np.zeros(4, dtype=np.int64))
        logits = np.zeros((4, 10), dtype=np.float32)
        (loss,) = sm.forward(ctx, [logits])
        assert float(loss[0]) == pytest.approx(np.log(10.0), rel=1e-5)

    def test_gradient_matches_probs_minus_onehot(self, ctx):
        sm = SoftmaxWithLoss("loss")
        sm.setup(ctx, [(3, 5)])
        rng = np.random.default_rng(6)
        logits = rng.standard_normal((3, 5)).astype(np.float32)
        labels = np.array([0, 2, 4])
        sm.set_labels(labels)
        sm.forward(ctx, [logits])
        (grad,) = sm.backward(ctx, [logits], [None],
                              [np.ones(1, dtype=np.float32)])
        exp = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs = exp / exp.sum(axis=1, keepdims=True)
        probs[np.arange(3), labels] -= 1
        np.testing.assert_allclose(grad, probs / 3, rtol=1e-4, atol=1e-6)

    def test_label_validation(self, ctx):
        sm = SoftmaxWithLoss("loss")
        sm.setup(ctx, [(2, 3)])
        sm.set_labels(np.array([0, 7]))
        with pytest.raises(ShapeError):
            sm.forward(ctx, [np.zeros((2, 3), dtype=np.float32)])

    def test_labels_required(self, ctx):
        sm = SoftmaxWithLoss("loss")
        sm.setup(ctx, [(2, 3)])
        with pytest.raises(ShapeError):
            sm.forward(ctx, [np.zeros((2, 3), dtype=np.float32)])


class TestConvolutionLayer:
    def test_setup_selects_algorithms(self, ctx):
        conv = Convolution("c", 8, 3, pad=1)
        out = conv.setup(ctx, [(4, 3, 10, 10)])
        assert out[0] == (4, 8, 10, 10)
        assert len(conv.algos) == 3
        assert conv.workspace_slot <= 1 * MIB

    def test_gradient_via_net_probe(self, ctx):
        check_input_gradient(ctx, Convolution("c", 4, 3, pad=1, bias=True),
                             [(2, 3, 6, 6)], tol=5e-2)

    def test_wrong_input_count(self, ctx):
        with pytest.raises(FrameworkError):
            Convolution("c", 8, 3).setup(ctx, [(1, 1, 5, 5), (1, 1, 5, 5)])
