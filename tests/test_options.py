"""Tests for the env-var option surface (paper section III-D)."""

import pytest

from repro.core.options import (
    ENV_BENCHMARK_DB,
    ENV_BENCHMARK_DEVICES,
    ENV_POLICY,
    ENV_TOTAL_WORKSPACE,
    ENV_WD_SOLVER,
    ENV_WORKSPACE_LIMIT,
    Options,
)
from repro.core.policies import BatchSizePolicy
from repro.units import CAFFE2_DEFAULT_WORKSPACE, MIB


class TestDefaults:
    def test_paper_defaults(self):
        opts = Options()
        assert opts.policy == BatchSizePolicy.POWER_OF_TWO
        assert opts.workspace_limit == CAFFE2_DEFAULT_WORKSPACE
        assert opts.total_workspace is None
        assert not opts.use_wd
        assert opts.wd_solver == "ilp"

    def test_wd_enabled_by_total_workspace(self):
        assert Options(total_workspace=120 * MIB).use_wd


class TestValidation:
    def test_negative_limit(self):
        with pytest.raises(ValueError):
            Options(workspace_limit=-1)

    def test_negative_total(self):
        with pytest.raises(ValueError):
            Options(total_workspace=-1)

    def test_devices(self):
        with pytest.raises(ValueError):
            Options(benchmark_devices=0)

    def test_solver_name(self):
        with pytest.raises(ValueError):
            Options(wd_solver="glpk")


class TestFromEnv:
    def test_empty_env_gives_defaults(self):
        assert Options.from_env({}) == Options()

    def test_full_env(self):
        env = {
            ENV_POLICY: "all",
            ENV_WORKSPACE_LIMIT: str(8 * MIB),
            ENV_TOTAL_WORKSPACE: str(120 * MIB),
            ENV_BENCHMARK_DB: "/tmp/db.json",
            ENV_BENCHMARK_DEVICES: "4",
            ENV_WD_SOLVER: "mckp",
        }
        opts = Options.from_env(env)
        assert opts.policy == BatchSizePolicy.ALL
        assert opts.workspace_limit == 8 * MIB
        assert opts.total_workspace == 120 * MIB
        assert opts.use_wd
        assert opts.benchmark_db == "/tmp/db.json"
        assert opts.benchmark_devices == 4
        assert opts.wd_solver == "mckp"

    def test_paper_policy_spelling(self):
        opts = Options.from_env({ENV_POLICY: "powerOfTwo"})
        assert opts.policy == BatchSizePolicy.POWER_OF_TWO

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            Options.from_env({ENV_POLICY: "fastest"})

    def test_bad_int_rejected(self):
        with pytest.raises(ValueError):
            Options.from_env({ENV_WORKSPACE_LIMIT: "lots"})

    def test_reads_real_environ_by_default(self, monkeypatch):
        monkeypatch.setenv(ENV_POLICY, "undivided")
        assert Options.from_env().policy == BatchSizePolicy.UNDIVIDED
