"""Concurrency contract tests: static analyzer, runtime sanitizer, cross-check.

Three layers, mirroring the contract's architecture:

* the **static analyzer** (:mod:`repro.analysis.concurrency`) is exercised on
  small seeded module trees, one behavior per test;
* the **runtime sanitizer** (:mod:`repro.telemetry.locks`) is exercised
  directly -- inversions, blocking checkpoints, reentrancy, zero-overhead
  disabled mode, canonical dumps;
* the **cross-check** runs the real soak workload under the sanitizer and
  asserts the dynamic lock graph is a subgraph of the static graph built
  from the real ``src/`` tree with the real pyproject config -- the same
  gate CI's ``lock-sanity`` job enforces out of process.
"""

from __future__ import annotations

import pathlib
import socket
import threading

import pytest

from repro.analysis.concurrency import (
    ConcurrencyModel,
    analyze_modules,
    compare_graphs,
)
from repro.analysis.config import LintConfig, load_config
from repro.analysis.context import build_context
from repro.analysis.engine import build_lock_model, check_source, lint_paths
from repro.telemetry import locks
from repro.telemetry.locks import (
    DEFAULT_BLOCKING_ALLOWED,
    LockMonitor,
    SanitizedLock,
    disable_sanitizer,
    enable_sanitizer,
    new_lock,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"


def build_model(
    sources: dict[str, str],
    level_aliases: dict[str, str] | None = None,
    blocking_allowed: tuple[str, ...] = (),
) -> ConcurrencyModel:
    config = LintConfig()
    modules = [
        build_context(pathlib.Path(relpath), relpath, text, config)
        for relpath, text in sources.items()
    ]
    return analyze_modules(
        modules, level_aliases=level_aliases, blocking_allowed=blocking_allowed
    )


def rules_fired(model: ConcurrencyModel) -> set[str]:
    return {finding.rule for finding in model.findings}


@pytest.fixture()
def sanitizer():
    """An enabled monitor, reliably torn down."""
    monitor = enable_sanitizer()
    try:
        yield monitor
    finally:
        disable_sanitizer()


# ---------------------------------------------------------------------------
# Static analyzer: CONC001 lock-order cycles
# ---------------------------------------------------------------------------


class TestLockOrderCycles:
    def test_two_lock_inversion_is_reported_with_both_paths(self):
        model = build_model({"m.py": (
            "import threading\n"
            "A = threading.Lock()\n"
            "B = threading.Lock()\n"
            "def ab() -> None:\n"
            "    with A:\n"
            "        with B:\n"
            "            pass\n"
            "def ba() -> None:\n"
            "    with B:\n"
            "        with A:\n"
            "            pass\n"
        )})
        findings = model.findings_for("CONC001")
        assert len(findings) == 1
        message = findings[0].message
        assert "path 1:" in message and "path 2:" in message
        assert "m.py::A" in message and "m.py::B" in message

    def test_consistent_order_is_clean(self):
        model = build_model({"m.py": (
            "import threading\n"
            "A = threading.Lock()\n"
            "B = threading.Lock()\n"
            "def ab() -> None:\n"
            "    with A:\n"
            "        with B:\n"
            "            pass\n"
            "def ab2() -> None:\n"
            "    with A:\n"
            "        with B:\n"
            "            pass\n"
        )})
        assert model.findings_for("CONC001") == []
        assert ("m.py::A", "m.py::B") in model.edges

    def test_cycle_through_call_edge_is_found(self):
        model = build_model({"m.py": (
            "import threading\n"
            "A = threading.Lock()\n"
            "B = threading.Lock()\n"
            "def inner_b() -> None:\n"
            "    with B:\n"
            "        pass\n"
            "def ab() -> None:\n"
            "    with A:\n"
            "        inner_b()\n"
            "def ba() -> None:\n"
            "    with B:\n"
            "        with A:\n"
            "            pass\n"
        )})
        assert len(model.findings_for("CONC001")) == 1

    def test_cross_module_cycle_is_found(self):
        model = build_model({
            "locks.py": (
                "import threading\n"
                "A = threading.Lock()\n"
                "B = threading.Lock()\n"
            ),
            "one.py": (
                "from locks import A, B\n"
                "def ab() -> None:\n"
                "    with A:\n"
                "        with B:\n"
                "            pass\n"
            ),
            "two.py": (
                "from locks import A, B\n"
                "def ba() -> None:\n"
                "    with B:\n"
                "        with A:\n"
                "            pass\n"
            ),
        })
        assert len(model.findings_for("CONC001")) == 1

    def test_non_reentrant_same_level_nesting_is_a_cycle(self):
        model = build_model({"m.py": (
            "from repro.telemetry.locks import new_lock\n"
            "L = new_lock('svc')\n"
            "def nest() -> None:\n"
            "    with L:\n"
            "        with L:\n"
            "            pass\n"
        )})
        findings = model.findings_for("CONC001")
        assert len(findings) == 1
        assert "same-level" in findings[0].message

    def test_reentrant_same_level_nesting_is_clean(self):
        model = build_model({"m.py": (
            "from repro.telemetry.locks import new_lock\n"
            "L = new_lock('bench', reentrant=True)\n"
            "def nest() -> None:\n"
            "    with L:\n"
            "        with L:\n"
            "            pass\n"
        )})
        assert model.findings_for("CONC001") == []

    def test_self_attribute_locks_resolve_per_class(self):
        model = build_model({"m.py": (
            "import threading\n"
            "class Service:\n"
            "    def __init__(self) -> None:\n"
            "        self._lock = threading.Lock()\n"
            "    def op(self) -> None:\n"
            "        with self._lock:\n"
            "            pass\n"
        )})
        assert "m.py::Service._lock" in model.declared_levels()


# ---------------------------------------------------------------------------
# Static analyzer: CONC002 blocking under lock
# ---------------------------------------------------------------------------


class TestBlockingUnderLock:
    def test_sleep_under_lock_fires(self):
        model = build_model({"m.py": (
            "import threading\n"
            "import time\n"
            "L = threading.Lock()\n"
            "def bad() -> None:\n"
            "    with L:\n"
            "        time.sleep(1)\n"
        )})
        assert len(model.findings_for("CONC002")) == 1

    def test_sleep_after_release_is_clean(self):
        model = build_model({"m.py": (
            "import threading\n"
            "import time\n"
            "L = threading.Lock()\n"
            "def good() -> None:\n"
            "    with L:\n"
            "        pass\n"
            "    time.sleep(1)\n"
        )})
        assert model.findings_for("CONC002") == []

    def test_blocking_propagates_through_call_chain(self):
        model = build_model({"m.py": (
            "import threading\n"
            "import time\n"
            "L = threading.Lock()\n"
            "def helper() -> None:\n"
            "    time.sleep(1)\n"
            "def outer() -> None:\n"
            "    with L:\n"
            "        helper()\n"
        )})
        findings = model.findings_for("CONC002")
        assert len(findings) == 1
        assert "helper" in findings[0].message

    def test_blocking_allowed_level_is_exempt(self):
        source = {"m.py": (
            "from repro.telemetry.locks import new_lock\n"
            "import time\n"
            "L = new_lock('solver')\n"
            "def work() -> None:\n"
            "    with L:\n"
            "        time.sleep(1)\n"
        )}
        assert build_model(source).findings_for("CONC002") != []
        clean = build_model(source, blocking_allowed=("solver",))
        assert clean.findings_for("CONC002") == []

    def test_socket_method_on_typed_param_fires(self):
        model = build_model({"m.py": (
            "import socket\n"
            "import threading\n"
            "L = threading.Lock()\n"
            "def bad(sock: socket.socket) -> None:\n"
            "    with L:\n"
            "        sock.sendall(b'x')\n"
        )})
        assert len(model.findings_for("CONC002")) == 1

    def test_future_result_under_lock_fires(self):
        model = build_model({"m.py": (
            "import threading\n"
            "from concurrent.futures import Future\n"
            "L = threading.Lock()\n"
            "def bad(f: Future) -> None:\n"
            "    with L:\n"
            "        f.result()\n"
        )})
        assert len(model.findings_for("CONC002")) == 1

    def test_one_report_per_line(self):
        # A line that both blocks directly and calls a blocking helper must
        # not be double-reported.
        model = build_model({"m.py": (
            "import threading\n"
            "import time\n"
            "L = threading.Lock()\n"
            "def helper() -> None:\n"
            "    time.sleep(1)\n"
            "def outer() -> None:\n"
            "    with L:\n"
            "        helper(); time.sleep(2)\n"
        )})
        assert len(model.findings_for("CONC002")) == 1


# ---------------------------------------------------------------------------
# Static analyzer: CONC003 callbacks, CONC004 split acquire/release
# ---------------------------------------------------------------------------


class TestCallbacksAndSplitLocks:
    def test_listener_loop_under_lock_fires(self):
        model = build_model({"m.py": (
            "import threading\n"
            "L = threading.Lock()\n"
            "LISTENERS: list = []\n"
            "def fire() -> None:\n"
            "    with L:\n"
            "        for listener in LISTENERS:\n"
            "            listener()\n"
        )})
        assert len(model.findings_for("CONC003")) == 1

    def test_collect_then_fire_after_release_is_clean(self):
        model = build_model({"m.py": (
            "import threading\n"
            "L = threading.Lock()\n"
            "LISTENERS: list = []\n"
            "def fire() -> None:\n"
            "    with L:\n"
            "        pending = list(LISTENERS)\n"
            "    for listener in pending:\n"
            "        listener()\n"
        )})
        assert model.findings_for("CONC003") == []

    def test_callable_typed_param_under_lock_fires(self):
        model = build_model({"m.py": (
            "import threading\n"
            "from typing import Callable\n"
            "L = threading.Lock()\n"
            "def run(hook: Callable[[], None]) -> None:\n"
            "    with L:\n"
            "        hook()\n"
        )})
        assert len(model.findings_for("CONC003")) == 1

    def test_split_acquire_release_fires_per_function(self):
        model = build_model({"m.py": (
            "import threading\n"
            "L = threading.Lock()\n"
            "def grab() -> None:\n"
            "    L.acquire()\n"
            "def drop() -> None:\n"
            "    L.release()\n"
        )})
        assert len(model.findings_for("CONC004")) == 2

    def test_balanced_acquire_release_is_clean(self):
        model = build_model({"m.py": (
            "import threading\n"
            "L = threading.Lock()\n"
            "def critical() -> None:\n"
            "    L.acquire()\n"
            "    try:\n"
            "        pass\n"
            "    finally:\n"
            "        L.release()\n"
        )})
        assert model.findings_for("CONC004") == []

    def test_context_manager_delegation_is_exempt(self):
        model = build_model({"m.py": (
            "import threading\n"
            "class Guard:\n"
            "    def __init__(self) -> None:\n"
            "        self._lock = threading.Lock()\n"
            "    def __enter__(self) -> 'Guard':\n"
            "        self._lock.acquire()\n"
            "        return self\n"
            "    def __exit__(self, *exc: object) -> None:\n"
            "        self._lock.release()\n"
        )})
        assert model.findings_for("CONC004") == []


# ---------------------------------------------------------------------------
# Static analyzer: levels, graph shape, config
# ---------------------------------------------------------------------------


class TestLevelsAndGraph:
    def test_new_lock_string_literal_names_the_level(self):
        model = build_model({"m.py": (
            "from repro.telemetry.locks import new_lock\n"
            "L = new_lock('service')\n"
            "def op() -> None:\n"
            "    with L:\n"
            "        pass\n"
        )})
        assert "service" in model.declared_levels()

    def test_level_alias_config_renames_plain_locks(self):
        sources = {"m.py": (
            "import threading\n"
            "L = threading.Lock()\n"
            "def op() -> None:\n"
            "    with L:\n"
            "        pass\n"
        )}
        plain = build_model(sources)
        assert "m.py::L" in plain.declared_levels()
        aliased = build_model(sources, level_aliases={"m.py::L": "mylevel"})
        assert "mylevel" in aliased.declared_levels()
        assert "m.py::L" not in aliased.declared_levels()

    def test_dump_is_byte_deterministic(self):
        sources = {"m.py": (
            "import threading\n"
            "A = threading.Lock()\n"
            "B = threading.Lock()\n"
            "def ab() -> None:\n"
            "    with A:\n"
            "        with B:\n"
            "            pass\n"
        )}
        assert build_model(sources).dump_graph() == \
            build_model(sources).dump_graph()

    def test_compare_graphs_subgraph_passes(self):
        static = {
            "schema_version": 1,
            "levels": ["a", "b", "c"],
            "edges": [{"from": "a", "to": "b"}, {"from": "b", "to": "c"}],
        }
        dynamic = {
            "schema_version": 1,
            "levels": ["a", "b"],
            "edges": [{"from": "a", "to": "b"}],
        }
        assert compare_graphs(static, dynamic) == []

    def test_compare_graphs_flags_unpredicted_edge_and_level(self):
        static = {
            "schema_version": 1,
            "levels": ["a", "b"],
            "edges": [{"from": "a", "to": "b"}],
        }
        dynamic = {
            "schema_version": 1,
            "levels": ["a", "b", "ghost"],
            "edges": [{"from": "b", "to": "a"}],
        }
        problems = compare_graphs(static, dynamic)
        assert any("ghost" in p for p in problems)
        assert any("b" in p and "a" in p for p in problems)


# ---------------------------------------------------------------------------
# Suppressions: with-headers and decorated functions
# ---------------------------------------------------------------------------


class TestSuppressionRanges:
    def test_pragma_on_multiline_with_header_covers_the_block(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "import threading\n"
            "import time\n"
            "L = threading.Lock()\n"
            "OTHER = threading.Lock()\n"
            "def bad() -> None:\n"
            "    with (  # reprolint: disable=CONC002 -- fixture exemption\n"
            "        L\n"
            "    ):\n"
            "        time.sleep(1)\n",
            encoding="utf-8",
        )
        report = lint_paths([tmp_path], LintConfig())
        assert "CONC002" not in report.counts()

    def test_pragma_on_decorated_function_covers_the_body(self):
        found = check_source(
            "import functools\n"
            "import time\n"
            "\n"
            "\n"
            "@functools.lru_cache  # reprolint: disable=DET001 -- fixture\n"
            "def f() -> float:\n"
            "    return time.time()\n",
            "core/mod.py",
            LintConfig(),
        )
        assert found == []

    def test_unused_tree_rule_suppression_is_reported(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "X: int = 1  # reprolint: disable=CONC001 -- nothing here\n",
            encoding="utf-8",
        )
        report = lint_paths([tmp_path], LintConfig())
        assert [v.rule for v in report.violations] == ["SUP001"]


# ---------------------------------------------------------------------------
# Runtime sanitizer
# ---------------------------------------------------------------------------


class TestSanitizer:
    def test_disabled_new_lock_is_a_plain_threading_lock(self):
        assert not locks.sanitizer_enabled()
        lock = new_lock("service")
        assert not isinstance(lock, SanitizedLock)
        with lock:
            pass
        rlock = new_lock("bench", reentrant=True)
        with rlock:
            with rlock:
                pass

    def test_enabled_new_lock_records_edges(self, sanitizer):
        a, b = new_lock("a"), new_lock("b")
        with a:
            with b:
                pass
        graph = sanitizer.graph()
        assert {"from": "a", "to": "b"} in graph["edges"]
        assert sanitizer.violations() == []

    def test_order_inversion_is_a_violation(self, sanitizer):
        a, b = new_lock("a"), new_lock("b")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        kinds = [v.kind for v in sanitizer.violations()]
        assert kinds == ["inversion"]
        assert "'a'" in sanitizer.violations()[0].message

    def test_inversion_across_threads_is_caught(self, sanitizer):
        a, b = new_lock("a"), new_lock("b")

        def take_ab() -> None:
            with a:
                with b:
                    pass

        thread = threading.Thread(target=take_ab)
        thread.start()
        thread.join()
        with b:
            with a:
                pass
        assert [v.kind for v in sanitizer.violations()] == ["inversion"]

    def test_reentrant_lock_nests_without_violation(self, sanitizer):
        lock = new_lock("bench", reentrant=True)
        with lock:
            with lock:
                pass
        assert sanitizer.violations() == []
        # Same-object nesting is not an ordering fact: no self-edge.
        assert sanitizer.graph()["edges"] == []

    def test_nonreentrant_reacquire_records_self_deadlock(self, sanitizer):
        lock = new_lock("svc")
        monitor = sanitizer
        with lock:
            # Calling the monitor hook directly (a real second acquire()
            # would deadlock this thread forever -- exactly the bug class).
            monitor.on_attempt(lock)
        kinds = [v.kind for v in sanitizer.violations()]
        assert kinds == ["self-deadlock"]

    def test_blocking_checkpoint_under_disallowed_lock(self, sanitizer):
        lock = new_lock("service")
        with lock:
            locks.blocking("test.io")
        violations = sanitizer.violations()
        assert [v.kind for v in violations] == ["blocking"]
        assert "test.io" in violations[0].message

    def test_blocking_checkpoint_under_allowed_lock_is_clean(self, sanitizer):
        lock = new_lock("solver")
        with lock:
            locks.blocking("solver.work")
        assert sanitizer.violations() == []

    def test_blocking_checkpoint_with_no_lock_is_clean(self, sanitizer):
        locks.blocking("free.io")
        assert sanitizer.violations() == []

    def test_dump_is_canonical_and_deterministic(self, sanitizer):
        a, b = new_lock("a"), new_lock("b")
        with a:
            with b:
                pass
        first = sanitizer.dump_graph()
        assert first == sanitizer.dump_graph()
        assert first.endswith("\n")

    def test_default_blocking_allowed_matches_pyproject(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        assert tuple(sorted(config.blocking_allowed())) == \
            tuple(sorted(DEFAULT_BLOCKING_ALLOWED))

    def test_monitor_defaults_to_the_shared_allowlist(self):
        assert LockMonitor().blocking_allowed == \
            frozenset(DEFAULT_BLOCKING_ALLOWED)


# ---------------------------------------------------------------------------
# Cross-check: dynamic graph vs static graph on the real tree
# ---------------------------------------------------------------------------


class TestStaticDynamicCrossCheck:
    def run_soak(self) -> LockMonitor:
        from repro.harness.experiments import serve_plans

        monitor = enable_sanitizer()
        try:
            serve_plans(soak=False)
        finally:
            disable_sanitizer()
        return monitor

    def test_soak_dynamic_graph_is_subgraph_of_static(self):
        monitor = self.run_soak()
        assert monitor.violations() == []
        config = load_config(REPO_ROOT / "pyproject.toml")
        static = build_lock_model([SRC], config)
        problems = compare_graphs(static.graph(), monitor.graph())
        assert problems == []

    def test_wire_and_admin_shutdown_under_sanitizer(self):
        """The close-while-serving audit: live connection + admin scrape,
        then close everything; no inversions, no blocking-under-lock."""
        from urllib.request import urlopen

        from repro.service import PlanRequest, PlanService, RequestLog
        from repro.wire import AdminServer, PlanClient, PlanServer
        from tests.conftest import make_geometry

        monitor = enable_sanitizer()
        try:
            request_log = RequestLog()
            service = PlanService(request_log=request_log)
            server = PlanServer(service, "127.0.0.1", 0).start()
            admin = AdminServer(
                service, wire_stats=server.stats.as_dict,
                host="127.0.0.1", port=0,
            ).start()
            client = PlanClient("127.0.0.1", server.port)
            try:
                response = client.plan(PlanRequest(
                    kernel="conv", geometry=make_geometry(), client="test",
                ))
                assert response.configuration is not None
                with urlopen(
                    f"http://{admin.address}/healthz", timeout=5
                ) as reply:
                    assert reply.status == 200
            finally:
                # Close the admin and server while the client connection is
                # still open -- the historical inversion window.
                admin.close()
                server.close()
                client.close()
                service.close()
        finally:
            disable_sanitizer()
        assert monitor.violations() == []

    def test_sanitized_service_answers_in_process(self):
        from repro.service import PlanRequest, PlanService
        from tests.conftest import make_geometry

        monitor = enable_sanitizer()
        try:
            service = PlanService()
            try:
                ticket = service.submit(PlanRequest(
                    kernel="conv", geometry=make_geometry(), client="test",
                ))
                response = service.wait(ticket)
                assert response.source in ("fresh", "cached", "coalesced")
            finally:
                service.close()
        finally:
            disable_sanitizer()
        assert monitor.violations() == []


def test_socket_level_lock_probe(sanitizer):
    """A socket pair driven under a 'wire.client' lock mirrors the client's
    hold-across-exchange pattern; blocking checkpoints must stay legal."""
    lock = new_lock("wire.client")
    left, right = socket.socketpair()
    try:
        with lock:
            locks.blocking("wire.write_frame")
            left.sendall(b"ping")
            locks.blocking("wire.read_frame")
            assert right.recv(4) == b"ping"
    finally:
        left.close()
        right.close()
    assert sanitizer.violations() == []
