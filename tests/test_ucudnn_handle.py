"""Tests for the transparent UcudnnHandle interposition (section III-D/E)."""

import numpy as np
import pytest

from repro.core import BatchSizePolicy, Options, UcudnnHandle
from repro.core.cache import BenchmarkCache
from repro.core.handle import UcudnnHandle_t, VirtualAlgo, raise_if_virtual
from repro.cudnn import api
from repro.cudnn.descriptors import (
    ConvolutionDescriptor,
    FilterDescriptor,
    TensorDescriptor,
)
from repro.cudnn.enums import ConvType
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.errors import UcudnnError
from repro.units import MIB
from tests.conftest import assert_close


def framework_pass(handle, rng, n=16):
    """Framework-style code: Get algorithms at setup, run all three ops."""
    xd = TensorDescriptor(n, 6, 11, 11)
    wd = FilterDescriptor(10, 6, 3, 3)
    cd = ConvolutionDescriptor(1, 1)
    g = api.make_geometry(ConvType.FORWARD, xd, wd, cd)
    x = rng.standard_normal(xd.shape).astype(np.float32)
    w = rng.standard_normal(wd.shape).astype(np.float32)
    dy = rng.standard_normal(g.y_desc.shape).astype(np.float32)

    algos, sizes = {}, {}
    for ct in ConvType:
        gk = api.make_geometry(ct, xd, wd, cd)
        algos[ct] = api.get_algorithm(
            handle, gk, api.AlgoPreference.SPECIFY_WORKSPACE_LIMIT, 1 * MIB
        )
        sizes[ct] = api.get_workspace_size(handle, gk, algos[ct])

    y = api.convolution_forward(handle, xd, x, wd, w, cd,
                                algos[ConvType.FORWARD],
                                sizes[ConvType.FORWARD], g.y_desc)
    dw = api.convolution_backward_filter(handle, xd, x, g.y_desc, dy, cd,
                                         algos[ConvType.BACKWARD_FILTER],
                                         sizes[ConvType.BACKWARD_FILTER], wd)
    dx = api.convolution_backward_data(handle, wd, w, g.y_desc, dy, cd,
                                       algos[ConvType.BACKWARD_DATA],
                                       sizes[ConvType.BACKWARD_DATA], xd)
    return y, dw, dx


class TestTransparency:
    def test_numerics_identical_to_plain_cudnn(self):
        """The whole point: swapping the handle changes nothing numerically."""
        ref = framework_pass(CudnnHandle(), np.random.default_rng(5))
        uc = framework_pass(
            UcudnnHandle(options=Options(policy=BatchSizePolicy.POWER_OF_TWO,
                                         workspace_limit=256 * 1024)),
            np.random.default_rng(5),
        )
        for a, b, name in zip(ref, uc, ("y", "dw", "dx")):
            assert_close(b, a, tol=2e-3, context=name)

    def test_wd_mode_numerics_identical(self):
        ref = framework_pass(CudnnHandle(), np.random.default_rng(6))
        handle = UcudnnHandle(options=Options(policy=BatchSizePolicy.POWER_OF_TWO,
                                              total_workspace=1 * MIB))
        uc = framework_pass(handle, np.random.default_rng(6))
        for a, b in zip(ref, uc):
            assert_close(b, a, tol=2e-3)
        assert handle.wd_result is not None
        assert handle.wd_result.total_workspace <= 1 * MIB

    def test_virtual_algorithm_and_zero_workspace(self):
        """Section III-D: the wrapper returns a virtual algorithm ID and
        zero required workspace, so frameworks allocate nothing."""
        handle = UcudnnHandle()
        g = api.make_geometry(
            ConvType.FORWARD,
            TensorDescriptor(8, 4, 10, 10),
            FilterDescriptor(8, 4, 3, 3),
            ConvolutionDescriptor(1, 1),
        )
        algo = api.get_algorithm(handle, g,
                                 api.AlgoPreference.SPECIFY_WORKSPACE_LIMIT,
                                 64 * MIB)
        assert isinstance(algo, VirtualAlgo)
        assert api.get_workspace_size(handle, g, algo) == 0
        assert int(algo) == -1

    def test_find_algorithms_interposed(self):
        handle = UcudnnHandle()
        g = api.make_geometry(
            ConvType.FORWARD,
            TensorDescriptor(8, 4, 10, 10),
            FilterDescriptor(8, 4, 3, 3),
            ConvolutionDescriptor(1, 1),
        )
        results = api.find_algorithms(handle, g)
        assert len(results) == 1
        assert isinstance(results[0].algo, VirtualAlgo)
        assert results[0].workspace == 0

    def test_cast_operator_delegates(self):
        """The paper's cast to cudnnHandle_t: unknown attributes resolve to
        the wrapped handle."""
        handle = UcudnnHandle()
        assert handle.gpu is handle.inner.gpu
        assert handle.mode == handle.inner.mode
        assert handle.elapsed == 0.0

    def test_type_alias(self):
        assert UcudnnHandle_t is UcudnnHandle


class TestWorkspaceOwnership:
    def test_workspace_respects_framework_limit(self, rng):
        handle = UcudnnHandle(options=Options(policy=BatchSizePolicy.POWER_OF_TWO))
        framework_pass(handle, rng)
        for g, config in handle.configurations().items():
            assert config.workspace <= 1 * MIB  # the limit passed by Get

    def test_options_limit_when_framework_passes_none(self, rng):
        """The TF case (section IV-B2): no limit through the API, so
        mu-cuDNN falls back to its own configured limit."""
        handle = UcudnnHandle(options=Options(policy=BatchSizePolicy.POWER_OF_TWO,
                                              workspace_limit=64 * 1024))
        xd = TensorDescriptor(8, 4, 10, 10)
        wd = FilterDescriptor(8, 4, 3, 3)
        cd = ConvolutionDescriptor(1, 1)
        g = api.make_geometry(ConvType.FORWARD, xd, wd, cd)
        api.get_algorithm(handle, g, api.AlgoPreference.PREFER_FASTEST, None)
        x = rng.standard_normal(xd.shape).astype(np.float32)
        w = rng.standard_normal(wd.shape).astype(np.float32)
        api.convolution_forward(handle, xd, x, wd, w, cd, VirtualAlgo(ConvType.FORWARD),
                                0, g.y_desc)
        config = handle.configurations()[g]
        assert config.workspace <= 64 * 1024

    def test_memory_accounting(self, rng):
        handle = UcudnnHandle(options=Options(policy=BatchSizePolicy.POWER_OF_TWO))
        framework_pass(handle, rng)
        tags = handle.gpu.memory.live_by_tag()
        assert tags.get("workspace", 0) == handle.total_workspace_bytes()
        handle.release_workspaces()
        assert handle.gpu.memory.live_by_tag().get("workspace", 0) == 0

    def test_transient_workspace_frees_after_use(self, rng):
        handle = UcudnnHandle(options=Options(policy=BatchSizePolicy.POWER_OF_TWO),
                              transient_workspace=True)
        framework_pass(handle, rng)
        assert handle.gpu.memory.live_by_tag().get("workspace", 0) == 0
        # But the peak shows the transient allocations happened.
        assert handle.gpu.memory.peak > 0


class TestCachingAndCost:
    def test_configuration_cached_across_repeats(self, rng):
        handle = UcudnnHandle(options=Options(policy=BatchSizePolicy.POWER_OF_TWO))
        framework_pass(handle, rng)
        cost_first = handle.benchmark_time
        assert cost_first > 0
        framework_pass(handle, rng)  # same geometries again
        assert handle.benchmark_time == cost_first  # nothing re-benchmarked

    def test_shared_file_cache(self, rng, tmp_path):
        db = tmp_path / "db.json"
        h1 = UcudnnHandle(options=Options(policy=BatchSizePolicy.POWER_OF_TWO,
                                          benchmark_db=str(db)))
        framework_pass(h1, rng)
        h1.cache.save()
        h2 = UcudnnHandle(options=Options(policy=BatchSizePolicy.POWER_OF_TWO,
                                          benchmark_db=str(db)))
        framework_pass(h2, np.random.default_rng(9))
        assert h2.benchmark_time == 0.0  # everything served from the file DB

    def test_freeze_ignores_new_registrations(self):
        handle = UcudnnHandle()
        g = api.make_geometry(
            ConvType.FORWARD,
            TensorDescriptor(8, 4, 10, 10),
            FilterDescriptor(8, 4, 3, 3),
            ConvolutionDescriptor(1, 1),
        )
        handle.freeze()
        api.get_algorithm(handle, g, api.AlgoPreference.PREFER_FASTEST)
        assert g not in handle._limits


class TestGuards:
    def test_raise_if_virtual(self):
        with pytest.raises(UcudnnError):
            raise_if_virtual(VirtualAlgo(ConvType.FORWARD))
        raise_if_virtual("anything-else")  # no-op
