"""Tests for the benchmark / configuration cache (paper section III-D)."""

import json

import pytest

from repro.core.cache import BenchmarkCache
from repro.core.config import Configuration, MicroConfig
from repro.cudnn.enums import ConvType, FwdAlgo
from repro.cudnn.perfmodel import PerfResult
from repro.cudnn.status import Status
from repro.errors import CacheError
from tests.conftest import make_geometry


def sample_results():
    return [
        PerfResult(FwdAlgo.FFT, Status.SUCCESS, 0.001, 1024),
        PerfResult(FwdAlgo.IMPLICIT_GEMM, Status.SUCCESS, 0.002, 0),
    ]


def sample_config():
    return Configuration((
        MicroConfig(64, FwdAlgo.FFT, 0.5, 2048),
        MicroConfig(64, FwdAlgo.FFT_TILING, 0.6, 1024),
    ))


class TestInMemory:
    def test_benchmark_roundtrip(self):
        cache = BenchmarkCache()
        g = make_geometry()
        assert cache.get_benchmark("p100-sxm2", g) is None
        cache.put_benchmark("p100-sxm2", g, sample_results())
        got = cache.get_benchmark("p100-sxm2", g)
        assert [r.algo for r in got] == [FwdAlgo.FFT, FwdAlgo.IMPLICIT_GEMM]

    def test_keys_include_gpu_and_geometry(self):
        cache = BenchmarkCache()
        g = make_geometry()
        cache.put_benchmark("p100-sxm2", g, sample_results())
        assert cache.get_benchmark("k80", g) is None
        assert cache.get_benchmark("p100-sxm2", g.with_batch(2)) is None

    def test_hit_miss_counters(self):
        cache = BenchmarkCache()
        g = make_geometry()
        cache.get_benchmark("p100-sxm2", g)
        cache.put_benchmark("p100-sxm2", g, sample_results())
        cache.get_benchmark("p100-sxm2", g)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_counters_split_benchmark_vs_configuration(self):
        cache = BenchmarkCache()
        g = make_geometry()
        cache.get_benchmark("p100-sxm2", g)  # bench miss
        cache.put_benchmark("p100-sxm2", g, sample_results())
        cache.get_benchmark("p100-sxm2", g)  # bench hit
        key = cache.config_key("p100-sxm2", g, "all", 100, "wr")
        cache.get_configuration(key)  # config miss
        cache.get_configuration(key)  # config miss
        cache.put_configuration(key, ConvType.FORWARD, sample_config())
        cache.get_configuration(key)  # config hit
        assert (cache.bench_hits, cache.bench_misses) == (1, 1)
        assert (cache.config_hits, cache.config_misses) == (1, 2)
        # The aggregate view stays available for existing callers.
        assert cache.hits == 2
        assert cache.misses == 3

    def test_configuration_roundtrip(self):
        cache = BenchmarkCache()
        key = cache.config_key("p100-sxm2", make_geometry(), "powerOfTwo",
                               64 * 2**20, "wr")
        assert cache.get_configuration(key) is None
        cache.put_configuration(key, ConvType.FORWARD, sample_config())
        assert cache.get_configuration(key) == sample_config()

    def test_config_key_distinguishes_parameters(self):
        cache = BenchmarkCache()
        g = make_geometry()
        keys = {
            cache.config_key("p100-sxm2", g, "powerOfTwo", 100, "wr"),
            cache.config_key("p100-sxm2", g, "all", 100, "wr"),
            cache.config_key("p100-sxm2", g, "powerOfTwo", 200, "wr"),
            cache.config_key("p100-sxm2", g, "powerOfTwo", 100, "wd"),
            cache.config_key("k80", g, "powerOfTwo", 100, "wr"),
        }
        assert len(keys) == 5


class TestFileDB:
    def test_save_load_roundtrip(self, tmp_path):
        """The paper's file DB: offline benchmarking + sharing over NFS."""
        path = tmp_path / "bench.json"
        cache = BenchmarkCache(path)
        g = make_geometry()
        cache.put_benchmark("p100-sxm2", g, sample_results())
        key = cache.config_key("p100-sxm2", g, "all", 10, "wr")
        cache.put_configuration(key, ConvType.FORWARD, sample_config())
        cache.save()

        fresh = BenchmarkCache(path)  # loads eagerly
        got = fresh.get_benchmark("p100-sxm2", g)
        assert [(r.algo, r.time, r.workspace) for r in got] == \
            [(r.algo, r.time, r.workspace) for r in sample_results()]
        assert fresh.get_configuration(key) == sample_config()

    def test_save_is_atomic_replacement(self, tmp_path):
        path = tmp_path / "bench.json"
        cache = BenchmarkCache(path)
        cache.put_benchmark("k80", make_geometry(), sample_results())
        cache.save()
        cache.put_benchmark("k80", make_geometry(n=2), sample_results())
        cache.save()
        # Only the final file remains; no temp litter.
        assert [p.name for p in tmp_path.iterdir()] == ["bench.json"]

    def test_corrupt_file_raises_cache_error(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        with pytest.raises(CacheError):
            BenchmarkCache(path)

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"version": 999}))
        with pytest.raises(CacheError):
            BenchmarkCache(path)

    def test_save_without_path_is_noop(self):
        BenchmarkCache().save()  # must not raise

    def test_load_without_path_raises(self):
        with pytest.raises(CacheError):
            BenchmarkCache().load()

    def test_clean_save_skips_rewrite(self, tmp_path):
        """Unchanged state must not rewrite the file (frameworks call save
        every training step; after warm-up the DB is multi-megabyte and
        static)."""
        path = tmp_path / "bench.json"
        cache = BenchmarkCache(path)
        cache.put_benchmark("k80", make_geometry(), sample_results())
        assert cache.dirty
        cache.save()
        assert not cache.dirty
        before = path.stat().st_mtime_ns
        cache.save()  # clean: must not touch the file
        assert path.stat().st_mtime_ns == before

        cache.put_benchmark("k80", make_geometry(n=2), sample_results())
        assert cache.dirty
        cache.save()
        assert BenchmarkCache(path).get_benchmark(
            "k80", make_geometry(n=2)) is not None

    def test_load_clears_dirty(self, tmp_path):
        path = tmp_path / "bench.json"
        cache = BenchmarkCache(path)
        cache.put_benchmark("k80", make_geometry(), sample_results())
        cache.save()
        fresh = BenchmarkCache(path)
        assert not fresh.dirty
        key = fresh.config_key("k80", make_geometry(), "all", 1, "wr")
        fresh.put_configuration(key, ConvType.FORWARD, sample_config())
        assert fresh.dirty

    def test_len_counts_entries(self, tmp_path):
        cache = BenchmarkCache()
        assert len(cache) == 0
        cache.put_benchmark("k80", make_geometry(), sample_results())
        key = cache.config_key("k80", make_geometry(), "all", 1, "wr")
        cache.put_configuration(key, ConvType.FORWARD, sample_config())
        assert len(cache) == 2


class TestFileDBCorruption:
    """Damaged cache files raise CacheError, never raw tracebacks.

    A shared file DB (the paper's NFS deployment) sees torn writes,
    truncation, and stale copies; each must surface as "the cache is
    damaged" rather than a KeyError/IndexError from half-parsed data.
    """

    def test_empty_file_raises_cache_error(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("")
        with pytest.raises(CacheError, match="empty"):
            BenchmarkCache(path)

    def test_truncated_file_raises_cache_error(self, tmp_path):
        path = tmp_path / "bench.json"
        cache = BenchmarkCache(path)
        cache.put_benchmark("k80", make_geometry(), sample_results())
        cache.save()
        full = path.read_text()
        path.write_text(full[: len(full) // 2])
        with pytest.raises(CacheError, match="truncated or corrupt"):
            BenchmarkCache(path)

    def test_non_object_payload_raises_cache_error(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(CacheError):
            BenchmarkCache(path)

    def test_structurally_damaged_rows_name_the_key(self, tmp_path):
        # Valid JSON, right version, but a benchmark row missing fields.
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({
            "version": 1,
            "benchmarks": {"k80|Forward:n1": [{"algo": 0}]},
            "configurations": {},
        }))
        with pytest.raises(CacheError, match="k80"):
            BenchmarkCache(path)

    def test_damaged_configuration_section_raises(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({
            "version": 1,
            "benchmarks": {},
            "configurations": {"k80|Forward:n1|all|10|wr": {"micros": "no"}},
        }))
        with pytest.raises(CacheError):
            BenchmarkCache(path)

    def test_wrong_container_types_raise(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({
            "version": 1, "benchmarks": [], "configurations": {},
        }))
        with pytest.raises(CacheError):
            BenchmarkCache(path)


class TestPayloadImportExport:
    """export_payload/import_payload back the persistence snapshots."""

    def filled(self):
        cache = BenchmarkCache()
        cache.put_benchmark("k80", make_geometry(), sample_results())
        key = cache.config_key("k80", make_geometry(), "all", 10, "wr")
        cache.put_configuration(key, ConvType.FORWARD, sample_config())
        return cache, key

    def test_roundtrip(self):
        cache, key = self.filled()
        payload = cache.export_payload()
        fresh = BenchmarkCache()
        assert fresh.import_payload(payload) == 2
        assert fresh.get_configuration(key) == sample_config()
        got = fresh.get_benchmark("k80", make_geometry())
        assert [r.algo for r in got] == [r.algo for r in sample_results()]

    def test_import_keeps_local_entries(self):
        cache, key = self.filled()
        payload = cache.export_payload()
        # The local cache already has a *different* configuration under the
        # same key; import must not replace it (keep-local).
        local = BenchmarkCache()
        mine = Configuration((MicroConfig(64, FwdAlgo.GEMM, 0.1, 0),))
        local.put_configuration(key, ConvType.FORWARD, mine)
        assert local.import_payload(payload) == 1  # only the bench row
        assert local.get_configuration(key) == mine

    def test_import_filters_by_gpu(self):
        cache, _ = self.filled()
        payload = cache.export_payload()
        fresh = BenchmarkCache()
        assert fresh.import_payload(payload, only_gpu="v100-sxm2") == 0
        assert fresh.import_payload(payload, only_gpu="k80") == 2

    def test_import_rejects_malformed_payload(self):
        with pytest.raises(CacheError):
            BenchmarkCache().import_payload({"benchmarks": "nope"})


class TestCapacity:
    """Optional LRU bound on the in-memory cache (default: unlimited)."""

    def test_unbounded_by_default(self):
        cache = BenchmarkCache()
        for n in range(1, 20):
            cache.put_benchmark("k80", make_geometry(n=n), sample_results())
        assert len(cache) == 19
        assert cache.evictions == 0

    def test_lru_eviction_across_both_stores(self):
        cache = BenchmarkCache(capacity=2)
        cache.put_benchmark("k80", make_geometry(n=2), sample_results())
        key = cache.config_key("k80", make_geometry(), "all", 1, "wr")
        cache.put_configuration(key, ConvType.FORWARD, sample_config())
        # Touch the benchmark entry so the configuration is the LRU one.
        assert cache.get_benchmark("k80", make_geometry(n=2)) is not None
        cache.put_benchmark("k80", make_geometry(n=4), sample_results())
        assert cache.evictions == 1
        assert cache.get_configuration(key) is None  # evicted
        assert cache.get_benchmark("k80", make_geometry(n=2)) is not None
        assert cache.get_benchmark("k80", make_geometry(n=4)) is not None
        assert len(cache) == 2

    def test_lookups_refresh_recency(self):
        cache = BenchmarkCache(capacity=2)
        cache.put_benchmark("k80", make_geometry(n=2), sample_results())
        cache.put_benchmark("k80", make_geometry(n=4), sample_results())
        assert cache.get_benchmark("k80", make_geometry(n=2)) is not None
        cache.put_benchmark("k80", make_geometry(n=8), sample_results())
        # n=4 was least recently used; n=2 survived its refresh.
        assert cache.get_benchmark("k80", make_geometry(n=4)) is None
        assert cache.get_benchmark("k80", make_geometry(n=2)) is not None

    def test_capacity_applies_on_load(self, tmp_path):
        path = tmp_path / "bench.json"
        full = BenchmarkCache(path)
        for n in (2, 4, 8):
            full.put_benchmark("k80", make_geometry(n=n), sample_results())
        full.save()
        bounded = BenchmarkCache(path, capacity=2)
        assert len(bounded) == 2
        assert bounded.evictions == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BenchmarkCache(capacity=0)
