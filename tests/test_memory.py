"""Tests for memory accounting and the Fig. 12 reporting machinery."""

import numpy as np
import pytest

from repro.core import BatchSizePolicy, Options, UcudnnHandle
from repro.cudnn.device import DeviceMemory, Gpu
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.frameworks.model_zoo import build_tiny_cnn
from repro.memory import MemorySnapshot, PeakTracker, memory_report
from repro.units import MIB


class TestSnapshot:
    def test_capture_and_diff(self):
        mem = DeviceMemory(1000)
        mem.alloc(100, tag="data")
        before = MemorySnapshot.capture(mem)
        mem.alloc(50, tag="workspace")
        after = MemorySnapshot.capture(mem)
        delta = after.diff(before)
        assert delta.by_tag == {"workspace": 50}
        assert after.total == 150
        assert after.get("data") == 100
        assert after.get("missing") == 0


class TestPeakTracker:
    def test_scoped_peak(self):
        mem = DeviceMemory(1000)
        mem.alloc(100)
        with PeakTracker(mem) as tracker:
            ident = mem.alloc(500)
            mem.free(ident)
        assert tracker.observed_peak == 600
        # Global high-water mark restored/kept.
        assert mem.peak == 600

    def test_outer_peak_preserved(self):
        mem = DeviceMemory(1000)
        a = mem.alloc(700)
        mem.free(a)
        with PeakTracker(mem) as tracker:
            mem.alloc(100)
        assert tracker.observed_peak == 100
        assert mem.peak == 700  # the earlier, larger peak wins globally


class TestMemoryReport:
    def _net(self, handle):
        return build_tiny_cnn(batch=8).setup(handle, workspace_limit=1 * MIB)

    def test_plain_cudnn_report(self):
        handle = CudnnHandle(mode=ExecMode.TIMING)
        net = self._net(handle)
        report = memory_report(net)
        by_name = report.by_name()
        assert by_name["conv1"].is_conv
        assert by_name["conv1"].data_bytes == net.blobs["c1"].size_bytes
        assert by_name["conv1"].param_bytes == net.layer("conv1").param_bytes
        assert by_name["conv1"].workspace_bytes == net.layer("conv1").workspace_slot
        assert by_name["relu1"].workspace_bytes == 0
        assert report.total > 0

    def test_ucudnn_report_uses_layer_max(self):
        handle = UcudnnHandle(
            mode=ExecMode.TIMING,
            options=Options(policy=BatchSizePolicy.POWER_OF_TWO,
                            workspace_limit=1 * MIB),
        )
        net = self._net(handle)
        net.forward()
        net.backward()
        report = memory_report(net, handle)
        configs = handle.configurations()
        conv1 = net.layer("conv1")
        from repro.cudnn.enums import ConvType
        expected = max(configs[conv1.geometry(ct)].workspace for ct in ConvType)
        assert report.by_name()["conv1"].workspace_bytes == expected

    def test_render_mentions_all_layers(self):
        handle = CudnnHandle(mode=ExecMode.TIMING)
        net = self._net(handle)
        text = memory_report(net).render()
        for layer in net.layers:
            assert layer.name in text
        assert "TOTAL" in text

    def test_peak_layer(self):
        handle = CudnnHandle(mode=ExecMode.TIMING)
        report = memory_report(self._net(handle))
        peak = report.peak_layer()
        assert peak.total == max(l.total for l in report.layers)
