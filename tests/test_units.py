"""Tests for byte-size helpers and formatting."""

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_constants_are_binary_powers():
    assert units.KIB == 2**10
    assert units.MIB == 2**20
    assert units.GIB == 2**30


def test_framework_defaults_match_paper():
    # Section IV: "8 MiB and 64 MiB ... the default workspace size limits of
    # Caffe and Caffe2 respectively".
    assert units.CAFFE_DEFAULT_WORKSPACE == 8 * units.MIB
    assert units.CAFFE2_DEFAULT_WORKSPACE == 64 * units.MIB


def test_mib_rounds_up():
    assert units.mib(1) == units.MIB
    assert units.mib(0.5) == units.MIB // 2
    assert units.mib(1.0000001) > units.MIB


@pytest.mark.parametrize(
    "n,expected",
    [
        (0, "0 B"),
        (512, "512 B"),
        (1024, "1.0 KiB"),
        (48 * units.MIB + units.MIB * 9 // 10, "48.9 MiB"),
        (3 * units.GIB, "3.0 GiB"),
        (-2048, "-2.0 KiB"),
    ],
)
def test_format_bytes(n, expected):
    assert units.format_bytes(n) == expected


@pytest.mark.parametrize(
    "t,expected",
    [
        (1e-6, "1 us"),
        (3.82, "3.82 s"),
        (0.00482, "4.82 ms"),
    ],
)
def test_format_time(t, expected):
    assert units.format_time(t) == expected


def test_format_time_negative():
    assert units.format_time(-0.001).startswith("-")


@given(st.integers(min_value=0, max_value=2**50))
def test_format_bytes_total(n):
    out = units.format_bytes(n)
    assert out.endswith(("B", "KiB", "MiB", "GiB"))


@given(st.floats(min_value=1e-9, max_value=1e4, allow_nan=False))
def test_format_time_total(t):
    assert units.format_time(t).endswith(("us", "ms", "s"))
