"""Tests for the data-parallel training simulation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BatchSizePolicy, Options, UcudnnHandle
from repro.cudnn.device import Gpu
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.frameworks import time_net
from repro.frameworks.model_zoo import build_alexnet
from repro.parallel import ring_allreduce_time, simulate_iteration
from repro.units import MIB


class TestRingAllreduce:
    def test_single_gpu_free(self):
        assert ring_allreduce_time(10**9, 1) == 0.0

    def test_scales_with_message_size(self):
        small = ring_allreduce_time(10**6, 4)
        big = ring_allreduce_time(10**8, 4)
        assert big > small

    def test_bandwidth_term_approaches_2x_message_over_bw(self):
        """For large p and large messages, time -> 2 * message / bandwidth."""
        msg = 10**9
        t = ring_allreduce_time(msg, 64, "nvlink")
        asymptote = 2 * msg / 20e9
        assert t == pytest.approx(asymptote, rel=0.1)

    def test_unknown_interconnect(self):
        with pytest.raises(ValueError):
            ring_allreduce_time(1, 2, "carrier-pigeon")

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            ring_allreduce_time(1, 0)

    @settings(max_examples=25)
    @given(p=st.integers(2, 128), msg=st.integers(1, 10**9))
    def test_monotone_in_message(self, p, msg):
        assert ring_allreduce_time(msg, p) <= ring_allreduce_time(msg + 10**6, p)


class TestSimulateIteration:
    def _report(self, batch, handle=None):
        handle = handle or CudnnHandle(mode=ExecMode.TIMING)
        net = build_alexnet(batch=batch).setup(handle, workspace_limit=64 * MIB)
        return time_net(net, iterations=1), net.total_param_bytes()

    def test_overlap_hides_communication(self):
        """AlexNet's backward pass is long enough to hide a 4-GPU NVLink
        all-reduce of its ~244 MB of gradients -- the paper's 'hiding the
        communication of parameter gradients in the computation'."""
        report, param_bytes = self._report(256)
        it = simulate_iteration(report, param_bytes, 4, 256)
        assert it.allreduce_time > 0
        assert it.comm_hidden_fraction > 0.5
        assert it.iteration_time < report.total + it.allreduce_time

    def test_small_batches_expose_communication(self):
        """Strong scaling: at tiny per-GPU batches the backward window
        shrinks and the all-reduce leaks out -- why per-GPU batches stay
        large, hence why memory is at capacity, hence the paper."""
        big_report, params = self._report(256)
        small_report, _ = self._report(8)
        big = simulate_iteration(big_report, params, 4, 256)
        small = simulate_iteration(small_report, params, 4, 8)
        assert small.comm_hidden_fraction < big.comm_hidden_fraction
        # Per-sample efficiency collapses at the small batch.
        assert small.samples_per_second < big.samples_per_second

    def test_weak_scaling_throughput_grows(self):
        report, params = self._report(256)
        t1 = simulate_iteration(report, params, 1, 256)
        t4 = simulate_iteration(report, params, 4, 256)
        t8 = simulate_iteration(report, params, 8, 256)
        assert t1.samples_per_second < t4.samples_per_second < t8.samples_per_second
        # Never better than perfect scaling.
        assert t8.samples_per_second <= 8 * t1.samples_per_second + 1e-6

    def test_ucudnn_speeds_up_the_whole_ensemble(self):
        """End to end: mu-cuDNN's single-GPU gain carries straight through
        the data-parallel model (compute dominates at healthy batch)."""
        base_report, params = self._report(256)
        handle = UcudnnHandle(
            gpu=Gpu.create("p100-sxm2"), mode=ExecMode.TIMING,
            options=Options(policy=BatchSizePolicy.POWER_OF_TWO,
                            workspace_limit=64 * MIB),
        )
        fast_report, _ = self._report(256, handle=handle)
        base = simulate_iteration(base_report, params, 4, 256)
        fast = simulate_iteration(fast_report, params, 4, 256)
        assert fast.samples_per_second / base.samples_per_second > 1.3
