"""Property tests: the tensorized solvers are bit-identical to the serial ones.

The tensor backends (:mod:`repro.core.tensor_solve`) exist purely for
speed; their contract is *equality*, not approximation: same
configurations, same totals, same error types with the same messages, for
every input the serial solvers accept -- including empty networks,
single-kernel networks, and all-infeasible limits.  The
:class:`~repro.core.tensor_solve.DeltaSolver` additionally promises that
any sequence of solves and single-kernel mutations yields the answers a
from-scratch serial solve would, while provably skipping the untouched
kernels.  These tests pit every backend against its reference on
hypothesis-generated workloads.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.benchmarker import benchmark_kernel
from repro.core.mckp import MCKPItem, solve_mckp
from repro.core.optimizer import optimize_network_wr
from repro.core.policies import BatchSizePolicy
from repro.core.sweep import sweep_network_wr
from repro.core.tensor_solve import (
    DeltaSolver,
    bench_fingerprint,
    geometry_family,
    solve_network_wr,
    solve_network_wr_outcomes,
)
from repro.core.wr import optimize_from_benchmark
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.errors import OptimizationError, SolverError
from repro.units import MIB
from tests.conftest import make_geometry
from tests.test_optimizer_properties import model_geometry

SETTINGS = dict(max_examples=10, deadline=None)

#: Limits spanning infeasible (-1), the zero-workspace boundary,
#: byte-granular small values, and generous caps.
limit_values = st.one_of(
    st.just(-1), st.integers(0, 4096), st.integers(0, 512 * MIB)
)


@pytest.fixture(scope="module")
def handle():
    return CudnnHandle(mode=ExecMode.TIMING)


def network_of(handle, geometries, policy=BatchSizePolicy.POWER_OF_TWO):
    """``name -> KernelBenchmark`` for a list of geometries."""
    return {
        f"k{i}": benchmark_kernel(handle, g, policy)
        for i, g in enumerate(geometries)
    }


def serial_outcomes(benches, limit):
    """The per-kernel reference: config or error, kernel by kernel."""
    configs, errors = {}, {}
    for name, bench in benches.items():
        try:
            configs[name] = optimize_from_benchmark(bench, limit)
        except OptimizationError as exc:
            errors[name] = exc
    return configs, errors


def assert_same_outcomes(benches, limit):
    """Tensor outcomes == serial outcomes, configs and errors both."""
    expected_configs, expected_errors = serial_outcomes(benches, limit)
    configs, errors = solve_network_wr_outcomes(benches, limit)
    assert configs == expected_configs
    assert set(errors) == set(expected_errors)
    for name, exc in errors.items():
        assert type(exc) is type(expected_errors[name])
        assert str(exc) == str(expected_errors[name])


class TestTensorWR:
    @settings(**SETTINGS)
    @given(gs=st.lists(model_geometry(), min_size=1, max_size=4),
           data=st.data())
    def test_matches_serial_per_kernel(self, handle, gs, data):
        benches = network_of(handle, gs)
        assert_same_outcomes(benches, data.draw(limit_values))

    def test_empty_network(self):
        assert solve_network_wr({}, 64 * MIB) == {}
        assert solve_network_wr_outcomes({}, 64 * MIB) == ({}, {})

    @settings(**SETTINGS)
    @given(g=model_geometry(), data=st.data())
    def test_single_kernel(self, handle, g, data):
        benches = network_of(handle, [g])
        assert_same_outcomes(benches, data.draw(limit_values))

    @settings(**SETTINGS)
    @given(gs=st.lists(model_geometry(), min_size=1, max_size=3))
    def test_all_infeasible_raises_first_error(self, handle, gs):
        """Negative limit: every kernel infeasible; the raise-on-error
        wrapper must surface the *first* kernel's error, like the serial
        network loop."""
        benches = network_of(handle, gs)
        first = next(iter(benches.values()))
        with pytest.raises(OptimizationError) as expected:
            optimize_from_benchmark(first, -1)
        with pytest.raises(OptimizationError) as actual:
            solve_network_wr(benches, -1)
        assert str(actual.value) == str(expected.value)

    @settings(**SETTINGS)
    @given(gs=st.lists(model_geometry(), min_size=1, max_size=3),
           data=st.data())
    def test_network_optimizer_backends_identical(self, handle, gs, data):
        geometries = {f"k{i}": g for i, g in enumerate(gs)}
        limit = data.draw(st.integers(0, 512 * MIB))
        try:
            serial = optimize_network_wr(handle, geometries, limit)
        except OptimizationError as exc:
            with pytest.raises(OptimizationError) as raised:
                optimize_network_wr(handle, geometries, limit,
                                    backend="tensor")
            assert str(raised.value) == str(exc)
            return
        tensor = optimize_network_wr(handle, geometries, limit,
                                     backend="tensor")
        assert [(k.name, k.configuration, k.undivided_time)
                for k in tensor.kernels] == [
            (k.name, k.configuration, k.undivided_time)
            for k in serial.kernels
        ]
        assert tensor.total_time == serial.total_time
        assert tensor.total_workspace == serial.total_workspace

    @settings(**SETTINGS)
    @given(gs=st.lists(model_geometry(), min_size=1, max_size=3),
           limits=st.lists(limit_values, min_size=1, max_size=5))
    def test_network_sweep_backends_identical(self, handle, gs, limits):
        geometries = {f"k{i}": g for i, g in enumerate(gs)}
        serial = sweep_network_wr(handle, geometries, limits)
        tensor = sweep_network_wr(handle, geometries, limits,
                                  backend="tensor")
        for limit in limits:
            serial_err = serial.errors.get(limit)
            tensor_err = tensor.errors.get(limit)
            assert (serial_err is None) == (tensor_err is None)
            if serial_err is not None:
                assert type(tensor_err) is type(serial_err)
                continue
            a, b = serial.plan(limit), tensor.plan(limit)
            assert [(k.name, k.configuration) for k in a.kernels] == [
                (k.name, k.configuration) for k in b.kernels
            ]

    def test_unknown_backends_rejected(self, handle):
        g = make_geometry()
        with pytest.raises(SolverError):
            optimize_network_wr(handle, {"k": g}, MIB, backend="simd")
        with pytest.raises(SolverError):
            sweep_network_wr(handle, {"k": g}, [MIB], backend="simd")
        with pytest.raises(SolverError):
            solve_mckp([[MCKPItem(1.0, 1, 0)]], 1, backend="simd")


#: Random MCKP instances: a few groups of items with small weights so both
#: feasible and infeasible capacities are reachable.
mckp_groups = st.lists(
    st.lists(
        st.tuples(st.floats(0.1, 100.0, allow_nan=False),
                  st.integers(0, 50)),
        min_size=1, max_size=5,
    ),
    min_size=1, max_size=5,
)


class TestTensorMCKP:
    @settings(max_examples=50, deadline=None)
    @given(raw=mckp_groups, capacity=st.integers(0, 120),
           max_front=st.sampled_from([2, 4, 2_000_000]))
    def test_matches_serial_exactly(self, raw, capacity, max_front):
        groups = [
            [MCKPItem(cost=c, weight=w, index=i)
             for i, (c, w) in enumerate(items)]
            for items in raw
        ]
        try:
            serial = solve_mckp(groups, capacity, max_front=max_front,
                                backend="serial")
        except SolverError as exc:
            with pytest.raises(SolverError) as raised:
                solve_mckp(groups, capacity, max_front=max_front,
                           backend="tensor")
            assert str(raised.value) == str(exc)
            return
        tensor = solve_mckp(groups, capacity, max_front=max_front,
                            backend="tensor")
        assert tensor.selection == serial.selection
        assert tensor.cost == serial.cost
        assert tensor.weight == serial.weight
        assert tensor.front_peak == serial.front_peak

    def test_error_messages_pinned(self):
        with pytest.raises(SolverError, match="at least one group"):
            solve_mckp([], 10, backend="tensor")
        with pytest.raises(SolverError, match="group 1 is empty"):
            solve_mckp([[MCKPItem(1.0, 1, 0)], []], 10, backend="tensor")
        with pytest.raises(SolverError, match="no item combination fits"):
            solve_mckp([[MCKPItem(1.0, 5, 0)]], 3, backend="tensor")


def mutate(bench, factor):
    """Scale every measured time of one kernel in place (a 'driver update')."""
    for size, rows in bench.results.items():
        bench.results[size] = [
            dataclasses.replace(r, time=r.time * factor) for r in rows
        ]
    bench.invalidate_query_cache()


class TestDeltaSolver:
    @settings(**SETTINGS)
    @given(gs=st.lists(model_geometry(), min_size=2, max_size=4),
           data=st.data())
    def test_repeat_solve_avoids_full_solves(self, handle, gs, data):
        benches = network_of(handle, gs)
        limit = data.draw(st.integers(0, 512 * MIB))
        delta = DeltaSolver()
        expected_configs, expected_errors = serial_outcomes(benches, limit)

        def check():
            if expected_errors:
                first = next(n for n in benches if n in expected_errors)
                with pytest.raises(OptimizationError) as raised:
                    delta.solve_network(benches, limit)
                assert str(raised.value) == str(expected_errors[first])
            else:
                assert delta.solve_network(benches, limit) == expected_configs

        check()
        before = delta.stats.full_solves_avoided
        check()
        assert delta.stats.full_solves_avoided == before + 1
        assert delta.stats.kernels_solved == len(
            {b.geometry.cache_key() for b in benches.values()}
        )

    @settings(**SETTINGS)
    @given(gs=st.lists(model_geometry(), min_size=2, max_size=4,
                       unique_by=lambda g: g.cache_key()),
           data=st.data())
    def test_single_kernel_mutation_is_delta_solved(self, handle, gs, data):
        limit = data.draw(st.integers(0, 512 * MIB))
        benches = network_of(handle, gs)
        delta = DeltaSolver()
        try:
            delta.solve_network(benches, limit)
        except OptimizationError:
            return  # infeasible networks have nothing to delta-solve
        victim = data.draw(st.sampled_from(sorted(benches)))
        mutate(benches[victim], 1.5)
        solved_before = delta.stats.kernels_solved
        result = delta.solve_network(benches, limit)
        assert result == serial_outcomes(benches, limit)[0]
        # Exactly the mutated kernel was re-solved; the rest came from cache.
        assert delta.stats.kernels_solved == solved_before + 1
        assert delta.stats.delta_solves >= 1
        assert delta.stats.full_solves == 1

    def test_invalidate_family_drops_and_resolves(self, handle):
        g = make_geometry()
        benches = network_of(handle, [g])
        delta = DeltaSolver()
        delta.solve_network(benches, 64 * MIB)
        family = geometry_family(g.cache_key())
        assert delta.invalidate_family(family) >= 1
        assert delta.invalidate_family(family) == 0  # already gone
        solved_before = delta.stats.kernels_solved
        delta.solve_network(benches, 64 * MIB)
        assert delta.stats.kernels_solved == solved_before + 1

    def test_fingerprint_tracks_rows(self, handle):
        bench = benchmark_kernel(handle, make_geometry(),
                                 BatchSizePolicy.POWER_OF_TWO)
        before = bench_fingerprint(bench)
        assert bench_fingerprint(bench) == before
        mutate(bench, 2.0)
        assert bench_fingerprint(bench) != before

    def test_geometry_family_strips_batch(self):
        assert geometry_family("forward:n32c64h27w27k16r3") == (
            "forward:n*c64h27w27k16r3"
        )
