"""Tests for the from-scratch 0-1 ILP solver (the GLPK stand-in)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ilp import (
    ILPSolution,
    ZeroOneProblem,
    solve_branch_and_bound,
    solve_exhaustive,
)
from repro.errors import SolverError


def knapsack(costs, weights, capacity, groups=None):
    """Build a WD-shaped instance: minimize cost, sum(weights) <= capacity,
    optionally exactly-one-per-group equality rows."""
    costs = np.asarray(costs, dtype=float)
    weights = np.asarray(weights, dtype=float)[None, :]
    a_eq = b_eq = None
    if groups is not None:
        num_groups = max(groups) + 1
        a_eq = np.zeros((num_groups, len(costs)))
        for var, grp in enumerate(groups):
            a_eq[grp, var] = 1.0
        b_eq = np.ones(num_groups)
    return ZeroOneProblem(costs=costs, a_ub=weights,
                          b_ub=np.asarray([float(capacity)]),
                          a_eq=a_eq, b_eq=b_eq)


class TestProblemValidation:
    def test_empty_rejected(self):
        with pytest.raises(SolverError):
            ZeroOneProblem(costs=np.zeros(0))

    def test_mismatched_columns(self):
        with pytest.raises(SolverError):
            ZeroOneProblem(costs=np.zeros(3), a_ub=np.zeros((1, 2)),
                           b_ub=np.zeros(1))

    def test_ub_pair_required(self):
        with pytest.raises(SolverError):
            ZeroOneProblem(costs=np.zeros(2), a_ub=np.zeros((1, 2)))

    def test_feasibility_check(self):
        p = knapsack([1, 1], [3, 4], 5)
        assert p.is_feasible(np.array([1.0, 0.0]))
        assert not p.is_feasible(np.array([1.0, 1.0]))


class TestBranchAndBound:
    def test_simple_mckp(self):
        # Two groups; pick one per group; capacity forces the mix.
        p = knapsack(costs=[5, 1, 4, 1], weights=[0, 10, 0, 10], capacity=10,
                     groups=[0, 0, 1, 1])
        sol = solve_branch_and_bound(p)
        # Best unconstrained would be (1, 1) with weight 20 > 10; optimum
        # takes the cheap item in one group only: cost 5 + 1 or 1 + 4 -> 5.
        assert sol.objective == pytest.approx(5.0)
        assert sol.optimal
        assert len(sol.selected()) == 2

    def test_infeasible(self):
        p = knapsack(costs=[1, 1], weights=[10, 10], capacity=5,
                     groups=[0, 1])
        with pytest.raises(SolverError):
            solve_branch_and_bound(p)

    def test_stats_populated(self):
        p = knapsack([1, 2, 3], [1, 1, 1], 3, groups=[0, 1, 2])
        sol = solve_branch_and_bound(p)
        assert sol.lp_calls >= 1
        assert sol.solve_time >= 0.0
        assert sol.num_variables == 3

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_matches_exhaustive_random_mckp(self, data):
        num_groups = data.draw(st.integers(1, 4))
        sizes = [data.draw(st.integers(1, 3)) for _ in range(num_groups)]
        groups, costs, weights = [], [], []
        for grp, size in enumerate(sizes):
            for _ in range(size):
                groups.append(grp)
                costs.append(data.draw(st.floats(0.1, 10.0)))
                weights.append(data.draw(st.integers(0, 20)))
        capacity = data.draw(st.integers(0, 40))
        p = knapsack(costs, weights, capacity, groups)
        try:
            exact = solve_exhaustive(p)
        except SolverError:
            with pytest.raises(SolverError):
                solve_branch_and_bound(p)
            return
        bnb = solve_branch_and_bound(p)
        assert bnb.objective == pytest.approx(exact.objective)
        assert p.is_feasible(bnb.x)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_pure_knapsack_without_groups(self, data):
        """Selection problems without equality rows (subset-min with a
        knapsack constraint and negative costs to make selection attractive).

        Costs are rounded to 1e-6 so they stay above the LP solver's dual
        tolerance -- HiGHS legitimately treats |c| ~ 1e-12 as zero.
        """
        n = data.draw(st.integers(1, 8))
        costs = [round(data.draw(st.floats(-5.0, 5.0)), 6) for _ in range(n)]
        weights = [data.draw(st.integers(0, 10)) for _ in range(n)]
        capacity = data.draw(st.integers(0, 30))
        p = knapsack(costs, weights, capacity)
        exact = solve_exhaustive(p)  # all-zeros is always feasible
        bnb = solve_branch_and_bound(p)
        assert bnb.objective == pytest.approx(exact.objective)


class TestExhaustive:
    def test_refuses_large(self):
        with pytest.raises(SolverError):
            solve_exhaustive(ZeroOneProblem(costs=np.zeros(30)))

    def test_small_exact(self):
        p = knapsack([3, 2, 1], [1, 1, 1], 1, groups=[0, 0, 0])
        sol = solve_exhaustive(p)
        assert sol.objective == pytest.approx(1.0)
        assert sol.selected() == [2]
