"""Tests for the extended model zoo: GoogLeNet and VGG-16."""

import numpy as np
import pytest

from repro.core import BatchSizePolicy, optimize_network_wd, optimize_network_wr
from repro.core.cache import BenchmarkCache
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.frameworks import time_net
from repro.frameworks.model_zoo import build_googlenet, build_vgg16
from repro.units import MIB


def setup_timing(net, limit=8 * MIB):
    return net.setup(CudnnHandle(mode=ExecMode.TIMING), workspace_limit=limit)


class TestGoogLeNet:
    def test_architecture(self):
        net = setup_timing(build_googlenet(batch=4))
        assert len(net.conv_layers()) == 57  # 3 stem + 9 modules x 6
        assert net.blobs["p2"].shape == (4, 192, 28, 28)
        assert net.blobs["inception_3b_y"].shape == (4, 480, 28, 28)
        assert net.blobs["inception_4e_y"].shape == (4, 832, 14, 14)
        assert net.blobs["inception_5b_y"].shape == (4, 1024, 7, 7)
        assert net.blobs["logits"].shape == (4, 1000)

    def test_param_count(self):
        # GoogLeNet's famous frugality: ~7M (incl. classifier, no aux heads).
        net = setup_timing(build_googlenet(batch=1))
        params = sum(p.count for p in net.params())
        assert 5e6 < params < 9e6

    def test_trains(self, rng):
        net = build_googlenet(batch=2, num_classes=6).setup(
            CudnnHandle(), workspace_limit=8 * MIB, rng=rng
        )
        x = rng.standard_normal((2, 3, 224, 224)).astype(np.float32)
        loss = net.forward({"data": x}, np.array([0, 5]))
        assert np.isfinite(loss)
        net.backward()

    def test_wd_divides_pool_across_modules(self):
        """The paper's WD motivation on the real thing: a pooled budget over
        GoogLeNet's 171 kernels beats per-kernel WR at the same total."""
        handle = CudnnHandle(mode=ExecMode.TIMING)
        net = setup_timing(build_googlenet(batch=32))
        geoms = net.conv_geometries()
        cache = BenchmarkCache()
        per_kernel = 2 * MIB
        total = per_kernel * len(geoms)
        wr = optimize_network_wr(handle, geoms, per_kernel,
                                 BatchSizePolicy.POWER_OF_TWO, cache=cache)
        wd = optimize_network_wd(handle, geoms, total,
                                 BatchSizePolicy.POWER_OF_TWO, cache=cache)
        assert wd.total_time <= wr.total_time + 1e-12
        assert wd.total_workspace <= total
        # The 5x5 branches are where the pool should flow.
        by_name = {k.name: k.configuration for k in wd.kernels}
        five_by_five_ws = sum(
            c.workspace for name, c in by_name.items() if "_5x5:" in name
        )
        assert five_by_five_ws > 0


class TestVGG16:
    def test_architecture(self):
        net = setup_timing(build_vgg16(batch=2))
        assert len(net.conv_layers()) == 13
        assert net.blobs["p5"].shape == (2, 512, 7, 7)
        params = sum(p.count for p in net.params())
        assert params == pytest.approx(138.36e6, rel=0.01)

    def test_all_convs_winograd_eligible(self):
        """Every VGG conv is 3x3/stride-1: the whole net is Winograd
        territory, so mu-cuDNN's gain should be small -- and is."""
        handle = CudnnHandle(mode=ExecMode.TIMING)
        net = setup_timing(build_vgg16(batch=16))
        from repro.cudnn.enums import ConvType, FwdAlgo
        from repro.cudnn.workspace import is_supported
        for conv in net.conv_layers():
            assert is_supported(conv.geometry(ConvType.FORWARD),
                                FwdAlgo.WINOGRAD), conv.name

    def test_mu_cudnn_gain_is_small_on_vgg(self):
        """Negative-control: workspace frugality barely matters when free
        fused Winograd is already near-optimal everywhere."""
        from repro.core import Options, UcudnnHandle

        def run(policy):
            handle = UcudnnHandle(
                mode=ExecMode.TIMING,
                options=Options(policy=policy, workspace_limit=64 * MIB),
            )
            net = build_vgg16(batch=16).setup(handle, workspace_limit=64 * MIB)
            return time_net(net, iterations=1).conv_total

        undiv = run(BatchSizePolicy.UNDIVIDED)
        p2 = run(BatchSizePolicy.POWER_OF_TWO)
        assert p2 <= undiv + 1e-12
        assert undiv / p2 < 1.4  # nothing like AlexNet's 1.76x

    def test_trains(self, rng):
        net = build_vgg16(batch=1, num_classes=3).setup(
            CudnnHandle(), workspace_limit=8 * MIB, rng=rng
        )
        x = rng.standard_normal((1, 3, 224, 224)).astype(np.float32)
        loss = net.forward({"data": x}, np.array([2]))
        assert np.isfinite(loss)
