"""Tests for the decision-provenance subsystem (observability package).

Pins the four contracts DESIGN.md promises: zero overhead when disabled,
byte-determinism under a manual clock, a versioned JSON schema that readers
refuse to misinterpret, and a drift diff that is empty exactly when nothing
changed.  Also self-tests the CI perf gate (``benchmarks/check_regression``)
by injecting a regression into a copy of the committed baseline.
"""

import copy
import json
import pathlib

import pytest

import repro.observability as observability
from benchmarks.check_regression import GATES, compare, main as gate_main, render
from repro.core.benchmarker import benchmark_kernel
from repro.core.pareto import desirable_set
from repro.core.policies import BatchSizePolicy
from repro.core.sweep import prepare_wd_kernels, sweep_wr
from repro.core.wd import solve_from_kernels
from repro.core.wr import optimize_from_benchmark
from repro.harness import experiments as E
from repro.observability import report as R
from repro.observability.provenance import (
    NULL_RECORDER,
    NullRecorder,
    ProvenanceRecorder,
)
from repro.telemetry import ManualClock
from repro.units import MIB
from tests.conftest import make_geometry

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


@pytest.fixture(autouse=True)
def _observability_disabled():
    """Provenance must be off by default and left off by every test."""
    assert not observability.enabled()
    yield
    assert not observability.enabled()


# ---------------------------------------------------------------------------
# Zero overhead when off
# ---------------------------------------------------------------------------


class TestZeroOverheadWhenOff:
    def test_recorder_returns_shared_falsy_null(self):
        rec = observability.recorder()
        assert rec is NULL_RECORDER
        assert not rec
        assert rec.begin_pass("wr") == -1  # inert, not an error

    def test_disabled_optimizers_never_call_a_recorder(self, timing_handle,
                                                       monkeypatch):
        """Every instrumented site guards with ``if rec:`` -- with
        provenance off, not even the NullRecorder's no-op methods run."""

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("recorder method called while disabled")

        for name in ("begin_pass", "end_pass", "record"):
            monkeypatch.setattr(NullRecorder, name, boom)
        g = make_geometry(n=16, c=16, k=16, h=13, w=13)
        bench = benchmark_kernel(timing_handle, g, BatchSizePolicy.POWER_OF_TWO)
        optimize_from_benchmark(bench, 8 * MIB)
        desirable_set(bench, workspace_limit=8 * MIB)
        sweep_wr(bench, [4096, 8 * MIB])
        kernels = prepare_wd_kernels(timing_handle, {"a": g},
                                     BatchSizePolicy.POWER_OF_TWO)
        solve_from_kernels(kernels, 8 * MIB, solver="ilp")

    def test_capture_restores_previous_state(self):
        with observability.capture() as rec:
            assert observability.enabled()
            assert observability.recorder() is rec
        assert not observability.enabled()


# ---------------------------------------------------------------------------
# Recorder mechanics
# ---------------------------------------------------------------------------


class TestRecorder:
    def test_events_attach_to_innermost_open_pass(self):
        rec = ProvenanceRecorder(clock=ManualClock())
        outer = rec.begin_pass("network", scheme="wd")
        inner = rec.begin_pass("wr", kernel="conv1:Forward")
        rec.record("candidate.pruned.dp", kernel="conv1:Forward", micro_batch=8)
        rec.end_pass(inner)
        rec.record("chosen", kernel="conv1:Forward")
        rec.end_pass(outer)

        kinds = [(e.event, e.pass_id, e.kind) for e in rec.events]
        assert kinds == [
            ("pass.begin", outer, "network"),
            ("pass.begin", inner, "wr"),
            ("candidate.pruned.dp", inner, "wr"),
            ("pass.end", inner, "wr"),
            ("chosen", outer, "network"),
            ("pass.end", outer, "network"),
        ]
        assert [e.seq for e in rec.events] == list(range(6))
        assert all(e.ts == 0.0 for e in rec.events)

    def test_queries(self):
        rec = ProvenanceRecorder(clock=ManualClock())
        rec.record("chosen", kernel="b")
        rec.record("front", kernel="a")
        rec.record("chosen", kernel="a")
        assert [e.kernel for e in rec.events_named("chosen")] == ["b", "a"]
        assert rec.kernels() == ["b", "a"]  # first-appearance order
        assert rec.to_dicts()[0] == {
            "seq": 0, "ts": 0.0, "pass": -1, "kind": "", "kernel": "b",
            "event": "chosen", "detail": {},
        }

    def test_details_are_jsonified_strictly(self):
        rec = ProvenanceRecorder(clock=ManualClock())
        rec.record("kernel.baseline", kernel="k",
                   undivided_time=float("inf"), speedup=float("nan"),
                   tag=BatchSizePolicy.POWER_OF_TWO)
        (event,) = rec.events
        assert event.detail["undivided_time"] == "inf"
        assert event.detail["speedup"] == "nan"
        assert isinstance(event.detail["tag"], str)
        # Strict JSON: no bare Infinity/NaN tokens may survive.
        json.loads(json.dumps(event.detail, allow_nan=False))


# ---------------------------------------------------------------------------
# The explain report: determinism, schema, diff, rendering
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def run_a():
    return E.explain_report()


@pytest.fixture(scope="module")
def run_b():
    return E.explain_report()


@pytest.fixture(scope="module")
def run_small():
    return E.explain_report(total_workspace_mib=24)


class TestExplainReport:
    def test_two_runs_are_byte_identical(self, run_a, run_b):
        assert run_a.to_json() == run_b.to_json()
        assert run_a.to_json().encode() == run_b.to_json().encode()

    def test_report_covers_every_alexnet_conv_kernel(self, run_a):
        assert set(run_a.report["kernels"]) == {
            f"conv{i}:Forward" for i in range(1, 6)
        }
        for kernel in run_a.report["kernels"].values():
            chosen = kernel["chosen"]
            assert chosen["micro_batches"] and chosen["algorithms"]
            assert sum(chosen["micro_batches"]) == 64
            # Pooled WD can make an individual kernel slower than its solo
            # optimum (it donates workspace to a hungrier layer), so the
            # per-kernel speedup may dip below 1 -- but never to nonsense.
            assert kernel["speedup"] is None or kernel["speedup"] > 0

    def test_candidate_fates_are_recorded(self, run_a):
        counts = [k["counts"] for k in run_a.report["kernels"].values()]
        assert sum(c["dominated"] for c in counts) > 0
        assert sum(c["rejected_workspace"] for c in counts) > 0
        events = {e["event"] for e in run_a.report["events"]}
        assert {"pass.begin", "pass.end", "front", "chosen",
                "kernel.baseline", "solver.ilp"} <= events

    def test_json_round_trip(self, run_a):
        assert R.from_json(run_a.to_json()) == run_a.report

    def test_unknown_schema_version_is_rejected(self, run_a):
        doc = json.loads(run_a.to_json())
        doc["schema_version"] = 999
        with pytest.raises(R.SchemaError):
            R.from_json(json.dumps(doc))
        with pytest.raises(R.SchemaError):
            R.from_json("{}")

    def test_diff_of_identical_runs_is_empty(self, run_a, run_b):
        diff = R.diff_reports(run_a.report, run_b.report)
        assert R.diff_is_empty(diff)
        assert diff == {"added": [], "removed": [], "changed": {}}
        assert "no configuration drift" in R.render_diff(diff)

    def test_diff_across_limits_reports_exactly_the_changed_kernels(
        self, run_a, run_small
    ):
        """120 MiB -> 24 MiB of pooled workspace squeezes exactly conv2 and
        conv3 (the FFT-hungry layers) onto cheaper configurations."""
        diff = R.diff_reports(run_a.report, run_small.report)
        assert not diff["added"] and not diff["removed"]
        assert set(diff["changed"]) == {"conv2:Forward", "conv3:Forward"}
        for change in diff["changed"].values():
            assert "workspace" in change["fields"]
            assert change["before"] != change["after"]
        rendered = R.render_diff(diff, "120MiB", "24MiB")
        assert "conv2:Forward" in rendered and "24MiB" in rendered

    def test_text_and_html_renderings(self, run_a):
        text = R.render_text(run_a.report)
        assert "conv2:Forward" in text and "speedup" in text
        html = run_a.to_html()
        assert html.startswith("<!DOCTYPE html>")
        assert html.count("<svg") == len(run_a.report["kernels"])
        assert "conv5:Forward" in html

    def test_prometheus_lines_are_well_formed(self, run_a):
        text = R.prometheus_lines(run_a.report)
        assert text.endswith("\n")
        lines = text.splitlines()
        # time + workspace + micro_batches per kernel.
        assert len(lines) == 3 * len(run_a.report["kernels"])
        for line in lines:
            assert line.startswith("repro_explain_kernel_")
            assert 'kernel="' in line


# ---------------------------------------------------------------------------
# The CI perf-regression gate
# ---------------------------------------------------------------------------


class TestRegressionGate:
    @pytest.fixture(scope="class")
    def baseline(self):
        with open(REPO_ROOT / "BENCH_sweep.json") as fh:
            return json.load(fh)

    def test_every_gate_key_exists_in_the_committed_baseline(self, baseline):
        for key, _mode, _tol in GATES:
            node = baseline
            for part in key.split("."):
                assert part in node, f"baseline lacks gated key {key}"
                node = node[part]

    def test_identical_records_pass(self, baseline):
        rows, failures = compare(baseline, copy.deepcopy(baseline))
        assert not failures
        assert all(r.ok for r in rows)
        assert "REGRESSED" not in render(rows)

    def test_injected_regression_fails_the_gate(self, baseline):
        fresh = copy.deepcopy(baseline)
        fresh["wr"]["config_mismatches"] = 3          # exactness breach
        fresh["wd"]["sweep_ilp_nodes"] *= 2           # > 25% work growth
        rows, failures = compare(baseline, fresh)
        assert {r.key for r in failures} == {
            "wr.config_mismatches", "wd.sweep_ilp_nodes",
        }
        table = render(rows)
        assert "REGRESSED" in table and "+100.0%" in table

    def test_drift_within_tolerance_passes(self, baseline):
        fresh = copy.deepcopy(baseline)
        fresh["wr"]["sweep_dp_solves"] = int(
            baseline["wr"]["sweep_dp_solves"] * 1.05)  # inside the 10% gate
        _rows, failures = compare(baseline, fresh)
        assert not failures

    def test_wall_clock_is_informational_only(self, baseline):
        fresh = copy.deepcopy(baseline)
        fresh["wd"]["sweep_wall_s"] = baseline["wd"]["sweep_wall_s"] * 100
        _rows, failures = compare(baseline, fresh)
        assert not failures

    def test_missing_gated_key_fails(self, baseline):
        fresh = copy.deepcopy(baseline)
        del fresh["wd"]["solved_limits"]
        _rows, failures = compare(baseline, fresh)
        assert [r.key for r in failures] == ["wd.solved_limits"]

    def test_cli_exit_codes(self, baseline, tmp_path, capsys):
        base_path = REPO_ROOT / "BENCH_sweep.json"
        good = tmp_path / "good.json"
        good.write_text(json.dumps(baseline))
        assert gate_main(["--baseline", str(base_path),
                          "--fresh", str(good)]) == 0
        assert "all perf gates passed" in capsys.readouterr().out

        bad_record = copy.deepcopy(baseline)
        bad_record["wd"]["assignment_mismatches"] = 1
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(bad_record))
        assert gate_main(["--baseline", str(base_path),
                          "--fresh", str(bad)]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().err

        assert gate_main(["--baseline", str(base_path),
                          "--fresh", str(tmp_path / "missing.json")]) == 2
        err = capsys.readouterr().err
        assert "cannot read fresh record" in err and "missing.json" in err

        unparseable = tmp_path / "unparseable.json"
        unparseable.write_text("{not json")
        assert gate_main(["--baseline", str(base_path),
                          "--fresh", str(unparseable)]) == 2
        assert "cannot read fresh record" in capsys.readouterr().err

    def test_cli_schema_mismatch_exit_code(self, baseline, tmp_path, capsys):
        """A record that parses but carries the wrong shapes must exit 3
        with a diagnosis, not crash with a traceback (the original bug)."""
        base_path = REPO_ROOT / "BENCH_sweep.json"

        mangled = copy.deepcopy(baseline)
        mangled["wd"]["sweep_ilp_nodes"] = "lots"       # string where a number belongs
        bad_shape = tmp_path / "bad_shape.json"
        bad_shape.write_text(json.dumps(mangled))
        assert gate_main(["--baseline", str(base_path),
                          "--fresh", str(bad_shape)]) == 3
        err = capsys.readouterr().err
        assert "schema mismatch in fresh record" in err
        assert "wd.sweep_ilp_nodes" in err

        not_an_object = tmp_path / "list.json"
        not_an_object.write_text("[1, 2, 3]")
        assert gate_main(["--baseline", str(not_an_object),
                          "--fresh", str(bad_shape)]) == 3
        assert "schema mismatch in baseline record" in capsys.readouterr().err

    def test_validate_record_accepts_the_committed_baseline(self, baseline):
        from benchmarks.check_regression import validate_record

        assert validate_record(baseline) == []
        assert validate_record([]) != []
        mangled = copy.deepcopy(baseline)
        mangled["wr"]["config_mismatches"] = True       # bools are not counters
        assert any("wr.config_mismatches" in p for p in validate_record(mangled))
