"""Tests for the WD optimizer (paper section III-C / IV-D)."""

import pytest

from repro.core import optimize_network_wd, optimize_network_wr
from repro.core.policies import BatchSizePolicy
from repro.core.wd import optimize as wd_optimize
from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.enums import ConvType
from repro.errors import InfeasibleError, SolverError
from repro.units import MIB
from tests.conftest import make_geometry

CONV2 = ConvGeometry(ConvType.FORWARD, 256, 64, 27, 27, 192, 5, 5, 2, 2)


@pytest.fixture
def conv2_kernels():
    """AlexNet conv2's three kernels -- the paper's 120 MiB WD example."""
    return {f"conv2:{ct.value}": CONV2.with_type(ct) for ct in ConvType}


class TestWDBasics:
    def test_respects_total_limit(self, timing_handle, conv2_kernels):
        result = wd_optimize(timing_handle, conv2_kernels, 120 * MIB,
                             BatchSizePolicy.POWER_OF_TWO)
        assert result.total_workspace <= 120 * MIB
        assert set(result.assignments) == set(conv2_kernels)
        for key, config in result.assignments.items():
            assert config.batch == 256

    def test_solvers_agree(self, timing_handle, conv2_kernels):
        """The B&B ILP and the Pareto-merge MCKP are independent exact
        solvers; they must find the same objective."""
        for limit in (24 * MIB, 120 * MIB, 960 * MIB):
            ilp = wd_optimize(timing_handle, conv2_kernels, limit,
                              BatchSizePolicy.POWER_OF_TWO, solver="ilp")
            mckp = wd_optimize(timing_handle, conv2_kernels, limit,
                               BatchSizePolicy.POWER_OF_TWO, solver="mckp")
            assert ilp.total_time == pytest.approx(mckp.total_time)

    def test_more_workspace_never_slower(self, timing_handle, conv2_kernels):
        times = []
        for limit_mib in (1, 24, 120, 480, 960):
            r = wd_optimize(timing_handle, conv2_kernels, limit_mib * MIB,
                            BatchSizePolicy.POWER_OF_TWO)
            times.append(r.total_time)
        assert times == sorted(times, reverse=True)

    def test_unknown_solver(self, timing_handle, conv2_kernels):
        with pytest.raises(SolverError):
            wd_optimize(timing_handle, conv2_kernels, 120 * MIB,
                        BatchSizePolicy.POWER_OF_TWO, solver="magic")

    def test_num_variables_reported(self, timing_handle, conv2_kernels):
        r = wd_optimize(timing_handle, conv2_kernels, 120 * MIB,
                        BatchSizePolicy.POWER_OF_TWO)
        assert r.num_variables == sum(len(k.desirable) for k in r.kernels)
        assert r.ilp is not None
        assert r.solve_time > 0


class TestWDvsWR:
    def test_wd_at_least_as_good_at_equal_total(self, timing_handle):
        """The paper's Fig. 13 claim: WD with an m*K pooled budget beats (or
        ties) WR with m per kernel, because WD can shift budget to the
        layers that profit."""
        geoms = {f"conv2:{ct.value}": CONV2.with_type(ct) for ct in ConvType}
        per_kernel = 8 * MIB
        total = per_kernel * len(geoms)
        wr_plan = optimize_network_wr(timing_handle, geoms, per_kernel,
                                      BatchSizePolicy.POWER_OF_TWO)
        wd_plan = optimize_network_wd(timing_handle, geoms, total,
                                      BatchSizePolicy.POWER_OF_TWO)
        assert wd_plan.total_time <= wr_plan.total_time + 1e-12

    def test_wd_shifts_budget_to_profitable_kernels(self, timing_handle):
        """Mix a heavy 5x5 kernel with cheap 3x3 kernels (which have free
        Winograd): WD should give (nearly) all the pool to the 5x5."""
        geoms = {
            "heavy": CONV2,
            "light1": make_geometry(n=256, c=32, k=32, h=13, w=13, r=3, s=3, pad=1),
            "light2": make_geometry(n=256, c=16, k=16, h=13, w=13, r=3, s=3, pad=1),
        }
        plan = optimize_network_wd(timing_handle, geoms, 64 * MIB,
                                   BatchSizePolicy.POWER_OF_TWO)
        by_name = plan.by_name()
        heavy_ws = by_name["heavy"].configuration.workspace
        total_ws = plan.total_workspace
        assert heavy_ws / max(1, total_ws) > 0.9

    def test_wd_never_wastes_budget_without_gain(self, timing_handle):
        """WD picks the cheapest configuration among equal-time options, so
        zero-benefit kernels keep (near) zero workspace."""
        geoms = {
            "light": make_geometry(n=64, c=8, k=8, h=13, w=13, r=3, s=3, pad=1),
        }
        plan = optimize_network_wd(timing_handle, geoms, 512 * MIB,
                                   BatchSizePolicy.POWER_OF_TWO)
        config = plan.kernels[0].configuration
        # The optimum must be on the Pareto front: no cheaper-equal-time
        # config may exist.
        front = plan.wd.kernels[0].desirable
        same_time = [c for c in front if c.time <= config.time + 1e-15]
        assert config.workspace == min(c.workspace for c in same_time)


class TestInfeasibility:
    def test_zero_capacity_is_feasible(self, timing_handle, conv2_kernels):
        """Implicit GEMM needs no workspace, so capacity 0 still solves."""
        r = wd_optimize(timing_handle, conv2_kernels, 0,
                        BatchSizePolicy.POWER_OF_TWO)
        assert r.total_workspace == 0

    def test_assignment_completeness_enforced(self, timing_handle, conv2_kernels):
        r = wd_optimize(timing_handle, conv2_kernels, 120 * MIB,
                        BatchSizePolicy.POWER_OF_TWO)
        assert len(r.assignments) == len(conv2_kernels)
