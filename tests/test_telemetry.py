"""Tests for the telemetry subsystem: spans, metrics, exporters.

Covers the contract the instrumented pipeline relies on:

* span nesting is deterministic under an injectable :class:`ManualClock`;
* disabled telemetry is a strict no-op (shared inert objects, no state);
* the Chrome-trace and Prometheus exporters produce exactly the documented
  formats (golden assertions);
* the benchmark cache's write-to-temp + rename persistence stays atomic
  under concurrent writers.
"""

from __future__ import annotations

import json
import threading

import pytest

import repro.telemetry as telemetry
from repro.core.benchmarker import benchmark_kernel
from repro.core.cache import BenchmarkCache
from repro.core.policies import BatchSizePolicy
from repro.core.wr import optimize_from_benchmark
from repro.cudnn.device import Gpu
from repro.cudnn.enums import FwdAlgo
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.cudnn.perfmodel import PerfResult
from repro.cudnn.status import Status
from repro.telemetry import ManualClock, Metrics, Tracer, exporters
from repro.telemetry.metrics import SIZE_BUCKETS
from tests.conftest import make_geometry


@pytest.fixture(autouse=True)
def _telemetry_disabled():
    """Guarantee no session leaks across tests."""
    telemetry.disable()
    yield
    telemetry.disable()


# ---------------------------------------------------------------------------
# Clock
# ---------------------------------------------------------------------------


class TestManualClock:
    def test_advance(self):
        clock = ManualClock(start=10.0)
        assert clock.now() == 10.0
        clock.advance(2.5)
        assert clock.now() == 12.5

    def test_auto_tick(self):
        clock = ManualClock(auto_tick=1.0)
        assert [clock.now() for _ in range(3)] == [0.0, 1.0, 2.0]


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


class TestSpans:
    def test_nesting_deterministic(self):
        tracer = Tracer(clock=ManualClock(auto_tick=1.0))
        with tracer.span("outer", batch=256):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        assert tracer.tree() == [{
            "name": "outer",
            "start": 0.0,
            "end": 5.0,
            "attributes": {"batch": 256},
            "children": [
                {"name": "inner", "start": 1.0, "end": 2.0},
                {"name": "inner", "start": 3.0, "end": 4.0},
            ],
        }]

    def test_exception_annotates_and_propagates(self):
        tracer = Tracer(clock=ManualClock())
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (root,) = tracer.roots()
        assert root.attributes["error"] == "ValueError"
        assert root.end is not None

    def test_event_is_instant_child(self):
        tracer = Tracer(clock=ManualClock(auto_tick=1.0))
        with tracer.span("parent"):
            tracer.event("ping", n=1)
        (root,) = tracer.roots()
        (ev,) = root.children
        assert ev.name == "ping" and ev.duration == 0.0

    def test_device_span_validation(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.device_span("bad", 2.0, 1.0, track="gpu0")
        tracer.device_span("ok", 1.0, 2.0, track="gpu0", algo="FFT")
        (d,) = tracer.device_spans()
        assert d.track == "gpu0" and d.duration == 1.0

    def test_find_and_walk(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("a"):
                    pass
        assert len(tracer.find("a")) == 2
        assert [s.name for s in tracer.roots()[0].walk()] == ["a", "b", "a"]

    def test_threads_get_separate_stacks(self):
        tracer = Tracer(clock=ManualClock(auto_tick=1.0))
        # Keep all workers alive at once: OS thread idents are reused after
        # exit, and concurrent threads is the case the ids must separate.
        barrier = threading.Barrier(4)

        def work():
            with tracer.span("worker"):
                barrier.wait(timeout=10)

        threads = [threading.Thread(target=work) for _ in range(4)]
        with tracer.span("main"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        roots = tracer.roots()
        # Worker spans are roots of their own threads, not children of main.
        assert sorted(r.name for r in roots) == ["main"] + ["worker"] * 4
        assert len({r.thread for r in roots}) == 5
        assert not roots[0].children


# ---------------------------------------------------------------------------
# Enable / disable semantics
# ---------------------------------------------------------------------------


class TestDisabled:
    def test_everything_is_inert(self):
        assert not telemetry.enabled()
        assert telemetry.span("x", a=1) is telemetry.NULL_SPAN
        assert telemetry.event("x") is telemetry.NULL_SPAN
        assert telemetry.device_span("x", 0, 1, track="gpu0") is telemetry.NULL_SPAN
        telemetry.count("c")
        telemetry.gauge("g", 1.0)
        telemetry.observe("h", 0.5)
        assert telemetry.session() is None
        assert telemetry.get_metrics().value("c", -1.0) == -1.0

    def test_null_span_usable_as_context(self):
        with telemetry.span("x") as s:
            s.set("k", "v")  # must not raise

    def test_enable_disable_round_trip(self):
        session = telemetry.enable(clock=ManualClock())
        assert telemetry.enabled()
        telemetry.count("c", 2.0)
        assert session.metrics.value("c") == 2.0
        ended = telemetry.disable()
        assert ended is session
        assert not telemetry.enabled()

    def test_capture_restores_previous_session(self):
        outer = telemetry.enable()
        with telemetry.capture() as inner:
            assert telemetry.session() is inner
            telemetry.count("c")
        assert telemetry.session() is outer
        assert inner.metrics.value("c") == 1.0
        assert outer.metrics.value("c", default=0.0) == 0.0


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_monotonic(self):
        m = Metrics()
        c = m.counter("c", help="h")
        c.inc()
        c.inc(2.5)
        assert m.value("c") == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_get_or_create_is_idempotent_but_kind_checked(self):
        m = Metrics()
        assert m.counter("x") is m.counter("x")
        with pytest.raises(TypeError):
            m.gauge("x")

    def test_histogram_buckets(self):
        m = Metrics()
        h = m.histogram("h", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(5.55)
        assert h.cumulative() == [1, 2]  # 5.0 only lands in +Inf
        assert h.mean == pytest.approx(5.55 / 3)

    def test_snapshot_and_value(self):
        m = Metrics()
        m.counter("a").inc(2)
        m.gauge("b").set(7)
        m.histogram("c", buckets=(1.0,)).observe(0.5)
        assert m.snapshot() == {"a": 2.0, "b": 7.0, "c": 0.5}
        assert m.value("missing", default=42.0) == 42.0
        assert len(m) == 3


# ---------------------------------------------------------------------------
# Exporters (golden assertions)
# ---------------------------------------------------------------------------


class TestChromeTrace:
    def test_golden(self):
        tracer = Tracer(clock=ManualClock(auto_tick=1.0))
        with tracer.span("outer", phase="test"):
            with tracer.span("inner"):
                pass
        tracer.device_span("F:FFT", 0.0, 0.5, track="gpu0", batch=64)
        assert exporters.chrome_trace(tracer) == {
            "traceEvents": [
                {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
                 "args": {"name": "repro (wall time)"}},
                {"name": "outer", "ph": "X", "ts": 0.0, "pid": 0, "tid": 0,
                 "args": {"phase": "test"}, "dur": 3000000.0},
                {"name": "inner", "ph": "X", "ts": 1000000.0, "pid": 0,
                 "tid": 0, "args": {}, "dur": 1000000.0},
                {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
                 "args": {"name": "repro (simulated device time)"}},
                {"ph": "M", "pid": 1, "tid": 0, "name": "thread_name",
                 "args": {"name": "gpu0"}},
                {"name": "F:FFT", "ph": "X", "ts": 0.0, "dur": 500000.0,
                 "pid": 1, "tid": 0, "args": {"batch": 64}},
            ],
            "displayTimeUnit": "ms",
        }

    def test_written_file_is_valid_json(self, tmp_path):
        tracer = Tracer(clock=ManualClock(auto_tick=1.0))
        with tracer.span("s"):
            pass
        path = tmp_path / "trace.json"
        exporters.write_chrome_trace(path, tracer)
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        assert any(e.get("name") == "s" for e in data["traceEvents"])

    def test_non_json_attributes_are_stringified(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("s", shape=(64, 3, 224, 224)):
            pass
        (event,) = [e for e in exporters.chrome_trace(tracer)["traceEvents"]
                    if e.get("name") == "s"]
        assert event["args"]["shape"] == "(64, 3, 224, 224)"
        json.dumps(event)  # must be serializable


class TestPrometheus:
    def test_golden(self):
        m = Metrics()
        m.counter("cache.hits", help="cache hits").inc(3)
        h = m.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        m.gauge("wd.ilp.variables").set(12)
        assert exporters.prometheus_text(m) == (
            "# HELP repro_cache_hits cache hits\n"
            "# TYPE repro_cache_hits counter\n"
            "repro_cache_hits_total 3\n"
            "# TYPE repro_lat histogram\n"
            'repro_lat_bucket{le="0.1"} 1\n'
            'repro_lat_bucket{le="1"} 2\n'
            'repro_lat_bucket{le="+Inf"} 3\n'
            "repro_lat_sum 5.55\n"
            "repro_lat_count 3\n"
            "# TYPE repro_wd_ilp_variables gauge\n"
            "repro_wd_ilp_variables 12\n"
        )

    def test_empty_registry(self):
        assert exporters.prometheus_text(Metrics()) == ""


class TestPrometheusHardening:
    """Exposition-format sanitation of hostile metric/label names."""

    def test_metric_names_are_ascii_sanitized(self):
        m = Metrics()
        # "µ" is unicode-alphanumeric -- str.isalnum() accepts it, the
        # exposition format does not.
        m.counter("µ-cudnn benchmark.time (s)").inc(1)
        assert exporters.prometheus_text(m) == (
            "# TYPE repro___cudnn_benchmark_time__s_ counter\n"
            "repro___cudnn_benchmark_time__s__total 1\n"
        )

    def test_escape_golden(self):
        assert exporters.prometheus_escape('a\\b"c\nd') == 'a\\\\b\\"c\\nd'
        assert exporters.prometheus_escape("plain value") == "plain value"

    def test_sample_golden(self):
        line = exporters.prometheus_sample(
            "explain.kernel.time_seconds",
            {"kernel": 'conv2:Forward "odd" id', "gpu name": "p100-sxm2"},
            0.00125,
        )
        assert line == (
            'repro_explain_kernel_time_seconds{gpu_name="p100-sxm2",'
            'kernel="conv2:Forward \\"odd\\" id"} 0.00125'
        )

    def test_sample_sorts_labels_and_handles_no_labels(self):
        assert exporters.prometheus_sample("m", {}, 2) == "repro_m 2"
        line = exporters.prometheus_sample("m", {"b": "1", "a": "2"}, 1)
        assert line == 'repro_m{a="2",b="1"} 1'

    def test_sample_escapes_newlines_in_label_values(self):
        line = exporters.prometheus_sample("m", {"k": "two\nlines"}, 1)
        assert "\n" not in line
        assert line == 'repro_m{k="two\\nlines"} 1'


class TestSummary:
    def test_sections(self):
        tracer = Tracer(clock=ManualClock(auto_tick=1.0))
        with tracer.span("phase"):
            pass
        m = Metrics()
        m.counter("c").inc(4)
        text = exporters.summary(tracer, m)
        assert "== telemetry summary ==" in text
        assert "-- metrics --" in text and "c" in text
        assert "-- spans --" in text and "phase" in text

    def test_empty(self):
        assert "(no telemetry collected)" in exporters.summary(Tracer(), Metrics())


# ---------------------------------------------------------------------------
# Pipeline instrumentation
# ---------------------------------------------------------------------------


class TestInstrumentation:
    def _benchmark(self, cache=None):
        handle = CudnnHandle(gpu=Gpu.create("p100-sxm2"), mode=ExecMode.TIMING)
        g = make_geometry(n=8, c=16, h=16, w=16, k=16)
        bench = benchmark_kernel(handle, g, BatchSizePolicy.POWER_OF_TWO,
                                 cache=cache)
        return optimize_from_benchmark(bench, 1 << 30)

    def test_results_identical_with_and_without_telemetry(self):
        baseline = self._benchmark()
        with telemetry.capture():
            config = self._benchmark()
        assert config.time == baseline.time
        assert [m.algo for m in config] == [m.algo for m in baseline]

    def test_benchmark_and_cache_are_observed(self):
        with telemetry.capture() as session:
            cache = BenchmarkCache()
            self._benchmark(cache=cache)  # cold: all misses
            self._benchmark(cache=cache)  # warm: all hits
        m = session.metrics
        assert m.value("benchmark.units") == 4  # sizes 1, 2, 4, 8 once
        assert m.value("cache.misses") == 4
        assert m.value("cache.hits") == 4
        assert cache.hits == 4 and cache.misses == 4
        kernel_spans = session.tracer.find("benchmark.kernel")
        assert len(kernel_spans) == 2
        assert len(kernel_spans[0].find("benchmark.find")) == 4
        assert not kernel_spans[1].find("benchmark.find")  # fully cached
        assert session.tracer.find("optimize.wr")

    def test_micro_batch_execution_emits_device_spans(self):
        from repro.core.config import Configuration, MicroConfig
        from repro.core.convolution import forward

        g = make_geometry(n=4)
        micro = g.with_batch(2)
        handle = CudnnHandle(gpu=Gpu.create("p100-sxm2"), mode=ExecMode.TIMING)
        t = handle.perf.time(micro, FwdAlgo.IMPLICIT_GEMM)
        config = Configuration((
            MicroConfig(2, FwdAlgo.IMPLICIT_GEMM, t, 0),
            MicroConfig(2, FwdAlgo.IMPLICIT_GEMM, t, 0),
        ))
        with telemetry.capture() as session:
            forward(handle, config, g.x_desc, None, g.w_desc, None,
                    g.conv_desc, 0, g.y_desc)
        assert session.metrics.value("exec.micro_batches") == 2
        assert session.metrics.value("cudnn.kernels") == 2
        spans = session.tracer.find("exec.micro_batch")
        assert [s.attributes["micro_batch"] for s in spans] == [2, 2]
        device = session.tracer.device_spans()
        assert len(device) == 2
        # Simulated timestamps tile the device clock with no gap.
        assert device[0].end == pytest.approx(device[1].start)
        assert device[1].end == pytest.approx(handle.gpu.clock)

    def test_size_buckets_used_for_micro_batch_histogram(self):
        from repro.core.config import Configuration, MicroConfig
        from repro.core.convolution import forward

        g = make_geometry(n=4)
        micro = g.with_batch(4)
        handle = CudnnHandle(gpu=Gpu.create("p100-sxm2"), mode=ExecMode.TIMING)
        t = handle.perf.time(micro, FwdAlgo.IMPLICIT_GEMM)
        config = Configuration((MicroConfig(4, FwdAlgo.IMPLICIT_GEMM, t, 0),))
        with telemetry.capture() as session:
            forward(handle, config, g.x_desc, None, g.w_desc, None,
                    g.conv_desc, 0, g.y_desc)
        h = session.metrics.get("exec.micro_batch_size")
        assert h.buckets == tuple(sorted(SIZE_BUCKETS))
        assert h.count == 1


# ---------------------------------------------------------------------------
# Cache persistence: atomicity under concurrent writers
# ---------------------------------------------------------------------------


class TestCacheSaveAtomicity:
    def test_parallel_writers_never_produce_a_torn_file(self, tmp_path):
        """Hammer one DB path with concurrent save() calls while readers
        continuously load it; rename-based persistence means every observed
        file state must be a complete, parseable, well-formed database."""
        path = tmp_path / "bench.json"
        g = make_geometry()
        results = [PerfResult(FwdAlgo.FFT, Status.SUCCESS, 0.001, 1024)]
        errors: list[Exception] = []
        stop = threading.Event()

        def writer(worker: int):
            cache = BenchmarkCache()
            cache.path = path
            for i in range(25):
                cache.put_benchmark(f"gpu{worker}-{i}", g, results)
                try:
                    cache.save()
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

        def reader():
            while not stop.is_set():
                if not path.exists():
                    continue
                try:
                    fresh = BenchmarkCache(path=path)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return
                got = fresh.get_benchmark("gpu0-0", g)
                if got is not None:
                    assert got[0].time == results[0].time

        writers = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert not errors
        # Final state parses and no temp droppings survive.
        final = json.loads(path.read_text())
        assert final["version"] == 1
        assert not list(tmp_path.glob("*.tmp"))
