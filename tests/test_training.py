"""End-to-end training semantics: mu-cuDNN must not change learning.

The paper's central safety claim -- micro-batching "decouples statistical
efficiency from hardware efficiency safely" -- is tested literally: training
the same network from the same seed with plain cuDNN and with mu-cuDNN (WR
and WD) produces matching loss trajectories and parameters.
"""

import numpy as np
import pytest

from repro.core import BatchSizePolicy, Options, UcudnnHandle
from repro.cudnn.handle import CudnnHandle
from repro.frameworks.data import synthetic_batch, synthetic_stream
from repro.frameworks.model_zoo import build_tiny_cnn
from repro.frameworks.solver import SGDSolver
from repro.units import KIB, MIB


def train(handle, steps=6, batch=16, lr=0.05, momentum=0.9, wd=1e-4):
    net = build_tiny_cnn(batch=batch).setup(
        handle, workspace_limit=64 * KIB, rng=np.random.default_rng(7)
    )
    solver = SGDSolver(net, lr=lr, momentum=momentum, weight_decay=wd)
    stream = synthetic_stream(99, batch, (3, 16, 16), 10)
    losses = []
    for _ in range(steps):
        x, y = next(stream)
        losses.append(solver.step({"data": x}, y))
    return losses, net


class TestTrajectoryEquivalence:
    def test_wr_matches_plain_cudnn(self):
        ref_losses, ref_net = train(CudnnHandle())
        uc_losses, uc_net = train(
            UcudnnHandle(options=Options(policy=BatchSizePolicy.POWER_OF_TWO,
                                         workspace_limit=64 * KIB))
        )
        # Loss trajectories agree step by step (FP32 reassociation only).
        for a, b in zip(ref_losses, uc_losses):
            assert b == pytest.approx(a, rel=1e-3, abs=1e-3)
        # Final parameters agree.
        for pa, pb in zip(ref_net.params(), uc_net.params()):
            np.testing.assert_allclose(pb.data, pa.data, rtol=1e-2, atol=1e-3)

    def test_wd_matches_plain_cudnn(self):
        ref_losses, _ = train(CudnnHandle())
        uc_losses, _ = train(
            UcudnnHandle(options=Options(policy=BatchSizePolicy.POWER_OF_TWO,
                                         total_workspace=256 * KIB))
        )
        for a, b in zip(ref_losses, uc_losses):
            assert b == pytest.approx(a, rel=1e-3, abs=1e-3)

    def test_training_actually_learns(self):
        """Overfit one fixed batch: loss must drop substantially."""
        handle = CudnnHandle()
        net = build_tiny_cnn(batch=16).setup(
            handle, workspace_limit=64 * KIB, rng=np.random.default_rng(7)
        )
        solver = SGDSolver(net, lr=0.05, momentum=0.9)
        x, y = synthetic_batch(np.random.default_rng(5), 16, (3, 16, 16), 10)
        losses = [solver.step({"data": x}, y) for _ in range(20)]
        assert losses[-1] < 0.25 * losses[0]

    def test_determinism_of_training(self):
        """Same seeds, same machine state -> bitwise-identical trajectory."""
        a, _ = train(CudnnHandle())
        b, _ = train(CudnnHandle())
        assert a == b


class TestSolver:
    def test_weight_decay_shrinks_weights(self):
        handle = CudnnHandle()
        net = build_tiny_cnn(batch=8).setup(
            handle, workspace_limit=64 * KIB, rng=np.random.default_rng(1)
        )
        solver = SGDSolver(net, lr=0.1, momentum=0.0, weight_decay=1.0)
        w = net.layer("conv1").params[0]
        before = float(np.abs(w.data).sum())
        # Zero gradients: only decay acts.
        net.zero_param_grads()
        solver.apply_update()
        after = float(np.abs(w.data).sum())
        assert after < before

    def test_momentum_accumulates(self):
        handle = CudnnHandle()
        net = build_tiny_cnn(batch=8).setup(
            handle, workspace_limit=64 * KIB, rng=np.random.default_rng(1)
        )
        solver = SGDSolver(net, lr=0.01, momentum=0.9)
        w = net.layer("conv1").params[0]
        w.grad[...] = 1.0
        w0 = w.data.copy()
        solver.apply_update()
        step1 = w0 - w.data
        w.grad[...] = 1.0
        w1 = w.data.copy()
        solver.apply_update()
        step2 = w1 - w.data
        assert float(step2.mean()) > float(step1.mean())  # velocity built up
