"""Tests for the Net container: DAG construction, execution, in-place rules."""

import numpy as np
import pytest

from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.errors import FrameworkError
from repro.frameworks.layers import (
    Concat,
    Convolution,
    Eltwise,
    InnerProduct,
    LRN,
    ReLU,
    SoftmaxWithLoss,
)
from repro.frameworks.model_zoo import build_conv_pair, build_tiny_cnn
from repro.frameworks.net import Net
from repro.units import MIB


class TestConstruction:
    def test_unknown_bottom_rejected(self):
        net = Net("t", {"data": (1, 1, 4, 4)})
        with pytest.raises(FrameworkError):
            net.add(ReLU("r"), "nope", "out")

    def test_duplicate_top_rejected(self):
        net = Net("t", {"data": (1, 1, 4, 4)})
        net.add(Convolution("c", 2, 3, pad=1), "data", "y")
        with pytest.raises(FrameworkError):
            net.add(Convolution("c2", 2, 3, pad=1), "data", "y")

    def test_inplace_requires_capability(self):
        net = Net("t", {"data": (1, 1, 4, 4)})
        net.add(Convolution("c", 2, 3, pad=1), "data", "y")
        with pytest.raises(FrameworkError):
            net.add(Convolution("c2", 2, 3, pad=1), "y", "y")  # conv can't

    def test_inplace_after_materializing_consumer_rejected(self):
        net = Net("t", {"data": (2, 2, 4, 4)})
        net.add(Convolution("c", 2, 3, pad=1), "data", "y")
        net.add(LRN("n"), "y", "z")  # materializing consumer of y
        with pytest.raises(FrameworkError):
            net.add(ReLU("r"), "y", "y")

    def test_inplace_chain_allowed(self):
        net = Net("t", {"data": (2, 2, 4, 4)})
        net.add(Convolution("c", 2, 3, pad=1), "data", "y")
        net.add(ReLU("r1"), "y", "y")
        net.add(ReLU("r2"), "y", "y")  # chained in-place: fine

    def test_use_before_setup(self):
        net = build_tiny_cnn(batch=2)
        with pytest.raises(FrameworkError):
            net.forward()


class TestExecution:
    def test_forward_backward_numeric(self, rng):
        net = build_tiny_cnn(batch=4).setup(CudnnHandle(), workspace_limit=1 * MIB,
                                            rng=rng)
        x = rng.standard_normal((4, 3, 16, 16)).astype(np.float32)
        labels = rng.integers(0, 10, 4)
        loss = net.forward({"data": x}, labels)
        assert loss is not None and loss > 0
        net.backward()
        for p in net.params():
            assert p.grad is not None
            assert float(np.abs(p.grad).sum()) > 0

    def test_net_level_gradient_check(self, rng):
        """End-to-end finite-difference check through conv/relu/conv/fc/loss."""
        net = build_conv_pair(batch=2).setup(CudnnHandle(), workspace_limit=1 * MIB,
                                             rng=np.random.default_rng(0))
        x = (rng.standard_normal((2, 4, 12, 12)) * 0.5).astype(np.float32)
        labels = np.array([0, 2])
        net.forward({"data": x}, labels)
        net.backward()
        got = net.blobs["data"].grad.copy()

        eps = 1e-2
        idxs = [(0, 0, 3, 4), (1, 2, 7, 1), (0, 3, 0, 0)]
        for idx in idxs:
            xp = x.copy(); xp[idx] += eps
            xm = x.copy(); xm[idx] -= eps
            lp = net.forward({"data": xp}, labels)
            lm = net.forward({"data": xm}, labels)
            expected = (lp - lm) / (2 * eps)
            assert got[idx] == pytest.approx(expected, abs=3e-3)

    def test_fan_out_gradients_sum(self, rng):
        """A blob consumed by two layers accumulates both gradients."""
        net = Net("fan", {"data": (2, 3, 6, 6)})
        net.add(Convolution("a", 2, 3, pad=1), "data", "ya")
        net.add(Convolution("b", 2, 3, pad=1), "data", "yb")
        net.add(Concat("cat"), ["ya", "yb"], "y")
        net.add(InnerProduct("fc", 3), "y", "logits")
        net.add(SoftmaxWithLoss("loss"), "logits", "loss")
        net.setup(CudnnHandle(), workspace_limit=1 * MIB,
                  rng=np.random.default_rng(1))
        x = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
        net.forward({"data": x}, np.array([0, 1]))
        net.backward()
        data_grad = net.blobs["data"].grad
        # Zeroing one branch's filter halves the contribution.
        net.layer("b").params[0].data[...] = 0.0
        net.layer("b").params[1].data[...] = 0.0
        net.forward({"data": x}, np.array([0, 1]))
        net.backward()
        assert not np.allclose(net.blobs["data"].grad, data_grad)

    def test_eltwise_residual_gradients(self, rng):
        """ResNet-style join: shortcut and main path both receive grads."""
        net = Net("res", {"data": (2, 4, 6, 6)})
        net.add(Convolution("conv", 4, 3, pad=1), "data", "main")
        net.add(Eltwise("add"), ["main", "data"], "sum")
        net.add(InnerProduct("fc", 2), "sum", "logits")
        net.add(SoftmaxWithLoss("loss"), "logits", "loss")
        net.setup(CudnnHandle(), workspace_limit=1 * MIB,
                  rng=np.random.default_rng(2))
        x = rng.standard_normal((2, 4, 6, 6)).astype(np.float32)
        net.forward({"data": x}, np.array([0, 1]))
        net.backward()
        assert net.blobs["data"].grad is not None
        assert net.blobs["main"].grad is not None

    def test_inplace_matches_out_of_place(self, rng):
        """The in-place optimization must not change any value."""
        def build(inplace):
            net = Net("t", {"data": (3, 2, 8, 8)})
            net.add(Convolution("c1", 4, 3, pad=1), "data", "y1")
            if inplace:
                net.add(ReLU("r"), "y1", "y1")
                top = "y1"
            else:
                net.add(ReLU("r"), "y1", "y2")
                top = "y2"
            net.add(InnerProduct("fc", 3), top, "logits")
            net.add(SoftmaxWithLoss("loss"), "logits", "loss")
            return net.setup(CudnnHandle(), workspace_limit=1 * MIB,
                             rng=np.random.default_rng(3))

        x = rng.standard_normal((3, 2, 8, 8)).astype(np.float32)
        labels = np.array([0, 1, 2])
        a, b = build(True), build(False)
        la = a.forward({"data": x}, labels); a.backward()
        lb = b.forward({"data": x}, labels); b.backward()
        assert la == pytest.approx(lb)
        np.testing.assert_allclose(a.blobs["data"].grad, b.blobs["data"].grad,
                                   rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(a.layer("c1").params[0].grad,
                                   b.layer("c1").params[0].grad,
                                   rtol=1e-5, atol=1e-6)

    def test_timing_mode_produces_layer_times(self):
        net = build_tiny_cnn(batch=8).setup(
            CudnnHandle(mode=ExecMode.TIMING), workspace_limit=1 * MIB
        )
        assert net.forward() is None
        net.backward()
        for entry in net.entries:
            t = net.timings[entry.layer.name]
            assert t.forward > 0
            assert t.backward > 0


class TestIntrospection:
    def test_conv_geometries_enumerates_all_kernels(self):
        net = build_tiny_cnn(batch=8).setup(
            CudnnHandle(mode=ExecMode.TIMING), workspace_limit=1 * MIB
        )
        geoms = net.conv_geometries()
        assert len(geoms) == 2 * 3  # two convs, three op types each
        assert "conv1:Forward" in geoms
        assert geoms["conv1:Forward"].n == 8

    def test_memory_registered(self):
        handle = CudnnHandle(mode=ExecMode.TIMING)
        net = build_tiny_cnn(batch=8).setup(handle, workspace_limit=1 * MIB)
        tags = handle.gpu.memory.live_by_tag()
        assert tags["data"] > 0
        assert tags["param"] == net.total_param_bytes()

    def test_layer_lookup(self):
        net = build_tiny_cnn(batch=2)
        assert net.layer("conv1").name == "conv1"
        with pytest.raises(KeyError):
            net.layer("missing")
