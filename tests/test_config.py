"""Tests for MicroConfig / Configuration (the paper's section III-A types)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.config import EMPTY, Configuration, MicroConfig
from repro.cudnn.enums import BwdFilterAlgo, ConvType, FwdAlgo


def mc(batch=32, algo=FwdAlgo.FFT, time=1.0, ws=100):
    return MicroConfig(batch, algo, time, ws)


class TestMicroConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MicroConfig(0, FwdAlgo.FFT, 1.0, 0)
        with pytest.raises(ValueError):
            MicroConfig(1, FwdAlgo.FFT, -1.0, 0)
        with pytest.raises(ValueError):
            MicroConfig(1, FwdAlgo.FFT, math.inf, 0)
        with pytest.raises(ValueError):
            MicroConfig(1, FwdAlgo.FFT, 1.0, -1)

    def test_frozen_and_hashable(self):
        assert len({mc(), mc()}) == 1


class TestConfiguration:
    def test_paper_aggregates(self):
        """Time sums (sequential micro-batches); workspace maxes (one shared
        slot per kernel)."""
        c = Configuration((mc(64, time=1.0, ws=50), mc(64, time=2.0, ws=80),
                           mc(128, time=3.0, ws=10)))
        assert c.batch == 256
        assert c.time == pytest.approx(6.0)
        assert c.workspace == 80
        assert c.num_micro_batches == 3
        assert not c.is_undivided

    def test_empty(self):
        assert EMPTY.batch == 0
        assert EMPTY.time == 0.0
        assert EMPTY.workspace == 0

    def test_concat_operator(self):
        """The paper's ⊕: [a] ⊕ [b] == [a, b]."""
        a, b = mc(64), mc(128, time=2.0)
        c = Configuration((a,)) + Configuration((b,))
        assert c.micros == (a, b)
        d = Configuration((a,)) + b
        assert d.micros == (a, b)
        assert (EMPTY + a).micros == (a,)

    def test_dominates(self):
        fast_small = Configuration((mc(time=1.0, ws=10),))
        slow_big = Configuration((mc(time=2.0, ws=20),))
        tie = Configuration((mc(time=1.0, ws=10),))
        assert fast_small.dominates(slow_big)
        assert not slow_big.dominates(fast_small)
        assert not fast_small.dominates(tie)  # weak dominance needs a strict edge

    def test_canonical_order_insensitive(self):
        a, b = mc(64, time=1.0), mc(128, time=2.0)
        assert Configuration((a, b)).canonical() == Configuration((b, a)).canonical()

    def test_iteration_and_len(self):
        c = Configuration((mc(), mc()))
        assert len(c) == 2
        assert all(isinstance(m, MicroConfig) for m in c)

    @pytest.mark.parametrize("conv_type,algo", [
        (ConvType.FORWARD, FwdAlgo.FFT_TILING),
        (ConvType.BACKWARD_FILTER, BwdFilterAlgo.WINOGRAD_NONFUSED),
    ])
    def test_serde_roundtrip(self, conv_type, algo):
        c = Configuration((MicroConfig(64, algo, 1.5, 1024),
                           MicroConfig(192, algo, 2.5, 2048)))
        back = Configuration.from_dict(c.to_dict(conv_type))
        assert back == c
        assert isinstance(back.micros[0].algo, type(algo))


sizes = st.lists(st.integers(1, 64), min_size=1, max_size=6)


@given(sizes=sizes, times=st.lists(st.floats(0.001, 10), min_size=6, max_size=6),
       wss=st.lists(st.integers(0, 10**9), min_size=6, max_size=6))
def test_aggregate_properties(sizes, times, wss):
    micros = tuple(
        MicroConfig(s, FwdAlgo.FFT, times[i % 6], wss[i % 6])
        for i, s in enumerate(sizes)
    )
    c = Configuration(micros)
    assert c.batch == sum(sizes)
    assert c.time == pytest.approx(sum(m.time for m in micros))
    assert c.workspace == max(m.workspace for m in micros)
    # Concatenation is associative over the aggregates.
    left = (Configuration(micros[:2]) + Configuration(micros[2:]))
    assert left.time == pytest.approx(c.time)
    assert left.workspace == c.workspace
