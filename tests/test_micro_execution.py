"""Semantics-preservation tests for micro-batched execution (section II).

DESIGN.md invariant 1: for every operation type and any partition of the
mini-batch, micro-batched execution equals undivided execution --
Forward/BackwardData over disjoint slices, BackwardFilter via beta=1
accumulation.  Partitions are hypothesis-generated.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import convolution as uconv
from repro.core.config import Configuration, MicroConfig
from repro.cudnn.api import get_workspace_size
from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.enums import BwdDataAlgo, BwdFilterAlgo, ConvType, FwdAlgo
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.cudnn.kernels import direct
from repro.cudnn.workspace import is_supported, workspace_size
from repro.errors import BadParamError
from tests.conftest import assert_close, make_geometry


@st.composite
def partitions(draw, total=12):
    """Random ordered partition of ``total`` into positive parts."""
    parts = []
    remaining = total
    while remaining > 0:
        part = draw(st.integers(1, remaining))
        parts.append(part)
        remaining -= part
    return parts


def make_config(g: ConvGeometry, parts, algo) -> Configuration:
    micros = []
    for m in parts:
        gm = g.with_batch(m)
        micros.append(MicroConfig(m, algo, 1e-6, workspace_size(gm, algo)))
    return Configuration(tuple(micros))


def algos_to_test(g, enum):
    return [a for a in enum if is_supported(g.with_batch(1), a)
            and is_supported(g, a)]


@pytest.fixture
def io(rng):
    g = make_geometry(n=12, c=4, h=9, w=9, k=6, r=3, s=3, pad=1)
    x = rng.standard_normal(g.x_desc.shape).astype(np.float32)
    w = rng.standard_normal(g.w_desc.shape).astype(np.float32)
    dy = rng.standard_normal(g.y_desc.shape).astype(np.float32)
    return g, x, w, dy


class TestForward:
    @settings(max_examples=20, deadline=None)
    @given(parts=partitions(12))
    def test_any_partition_matches_undivided(self, parts):
        rng = np.random.default_rng(42)
        handle = CudnnHandle()
        g = make_geometry(n=12, c=4, h=9, w=9, k=6, r=3, s=3, pad=1)
        x = rng.standard_normal(g.x_desc.shape).astype(np.float32)
        w = rng.standard_normal(g.w_desc.shape).astype(np.float32)
        ref = direct.forward(g, x, w)
        for algo in (FwdAlgo.IMPLICIT_GEMM, FwdAlgo.FFT, FwdAlgo.WINOGRAD):
            config = make_config(g, parts, algo)
            y = uconv.forward(handle, config, g.x_desc, x, g.w_desc, w,
                              g.conv_desc, config.workspace, g.y_desc)
            assert_close(y, ref, context=f"{algo.name} parts={parts}")

    def test_mixed_algorithms_across_micro_batches(self, handle, io):
        """A configuration may use different algorithms per micro-batch
        (Fig. 3's '@256 ... @128+@128' timeline)."""
        g, x, w, dy = io
        micros = (
            MicroConfig(4, FwdAlgo.FFT, 1e-6,
                        workspace_size(g.with_batch(4), FwdAlgo.FFT)),
            MicroConfig(5, FwdAlgo.WINOGRAD, 1e-6, 0),
            MicroConfig(3, FwdAlgo.IMPLICIT_PRECOMP_GEMM, 1e-6,
                        workspace_size(g.with_batch(3),
                                       FwdAlgo.IMPLICIT_PRECOMP_GEMM)),
        )
        config = Configuration(micros)
        y = uconv.forward(handle, config, g.x_desc, x, g.w_desc, w,
                          g.conv_desc, config.workspace, g.y_desc)
        assert_close(y, direct.forward(g, x, w))

    def test_batch_mismatch_rejected(self, handle, io):
        g, x, w, _ = io
        config = make_config(g, [4, 4], FwdAlgo.IMPLICIT_GEMM)  # covers 8 != 12
        with pytest.raises(BadParamError):
            uconv.forward(handle, config, g.x_desc, x, g.w_desc, w,
                          g.conv_desc, 0, g.y_desc)

    def test_timing_mode_advances_clock_per_micro_batch(self, io):
        g, *_ = io
        handle = CudnnHandle(mode=ExecMode.TIMING)
        config = make_config(g, [4, 4, 4], FwdAlgo.IMPLICIT_GEMM)
        uconv.forward(handle, config, g.x_desc, None, g.w_desc, None,
                      g.conv_desc, 0, g.y_desc)
        assert handle.gpu.kernels_launched == 3
        expected = 3 * handle.perf.time(g.with_batch(4), FwdAlgo.IMPLICIT_GEMM)
        assert handle.elapsed == pytest.approx(expected)


class TestBackwardData:
    @settings(max_examples=15, deadline=None)
    @given(parts=partitions(12))
    def test_any_partition(self, parts):
        rng = np.random.default_rng(43)
        handle = CudnnHandle()
        g = make_geometry(n=12, c=4, h=9, w=9, k=6, r=3, s=3,
                          pad=1).with_type(ConvType.BACKWARD_DATA)
        w = rng.standard_normal(g.w_desc.shape).astype(np.float32)
        dy = rng.standard_normal(g.y_desc.shape).astype(np.float32)
        ref = direct.backward_data(g, dy, w)
        config = make_config(g, parts, BwdDataAlgo.FFT)
        dx = uconv.backward_data(handle, config, g.w_desc, w, g.y_desc, dy,
                                 g.conv_desc, config.workspace, g.x_desc)
        assert_close(dx, ref)


class TestBackwardFilter:
    @settings(max_examples=15, deadline=None)
    @given(parts=partitions(12))
    def test_accumulation_matches_undivided(self, parts):
        """The output-dependency case: accumulation with beta=1 must make
        any partition equivalent to the undivided filter gradient."""
        rng = np.random.default_rng(44)
        handle = CudnnHandle()
        g = make_geometry(n=12, c=4, h=9, w=9, k=6, r=3, s=3,
                          pad=1).with_type(ConvType.BACKWARD_FILTER)
        x = rng.standard_normal(g.x_desc.shape).astype(np.float32)
        dy = rng.standard_normal(g.y_desc.shape).astype(np.float32)
        ref = direct.backward_filter(g, x, dy)
        config = make_config(g, parts, BwdFilterAlgo.ALGO_1)
        dw = uconv.backward_filter(handle, config, g.x_desc, x, g.y_desc, dy,
                                   g.conv_desc, config.workspace, g.w_desc)
        assert_close(dw, ref, tol=1e-3)

    def test_caller_beta_applied_once(self, handle, io):
        """With an existing dw and beta=1, the prior contents are added
        exactly once, independent of the partition."""
        g0, x, w, dy = io
        g = g0.with_type(ConvType.BACKWARD_FILTER)
        ref = direct.backward_filter(g, x, dy)
        prior = np.full(g.w_desc.shape, 2.5, dtype=np.float32)
        config = make_config(g, [5, 4, 3], BwdFilterAlgo.ALGO_1)
        dw = prior.copy()
        uconv.backward_filter(handle, config, g.x_desc, x, g.y_desc, dy,
                              g.conv_desc, config.workspace, g.w_desc, dw,
                              beta=1.0)
        assert_close(dw, ref + 2.5, tol=1e-3)

    def test_caller_beta_zero_discards_prior(self, handle, io):
        g0, x, w, dy = io
        g = g0.with_type(ConvType.BACKWARD_FILTER)
        ref = direct.backward_filter(g, x, dy)
        dw = np.full(g.w_desc.shape, 99.0, dtype=np.float32)
        config = make_config(g, [6, 6], BwdFilterAlgo.ALGO_1)
        uconv.backward_filter(handle, config, g.x_desc, x, g.y_desc, dy,
                              g.conv_desc, config.workspace, g.w_desc, dw,
                              beta=0.0)
        assert_close(dw, ref, tol=1e-3)
