"""Negative-path tests: clear failures instead of confusing ones."""

import numpy as np
import pytest

from repro.core import BatchSizePolicy, Options, UcudnnHandle
from repro.core.handle import VirtualAlgo
from repro.cudnn import api
from repro.cudnn.descriptors import (
    ConvolutionDescriptor,
    FilterDescriptor,
    TensorDescriptor,
)
from repro.cudnn.enums import ConvType, FwdAlgo
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.errors import BadParamError
from repro.units import MIB


@pytest.fixture
def descs():
    return (TensorDescriptor(4, 3, 8, 8), FilterDescriptor(5, 3, 3, 3),
            ConvolutionDescriptor(1, 1))


class TestVirtualAlgoLeak:
    def test_plain_handle_diagnoses_virtual_algo(self, descs, rng):
        """A UcudnnHandle's virtual algorithm on a plain handle must fail
        with a message pointing at the interposition mistake."""
        xd, wd, cd = descs
        g = api.make_geometry(ConvType.FORWARD, xd, wd, cd)
        x = rng.standard_normal(xd.shape).astype(np.float32)
        w = rng.standard_normal(wd.shape).astype(np.float32)
        with pytest.raises(BadParamError, match="virtual"):
            api.convolution_forward(CudnnHandle(), xd, x, wd, w, cd,
                                    VirtualAlgo(ConvType.FORWARD), 0, g.y_desc)

    def test_garbage_algo_rejected(self, descs, rng):
        xd, wd, cd = descs
        g = api.make_geometry(ConvType.FORWARD, xd, wd, cd)
        x = rng.standard_normal(xd.shape).astype(np.float32)
        w = rng.standard_normal(wd.shape).astype(np.float32)
        with pytest.raises(BadParamError):
            api.convolution_forward(CudnnHandle(), xd, x, wd, w, cd,
                                    "fastest-please", 0, g.y_desc)


class TestShapeMismatches:
    def test_wrong_op_algo_enum(self, descs, rng):
        """Passing a forward algorithm to backward-data fails cleanly."""
        xd, wd, cd = descs
        g = api.make_geometry(ConvType.FORWARD, xd, wd, cd)
        dy = rng.standard_normal(g.y_desc.shape).astype(np.float32)
        w = rng.standard_normal(wd.shape).astype(np.float32)
        # FwdAlgo.GEMM's value (2) is BwdDataAlgo.FFT -- enums coerce, so
        # the call is legal cuDNN-wise; what must NOT happen is silent
        # wrong numerics.  The dispatcher resolves by value, like cuDNN.
        out = api.convolution_backward_data(CudnnHandle(), wd, w, g.y_desc,
                                            dy, cd, FwdAlgo.GEMM,
                                            10**9, xd)
        assert out.shape == xd.shape

    def test_operand_shape_mismatch(self, descs, rng):
        xd, wd, cd = descs
        g = api.make_geometry(ConvType.FORWARD, xd, wd, cd)
        bad_x = rng.standard_normal((4, 3, 9, 9)).astype(np.float32)
        w = rng.standard_normal(wd.shape).astype(np.float32)
        with pytest.raises(BadParamError):
            api.convolution_forward(CudnnHandle(), xd, bad_x, wd, w, cd,
                                    FwdAlgo.IMPLICIT_GEMM, 0, g.y_desc)


class TestHandleMisuse:
    def test_ucudnn_without_registration_still_works(self, descs, rng):
        """Calling convolution without ever calling Get first: mu-cuDNN
        registers lazily rather than failing (robustness beyond Caffe's
        calling convention)."""
        xd, wd, cd = descs
        g = api.make_geometry(ConvType.FORWARD, xd, wd, cd)
        handle = UcudnnHandle(options=Options(
            policy=BatchSizePolicy.POWER_OF_TWO, workspace_limit=1 * MIB))
        x = rng.standard_normal(xd.shape).astype(np.float32)
        w = rng.standard_normal(wd.shape).astype(np.float32)
        y = api.convolution_forward(handle, xd, x, wd, w, cd,
                                    VirtualAlgo(ConvType.FORWARD), 0, g.y_desc)
        assert y.shape == g.y_desc.shape

    def test_wd_lazy_kernel_triggers_resolve(self, descs, rng):
        """WD mode with a never-registered kernel re-solves instead of
        crashing (section III-E's calling-convention assumption, relaxed)."""
        xd, wd, cd = descs
        g = api.make_geometry(ConvType.FORWARD, xd, wd, cd)
        handle = UcudnnHandle(options=Options(
            policy=BatchSizePolicy.POWER_OF_TWO, total_workspace=1 * MIB))
        x = rng.standard_normal(xd.shape).astype(np.float32)
        w = rng.standard_normal(wd.shape).astype(np.float32)
        api.convolution_forward(handle, xd, x, wd, w, cd,
                                VirtualAlgo(ConvType.FORWARD), 0, g.y_desc)
        assert handle.wd_result is not None
        # A second, different kernel arrives late: WD re-solves over both.
        xd2 = TensorDescriptor(4, 3, 12, 12)
        g2 = api.make_geometry(ConvType.FORWARD, xd2, wd, cd)
        x2 = rng.standard_normal(xd2.shape).astype(np.float32)
        api.convolution_forward(handle, xd2, x2, wd, w, cd,
                                VirtualAlgo(ConvType.FORWARD), 0, g2.y_desc)
        assert len(handle.configurations()) == 2
        assert handle.wd_result.total_workspace <= 1 * MIB
