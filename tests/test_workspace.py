"""Tests for workspace-size formulas and algorithm support predicates."""

import pytest
from hypothesis import given, strategies as st

from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.enums import (
    AlgoFamily,
    BwdDataAlgo,
    BwdFilterAlgo,
    ConvType,
    FwdAlgo,
    algos_for,
    family_of,
)
from repro.cudnn.workspace import (
    fft_dims,
    fft_tiles_per_image,
    is_supported,
    next_fast_len,
    winograd_tiles,
    workspace_size,
)
from repro.units import KIB, MIB
from tests.conftest import make_geometry

#: The paper's AlexNet conv2 forward geometry (one-column AlexNet, N=256).
CONV2 = ConvGeometry(ConvType.FORWARD, 256, 64, 27, 27, 192, 5, 5, 2, 2)


class TestNextFastLen:
    @pytest.mark.parametrize("n,expected", [(1, 1), (7, 7), (11, 12), (31, 32),
                                            (35, 35), (57, 60), (97, 98)])
    def test_known_values(self, n, expected):
        assert next_fast_len(n) == expected

    @given(st.integers(1, 4096))
    def test_is_seven_smooth_and_geq(self, n):
        m = next_fast_len(n)
        assert m >= n
        k = m
        for p in (2, 3, 5, 7):
            while k % p == 0:
                k //= p
        assert k == 1, f"{m} is not 7-smooth"

    @given(st.integers(1, 2048))
    def test_minimality_vs_bruteforce(self, n):
        m = next_fast_len(n)
        for candidate in range(n, m):
            k = candidate
            for p in (2, 3, 5, 7):
                while k % p == 0:
                    k //= p
            assert k != 1, f"{candidate} < {m} is 7-smooth and >= {n}"


class TestSupport:
    def test_direct_never_supported(self):
        # Real cuDNN enumerates DIRECT but has never implemented it.
        assert not is_supported(make_geometry(), FwdAlgo.DIRECT)

    def test_gemm_families_always_supported(self):
        g = make_geometry(r=11, s=11, stride=4, pad=0, h=35, w=35)
        for algo in (FwdAlgo.IMPLICIT_GEMM, FwdAlgo.IMPLICIT_PRECOMP_GEMM,
                     FwdAlgo.GEMM):
            assert is_supported(g, algo)

    def test_fft_requires_unit_stride(self):
        assert is_supported(make_geometry(), FwdAlgo.FFT)
        assert not is_supported(make_geometry(stride=2), FwdAlgo.FFT)
        assert not is_supported(make_geometry(dilation=2), FwdAlgo.FFT)

    def test_winograd_requires_3x3(self):
        assert is_supported(make_geometry(r=3, s=3), FwdAlgo.WINOGRAD)
        assert not is_supported(make_geometry(r=5, s=5, pad=2), FwdAlgo.WINOGRAD)
        assert not is_supported(make_geometry(r=3, s=3, stride=2), FwdAlgo.WINOGRAD)

    def test_fft_rejects_oversized_images(self):
        g = make_geometry(h=300, w=300)
        assert not is_supported(g, FwdAlgo.FFT)
        assert is_supported(g, FwdAlgo.FFT_TILING)  # tiling handles any size

    def test_fft_tiling_filter_must_fit_tile(self):
        g = make_geometry(h=64, w=64, r=33, s=33, pad=0)
        assert not is_supported(g, FwdAlgo.FFT_TILING)

    def test_support_consistent_across_op_types(self):
        """FFT-family support rules are identical for all three op types."""
        g = make_geometry(r=3, s=3)
        assert is_supported(g.with_type(ConvType.BACKWARD_DATA), BwdDataAlgo.FFT)
        assert is_supported(g.with_type(ConvType.BACKWARD_DATA), BwdDataAlgo.WINOGRAD)
        assert is_supported(g.with_type(ConvType.BACKWARD_FILTER), BwdFilterAlgo.FFT)


class TestWorkspaceSizes:
    def test_implicit_gemm_zero(self):
        assert workspace_size(make_geometry(), FwdAlgo.IMPLICIT_GEMM) == 0
        assert workspace_size(make_geometry(), FwdAlgo.WINOGRAD) == 0

    def test_precomp_small_and_batch_independent(self):
        # Paper section IV-A: 4.3 KiB for conv2 at N=256.
        ws = workspace_size(CONV2, FwdAlgo.IMPLICIT_PRECOMP_GEMM)
        assert KIB < ws < 16 * KIB
        assert ws == workspace_size(CONV2.with_batch(1), FwdAlgo.IMPLICIT_PRECOMP_GEMM)

    def test_fft_conv2_matches_paper_scale(self):
        """Paper: FFT needs ~213 MiB at N=256, ~48.9 MiB at micro-batch 32."""
        full = workspace_size(CONV2, FwdAlgo.FFT)
        micro = workspace_size(CONV2.with_batch(32), FwdAlgo.FFT)
        assert 150 * MIB < full < 280 * MIB
        assert 35 * MIB < micro < 64 * MIB

    def test_fft_linear_in_batch_plus_filter_term(self):
        w1 = workspace_size(CONV2.with_batch(1), FwdAlgo.FFT)
        w2 = workspace_size(CONV2.with_batch(2), FwdAlgo.FFT)
        w3 = workspace_size(CONV2.with_batch(3), FwdAlgo.FFT)
        assert w2 - w1 == pytest.approx(w3 - w2, abs=8)

    def test_explicit_gemm_is_batch_linear_im2col(self):
        g = make_geometry(n=4)
        w4 = workspace_size(g, FwdAlgo.GEMM)
        w8 = workspace_size(g.with_batch(8), FwdAlgo.GEMM)
        assert w8 == 2 * w4
        y = g.y_desc
        assert w4 == 4 * g.n * g.c * g.r * g.s * y.h * y.w

    def test_monotone_in_batch(self):
        """Workspace never shrinks when the micro-batch grows (the property
        micro-batching exploits)."""
        for algo in FwdAlgo:
            if not is_supported(CONV2, algo):
                continue
            sizes = [workspace_size(CONV2.with_batch(n), algo) for n in (1, 8, 64, 256)]
            assert sizes == sorted(sizes), algo

    def test_fft_dims_pad_to_fast_length(self):
        hf, wf = fft_dims(CONV2)  # 27 + 2*2 + 5 - 1 = 35 (already 7-smooth)
        assert (hf, wf) == (35, 35)

    def test_tiles_per_image(self):
        assert fft_tiles_per_image(CONV2) == 1  # 31 <= 32: single tile
        big = make_geometry(h=56, w=56, r=3, s=3, pad=1)
        assert fft_tiles_per_image(big) == 4  # 58 spans two 30-wide steps

    def test_winograd_tiles(self):
        g = make_geometry(h=13, w=13, r=3, s=3, pad=1)  # 13x13 out, m=2
        assert winograd_tiles(g) == 7 * 7

    def test_every_supported_pair_has_finite_size(self):
        for ct in ConvType:
            g = make_geometry().with_type(ct)
            for algo in algos_for(ct):
                if is_supported(g, algo):
                    assert workspace_size(g, algo) >= 0


@given(
    n=st.integers(1, 64),
    c=st.integers(1, 16),
    k=st.integers(1, 16),
    hw=st.integers(5, 40),
)
def test_workspace_monotone_in_batch_property(n, c, k, hw):
    g = ConvGeometry(ConvType.FORWARD, n + 1, c, hw, hw, k, 3, 3, 1, 1)
    for algo in FwdAlgo:
        if is_supported(g, algo):
            assert workspace_size(g.with_batch(n), algo) <= workspace_size(g, algo)


def test_family_mapping_is_total():
    for ct in ConvType:
        for algo in algos_for(ct):
            assert isinstance(family_of(ct, algo), AlgoFamily)
