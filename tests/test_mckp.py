"""Tests for the Pareto-merge MCKP solver."""

import itertools
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mckp import MCKPItem, solve_mckp
from repro.errors import SolverError


def brute_force(groups, capacity):
    best = math.inf
    best_sel = None
    for combo in itertools.product(*[range(len(g)) for g in groups]):
        weight = sum(groups[gi][ci].weight for gi, ci in enumerate(combo))
        if weight <= capacity:
            cost = sum(groups[gi][ci].cost for gi, ci in enumerate(combo))
            if cost < best:
                best, best_sel = cost, combo
    return best, best_sel


def make_groups(spec):
    return [
        [MCKPItem(cost=c, weight=w, index=i) for i, (c, w) in enumerate(group)]
        for group in spec
    ]


class TestSolveMCKP:
    def test_simple(self):
        groups = make_groups([[(5.0, 0), (1.0, 10)], [(4.0, 0), (1.0, 10)]])
        sol = solve_mckp(groups, capacity=10)
        assert sol.cost == pytest.approx(5.0)  # one cheap item fits
        assert sol.weight <= 10
        assert len(sol.selection) == 2

    def test_selection_indices_are_original(self):
        groups = make_groups([[(2.0, 0), (1.0, 5)]])
        sol = solve_mckp(groups, capacity=5)
        assert sol.selection == [1]

    def test_infeasible(self):
        groups = make_groups([[(1.0, 10)], [(1.0, 10)]])
        with pytest.raises(SolverError):
            solve_mckp(groups, capacity=15)

    def test_empty_group_rejected(self):
        with pytest.raises(SolverError):
            solve_mckp([[]], capacity=10)

    def test_no_groups_rejected(self):
        with pytest.raises(SolverError):
            solve_mckp([], capacity=10)

    def test_front_peak_reported(self):
        groups = make_groups([[(3.0, 0), (2.0, 1), (1.0, 2)]] * 3)
        sol = solve_mckp(groups, capacity=6)
        assert sol.front_peak >= 1
        assert sol.cost == pytest.approx(3.0)

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_matches_brute_force(self, data):
        num_groups = data.draw(st.integers(1, 4))
        spec = [
            [(data.draw(st.floats(0.1, 10.0)), data.draw(st.integers(0, 15)))
             for _ in range(data.draw(st.integers(1, 4)))]
            for _ in range(num_groups)
        ]
        capacity = data.draw(st.integers(0, 40))
        groups = make_groups(spec)
        expected, _ = brute_force(groups, capacity)
        if math.isinf(expected):
            with pytest.raises(SolverError):
                solve_mckp(groups, capacity)
            return
        sol = solve_mckp(groups, capacity)
        assert sol.cost == pytest.approx(expected)
        assert sol.weight <= capacity
        # The reported selection reproduces the reported totals.
        assert sum(groups[g][c].cost for g, c in enumerate(sol.selection)) == \
            pytest.approx(sol.cost)
        assert sum(groups[g][c].weight for g, c in enumerate(sol.selection)) == \
            sol.weight
