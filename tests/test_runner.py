"""Tests for the command-line experiment runner."""

import json

import pytest

import repro.telemetry as telemetry
from repro.harness.runner import REGISTRY, main


class TestRunner:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for key in REGISTRY:
            assert key in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig1" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_cheap_experiment(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "powerOfTwo" in out
        assert "[fig9" in out

    def test_csv_format(self, capsys):
        assert main(["fig9", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("policy,")
        assert "|" not in out

    def test_registry_covers_every_paper_artifact(self):
        assert set(REGISTRY) == {
            "fig1", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
            "fig14", "opt-cost", "ilp-stats", "sweep",
        }

    def test_summary_line_reports_cache_hits_and_misses(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "cache: 10 hits, 256 misses (bench 10/256, config 0/0)" in out


class TestRunnerTelemetry:
    def test_profile_writes_valid_chrome_trace(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        assert main(["fig9", "--profile", str(path)]) == 0
        trace = json.loads(path.read_text())
        names = {e.get("name") for e in trace["traceEvents"]}
        # The documented nesting: experiment > optimize > benchmark > cache.
        assert {"experiment", "optimize.network", "optimize.wr",
                "benchmark.kernel", "benchmark.find", "cache.hit",
                "cache.miss"} <= names
        assert f"[profile written to {path}]" in capsys.readouterr().out

    def test_metrics_prints_summary(self, capsys):
        assert main(["fig9", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "== telemetry summary ==" in out
        assert "cache.hits" in out and "cache.misses" in out
        assert "benchmark.units" in out

    def test_runner_leaves_telemetry_disabled(self):
        assert not telemetry.enabled()
        assert main(["fig9"]) == 0
        assert not telemetry.enabled()

    def test_runner_preserves_ambient_session(self):
        with telemetry.capture() as outer:
            assert main(["fig9"]) == 0
            assert telemetry.session() is outer


class TestRunnerFailures:
    @pytest.fixture
    def broken_registry(self, monkeypatch):
        def boom():
            raise RuntimeError("injected failure")

        registry = dict(REGISTRY)
        registry["boom"] = (boom, "always fails")
        monkeypatch.setattr("repro.harness.runner.REGISTRY", registry)
        return registry

    def test_failing_experiment_exits_nonzero(self, capsys, broken_registry):
        assert main(["boom"]) == 1
        err = capsys.readouterr().err
        assert "[boom: FAILED]" in err
        assert "injected failure" in err
        assert "1 experiment(s) failed: boom" in err

    def test_failure_does_not_abort_remaining_experiments(
        self, capsys, broken_registry
    ):
        assert main(["boom", "fig9"]) == 1
        captured = capsys.readouterr()
        assert "[boom: FAILED]" in captured.err
        assert "powerOfTwo" in captured.out  # fig9 still ran
