"""Tests for the command-line experiment runner."""

import pytest

from repro.harness.runner import REGISTRY, main


class TestRunner:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for key in REGISTRY:
            assert key in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig1" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_cheap_experiment(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "powerOfTwo" in out
        assert "[fig9" in out

    def test_csv_format(self, capsys):
        assert main(["fig9", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("policy,")
        assert "|" not in out

    def test_registry_covers_every_paper_artifact(self):
        assert set(REGISTRY) == {
            "fig1", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
            "fig14", "opt-cost", "ilp-stats",
        }
