"""Tests for the command-line experiment runner."""

import json

import pytest

import repro.telemetry as telemetry
from repro.harness.runner import REGISTRY, main


class TestRunner:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for key in REGISTRY:
            assert key in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig1" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_cheap_experiment(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "powerOfTwo" in out
        assert "[fig9" in out

    def test_csv_format(self, capsys):
        assert main(["fig9", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("policy,")
        assert "|" not in out

    def test_registry_covers_every_paper_artifact(self):
        assert set(REGISTRY) == {
            "fig1", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
            "fig14", "opt-cost", "ilp-stats", "sweep", "explain", "serve",
            "client",
        }

    def test_summary_line_reports_cache_hits_and_misses(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "cache: 10 hits, 256 misses (bench 10/256, config 0/0)" in out


class TestRunnerTelemetry:
    def test_profile_writes_valid_chrome_trace(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        assert main(["fig9", "--profile", str(path)]) == 0
        trace = json.loads(path.read_text())
        names = {e.get("name") for e in trace["traceEvents"]}
        # The documented nesting: experiment > optimize > benchmark > cache.
        assert {"experiment", "optimize.network", "optimize.wr",
                "benchmark.kernel", "benchmark.find", "cache.hit",
                "cache.miss"} <= names
        assert f"[profile written to {path}]" in capsys.readouterr().out

    def test_metrics_prints_summary(self, capsys):
        assert main(["fig9", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "== telemetry summary ==" in out
        assert "cache.hits" in out and "cache.misses" in out
        assert "benchmark.units" in out

    def test_runner_leaves_telemetry_disabled(self):
        assert not telemetry.enabled()
        assert main(["fig9"]) == 0
        assert not telemetry.enabled()

    def test_runner_preserves_ambient_session(self):
        with telemetry.capture() as outer:
            assert main(["fig9"]) == 0
            assert telemetry.session() is outer


class TestOutputPaths:
    """Output paths with missing parent directories are created, not crashed
    into (regression: ``--profile missing/dir/trace.json`` used to die with
    a bare ``FileNotFoundError`` message)."""

    def test_profile_creates_missing_parent_dirs(self, capsys, tmp_path):
        path = tmp_path / "deeply" / "nested" / "trace.json"
        assert main(["fig9", "--profile", str(path)]) == 0
        assert path.exists()
        assert json.loads(path.read_text())["traceEvents"]

    def test_metrics_file_creates_missing_parent_dirs(self, capsys, tmp_path):
        path = tmp_path / "out" / "metrics.prom"
        assert main(["fig9", "--metrics-file", str(path)]) == 0
        assert path.read_text().startswith("# HELP repro_")

    def test_unwritable_output_fails_with_clear_message(self, capsys, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")  # a *file* where a directory is needed
        path = blocker / "sub" / "trace.json"
        assert main(["fig9", "--profile", str(path)]) == 1
        err = capsys.readouterr().err
        assert "cannot write profile" in err
        assert "cannot create output directory" in err


class TestExplain:
    def test_explain_runs_and_prints_table(self, capsys):
        assert main(["explain"]) == 0
        out = capsys.readouterr().out
        assert "Decision provenance" in out
        assert "conv2:Forward" in out

    def test_explain_writes_json_and_html(self, capsys, tmp_path):
        jpath = tmp_path / "new" / "run.json"
        hpath = tmp_path / "new" / "run.html"
        assert main(["explain", "--explain-json", str(jpath),
                     "--explain-html", str(hpath)]) == 0
        report = json.loads(jpath.read_text())
        assert report["schema_version"] == 1
        assert "conv2:Forward" in report["kernels"]
        html = hpath.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html

    def test_explain_flags_without_explain_experiment_fail(self, capsys,
                                                           tmp_path):
        assert main(["fig9", "--explain-json", str(tmp_path / "x.json")]) == 1
        assert "need the 'explain' experiment" in capsys.readouterr().err

    def test_diff_of_identical_runs_is_empty(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(["explain", "--explain-json", str(a)]) == 0
        assert main(["explain", "--explain-json", str(b)]) == 0
        assert a.read_text() == b.read_text()  # byte-deterministic
        assert main(["--diff", str(a), str(b)]) == 0
        assert "no configuration drift" in capsys.readouterr().out

    def test_diff_unreadable_report_exits_2(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        a.write_text("{}")
        assert main(["--diff", str(a), str(tmp_path / "missing.json")]) == 2
        assert "cannot read report" in capsys.readouterr().err


class TestServe:
    def test_serve_runs_and_prints_table(self, capsys):
        assert main(["serve"]) == 0
        out = capsys.readouterr().out
        assert "Plan-service soak" in out
        assert "solver invocations" in out
        assert "[serve" in out

    def test_soak_writes_byte_deterministic_report(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(["serve", "--soak", "--soak-report", str(a)]) == 0
        assert main(["serve", "--soak", "--soak-report", str(b)]) == 0
        assert a.read_text() == b.read_text()
        report = json.loads(a.read_text())
        assert report["healthy"] is True
        assert report["errored"] == 0 and report["dropped"] == 0
        # Coalescing + the plan store: strictly fewer solves than requests.
        assert 0 < report["solver_invocations"] < report["submitted"]
        # The seeded fault schedule exercised both fallback rungs.
        assert report["fallback_reasons"].get("timeout", 0) > 0
        assert report["fallback_reasons"].get("solver_error", 0) > 0

    def test_soak_summary_line_reports_evictions(self, capsys):
        # The soak parameterization bounds its BenchmarkCache, so this is
        # the runner path where the eviction count becomes visible.
        assert main(["serve", "--soak"]) == 0
        out = capsys.readouterr().out
        assert "evicted]" in out

    def test_soak_flags_without_serve_experiment_fail(self, capsys, tmp_path):
        assert main(["fig9", "--soak"]) == 1
        assert "need the 'serve' experiment" in capsys.readouterr().err

    def test_unhealthy_soak_exits_nonzero(self, capsys, monkeypatch):
        from repro.harness import experiments as E

        def unhealthy(soak=False, seed=0, store_path=None, **kwargs):
            result = E.serve_plans(soak=soak, seed=seed, store_path=store_path,
                                   **kwargs)
            result.report.errored = 1
            result.report.errors.append("SolverError: injected")
            return result

        registry = dict(REGISTRY)
        registry["serve"] = (unhealthy, registry["serve"][1])
        monkeypatch.setattr("repro.harness.runner.REGISTRY", registry)
        assert main(["serve"]) == 1
        assert "[serve: UNHEALTHY" in capsys.readouterr().err


class TestRunnerFailures:
    @pytest.fixture
    def broken_registry(self, monkeypatch):
        def boom():
            raise RuntimeError("injected failure")

        registry = dict(REGISTRY)
        registry["boom"] = (boom, "always fails")
        monkeypatch.setattr("repro.harness.runner.REGISTRY", registry)
        return registry

    def test_failing_experiment_exits_nonzero(self, capsys, broken_registry):
        assert main(["boom"]) == 1
        err = capsys.readouterr().err
        assert "[boom: FAILED]" in err
        assert "injected failure" in err
        assert "1 experiment(s) failed: boom" in err

    def test_failure_does_not_abort_remaining_experiments(
        self, capsys, broken_registry
    ):
        assert main(["boom", "fig9"]) == 1
        captured = capsys.readouterr()
        assert "[boom: FAILED]" in captured.err
        assert "powerOfTwo" in captured.out  # fig9 still ran
