"""Tests for cuDNN descriptor types and geometry derivations."""

import pytest
from hypothesis import given, strategies as st

from repro.cudnn.descriptors import (
    ConvGeometry,
    ConvolutionDescriptor,
    FilterDescriptor,
    TensorDescriptor,
    output_dims,
)
from repro.cudnn.enums import ConvType
from repro.errors import BadParamError
from tests.conftest import make_geometry


class TestTensorDescriptor:
    def test_shape_and_sizes(self):
        t = TensorDescriptor(2, 3, 5, 7)
        assert t.shape == (2, 3, 5, 7)
        assert t.count == 210
        assert t.size_bytes == 840

    def test_with_batch(self):
        t = TensorDescriptor(8, 3, 5, 7).with_batch(2)
        assert t.shape == (2, 3, 5, 7)

    @pytest.mark.parametrize("bad", [(0, 1, 1, 1), (1, -1, 1, 1), (1, 1, 0, 1)])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(BadParamError):
            TensorDescriptor(*bad)


class TestFilterDescriptor:
    def test_sizes(self):
        f = FilterDescriptor(4, 3, 3, 3)
        assert f.count == 108
        assert f.size_bytes == 432

    def test_rejects_zero(self):
        with pytest.raises(BadParamError):
            FilterDescriptor(0, 3, 3, 3)


class TestConvolutionDescriptor:
    def test_defaults(self):
        c = ConvolutionDescriptor()
        assert (c.pad_h, c.stride_h, c.dilation_h) == (0, 1, 1)

    def test_rejects_negative_pad(self):
        with pytest.raises(BadParamError):
            ConvolutionDescriptor(pad_h=-1)

    def test_rejects_zero_stride(self):
        with pytest.raises(BadParamError):
            ConvolutionDescriptor(stride_h=0)


class TestOutputDims:
    def test_alexnet_conv1(self):
        # 227x227, 11x11 stride 4: (227 - 11) / 4 + 1 = 55.
        y = output_dims(
            TensorDescriptor(256, 3, 227, 227),
            FilterDescriptor(64, 3, 11, 11),
            ConvolutionDescriptor(stride_h=4, stride_w=4),
        )
        assert y.shape == (256, 64, 55, 55)

    def test_same_padding(self):
        y = output_dims(
            TensorDescriptor(1, 8, 13, 13),
            FilterDescriptor(8, 8, 3, 3),
            ConvolutionDescriptor(pad_h=1, pad_w=1),
        )
        assert (y.h, y.w) == (13, 13)

    def test_dilation(self):
        # Effective kernel 5 with dilation 2 on 3x3.
        y = output_dims(
            TensorDescriptor(1, 1, 9, 9),
            FilterDescriptor(1, 1, 3, 3),
            ConvolutionDescriptor(dilation_h=2, dilation_w=2),
        )
        assert (y.h, y.w) == (5, 5)

    def test_channel_mismatch(self):
        with pytest.raises(BadParamError):
            output_dims(
                TensorDescriptor(1, 3, 8, 8),
                FilterDescriptor(4, 5, 3, 3),
                ConvolutionDescriptor(),
            )

    def test_empty_output(self):
        with pytest.raises(BadParamError):
            output_dims(
                TensorDescriptor(1, 1, 2, 2),
                FilterDescriptor(1, 1, 5, 5),
                ConvolutionDescriptor(),
            )


class TestConvGeometry:
    def test_macs_match_loop_nest(self):
        g = make_geometry(n=2, c=3, h=6, w=6, k=4, r=3, s=3, pad=1)
        # N * K * H' * W' * C * R * S (Algorithm 1's seven loops).
        assert g.macs == 2 * 4 * 6 * 6 * 3 * 3 * 3
        assert g.flops == 2 * g.macs

    def test_macs_equal_across_op_types(self):
        g = make_geometry()
        for ct in ConvType:
            assert g.with_type(ct).macs == g.macs

    def test_with_batch_identity(self):
        g = make_geometry(n=8)
        assert g.with_batch(8) is g
        assert g.with_batch(2).n == 2
        assert g.with_batch(2).with_batch(8) == g

    def test_cache_key_distinguishes_geometry(self):
        a = make_geometry(n=8)
        keys = {
            a.cache_key(),
            a.with_batch(4).cache_key(),
            a.with_type(ConvType.BACKWARD_DATA).cache_key(),
            make_geometry(n=8, pad=0).cache_key(),
        }
        assert len(keys) == 4

    def test_roundtrip_descriptors(self):
        g = make_geometry(n=3, c=2, h=9, w=7, k=4, r=3, s=3, pad=1, stride=2)
        rebuilt = ConvGeometry.from_descriptors(
            g.conv_type, g.x_desc, g.w_desc, g.conv_desc
        )
        assert rebuilt == g

    def test_rejects_negative_pad(self):
        with pytest.raises(BadParamError):
            make_geometry(pad=-1)

    def test_hashable(self):
        assert len({make_geometry(), make_geometry()}) == 1


@given(
    n=st.integers(1, 16), c=st.integers(1, 8), hw=st.integers(3, 20),
    k=st.integers(1, 8), r=st.integers(1, 3), stride=st.integers(1, 3),
)
def test_output_dims_nonempty_and_consistent(n, c, hw, k, r, stride):
    """Property: y_desc agrees with output_dims and is always positive."""
    g = ConvGeometry(ConvType.FORWARD, n, c, hw, hw, k, r, r,
                     pad_h=r // 2, pad_w=r // 2, stride_h=stride, stride_w=stride)
    y = g.y_desc
    assert y.n == n and y.c == k
    assert y.h >= 1 and y.w >= 1
    expected_h = (hw + 2 * (r // 2) - r) // stride + 1
    assert y.h == expected_h
