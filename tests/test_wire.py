"""Tests for the wire protocol and plan server (``src/repro/wire``).

Covers the ISSUE's acceptance criteria directly: golden-bytes framing (the
exact bytes of envelopes are pinned, so any accidental format change fails
loudly), every :data:`WIRE_ERRORS` variant round-trips to its taxonomy
class, protocol violations drop the connection while taxonomy errors keep
it alive, deadlines propagate to the server's solver, and an out-of-process
client solving an AlexNet kernel gets a plan byte-identical to the
in-process answer.
"""

import json
import socket
import struct

import pytest

from repro.core.config import Configuration, MicroConfig
from repro.cudnn.enums import FwdAlgo
from repro.errors import (
    PersistenceError,
    RemoteError,
    ServiceOverloadedError,
    SolverError,
    WireProtocolError,
)
from repro.persistence import PersistentPlanStore
from repro.service import PlanKey, PlanRequest, PlanResponse, PlanService
from repro.telemetry.clock import ManualClock
from repro.units import MIB
from repro.wire import PlanClient, PlanServer
from repro.wire.protocol import (
    MAX_FRAME_BYTES,
    WIRE_ERRORS,
    WIRE_VERSION,
    decode_envelope,
    encode_envelope,
    encode_frame,
    error_from_wire,
    error_to_wire,
    geometry_from_wire,
    geometry_to_wire,
    parse_address,
    read_frame,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
    write_frame,
)
from tests.conftest import make_geometry

GPU = "p100-sxm2"


def fake_config(micro: int = 4) -> Configuration:
    return Configuration((MicroConfig(micro, FwdAlgo.IMPLICIT_GEMM, 0.001, 0),))


def spy_solve(request):
    return fake_config(), 0.1


def make_request(**kw) -> PlanRequest:
    kw.setdefault("kernel", "conv1")
    kw.setdefault("geometry", make_geometry())
    kw.setdefault("workspace_limit", MIB)
    return PlanRequest(**kw)


class TestGoldenBytes:
    """The exact frame bytes are the compatibility contract; pin them."""

    def test_ping_request_frame(self):
        assert encode_frame("ping", {}, 1) == (
            b'\x00\x00\x00&{"body":{},"id":1,"type":"ping","v":1}'
        )

    def test_error_envelope_payload(self):
        payload = encode_envelope("error", error_to_wire(SolverError("boom")), 7)
        assert payload == (
            b'{"body":{"error":"SolverError","message":"boom"},'
            b'"id":7,"type":"error","v":1}'
        )

    def test_frame_prefix_is_big_endian_payload_length(self):
        payload = encode_envelope("stats", {}, 42)
        frame = encode_frame("stats", {}, 42)
        assert frame[:4] == struct.pack(">I", len(payload))
        assert frame[4:] == payload

    def test_canonical_serialization_sorts_keys(self):
        # Equal bodies with different dict construction order -> equal bytes.
        a = encode_envelope("plan", {"z": 1, "a": 2}, 3)
        b = encode_envelope("plan", {"a": 2, "z": 1}, 3)
        assert a == b

    def test_envelope_round_trips(self):
        payload = encode_envelope("plan", {"kernel": "c1"}, 9)
        assert decode_envelope(payload) == ("plan", 9, {"kernel": "c1"})

    def test_oversized_outgoing_payload_is_refused(self):
        with pytest.raises(WireProtocolError, match="over the"):
            encode_envelope("plan", {"blob": "x" * MAX_FRAME_BYTES}, 1)


class TestEnvelopeValidation:
    def test_undecodable_json(self):
        with pytest.raises(WireProtocolError, match="undecodable"):
            decode_envelope(b"{nope")

    def test_non_object_envelope(self):
        with pytest.raises(WireProtocolError, match="JSON object"):
            decode_envelope(b"[1,2]")

    def test_wrong_version(self):
        bad = json.dumps({"body": {}, "id": 1, "type": "ping",
                          "v": WIRE_VERSION + 1}).encode()
        with pytest.raises(WireProtocolError, match="not speakable"):
            decode_envelope(bad)

    def test_non_string_type(self):
        bad = json.dumps({"body": {}, "id": 1, "type": 5, "v": 1}).encode()
        with pytest.raises(WireProtocolError, match="'type'"):
            decode_envelope(bad)

    def test_boolean_id_is_not_an_integer(self):
        bad = json.dumps({"body": {}, "id": True, "type": "ping",
                          "v": 1}).encode()
        with pytest.raises(WireProtocolError, match="'id'"):
            decode_envelope(bad)


class TestFraming:
    """Socket-level framing against a local socketpair."""

    @pytest.fixture
    def pair(self):
        a, b = socket.socketpair()
        yield a, b
        a.close()
        b.close()

    def test_write_then_read_round_trips(self, pair):
        a, b = pair
        sent = write_frame(a, b"hello wire")
        assert sent == 4 + len(b"hello wire")
        assert read_frame(b) == b"hello wire"

    def test_clean_eof_between_frames_is_none(self, pair):
        a, b = pair
        a.close()
        assert read_frame(b) is None

    def test_truncated_length_prefix_is_protocol_error(self, pair):
        a, b = pair
        a.sendall(b"\x00\x00")  # half a prefix, then gone
        a.close()
        with pytest.raises(WireProtocolError, match="mid-length prefix"):
            read_frame(b)

    def test_truncated_payload_is_protocol_error(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", 10) + b"abc")
        a.close()
        with pytest.raises(WireProtocolError, match="mid-frame payload"):
            read_frame(b)

    def test_oversized_prefix_rejected_before_allocation(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(WireProtocolError, match="corrupt or hostile"):
            read_frame(b)

    def test_oversized_outgoing_frame_is_refused(self, pair):
        a, _ = pair
        with pytest.raises(WireProtocolError, match="refusing to send"):
            write_frame(a, b"x" * (MAX_FRAME_BYTES + 1))


class TestErrorMapping:
    @pytest.mark.parametrize("name", sorted(WIRE_ERRORS))
    def test_every_variant_round_trips(self, name):
        cls = WIRE_ERRORS[name]
        body = error_to_wire(cls("the reason"))
        assert body == {"error": name, "message": "the reason"}
        back = error_from_wire(body)
        assert type(back) is cls
        assert str(back) == "the reason"

    def test_unmapped_class_becomes_remote_error(self):
        back = error_from_wire({"error": "ValueError", "message": "nope"})
        assert type(back) is RemoteError
        assert "ValueError: nope" in str(back)

    def test_malformed_error_body_is_protocol_error(self):
        assert isinstance(error_from_wire("boom"), WireProtocolError)
        assert isinstance(error_from_wire({"error": 5}), WireProtocolError)


class TestBodyCodecs:
    def test_geometry_round_trips(self):
        geometry = make_geometry(c=7, n=32)
        assert geometry_from_wire(geometry_to_wire(geometry)) == geometry

    def test_request_round_trips(self):
        request = make_request(deadline_s=2.5, client="codec-test")
        assert request_from_wire(request_to_wire(request)) == request

    def test_request_without_deadline_round_trips(self):
        request = make_request()
        assert request.deadline_s is None
        assert request_from_wire(request_to_wire(request)) == request

    def test_response_round_trips(self):
        response = PlanResponse(
            kernel="conv1",
            key=PlanKey(gpu=GPU, kernel="conv1", policy="powerOfTwo",
                        workspace_limit=MIB),
            configuration=fake_config(),
            source="fresh",
            solve_seconds=0.25,
            latency_s=0.5,
            fallback_reason="",
            client="codec-test",
        )
        assert response_from_wire(response_to_wire(response)) == response

    def test_corrupt_geometry_is_protocol_error(self):
        with pytest.raises(WireProtocolError, match="geometry"):
            geometry_from_wire({"n": 1})

    def test_corrupt_request_is_protocol_error(self):
        with pytest.raises(WireProtocolError, match="corrupt wire plan"):
            request_from_wire({"kernel": "c1"})
        with pytest.raises(WireProtocolError, match="deadline_s"):
            request_from_wire({"kernel": "c1", "deadline_s": "soon"})

    def test_corrupt_response_is_protocol_error(self):
        with pytest.raises(WireProtocolError, match="plan response"):
            response_from_wire({"kernel": "c1"})


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("127.0.0.1:7070") == ("127.0.0.1", 7070)

    def test_hostname(self):
        assert parse_address("localhost:0") == ("localhost", 0)

    @pytest.mark.parametrize("bad", [
        "no-port", ":7070", "host:", "host:seventy", "host:70000",
    ])
    def test_bad_addresses_raise(self, bad):
        with pytest.raises(WireProtocolError):
            parse_address(bad)


class TestServerClient:
    """Integration over a real localhost socket (ephemeral port)."""

    @pytest.fixture
    def served(self):
        with PlanService(GPU, clock=ManualClock(),
                         solve_fn=spy_solve) as service:
            with PlanServer(service) as server:
                with PlanClient(server.host, server.port,
                                timeout_s=10.0) as client:
                    yield service, server, client

    def test_ping_reports_gpu_and_version(self, served):
        _, _, client = served
        info = client.ping()
        assert info["gpu"] == GPU
        assert info["v"] == WIRE_VERSION

    def test_plan_round_trip_matches_in_process(self, served):
        service, _, client = served
        request = make_request(client="wire-test")
        remote = client.plan(request)
        local = service.request(make_request(client="in-process"))
        assert remote.configuration == local.configuration
        assert remote.key == local.key
        assert remote.source == "fresh"
        assert local.source == "cached"  # the wire solve populated the store

    def test_stats_carries_wire_counters(self, served):
        _, _, client = served
        client.ping()
        stats = client.stats()
        wire = stats["wire"]
        assert wire["connections"] == 1
        assert wire["requests"] >= 2  # the ping + this stats call
        assert wire["errors"] == 0
        assert wire["bytes_in"] > 0 and wire["bytes_out"] > 0
        assert "service" in stats and "store" in stats

    def test_save_without_a_store_path_is_a_typed_error(self, served):
        _, _, client = served
        with pytest.raises(PersistenceError, match="no snapshot path"):
            client.save()

    def test_deadline_propagates_to_the_server_solver(self):
        seen = []

        def spy(request):
            seen.append(request.deadline_s)
            return fake_config(), 0.1

        with PlanService(GPU, clock=ManualClock(), solve_fn=spy) as service:
            with PlanServer(service) as server:
                with PlanClient(server.host, server.port,
                                timeout_s=10.0) as client:
                    client.plan(make_request(deadline_s=2.5))
        assert seen == [2.5]

    def test_solver_errors_arrive_typed_and_keep_the_connection(self):
        def broken(request):
            raise SolverError("injected wire failure")

        with PlanService(GPU, clock=ManualClock(), solve_fn=broken,
                         fallback=False) as service:
            with PlanServer(service) as server:
                with PlanClient(server.host, server.port,
                                timeout_s=10.0) as client:
                    with pytest.raises(SolverError, match="fallback disabled"):
                        client.plan(make_request())
                    # Taxonomy errors are answers, not damage: the same
                    # connection keeps serving.
                    assert client.ping()["gpu"] == GPU

    def test_overload_errors_arrive_typed(self):
        import threading
        release = threading.Event()

        def stalled(request):
            release.wait(10.0)
            return fake_config(), 0.1

        with PlanService(GPU, clock=ManualClock(), solve_fn=stalled,
                         max_pending=1, fallback=False) as service:
            with PlanServer(service) as server:
                with PlanClient(server.host, server.port,
                                timeout_s=10.0) as first:
                    ticket = service.submit(make_request())  # fills the slot
                    try:
                        with pytest.raises(ServiceOverloadedError):
                            first.plan(make_request(
                                geometry=make_geometry(c=9)))
                    finally:
                        release.set()
                        service.wait(ticket)

    def test_unknown_request_type_is_rejected_but_survivable(self, served):
        _, _, client = served
        with pytest.raises(WireProtocolError, match="unknown request type"):
            client._call("bogus", {})
        assert client.ping()["gpu"] == GPU

    def test_garbage_frame_drops_the_connection(self, served):
        _, server, _ = served
        with socket.create_connection((server.host, server.port), 10.0) as raw:
            write_frame(raw, b"this is not json")
            reply = read_frame(raw)
            msg_type, msg_id, body = decode_envelope(reply)
            assert msg_type == "error"
            assert msg_id == 0  # framing is lost; no request id to echo
            assert isinstance(error_from_wire(body), WireProtocolError)
            assert read_frame(raw) is None  # server hung up

    def test_save_writes_through_a_persistent_store(self, tmp_path):
        path = tmp_path / "snap.json"
        store = PersistentPlanStore(path, gpu=GPU, clock=ManualClock(),
                                    sync_every=100)
        with PlanService(GPU, clock=ManualClock(), solve_fn=spy_solve,
                         store=store) as service:
            with PlanServer(service) as server:
                with PlanClient(server.host, server.port,
                                timeout_s=10.0) as client:
                    client.plan(make_request())
                    assert not path.exists()  # sync_every batches writes
                    assert client.save() == str(path)
        assert path.exists()

    def test_two_clients_share_the_plan_store(self, served):
        _, server, first = served
        first.plan(make_request())
        with PlanClient(server.host, server.port, timeout_s=10.0) as second:
            response = second.plan(make_request())
        assert response.source == "cached"

    def test_connect_to_nothing_fails_with_clear_message(self):
        # Bind-then-close guarantees a port with no listener behind it.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(WireProtocolError, match="cannot connect"):
            PlanClient("127.0.0.1", port, timeout_s=2.0)


class TestAlexNetOverWire:
    """The ISSUE's end-to-end criterion: an out-of-process client solving
    an AlexNet kernel gets a plan byte-identical to the in-process one."""

    def test_wire_plan_is_byte_identical_to_in_process(self):
        from repro.harness.experiments import (
            PAPER_BATCHES,
            build_alexnet,
            conv_geometries_of,
        )
        from repro.persistence.snapshot import conv_type_of

        geoms = conv_geometries_of(build_alexnet, PAPER_BATCHES["alexnet"], GPU)
        kernel = sorted(geoms)[0]
        request = PlanRequest(kernel=kernel, geometry=geoms[kernel],
                              workspace_limit=64 * MIB)

        def plan_bytes(response):
            doc = response.configuration.to_dict(
                conv_type_of(response.configuration, response.key.kernel))
            return json.dumps(doc, sort_keys=True).encode()

        with PlanService(GPU, clock=ManualClock()) as local_service:
            local = local_service.request(request)

        with PlanService(GPU, clock=ManualClock()) as service:
            with PlanServer(service) as server:
                with PlanClient(server.host, server.port,
                                timeout_s=60.0) as client:
                    remote = client.plan(request)

        assert plan_bytes(remote) == plan_bytes(local)
        assert remote.configuration == local.configuration
