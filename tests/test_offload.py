"""Tests for the vDNN-style offload analysis."""

import pytest

from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.frameworks import time_net
from repro.frameworks.model_zoo import build_tiny_cnn
from repro.memory import memory_report, plan_offload
from repro.memory.offload import PCIE_BANDWIDTH
from repro.units import MIB


@pytest.fixture
def setup():
    handle = CudnnHandle(mode=ExecMode.TIMING)
    net = build_tiny_cnn(batch=8).setup(handle, workspace_limit=1 * MIB)
    report = time_net(net, iterations=1)
    mem = memory_report(net)
    return net, mem, report


class TestPlanOffload:
    def test_resident_set_is_window_max(self, setup):
        net, mem, report = setup
        plan1 = plan_offload(net, mem, report, window=1)
        plan_all = plan_offload(net, mem, report, window=len(mem.layers))
        acts = [l.data_bytes for l in mem.layers]
        assert plan1.resident_activation_bytes == max(acts)
        assert plan_all.resident_activation_bytes == sum(acts)
        assert plan1.resident_activation_bytes <= plan_all.resident_activation_bytes

    def test_window_monotone(self, setup):
        net, mem, report = setup
        residents = [
            plan_offload(net, mem, report, window=w).resident_activation_bytes
            for w in (1, 2, 4, 8)
        ]
        assert residents == sorted(residents)

    def test_traffic_and_overlap(self, setup):
        net, mem, report = setup
        plan = plan_offload(net, mem, report, window=2)
        offloadable = sum(l.data_bytes for l in mem.layers)
        assert plan.pcie_traffic_bytes == 2 * offloadable
        assert plan.transfer_time == pytest.approx(
            plan.pcie_traffic_bytes / PCIE_BANDWIDTH
        )
        assert plan.iteration_time >= plan.compute_time
        assert plan.slowdown_vs_no_offload >= 1.0

    def test_peak_includes_workspace_and_params(self, setup):
        net, mem, report = setup
        plan = plan_offload(net, mem, report, window=1)
        assert plan.peak_device_bytes == (
            plan.resident_activation_bytes + plan.param_bytes
            + plan.peak_workspace_bytes
        )
        assert plan.param_bytes == sum(l.param_bytes for l in mem.layers)
        assert plan.peak_workspace_bytes == max(
            l.workspace_bytes for l in mem.layers
        )

    def test_invalid_window(self, setup):
        net, mem, report = setup
        with pytest.raises(ValueError):
            plan_offload(net, mem, report, window=0)

    def test_fully_hidden_when_compute_dominates(self, setup):
        """Tiny nets: compute >= transfers -> no exposed PCIe time, the
        regime production offloading targets."""
        net, mem, report = setup
        plan = plan_offload(net, mem, report, window=2)
        if plan.transfer_time <= plan.compute_time:
            assert plan.exposed_transfer_time == 0.0
            assert plan.slowdown_vs_no_offload == pytest.approx(1.0)


class TestBenchmarkRestriction:
    def test_restricted_keeps_only_families(self, timing_handle):
        from repro.core.benchmarker import benchmark_kernel
        from repro.core.policies import BatchSizePolicy
        from repro.cudnn.enums import AlgoFamily, family_of
        from tests.conftest import make_geometry

        g = make_geometry(n=8)
        bench = benchmark_kernel(timing_handle, g, BatchSizePolicy.POWER_OF_TWO)
        fft_only = bench.restricted({AlgoFamily.FFT, AlgoFamily.FFT_TILING})
        assert fft_only.sizes == bench.sizes
        for size in fft_only.sizes:
            for r in fft_only.results[size]:
                assert family_of(g.conv_type, r.algo) in (
                    AlgoFamily.FFT, AlgoFamily.FFT_TILING
                )
        # Original table untouched.
        assert any(
            family_of(g.conv_type, r.algo) == AlgoFamily.WINOGRAD
            for r in bench.results[8]
        )
