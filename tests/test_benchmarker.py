"""Tests for the micro-batch benchmarking step (and its cache coupling)."""

import pytest

from repro.core.benchmarker import KernelBenchmark, benchmark_kernel
from repro.core.cache import BenchmarkCache
from repro.core.config import MicroConfig
from repro.core.policies import BatchSizePolicy
from repro.cudnn.enums import ConvType, FwdAlgo
from repro.cudnn.perfmodel import PerfResult
from repro.cudnn.status import Status
from tests.conftest import make_geometry


def synth_benchmark(n: int, table: dict[int, list[tuple[float, int]]],
                    policy=BatchSizePolicy.ALL) -> KernelBenchmark:
    """Build a benchmark with an arbitrary synthetic cost table.

    ``table`` maps micro-batch size -> list of (time, workspace) entries;
    algorithms are assigned arbitrarily by position.
    """
    bench = KernelBenchmark(geometry=make_geometry(n=n), policy=policy)
    algos = list(FwdAlgo)
    for size, entries in table.items():
        bench.results[size] = [
            PerfResult(algos[i % len(algos)], Status.SUCCESS, t, ws)
            for i, (t, ws) in enumerate(entries)
        ]
    return bench


class TestMicroOptions:
    def test_dominated_algorithms_pruned(self):
        bench = synth_benchmark(4, {4: [(1.0, 100), (2.0, 200), (0.5, 300)]})
        opts = bench.micro_options(4)
        # (2.0, 200) is dominated by (1.0, 100); the others form the front.
        assert [(o.time, o.workspace) for o in opts] == [(1.0, 100), (0.5, 300)]

    def test_limit_filters(self):
        bench = synth_benchmark(4, {4: [(1.0, 100), (0.5, 300)]})
        opts = bench.micro_options(4, workspace_limit=150)
        assert [(o.time, o.workspace) for o in opts] == [(1.0, 100)]

    def test_tie_keeps_one(self):
        bench = synth_benchmark(2, {2: [(1.0, 100), (1.0, 100)]})
        assert len(bench.micro_options(2)) == 1

    def test_unmeasured_size_empty(self):
        bench = synth_benchmark(4, {4: [(1.0, 0)]})
        assert bench.micro_options(3) == []


class TestFastestMicro:
    def test_ignores_workspace_among_feasible(self):
        bench = synth_benchmark(4, {4: [(1.0, 100), (0.5, 300)]})
        assert bench.fastest_micro(4).time == 0.5
        assert bench.fastest_micro(4, workspace_limit=100).time == 1.0

    def test_none_when_nothing_fits(self):
        bench = synth_benchmark(4, {4: [(1.0, 100)]})
        assert bench.fastest_micro(4, workspace_limit=50) is None

    def test_returns_microconfig(self):
        bench = synth_benchmark(4, {4: [(1.0, 100)]})
        micro = bench.fastest_micro(4)
        assert isinstance(micro, MicroConfig)
        assert micro.micro_batch == 4


class TestBenchmarkKernel:
    def test_measures_policy_sizes(self, timing_handle):
        g = make_geometry(n=8)
        bench = benchmark_kernel(timing_handle, g, BatchSizePolicy.POWER_OF_TWO)
        assert bench.sizes == [1, 2, 4, 8]
        assert all(bench.results[s] for s in bench.sizes)
        assert bench.benchmark_time > 0

    def test_only_successful_results_kept(self, timing_handle):
        g = make_geometry(n=4, stride=2)  # FFT/Winograd unsupported
        bench = benchmark_kernel(timing_handle, g, BatchSizePolicy.UNDIVIDED)
        algos = {r.algo for r in bench.results[4]}
        assert FwdAlgo.FFT not in algos
        assert FwdAlgo.WINOGRAD not in algos
        assert FwdAlgo.IMPLICIT_GEMM in algos

    def test_cache_hits_cost_nothing(self, timing_handle):
        g = make_geometry(n=8)
        cache = BenchmarkCache()
        first = benchmark_kernel(timing_handle, g, BatchSizePolicy.POWER_OF_TWO,
                                 cache=cache)
        assert first.benchmark_time > 0
        second = benchmark_kernel(timing_handle, g, BatchSizePolicy.POWER_OF_TWO,
                                  cache=cache)
        assert second.benchmark_time == 0.0
        assert second.results.keys() == first.results.keys()
        for size in first.results:
            assert [r.time for r in second.results[size]] == \
                [r.time for r in first.results[size]]

    def test_cache_shared_across_policies(self, timing_handle):
        """undivided's single size is a subset of powerOfTwo's -- the cache
        must serve it (paper: replicated shapes skip recomputation)."""
        g = make_geometry(n=8)
        cache = BenchmarkCache()
        benchmark_kernel(timing_handle, g, BatchSizePolicy.POWER_OF_TWO, cache=cache)
        undiv = benchmark_kernel(timing_handle, g, BatchSizePolicy.UNDIVIDED,
                                 cache=cache)
        assert undiv.benchmark_time == 0.0

    def test_resnet_style_shape_reuse(self, timing_handle):
        """Identical geometries (ResNet's replicated blocks) hit the cache."""
        cache = BenchmarkCache()
        g1 = make_geometry(n=8, c=16, k=16, h=14, w=14)
        g2 = make_geometry(n=8, c=16, k=16, h=14, w=14)  # same shape, new obj
        benchmark_kernel(timing_handle, g1, BatchSizePolicy.POWER_OF_TWO, cache=cache)
        reused = benchmark_kernel(timing_handle, g2, BatchSizePolicy.POWER_OF_TWO,
                                  cache=cache)
        assert reused.benchmark_time == 0.0
