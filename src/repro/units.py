"""Byte-size helpers and formatting used throughout the reproduction.

The paper quotes workspace limits in MiB (8, 64, 120, 512, 960, 2544, 5088)
and per-layer memory in KiB/MiB/GiB; all internal accounting in this package
is in plain integer bytes, converted at the edges with these helpers.
"""

from __future__ import annotations

KIB: int = 1024
MIB: int = 1024 * KIB
GIB: int = 1024 * MIB

#: Default per-layer workspace limit of Caffe (8 MiB), see paper section IV.
CAFFE_DEFAULT_WORKSPACE: int = 8 * MIB
#: Default per-layer workspace limit of Caffe2 (64 MiB), see paper section IV.
CAFFE2_DEFAULT_WORKSPACE: int = 64 * MIB

#: Bytes per element for single-precision floats; the whole evaluation uses
#: FP32 NCHW tensors (paper section IV).
FLOAT_SIZE: int = 4
#: Bytes per element for single-precision complex values (FFT workspaces).
COMPLEX_SIZE: int = 8


def kib(n: float) -> int:
    """Return ``n`` KiB as integer bytes (rounded up)."""
    return int(-(-n * KIB // 1))


def mib(n: float) -> int:
    """Return ``n`` MiB as integer bytes (rounded up)."""
    return int(-(-n * MIB // 1))


def gib(n: float) -> int:
    """Return ``n`` GiB as integer bytes (rounded up)."""
    return int(-(-n * GIB // 1))


def format_bytes(n: int) -> str:
    """Human-readable byte count using binary units, e.g. ``'48.9 MiB'``.

    Mirrors the granularity the paper uses when reporting workspace sizes.
    """
    n = int(n)
    sign = "-" if n < 0 else ""
    v = abs(n)
    if v < KIB:
        return f"{sign}{v} B"
    for unit, size in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if v >= size:
            return f"{sign}{v / size:.1f} {unit}"
    raise AssertionError("unreachable")


def format_time(seconds: float) -> str:
    """Human-readable duration: us / ms / s, three significant digits."""
    if seconds < 0:
        return "-" + format_time(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.3g} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3g} ms"
    return f"{seconds:.3g} s"
