"""mu-cuDNN reproduction (CLUSTER 2018).

A full-system reproduction of *"mu-cuDNN: Accelerating Deep Learning
Frameworks with Micro-Batching"* (Oyama, Ben-Nun, Hoefler, Matsuoka):

* :mod:`repro.cudnn`      -- simulated cuDNN substrate (real numpy kernels
  + deterministic analytic performance/workspace models);
* :mod:`repro.core`       -- mu-cuDNN itself: WR dynamic programming, WD
  0-1 ILP with Pareto pruning, caching, micro-batched execution, and the
  transparent ``UcudnnHandle`` wrapper;
* :mod:`repro.frameworks` -- a mini Caffe/TF-like framework + model zoo;
* :mod:`repro.memory`     -- per-layer memory accounting;
* :mod:`repro.parallel`   -- multi-GPU benchmark evaluation;
* :mod:`repro.harness`    -- one experiment per paper figure/table;
* :mod:`repro.telemetry`  -- spans, metrics, and exporters over all of it
  (off by default; see ``telemetry.enable`` / ``telemetry.capture``);
* :mod:`repro.observability` -- decision provenance: per-kernel "why this
  configuration" logs and explain/diff reports (also off by default).

Quickstart::

    from repro.core import UcudnnHandle, Options, BatchSizePolicy
    from repro.frameworks.model_zoo import build_alexnet
    from repro.frameworks import time_net
    from repro.units import MIB

    handle = UcudnnHandle(options=Options(
        policy=BatchSizePolicy.POWER_OF_TWO, workspace_limit=64 * MIB))
    net = build_alexnet(batch=256).setup(handle, workspace_limit=64 * MIB)
    report = time_net(net)

See README.md and DESIGN.md for the full tour.
"""

from repro import (
    core,
    cudnn,
    frameworks,
    harness,
    memory,
    observability,
    parallel,
    telemetry,
    units,
)
from repro.core import BatchSizePolicy, Options, UcudnnHandle
from repro.cudnn import ConvGeometry, ConvType
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "BatchSizePolicy",
    "ConvGeometry",
    "ConvType",
    "Options",
    "ReproError",
    "UcudnnHandle",
    "__version__",
    "core",
    "cudnn",
    "frameworks",
    "harness",
    "memory",
    "observability",
    "parallel",
    "telemetry",
    "units",
]
