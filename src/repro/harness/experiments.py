"""Experiment registry: one entry point per paper figure/table.

Each function reproduces the workload behind one artifact of the paper's
evaluation (section IV) and returns structured rows plus a rendered
:class:`~repro.harness.tables.Table`.  The ``benchmarks/`` tree wraps these
in pytest-benchmark targets and asserts the paper-shape properties listed in
DESIGN.md's per-experiment index.

All experiments run on the simulated clock; GPU names default to the
paper's primary platform (P100-SXM2 / TSUBAME 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    # Runtime import stays lazy (inside serve_plans): repro.service pulls in
    # harness.tables, which would close an import cycle through this module.
    from repro.service import SoakReport

from repro.core import (
    BatchSizePolicy,
    BenchmarkCache,
    Options,
    UcudnnHandle,
    benchmark_kernel,
    desirable_set,
    optimize_network_wd,
    optimize_network_wr,
    prepare_wd_kernels,
    sweep_network_wd,
    sweep_network_wr,
    sweep_wd,
)
from repro.core.config import Configuration
from repro.core.wr import optimize_from_benchmark
from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.device import Gpu, Node
from repro.cudnn.enums import ConvType
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.frameworks import time_net
from repro.frameworks.model_zoo import (
    build_alexnet,
    build_densenet40,
    build_resnet18,
    build_resnet50,
)
from repro.harness.tables import Table, fmt_ms, fmt_ratio
from repro.memory import memory_report
from repro.parallel import benchmark_kernels_parallel
from repro.units import MIB, format_bytes

#: Mini-batch sizes of the paper's evaluation per network.
PAPER_BATCHES = {
    "alexnet": 256,
    "alexnet_v100": 1024,
    "resnet18": 128,
    "resnet50_tf": 64,
    "resnet50_wd": 32,
    "densenet40": 256,
}

#: Per-layer workspace limits swept throughout section IV.
PAPER_WORKSPACES_MIB = (8, 64, 512)


def conv_geometries_of(builder, batch: int, gpu: str = "p100-sxm2",
                       forward_only: bool = False) -> dict[str, ConvGeometry]:
    """Convolution kernel geometries of a zoo network at a batch size."""
    handle = CudnnHandle(gpu=Gpu.create(gpu), mode=ExecMode.TIMING)
    net = builder(batch=batch).setup(handle, workspace_limit=8 * MIB)
    geoms = net.conv_geometries()
    if forward_only:
        geoms = {k: g for k, g in geoms.items() if g.conv_type == ConvType.FORWARD}
    return geoms


def _timed_net(builder, batch: int, gpu: str, workspace_limit: int | None,
               policy: BatchSizePolicy | None, iterations: int = 2,
               total_workspace: int | None = None,
               framework_limit: int | None = "same",
               cache: BenchmarkCache | None = None,
               static_gradients: bool = True,
               transient_workspace: bool = False):
    """Build + time one network configuration.

    ``policy=None`` runs plain cuDNN; otherwise mu-cuDNN with the policy.
    ``framework_limit`` is what the framework passes to the Get calls
    ("same" forwards ``workspace_limit``; ``None`` models TensorFlow, which
    passes nothing -- section IV-B2).
    """
    if policy is None:
        handle = CudnnHandle(gpu=Gpu.create(gpu), mode=ExecMode.TIMING)
    else:
        handle = UcudnnHandle(
            gpu=Gpu.create(gpu),
            mode=ExecMode.TIMING,
            options=Options(
                policy=policy,
                workspace_limit=workspace_limit if workspace_limit is not None else 0,
                total_workspace=total_workspace,
            ),
            cache=cache,
            transient_workspace=transient_workspace,
        )
    fw_limit = workspace_limit if framework_limit == "same" else framework_limit
    net = builder(batch=batch).setup(
        handle, workspace_limit=fw_limit, static_gradients=static_gradients
    )
    report = time_net(net, iterations=iterations)
    return net, handle, report


# ---------------------------------------------------------------------------
# Fig. 1 -- cuDNN fallback cliff ("Best" vs "-1 byte")
# ---------------------------------------------------------------------------


@dataclass
class Fig1Row:
    layer: str
    best_algo: str
    best_time: float
    best_workspace: int
    fallback_algo: str
    fallback_time: float
    penalty: float


@dataclass
class Fig1Result:
    rows: list[Fig1Row]
    table: Table

    @property
    def worst_penalty(self) -> float:
        return max(r.penalty for r in self.rows)


def fig1_best_vs_minus_one_byte(gpu: str = "p100-sxm2", batch: int = 256) -> Fig1Result:
    """Fig. 1: forward convolution of AlexNet layers, unlimited workspace vs
    a limit one byte below the best algorithm's requirement."""
    handle = CudnnHandle(gpu=Gpu.create(gpu), mode=ExecMode.TIMING)
    geoms = conv_geometries_of(build_alexnet, batch, gpu, forward_only=True)
    table = Table(
        f"Fig.1 AlexNet fwd conv on {gpu} (N={batch}): Best vs -1 byte",
        ["layer", "best algo", "best ms", "best ws", "-1B algo", "-1B ms", "penalty"],
    )
    rows = []
    for key in sorted(geoms):
        g = geoms[key]
        layer = key.split(":")[0]
        best = handle.perf.fastest(g)
        limit = max(0, best.workspace - 1)
        fallback = handle.perf.fastest(g, workspace_limit=limit)
        penalty = fallback.time / best.time
        rows.append(
            Fig1Row(layer, best.algo.name, best.time, best.workspace,
                    fallback.algo.name, fallback.time, penalty)
        )
        table.add(layer, best.algo.name, fmt_ms(best.time),
                  format_bytes(best.workspace), fallback.algo.name,
                  fmt_ms(fallback.time), fmt_ratio(penalty))
    return Fig1Result(rows=rows, table=table)


# ---------------------------------------------------------------------------
# Fig. 8 -- desirable configurations (Pareto front) of conv2 forward
# ---------------------------------------------------------------------------


@dataclass
class Fig8Result:
    configurations: list[Configuration]
    table: Table
    workspace_limit: int


def fig8_pareto_front(gpu: str = "p100-sxm2", batch: int = 256,
                      workspace_limit: int = 120 * MIB,
                      policy: BatchSizePolicy = BatchSizePolicy.ALL) -> Fig8Result:
    """Fig. 8: the desirable set of AlexNet conv2 (Forward) under 120 MiB."""
    handle = CudnnHandle(gpu=Gpu.create(gpu), mode=ExecMode.TIMING)
    g = conv_geometries_of(build_alexnet, batch, gpu, forward_only=True)["conv2:Forward"]
    bench = benchmark_kernel(handle, g, policy)
    front = desirable_set(bench, workspace_limit=workspace_limit)
    table = Table(
        f"Fig.8 conv2 Forward desirable set on {gpu} "
        f"(N={batch}, limit {format_bytes(workspace_limit)}, policy {policy.value})",
        ["workspace", "time ms", "micro-batches", "algorithms"],
    )
    for config in front:
        algos = sorted({m.algo.name for m in config})
        table.add(format_bytes(config.workspace), fmt_ms(config.time),
                  str(config.micro_batch_sizes()), "+".join(algos))
    return Fig8Result(configurations=front, table=table, workspace_limit=workspace_limit)


# ---------------------------------------------------------------------------
# Fig. 9 -- conv2 forward under WR, per policy
# ---------------------------------------------------------------------------


@dataclass
class Fig9Row:
    policy: str
    time: float
    workspace: int
    configuration: Configuration


@dataclass
class Fig9Result:
    rows: list[Fig9Row]
    table: Table

    def by_policy(self) -> dict[str, Fig9Row]:
        return {r.policy: r for r in self.rows}


def fig9_conv2_wr(gpu: str = "p100-sxm2", batch: int = 256,
                  workspace_limit: int = 64 * MIB) -> Fig9Result:
    """Fig. 9: WR-optimized conv2 Forward at 64 MiB for the three policies."""
    handle = CudnnHandle(gpu=Gpu.create(gpu), mode=ExecMode.TIMING)
    g = conv_geometries_of(build_alexnet, batch, gpu, forward_only=True)["conv2:Forward"]
    table = Table(
        f"Fig.9 conv2 Forward WR on {gpu} (N={batch}, "
        f"limit {format_bytes(workspace_limit)})",
        ["policy", "time ms", "workspace", "micro-batches", "algorithms"],
    )
    rows = []
    # One cache across the three policies: undivided's single unit and every
    # powerOfTwo unit recur in the later policies' candidate sets, so this
    # skips the duplicate Find calls exactly as section III-D intends.
    cache = BenchmarkCache()
    for policy in (BatchSizePolicy.UNDIVIDED, BatchSizePolicy.POWER_OF_TWO,
                   BatchSizePolicy.ALL):
        plan = optimize_network_wr(
            handle, {"conv2:Forward": g}, workspace_limit, policy, cache=cache
        )
        config = plan.kernels[0].configuration
        rows.append(Fig9Row(policy.value, config.time, config.workspace, config))
        algos = sorted({m.algo.name for m in config})
        table.add(policy.value, fmt_ms(config.time), format_bytes(config.workspace),
                  str(config.micro_batch_sizes()), "+".join(algos))
    return Fig9Result(rows=rows, table=table)


# ---------------------------------------------------------------------------
# Fig. 10 -- Caffe AlexNet on three GPUs x three workspace limits x policies
# ---------------------------------------------------------------------------


@dataclass
class Fig10Row:
    gpu: str
    workspace_mib: int
    policy: str
    total_time: float
    conv_time: float
    other_time: float
    workspace_bytes: int
    benchmark_time: float


@dataclass
class Fig10Result:
    rows: list[Fig10Row]
    table: Table

    def cell(self, gpu: str, workspace_mib: int, policy: str) -> Fig10Row:
        for r in self.rows:
            if (r.gpu, r.workspace_mib, r.policy) == (gpu, workspace_mib, policy):
                return r
        raise KeyError((gpu, workspace_mib, policy))

    def conv_speedup(self, gpu: str, workspace_mib: int, policy: str) -> float:
        base = self.cell(gpu, workspace_mib, "undivided")
        return base.conv_time / self.cell(gpu, workspace_mib, policy).conv_time

    def total_speedup(self, gpu: str, workspace_mib: int, policy: str) -> float:
        base = self.cell(gpu, workspace_mib, "undivided")
        return base.total_time / self.cell(gpu, workspace_mib, policy).total_time


_FIG10_POLICIES = {
    "undivided": BatchSizePolicy.UNDIVIDED,
    "powerOfTwo": BatchSizePolicy.POWER_OF_TWO,
    "all": BatchSizePolicy.ALL,
}


def fig10_alexnet_three_gpus(
    gpus: tuple[str, ...] = ("k80", "p100-sxm2", "v100-sxm2"),
    workspaces_mib: tuple[int, ...] = PAPER_WORKSPACES_MIB,
    policies: tuple[str, ...] = ("undivided", "powerOfTwo", "all"),
    iterations: int = 2,
) -> Fig10Result:
    """Fig. 10: Caffe-driver AlexNet timing breakdowns.

    Mini-batch 256 on K80/P100 and 1024 on V100, as in the paper.
    """
    table = Table(
        "Fig.10 AlexNet fwd+bwd per iteration (Caffe driver)",
        ["gpu", "ws/layer", "policy", "total ms", "conv ms", "other ms",
         "ws used", "opt cost s"],
    )
    rows = []
    for gpu in gpus:
        batch = PAPER_BATCHES["alexnet_v100"] if gpu.startswith("v100") else PAPER_BATCHES["alexnet"]
        for ws_mib in workspaces_mib:
            for policy_name in policies:
                policy = _FIG10_POLICIES[policy_name]
                net, handle, report = _timed_net(
                    build_alexnet, batch, gpu, ws_mib * MIB, policy,
                    iterations=iterations,
                )
                ws_used = handle.total_workspace_bytes()
                rows.append(
                    Fig10Row(gpu, ws_mib, policy_name, report.total,
                             report.conv_total, report.other_total, ws_used,
                             handle.benchmark_time)
                )
                table.add(gpu, f"{ws_mib} MiB", policy_name,
                          fmt_ms(report.total), fmt_ms(report.conv_total),
                          fmt_ms(report.other_total), format_bytes(ws_used),
                          f"{handle.benchmark_time:.2f}")
    return Fig10Result(rows=rows, table=table)


# ---------------------------------------------------------------------------
# Fig. 11 -- TensorFlow driver: AlexNet / ResNet-50 / DenseNet-40 on P100
# ---------------------------------------------------------------------------


@dataclass
class Fig11Row:
    model: str
    workspace_mib: int
    policy: str
    total_time: float
    conv_time: float


@dataclass
class Fig11Result:
    rows: list[Fig11Row]
    table: Table

    def cell(self, model: str, workspace_mib: int, policy: str) -> Fig11Row:
        for r in self.rows:
            if (r.model, r.workspace_mib, r.policy) == (model, workspace_mib, policy):
                return r
        raise KeyError((model, workspace_mib, policy))

    def total_speedup(self, model: str, workspace_mib: int, policy: str) -> float:
        base = self.cell(model, workspace_mib, "undivided")
        return base.total_time / self.cell(model, workspace_mib, policy).total_time


_FIG11_MODELS = {
    "alexnet": (build_alexnet, PAPER_BATCHES["alexnet"]),
    "resnet50": (build_resnet50, PAPER_BATCHES["resnet50_tf"]),
    "densenet40": (build_densenet40, PAPER_BATCHES["densenet40"]),
}


def fig11_tensorflow(
    models: tuple[str, ...] = ("alexnet", "resnet50", "densenet40"),
    workspaces_mib: tuple[int, ...] = PAPER_WORKSPACES_MIB,
    policies: tuple[str, ...] = ("undivided", "powerOfTwo"),
    gpu: str = "p100-sxm2",
    iterations: int = 2,
) -> Fig11Result:
    """Fig. 11: TF-style driver -- the framework passes *no* workspace limit
    to the cuDNN benchmark calls; limits are handed to mu-cuDNN manually
    (section IV-B2)."""
    table = Table(
        f"Fig.11 TensorFlow driver on {gpu} (fwd+bwd per iteration)",
        ["model", "ws/layer", "policy", "total ms", "conv ms"],
    )
    rows = []
    for model in models:
        builder, batch = _FIG11_MODELS[model]
        cache = BenchmarkCache()  # shared across policies, like one TF session
        for ws_mib in workspaces_mib:
            for policy_name in policies:
                policy = _FIG10_POLICIES[policy_name]
                net, handle, report = _timed_net(
                    builder, batch, gpu, ws_mib * MIB, policy,
                    iterations=iterations, framework_limit=None, cache=cache,
                    static_gradients=False,  # TF's buffer-recycling optimizer
                    transient_workspace=True,  # TF's per-op scratch allocator
                )
                rows.append(
                    Fig11Row(model, ws_mib, policy_name, report.total,
                             report.conv_total)
                )
                table.add(model, f"{ws_mib} MiB", policy_name,
                          fmt_ms(report.total), fmt_ms(report.conv_total))
    return Fig11Result(rows=rows, table=table)


# ---------------------------------------------------------------------------
# Fig. 12 -- per-layer memory, cuDNN@512MiB vs mu-cuDNN@64MiB
# ---------------------------------------------------------------------------


@dataclass
class Fig12Model:
    model: str
    cudnn_report: object
    ucudnn_report: object
    cudnn_time: float
    ucudnn_time: float

    @property
    def workspace_reduction(self) -> float:
        base = self.cudnn_report.total_workspace
        ours = self.ucudnn_report.total_workspace
        return base / max(1, ours)

    @property
    def max_layer_reduction(self) -> float:
        """Largest per-layer total-memory reduction (the 3.43x/2.73x)."""
        base = self.cudnn_report.by_name()
        best = 1.0
        for layer in self.ucudnn_report.layers:
            if not layer.is_conv:
                continue
            b = base[layer.name]
            if layer.total > 0:
                best = max(best, b.total / layer.total)
        return best

    @property
    def slowdown(self) -> float:
        return self.ucudnn_time / self.cudnn_time


@dataclass
class Fig12Result:
    models: dict[str, Fig12Model]
    table: Table


def fig12_memory(
    gpu: str = "p100-sxm2",
    cudnn_limit: int = 512 * MIB,
    ucudnn_limit: int = 64 * MIB,
    policy: BatchSizePolicy = BatchSizePolicy.POWER_OF_TWO,
) -> Fig12Result:
    """Fig. 12: per-layer memory of AlexNet (N=256) and ResNet-18 (N=128)."""
    table = Table(
        f"Fig.12 per-layer memory on {gpu}: cuDNN@{format_bytes(cudnn_limit)} "
        f"vs mu-cuDNN@{format_bytes(ucudnn_limit)}",
        ["model", "layer", "cuDNN ws", "mu-cuDNN ws", "cut"],
    )
    models = {}
    for model, builder, batch in (
        ("alexnet", build_alexnet, PAPER_BATCHES["alexnet"]),
        ("resnet18", build_resnet18, PAPER_BATCHES["resnet18"]),
    ):
        net_c, handle_c, report_c = _timed_net(builder, batch, gpu, cudnn_limit, None)
        mem_c = memory_report(net_c)
        net_u, handle_u, report_u = _timed_net(builder, batch, gpu, ucudnn_limit, policy)
        mem_u = memory_report(net_u, handle_u)
        models[model] = Fig12Model(model, mem_c, mem_u, report_c.total, report_u.total)
        base = mem_c.by_name()
        for layer in mem_u.layers:
            if not layer.is_conv:
                continue
            b = base[layer.name]
            cut = b.workspace_bytes / max(1, layer.workspace_bytes)
            table.add(model, layer.name, format_bytes(b.workspace_bytes),
                      format_bytes(layer.workspace_bytes), fmt_ratio(cut))
    return Fig12Result(models=models, table=table)


# ---------------------------------------------------------------------------
# Fig. 13 -- WR vs WD at equal total workspace
# ---------------------------------------------------------------------------


@dataclass
class Fig13Row:
    model: str
    scheme: str
    policy: str
    total_limit: int
    conv_time: float
    workspace_used: int


@dataclass
class Fig13Result:
    rows: list[Fig13Row]
    table: Table

    def cell(self, model: str, scheme: str, total_limit: int, policy: str) -> Fig13Row:
        for r in self.rows:
            if (r.model, r.scheme, r.total_limit, r.policy) == (
                model, scheme, total_limit, policy,
            ):
                return r
        raise KeyError((model, scheme, total_limit, policy))


def fig13_wr_vs_wd(
    gpu: str = "p100-sxm2",
    models: tuple[str, ...] = ("alexnet", "resnet50"),
    per_kernel_mib: tuple[int, ...] = (8, 64),
    policy: BatchSizePolicy = BatchSizePolicy.POWER_OF_TWO,
    wd_solver: str = "ilp",
) -> Fig13Result:
    """Fig. 13: WR and WD compared at identical *total* workspace.

    WR gets ``m`` MiB per kernel; WD gets ``m x num_kernels`` MiB pooled
    (the paper's adjoined bars: 8 MiB/kernel <-> 120 MiB total for AlexNet's
    15 kernels).  Conv-only times, since WR/WD differ only in convolutions.
    """
    builders = {
        "alexnet": (build_alexnet, PAPER_BATCHES["alexnet"]),
        "resnet50": (build_resnet50, PAPER_BATCHES["resnet50_wd"]),
    }
    table = Table(
        f"Fig.13 WR vs WD on {gpu} (conv time per iteration)",
        ["model", "scheme", "policy", "total ws limit", "conv ms", "ws used"],
    )
    rows = []
    for model in models:
        builder, batch = builders[model]
        geoms = conv_geometries_of(builder, batch, gpu)
        handle = CudnnHandle(gpu=Gpu.create(gpu), mode=ExecMode.TIMING)
        cache = BenchmarkCache()
        # All limits of a scheme are solved as one sweep (identical results
        # to the per-limit path; see repro.core.sweep).
        per_limits = [m * MIB for m in per_kernel_mib]
        undiv = sweep_network_wr(handle, geoms, per_limits,
                                 BatchSizePolicy.UNDIVIDED, cache=cache)
        wr = sweep_network_wr(handle, geoms, per_limits, policy, cache=cache)
        totals = [m * MIB * len(geoms) for m in per_kernel_mib]
        _, wd_plans = sweep_network_wd(handle, geoms, totals, policy,
                                       solver=wd_solver, cache=cache)
        for mib_each in per_kernel_mib:
            total = mib_each * MIB * len(geoms)
            for scheme, plan, pol_name in (
                ("wr-undivided", undiv.plan(mib_each * MIB),
                 BatchSizePolicy.UNDIVIDED.value),
                ("wr", wr.plan(mib_each * MIB), policy.value),
                ("wd", wd_plans[total], policy.value),
            ):
                conv_time = plan.total_time
                ws_used = plan.total_workspace
                rows.append(Fig13Row(model, scheme, pol_name, total, conv_time, ws_used))
                table.add(model, scheme, pol_name, format_bytes(total),
                          fmt_ms(conv_time), format_bytes(ws_used))
    return Fig13Result(rows=rows, table=table)


# ---------------------------------------------------------------------------
# Fig. 14 -- WD workspace division of AlexNet at 120 MiB
# ---------------------------------------------------------------------------


@dataclass
class Fig14Result:
    assignments: dict[str, Configuration]
    table: Table
    total_limit: int

    def share_of(self, layer_names: tuple[str, ...]) -> float:
        """Fraction of assigned workspace going to the given conv layers."""
        total = sum(c.workspace for c in self.assignments.values())
        if total == 0:
            return 0.0
        chosen = sum(
            c.workspace
            for key, c in self.assignments.items()
            if key.split(":")[0] in layer_names
        )
        return chosen / total


def fig14_workspace_division(
    gpu: str = "p100-sxm2",
    total_workspace: int = 120 * MIB,
    policy: BatchSizePolicy = BatchSizePolicy.POWER_OF_TWO,
    solver: str = "ilp",
) -> Fig14Result:
    """Fig. 14: how WD divides a 120 MiB pool across AlexNet's 15 kernels."""
    geoms = conv_geometries_of(build_alexnet, PAPER_BATCHES["alexnet"], gpu)
    handle = CudnnHandle(gpu=Gpu.create(gpu), mode=ExecMode.TIMING)
    plan = optimize_network_wd(handle, geoms, total_workspace, policy, solver=solver)
    table = Table(
        f"Fig.14 WD workspace division of AlexNet on {gpu} "
        f"(total {format_bytes(total_workspace)})",
        ["kernel", "workspace", "share %", "time ms", "micro-batches"],
    )
    assignments = {k.name: k.configuration for k in plan.kernels}
    total_ws = sum(c.workspace for c in assignments.values())
    for key in sorted(assignments):
        c = assignments[key]
        share = 100.0 * c.workspace / max(1, total_ws)
        table.add(key, format_bytes(c.workspace), f"{share:.1f}",
                  fmt_ms(c.time), str(c.micro_batch_sizes()))
    return Fig14Result(assignments=assignments, table=table,
                       total_limit=total_workspace)


# ---------------------------------------------------------------------------
# Section IV-B1 text -- optimization cost (all vs powerOfTwo, + parallel)
# ---------------------------------------------------------------------------


@dataclass
class OptCostRow:
    policy: str
    num_gpus: int
    benchmark_time: float
    conv_time: float


@dataclass
class OptCostResult:
    rows: list[OptCostRow]
    table: Table

    def cell(self, policy: str, num_gpus: int) -> OptCostRow:
        for r in self.rows:
            if (r.policy, r.num_gpus) == (policy, num_gpus):
                return r
        raise KeyError((policy, num_gpus))


def tab_optimization_cost(
    gpu: str = "p100-sxm2",
    workspace_limit: int = 64 * MIB,
    node_gpus: int = 4,
) -> OptCostResult:
    """Section IV-B1: time-to-optimize AlexNet -- 34.16 s (all) vs 3.82 s
    (powerOfTwo) in the paper -- plus the parallel evaluation of III-D."""
    geoms = conv_geometries_of(build_alexnet, PAPER_BATCHES["alexnet"], gpu)
    table = Table(
        f"Optimization cost for AlexNet on {gpu} "
        f"(limit {format_bytes(workspace_limit)}/kernel)",
        ["policy", "GPUs", "benchmark s", "optimized conv ms"],
    )
    rows = []
    for policy in (BatchSizePolicy.POWER_OF_TWO, BatchSizePolicy.ALL):
        for num_gpus in (1, node_gpus):
            node = Node(gpu, num_gpus=num_gpus)
            result = benchmark_kernels_parallel(node, geoms, policy)
            conv_time = sum(
                optimize_from_benchmark(b, workspace_limit).time
                for b in result.benchmarks.values()
            )
            rows.append(OptCostRow(policy.value, num_gpus, result.parallel_time, conv_time))
            table.add(policy.value, str(num_gpus), f"{result.parallel_time:.2f}",
                      fmt_ms(conv_time))
    return OptCostResult(rows=rows, table=table)


# ---------------------------------------------------------------------------
# Section IV-D text -- WD ILP problem size and solve time for ResNet-50
# ---------------------------------------------------------------------------


@dataclass
class ILPStatsRow:
    model: str
    total_workspace: int
    solver: str
    num_variables: int
    solve_time: float
    conv_time: float
    #: Variables of the symmetry-reduced (aggregated) instance the sweep
    #: solver actually solved; at most ``num_variables``.
    aggregated_variables: int = 0
    #: Branch-and-bound nodes of that instance (0 for the mckp solver).
    nodes: int = 0


@dataclass
class ILPStatsResult:
    rows: list[ILPStatsRow]
    table: Table


def tab_ilp_stats(
    gpu: str = "p100-sxm2",
    per_kernel_mib: tuple[int, ...] = (8, 32),
    policy: BatchSizePolicy = BatchSizePolicy.POWER_OF_TWO,
    solvers: tuple[str, ...] = ("ilp", "mckp"),
) -> ILPStatsResult:
    """Section IV-D: the WD ILP for ResNet-50 stays small after Pareto
    pruning (paper: 562 binaries at 5088 MiB, 5.46 ms GLPK solve).

    Solved through :func:`repro.core.sweep.sweep_wd`, so the table also
    reports the symmetry-reduced instance size and its branch-and-bound
    node count.  ``num_variables`` remains the per-copy count after Pareto
    pruning (the paper's figure of merit).
    """
    geoms = conv_geometries_of(build_resnet50, PAPER_BATCHES["resnet50_wd"], gpu)
    handle = CudnnHandle(gpu=Gpu.create(gpu), mode=ExecMode.TIMING)
    cache = BenchmarkCache()
    kernels = prepare_wd_kernels(handle, geoms, policy, cache=cache)
    totals = [m * MIB * len(geoms) for m in per_kernel_mib]
    table = Table(
        f"WD ILP statistics, ResNet-50 on {gpu} ({len(geoms)} kernels)",
        ["total ws", "solver", "0-1 vars", "agg vars", "B&B nodes",
         "solve ms", "conv ms"],
    )
    sweeps = {solver: sweep_wd(kernels, totals, solver=solver)
              for solver in solvers}
    rows = []
    for total in totals:
        for solver in solvers:
            result = sweeps[solver].result(total)
            per_copy_vars = sum(len(k.desirable) for k in result.kernels)
            nodes = result.ilp.nodes_explored if result.ilp is not None else 0
            rows.append(
                ILPStatsRow("resnet50", total, solver, per_copy_vars,
                            result.solve_time, result.total_time,
                            aggregated_variables=result.num_variables,
                            nodes=nodes)
            )
            table.add(format_bytes(total), solver, str(per_copy_vars),
                      str(result.num_variables), str(nodes),
                      f"{result.solve_time * 1e3:.2f}",
                      fmt_ms(result.total_time))
    return ILPStatsResult(rows=rows, table=table)


# ---------------------------------------------------------------------------
# Cross-limit sweep cost (this reproduction's solver-level contribution)
# ---------------------------------------------------------------------------


@dataclass
class SweepCostResult:
    """Work accounting of the cross-limit sweep solvers on ResNet-50."""

    table: Table
    limits_per_kernel: list[int] = field(default_factory=list)
    totals: list[int] = field(default_factory=list)
    wr_dp_solves: int = 0
    wr_per_limit_solves: int = 0
    wd_solved: int = 0
    wd_ilp_nodes: int = 0
    wd_warm_started: int = 0
    wd_aggregated_variables: int = 0
    wd_per_copy_variables: int = 0


def tab_sweep_cost(
    gpu: str = "p100-sxm2",
    num_limits: int = 8,
    policy: BatchSizePolicy = BatchSizePolicy.POWER_OF_TWO,
) -> SweepCostResult:
    """How much solver work the cross-limit sweeps avoid on ResNet-50.

    Sweeps a geometric grid of workspace limits and reports the WR DP
    executions actually run vs the one-DP-per-(kernel, limit) baseline, and
    the WD sweep's symmetry-reduced instance sizes, branch-and-bound nodes,
    and warm-started solves.  ``benchmarks/test_perf_sweep.py`` measures the
    full baseline comparison (including cold per-limit WD solves) and
    records it in ``BENCH_sweep.json``.
    """
    geoms = conv_geometries_of(build_resnet50, PAPER_BATCHES["resnet50_wd"], gpu)
    handle = CudnnHandle(gpu=Gpu.create(gpu), mode=ExecMode.TIMING)
    cache = BenchmarkCache()
    k = len(geoms)
    per_kernel = sorted({int(x) for x in np.geomspace(MIB, 64 * MIB, num_limits)})
    totals = sorted({int(x) for x in np.geomspace(k * MIB, k * 64 * MIB, num_limits)})

    wr = sweep_network_wr(handle, geoms, per_kernel, policy, cache=cache)
    kernels = prepare_wd_kernels(handle, geoms, policy, cache=cache)
    wd = sweep_wd(kernels, totals, solver="ilp")

    per_copy_vars = sum(
        sum(len(kr.desirable) for kr in result.kernels)
        for result in wd.results.values()
    )
    agg_vars = sum(result.num_variables for result in wd.results.values())
    table = Table(
        f"Cross-limit sweep cost, ResNet-50 on {gpu} "
        f"({k} kernels, {num_limits} limits)",
        ["scheme", "metric", "sweep", "per-limit", "ratio"],
    )
    wr_baseline = k * len(set(per_kernel))
    table.add("wr", "DP solves", str(wr.dp_solves), str(wr_baseline),
              fmt_ratio(wr_baseline / max(1, wr.dp_solves)))
    table.add("wd", "0-1 variables", str(agg_vars), str(per_copy_vars),
              fmt_ratio(per_copy_vars / max(1, agg_vars)))
    table.add("wd", "B&B nodes", str(wd.ilp_nodes), "-", "-")
    table.add("wd", "warm-started solves", str(wd.warm_started_solves),
              str(len(wd.results)), "-")
    return SweepCostResult(
        table=table,
        limits_per_kernel=per_kernel,
        totals=totals,
        wr_dp_solves=wr.dp_solves,
        wr_per_limit_solves=wr_baseline,
        wd_solved=len(wd.results),
        wd_ilp_nodes=wd.ilp_nodes,
        wd_warm_started=wd.warm_started_solves,
        wd_aggregated_variables=agg_vars,
        wd_per_copy_variables=per_copy_vars,
    )


# ---------------------------------------------------------------------------
# Explain -- decision provenance report (observability tentpole)
# ---------------------------------------------------------------------------


@dataclass
class ExplainResult:
    """Decision provenance of one WD optimization, rendered three ways."""

    report: dict
    table: Table

    def to_json(self) -> str:
        from repro.observability import report as R
        return R.to_json(self.report)

    def to_html(self) -> str:
        from repro.observability import report as R
        return R.render_html(self.report)


def explain_report(
    gpu: str = "p100-sxm2",
    model: str = "alexnet",
    batch: int = 64,
    total_workspace_mib: int = 120,
    policy: BatchSizePolicy = BatchSizePolicy.POWER_OF_TWO,
    solver: str = "ilp",
) -> ExplainResult:
    """Run WD on a small network with provenance enabled and report *why*.

    Captures the full decision log -- per-kernel Pareto fronts, every
    rejected/dominated candidate, the ILP's proof statistics, and the chosen
    configuration -- under a :class:`~repro.telemetry.clock.ManualClock`, so
    the serialized report is byte-deterministic (two runs produce identical
    JSON; the ``--diff`` report of a run against itself is empty).
    """
    import repro.observability as observability
    from repro.observability import report as R
    from repro.telemetry.clock import ManualClock

    builders = {"alexnet": build_alexnet, "resnet18": build_resnet18}
    if model not in builders:
        raise ValueError(f"unknown explain model {model!r}; "
                         f"use one of {sorted(builders)}")
    geoms = conv_geometries_of(builders[model], batch, gpu, forward_only=True)
    handle = CudnnHandle(gpu=Gpu.create(gpu), mode=ExecMode.TIMING)
    with observability.capture(clock=ManualClock()) as recorder:
        optimize_network_wd(
            handle, geoms, total_workspace_mib * MIB,
            policy=policy, solver=solver,
        )
    report = R.build_report(
        recorder,
        model=model, gpu=gpu, batch=batch, policy=policy.value,
        scheme="wd", solver=solver,
        total_workspace_bytes=total_workspace_mib * MIB,
    )
    columns, rows = R.table_rows(report)
    table = Table(
        f"Decision provenance: {model} on {gpu} (WD, "
        f"{total_workspace_mib} MiB pool, {policy.value})",
        columns,
    )
    for row in rows:
        table.add(*row)
    return ExplainResult(report=report, table=table)


# -- plan service ("serve") ----------------------------------------------------


@dataclass
class ServeResult:
    """One deterministic plan-service soak run (report + rendered table)."""

    report: "SoakReport"
    #: Plans restored from ``store_path`` before the run (0 = cold start).
    warm_restored: int = 0
    #: Snapshot file the run saved to ("" when persistence was off).
    store_path: str = ""

    @property
    def table(self) -> Table:
        return self.report.table


def serve_plans(
    soak: bool = False, seed: int = 0, store_path: str | None = None,
    clients: int | None = None, shards: int = 1,
    devices: "tuple[str, ...]" = (), steal_watermark: int = 0,
    tenant_mix: str = "",
) -> ServeResult:
    """Exercise the plan service under a deterministic client population.

    The default parameterization is a quick demo (16 clients, no faults);
    ``soak=True`` runs the CI gate's configuration -- 64 clients for 6
    rounds over AlexNet's kernels with seeded solver faults and stalls plus
    a 1 s deadline, so every degradation rung (cache hit, coalesce, fresh
    solve, timeout fallback, fault fallback) is exercised.  Both run on a
    :class:`~repro.telemetry.clock.ManualClock`: two runs with equal
    arguments produce byte-identical report JSON.

    ``clients`` overrides the population size (``--soak-clients``);
    ``None`` keeps the historical defaults (64 soaking, 16 demo).
    ``shards`` / ``devices`` / ``steal_watermark`` switch the run onto a
    sharded :class:`~repro.cluster.ClusterService` with the same report
    contract (plus per-shard counts); ``tenant_mix`` names the clients by
    tenant (e.g. ``"train:3,infer:1"``).

    ``store_path`` turns on persistence: an existing snapshot there
    warm-starts the service before the run (a rerun of the same
    configuration then needs **zero** solver invocations -- the CI
    ``--expect-warm`` gate), and the final state is saved back atomically.
    Because the snapshot schema is byte-deterministic and the run is
    clock-deterministic, save -> warm-start -> re-save reproduces the file
    byte for byte.  Both delegate to the cluster's merged snapshot /
    routed warm-start when sharding is on.
    """
    from repro.persistence import (
        load_snapshot, save_snapshot, snapshot_service, warm_start,
    )
    from repro.service import RequestLog, SoakConfig, build_service, run_soak

    cluster_knobs = {
        "shards": shards,
        "devices": tuple(devices),
        "steal_watermark": steal_watermark,
        "tenant_mix": tenant_mix,
    }
    if soak:
        # Rates chosen so the seeded schedule exercises *both* fallback
        # rungs (timeout and solver_error) within the run's ~30 solves.
        config = SoakConfig(
            clients=64 if clients is None else clients,
            rounds=6, seed=seed, max_pending=64,
            deadline_s=1.0, fail_rate=0.15, stall_rate=0.12, stall_s=5.0,
            capacity=48, bench_capacity=64, **cluster_knobs,
        )
    else:
        config = SoakConfig(
            clients=16 if clients is None else clients,
            rounds=3, seed=seed, max_pending=64, **cluster_knobs,
        )
    if store_path is None:
        return ServeResult(report=run_soak(config))
    import os

    service = build_service(
        config,
        request_log=RequestLog(capacity=max(1, config.clients * config.rounds)),
    )
    try:
        restored = 0
        if os.path.exists(store_path):
            restored = warm_start(service, load_snapshot(store_path))
        report = run_soak(config, service=service)
        save_snapshot(store_path, snapshot_service(service))
    finally:
        service.close()
    return ServeResult(
        report=report, warm_restored=restored, store_path=store_path
    )


# -- wire client ("client") ----------------------------------------------------


@dataclass
class ClientResult:
    """One out-of-process client session against a running plan server."""

    server: dict
    responses: list = field(default_factory=list)
    wire: dict = field(default_factory=dict)

    @property
    def table(self) -> Table:
        t = Table(
            f"Wire client vs plan server (gpu {self.server.get('gpu', '?')}, "
            f"wire v{self.server.get('v', '?')})",
            ["kernel", "limit", "source", "micro-batches"],
        )
        for response in self.responses:
            t.add(
                response.kernel,
                format_bytes(response.key.workspace_limit),
                response.source,
                "+".join(str(m.micro_batch)
                         for m in response.configuration.micros),
            )
        return t


def client_plans(connect: str, count: int = 8) -> ClientResult:
    """Solve AlexNet plan requests against an out-of-process plan server.

    Connects to ``connect`` (``HOST:PORT``, e.g. from
    ``python -m repro.harness.runner serve --listen ...``), asks the server
    which GPU it serves, and requests plans for the first ``count`` AlexNet
    kernels (workspace limits alternating over the paper's 8/64 MiB) --
    deterministic, so CI can compare the answers against an in-process
    solve of the same requests.
    """
    from repro.service.requests import PlanRequest
    from repro.wire import PlanClient, parse_address

    host, port = parse_address(connect)
    with PlanClient(host, port, timeout_s=60.0) as client:
        server = client.ping()
        geometries = conv_geometries_of(
            build_alexnet, PAPER_BATCHES["alexnet"], str(server["gpu"])
        )
        names = sorted(geometries)[:count]
        responses = [
            client.plan(PlanRequest(
                kernel=name,
                geometry=geometries[name],
                policy=BatchSizePolicy.POWER_OF_TWO,
                workspace_limit=PAPER_WORKSPACES_MIB[index % 2] * MIB,
                client="runner-client",
            ))
            for index, name in enumerate(names)
        ]
        wire = client.stats().get("wire", {})
    return ClientResult(server=server, responses=responses, wire=wire)
