"""Plain-text table/series rendering for the experiment harness.

Every experiment in :mod:`repro.harness.experiments` returns structured rows
plus a :class:`Table` rendering, so the benchmark scripts print the same
rows/series the paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.units import format_bytes, format_time


@dataclass
class Table:
    """A fixed-width text table."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        cells = [[str(v) for v in row] for row in self.rows]
        widths = [
            max([len(c)] + [len(row[i]) for row in cells])
            for i, c in enumerate(self.columns)
        ]
        sep = "-+-".join("-" * w for w in widths)
        out = [self.title, "=" * len(self.title)]
        out.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        out.append(sep)
        for row in cells:
            out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(out)

    def to_csv(self) -> str:
        """RFC-4180-ish CSV of the table (header + rows), for plotting."""
        def esc(value) -> str:
            text = str(value)
            if any(ch in text for ch in ',"\n'):
                text = '"' + text.replace('"', '""') + '"'
            return text

        lines = [",".join(esc(c) for c in self.columns)]
        lines.extend(",".join(esc(v) for v in row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def fmt_ms(seconds: float) -> str:
    """Milliseconds with two decimals (figure-axis granularity)."""
    return f"{seconds * 1e3:.2f}"


def fmt_ratio(x: float) -> str:
    return f"{x:.2f}x"


def bar(value: float, scale: float, width: int = 40) -> str:
    """A crude horizontal bar for series output (stacked-figure analog)."""
    if scale <= 0:
        return ""
    n = int(round(width * value / scale))
    return "#" * max(0, min(width, n))


__all__ = ["Table", "bar", "fmt_ms", "fmt_ratio", "format_bytes", "format_time"]
