"""Command-line experiment runner: ``python -m repro.harness.runner``.

Regenerates paper artifacts outside of pytest, printing the same tables the
benchmark suite asserts on.  Useful for eyeballing a single figure quickly::

    python -m repro.harness.runner fig1 fig9
    python -m repro.harness.runner --list
    python -m repro.harness.runner all            # everything (~1 min)
    python -m repro.harness.runner fig9 --profile /tmp/trace.json --metrics
    python -m repro.harness.runner explain --explain-json out/run.json \\
        --explain-html out/run.html
    python -m repro.harness.runner explain --diff a.json b.json
    python -m repro.harness.runner serve --soak --soak-report out/soak.json
    python -m repro.harness.runner serve --store out/plans.json --expect-warm
    python -m repro.harness.runner serve --listen 127.0.0.1:7070 \\
        --store out/plans.json
    python -m repro.harness.runner serve --soak --shards 4 \\
        --devices p100-sxm2,v100-sxm2 --steal-watermark 4
    python -m repro.harness.runner client --connect 127.0.0.1:7070

``--profile FILE.json`` writes a Chrome-trace (``chrome://tracing`` /
Perfetto) profile of the run; ``--metrics`` prints the telemetry counters
and span aggregates at the end (``--metrics-file`` writes the Prometheus
exposition text instead).  The ``explain`` experiment renders the decision
provenance report; ``--diff A.json B.json`` compares two saved reports and
prints the configuration drift.  The ``serve`` experiment drives the plan
service with a deterministic client population; ``--soak`` scales it to the
CI gate (64 clients, injected faults) and fails the run on any dropped or
errored request, and ``--soak-report`` writes the byte-stable report JSON.
``--store FILE.json`` makes ``serve`` persistent: warm-start from the
snapshot when it exists, save back to it at the end (``--expect-warm``
fails the run unless the warm store answered everything with zero solver
invocations).  ``serve --listen HOST:PORT`` serves the plan service to
out-of-process clients over the wire protocol until SIGINT/SIGTERM; the
``client`` experiment (``--connect HOST:PORT``) is its counterpart.
``--soak-clients N`` sizes the population, ``--tenant-mix train:3,infer:1``
names clients by tenant, and ``--shards N --devices A,B`` runs the soak (or
server) against a sharded multi-device cluster with deterministic placement
and optional work stealing (``--steal-watermark``).
Output-path parent directories are created on demand.  A failing experiment no longer aborts the whole run: its
traceback goes to stderr, the remaining experiments still run, and the exit
status is non-zero.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import traceback

import repro.telemetry as telemetry
from repro.harness import experiments as E
from repro.observability import report as provenance_report
from repro.telemetry import exporters, locks

#: Experiment registry: id -> (callable, description).  Callables take no
#: arguments here (paper-default parameterizations).
REGISTRY = {
    "fig1": (E.fig1_best_vs_minus_one_byte,
             "cuDNN fallback cliff, AlexNet fwd (Best vs -1 byte)"),
    "fig8": (E.fig8_pareto_front,
             "desirable set (Pareto front) of conv2 Forward @120 MiB"),
    "fig9": (E.fig9_conv2_wr,
             "WR on conv2 @64 MiB per batch-size policy"),
    "fig10": (E.fig10_alexnet_three_gpus,
              "Caffe AlexNet on K80/P100/V100 x {8,64,512} MiB"),
    "fig11": (E.fig11_tensorflow,
              "TensorFlow driver: AlexNet/ResNet-50/DenseNet-40"),
    "fig12": (E.fig12_memory,
              "per-layer memory: cuDNN@512 MiB vs mu-cuDNN@64 MiB"),
    "fig13": (E.fig13_wr_vs_wd,
              "WR vs WD at equal total workspace"),
    "fig14": (E.fig14_workspace_division,
              "WD division of AlexNet's 120 MiB pool"),
    "opt-cost": (E.tab_optimization_cost,
                 "optimization cost: all vs powerOfTwo, 1 vs 4 GPUs"),
    "ilp-stats": (E.tab_ilp_stats,
                  "WD ILP size & solve time, ResNet-50"),
    "sweep": (E.tab_sweep_cost,
              "cross-limit sweep cost vs per-limit solvers, ResNet-50"),
    "explain": (E.explain_report,
                "decision provenance: why each kernel got its configuration"),
    "serve": (E.serve_plans,
              "plan service under a deterministic client population"),
    "client": (E.client_plans,
               "wire client against a running plan server (--connect)"),
}

#: Persistence/wire counters surfaced in the per-experiment summary line.
PERSISTENCE_METRICS = (
    "persistence.snapshot.saves", "persistence.snapshot.loads",
    "persistence.warm.keys", "persistence.warm.hits",
    "persistence.merge.keys", "persistence.merge.conflicts",
)

#: Solver-acceleration counters surfaced in the per-experiment summary line
#: (tensor passes, incremental re-solves, and the memo hits behind them).
SOLVER_METRICS = (
    "solver.tensor_passes", "solver.delta_solves",
    "solver.full_solves_avoided", "wr.t1_memo_hits",
)


def _prepare_output(path: str) -> str:
    """Create an output path's parent directory; returns the path.

    Raises :class:`OSError` with the offending directory in the message when
    creation fails (read-only filesystem, permission, a file in the way) --
    callers turn that into a clear CLI error instead of the bare
    ``FileNotFoundError`` that ``open()`` on a missing directory produces.
    """
    parent = os.path.dirname(os.path.abspath(path))
    try:
        os.makedirs(parent, exist_ok=True)
    except OSError as exc:
        raise OSError(
            f"cannot create output directory {parent!r}: {exc}"
        ) from exc
    return path


def _write_output(path: str, content: str, what: str) -> bool:
    """Write ``content`` to ``path`` (creating parents); False on failure."""
    try:
        _prepare_output(path)
        with open(path, "w") as fh:
            fh.write(content)
    except OSError as exc:
        print(f"cannot write {what} {path}: {exc}", file=sys.stderr)
        return False
    print(f"[{what} written to {path}]")
    return True


def _finish_lock_sanitizer(
    monitor: locks.LockMonitor, args: argparse.Namespace
) -> bool:
    """Tear down ``--sanitize-locks``: dump the graph, report violations.

    Returns False when any runtime violation was recorded (lock-order
    inversion, non-reentrant re-acquisition, or blocking work under a lock
    whose level is not blocking-allowed) -- the run must fail even if the
    workload itself succeeded.
    """
    locks.disable_sanitizer()
    ok = True
    if args.lock_graph:
        ok &= _write_output(args.lock_graph, monitor.dump_graph(),
                            "dynamic lock graph")
    violations = monitor.violations()
    for violation in violations:
        print(f"[lock-sanitizer {violation.kind}: {violation.message}]",
              file=sys.stderr)
    if violations:
        print(f"[lock-sanitizer: {len(violations)} violation(s)]",
              file=sys.stderr)
        return False
    graph = monitor.graph()
    print(f"[lock-sanitizer: clean -- {len(graph['levels'])} level(s), "
          f"{len(graph['edges'])} edge(s) observed]")
    return ok


def _run_diff(path_a: str, path_b: str) -> int:
    """``--diff A.json B.json``: print configuration drift between reports."""
    reports = []
    for path in (path_a, path_b):
        try:
            with open(path) as fh:
                reports.append(provenance_report.from_json(fh.read()))
        except (OSError, ValueError) as exc:
            print(f"cannot read report {path}: {exc}", file=sys.stderr)
            return 2
    diff = provenance_report.diff_reports(reports[0], reports[1])
    print(provenance_report.render_diff(diff, path_a, path_b), end="")
    return 0


def _device_list(args: argparse.Namespace) -> "tuple[str, ...]":
    """The cluster device slots from ``--devices`` (empty when unset)."""
    if not getattr(args, "devices", None):
        return ()
    return tuple(d.strip() for d in args.devices.split(",") if d.strip())


def _run_server(args: argparse.Namespace) -> int:
    """``serve --listen HOST:PORT``: serve plans to wire clients until killed.

    SIGINT/SIGTERM stop the server cleanly: the store is flushed to its
    snapshot file (when ``--store`` is set) and the exit status is 0, so
    process supervisors and the CI job can ``kill`` it without losing state.

    ``--shards N`` (optionally with ``--devices``) serves a sharded
    :class:`~repro.cluster.ClusterService` behind the same wire endpoint:
    requests route by their ``shard`` hint (shard id or device name), the
    snapshot file becomes the cluster's merged document, and warm-start
    routes every restored plan to its map-owned shard.
    """
    import signal
    import threading

    from repro.core.cache import BenchmarkCache
    from repro.errors import ReproError
    from repro.persistence import PersistentPlanStore
    from repro.service import PlanService, RequestLog
    from repro.telemetry import ManualClock
    from repro.wire import AdminServer, PlanServer, parse_address

    try:
        host, port = parse_address(args.listen)
    except ReproError as exc:
        print(f"bad --listen address: {exc}", file=sys.stderr)
        return 2
    admin_addr = None
    if args.admin:
        try:
            admin_addr = parse_address(args.admin)
        except ReproError as exc:
            print(f"bad --admin address: {exc}", file=sys.stderr)
            return 2
    # --sim-clock pins the service (and tracer) to a manual clock, so
    # latencies, stage breakdowns, and trace timestamps are pure functions
    # of the request sequence: two identical runs scrape byte-identical
    # /requestz rings, which CI compares with cmp.
    clock = ManualClock() if args.sim_clock else None
    if args.trace:
        telemetry.enable(clock=clock)
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda _sig, _frame: stop.set())
    request_log = RequestLog() if admin_addr is not None else None
    devices = _device_list(args)
    clustered = args.shards > 1 or len(devices) > 1
    store = None
    if clustered:
        from repro.cluster import ClusterService
        from repro.persistence import load_snapshot, warm_start

        slots = devices if devices else (args.gpu,)
        service = ClusterService(
            slots, max(args.shards, len(slots)),
            steal_watermark=args.steal_watermark,
            clock_factory=ManualClock if args.sim_clock else None,
            request_log=request_log, slow_request_s=args.slow_request_s,
        )
        if args.store and os.path.exists(args.store):
            try:
                restored = warm_start(service, load_snapshot(args.store))
            except ReproError as exc:
                print(f"cannot open plan store {args.store}: {exc}",
                      file=sys.stderr)
                service.close()
                return 2
            print(f"[warm-started {restored} plans across "
                  f"{args.shards} shards from {args.store}]")
    else:
        bench = BenchmarkCache()
        if args.store:
            try:
                _prepare_output(args.store)
                store = PersistentPlanStore(args.store, gpu=args.gpu,
                                            bench_cache=bench)
            except (OSError, ReproError) as exc:
                print(f"cannot open plan store {args.store}: {exc}",
                      file=sys.stderr)
                return 2
            if store.loaded_plans:
                print(f"[warm-started {store.loaded_plans} plans "
                      f"(+{store.loaded_bench_rows} bench rows) from "
                      f"{args.store}]")
        service = PlanService(args.gpu, store=store, bench_cache=bench,
                              clock=clock, request_log=request_log,
                              slow_request_s=args.slow_request_s)
    admin = None
    try:
        with PlanServer(service, host, port,
                        snapshot_path=args.store) as server:
            if admin_addr is not None:
                admin = AdminServer(
                    service, wire_stats=server.stats.as_dict,
                    host=admin_addr[0], port=admin_addr[1],
                ).start()
                print(f"[admin endpoints on http://{admin.address} "
                      "(/metrics /healthz /readyz /requestz)]", flush=True)
            print(f"[serving {args.gpu} plans on {server.address}; "
                  "SIGINT/SIGTERM to stop]", flush=True)
            stop.wait()
            if store is not None:
                store.save()
                print(f"[plan store saved to {args.store}]")
            elif clustered and args.store:
                from repro.persistence import save_snapshot, snapshot_service

                save_snapshot(_prepare_output(args.store),
                              snapshot_service(service))
                print(f"[cluster snapshot saved to {args.store}]")
            stats = server.stats.as_dict()
    finally:
        if admin is not None:
            admin.close()
        service.close()
        if args.trace:
            telemetry.disable()
    print(f"[server stopped: {stats['requests']} requests over "
          f"{stats['connections']} connections, {stats['errors']} errors, "
          f"{stats['protocol_errors']} protocol errors, "
          f"{stats['frames_in']}/{stats['frames_out']} frames in/out, "
          f"{stats['bytes_in']}B in / {stats['bytes_out']}B out]")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.runner", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (or 'all'); see --list")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--format", choices=["table", "csv"], default="table",
                        help="output format (csv suits external plotting)")
    parser.add_argument("--profile", metavar="FILE.json", default=None,
                        help="write a Chrome-trace profile of the run")
    parser.add_argument("--metrics", action="store_true",
                        help="print the telemetry metrics/span summary")
    parser.add_argument("--metrics-file", metavar="FILE.prom", default=None,
                        help="write the metrics in Prometheus text format")
    parser.add_argument("--diff", nargs=2, metavar=("A.json", "B.json"),
                        default=None,
                        help="compare two saved explain reports and exit")
    parser.add_argument("--explain-json", metavar="FILE.json", default=None,
                        help="write the explain report as stable JSON")
    parser.add_argument("--explain-html", metavar="FILE.html", default=None,
                        help="write the explain report as self-contained HTML")
    parser.add_argument("--explain-limit-mib", type=int, default=120,
                        metavar="MIB",
                        help="pooled workspace limit for explain (default 120)")
    parser.add_argument("--soak", action="store_true",
                        help="run 'serve' at the CI soak scale (64 clients, "
                             "injected faults) and fail on any dropped or "
                             "errored request")
    parser.add_argument("--soak-clients", type=int, default=None, metavar="N",
                        help="client population for 'serve' (defaults: 64 "
                             "with --soak, 16 without)")
    parser.add_argument("--tenant-mix", default="", metavar="NAME:W,...",
                        help="multi-tenant soak mix, e.g. 'train:3,infer:1'; "
                             "clients cycle through tenants by weight and "
                             "the report adds per-tenant served counts")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="with 'serve': shard the plan service into N "
                             "per-device shards behind the cluster router")
    parser.add_argument("--devices", default=None, metavar="GPU,GPU,...",
                        help="with --shards: comma-separated GPU models the "
                             "shard map stripes over (default: --gpu only)")
    parser.add_argument("--steal-watermark", type=int, default=0, metavar="N",
                        help="with --shards: per-shard solve-queue depth "
                             "past which overflow is stolen by same-device "
                             "shards (0 disables stealing)")
    parser.add_argument("--soak-report", metavar="FILE.json", default=None,
                        help="write the serve/soak report as stable JSON")
    parser.add_argument("--store", metavar="FILE.json", default=None,
                        help="snapshot file for 'serve': warm-start from it "
                             "when present, save back to it at the end")
    parser.add_argument("--expect-warm", action="store_true",
                        help="fail unless 'serve' answered everything from "
                             "the warm-started store (0 solver invocations)")
    parser.add_argument("--listen", metavar="HOST:PORT", default=None,
                        help="with 'serve': expose the service to wire "
                             "clients instead of running the soak driver "
                             "(port 0 picks a free port)")
    parser.add_argument("--connect", metavar="HOST:PORT", default=None,
                        help="plan server address for the 'client' experiment")
    parser.add_argument("--gpu", default="p100-sxm2",
                        help="GPU model served by --listen (default p100-sxm2)")
    parser.add_argument("--admin", metavar="HOST:PORT", default=None,
                        help="with --listen: also serve the HTTP admin "
                             "endpoints (/metrics /healthz /readyz /requestz) "
                             "and attach a request-record ring")
    parser.add_argument("--sim-clock", action="store_true",
                        help="with --listen: run the service on a manual "
                             "clock (deterministic /requestz and traces)")
    parser.add_argument("--trace", action="store_true",
                        help="with --listen: enable telemetry on the server "
                             "so plan requests carry distributed traces")
    parser.add_argument("--slow-request-s", type=float, default=None,
                        metavar="S",
                        help="with --listen: log a structured JSON line for "
                             "every request slower than S seconds")
    parser.add_argument("--sanitize-locks", action="store_true",
                        help="wrap every repro lock in the runtime sanitizer: "
                             "record the dynamic lock-acquisition graph and "
                             "fail on order inversions or blocking work under "
                             "a disallowed lock")
    parser.add_argument("--lock-graph", metavar="FILE.json", default=None,
                        help="with --sanitize-locks: write the dynamic lock "
                             "graph as canonical JSON (CI checks it is a "
                             "subgraph of reprolint's static graph)")
    args = parser.parse_args(argv)

    if args.diff is not None:
        return _run_diff(*args.diff)

    if args.lock_graph and not args.sanitize_locks:
        print("--lock-graph needs --sanitize-locks", file=sys.stderr)
        return 2
    monitor = None
    if args.sanitize_locks:
        # Installed before any service object exists: new_lock() only wraps
        # locks created while the monitor is live.
        monitor = locks.enable_sanitizer()

    if args.listen is not None:
        if args.experiments != ["serve"]:
            print("--listen runs the 'serve' experiment as a server; invoke "
                  "as: serve --listen HOST:PORT [--store FILE.json]",
                  file=sys.stderr)
            return 2
        code = _run_server(args)
        if monitor is not None and not _finish_lock_sanitizer(monitor, args):
            code = code or 1
        return code

    if args.list or not args.experiments:
        width = max(len(k) for k in REGISTRY)
        for key, (_, desc) in REGISTRY.items():
            print(f"{key:<{width}}  {desc}")
        return 0

    wanted = list(REGISTRY) if args.experiments == ["all"] else args.experiments
    unknown = [w for w in wanted if w not in REGISTRY]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; try --list",
              file=sys.stderr)
        return 2

    if "client" in wanted and args.connect is None:
        print("the 'client' experiment needs --connect HOST:PORT",
              file=sys.stderr)
        return 2

    failed: list[str] = []
    explain_result = None
    serve_result = None
    with telemetry.capture() as session:
        metrics = session.metrics
        for key in wanted:
            fn, desc = REGISTRY[key]
            counts0 = {
                name: metrics.value(name, 0)
                for name in ("cache.bench.hits", "cache.bench.misses",
                             "cache.config.hits", "cache.config.misses",
                             "cache.evictions")
                + PERSISTENCE_METRICS + SOLVER_METRICS
            }
            start = time.perf_counter()
            with telemetry.span("experiment", id=key, description=desc) as espan:
                try:
                    if key == "explain":
                        result = fn(
                            total_workspace_mib=args.explain_limit_mib
                        )
                        explain_result = result
                    elif key == "serve":
                        result = fn(soak=args.soak, store_path=args.store,
                                    clients=args.soak_clients,
                                    shards=args.shards,
                                    devices=_device_list(args),
                                    steal_watermark=args.steal_watermark,
                                    tenant_mix=args.tenant_mix)
                        serve_result = result
                    elif key == "client":
                        result = fn(connect=args.connect)
                    else:
                        result = fn()
                except Exception:  # reprolint: disable=ERR001 -- isolation boundary: report the failing experiment, run the rest
                    # Keep going: report the failure, run the rest, and let
                    # the exit status carry the bad news.
                    print(f"[{key}: FAILED]", file=sys.stderr)
                    traceback.print_exc()
                    failed.append(key)
                    espan.set("failed", True)
                    continue
            elapsed = time.perf_counter() - start
            bh, bm, ch, cm, ev = (
                int(metrics.value(name, 0) - counts0[name])
                for name in ("cache.bench.hits", "cache.bench.misses",
                             "cache.config.hits", "cache.config.misses",
                             "cache.evictions")
            )
            if args.format == "csv":
                print(result.table.to_csv())
            else:
                print(result.table.render())
                # Evictions only appear when an LRU bound actually dropped
                # entries; the common unbounded runs keep the familiar line.
                evicted = f", {ev} evicted" if ev else ""
                print(f"[{key}: {elapsed:.1f}s | "
                      f"cache: {bh + ch} hits, {bm + cm} misses "
                      f"(bench {bh}/{bm}, config {ch}/{cm}){evicted}]")
                saves, loads, wkeys, whits, mkeys, mconf = (
                    int(metrics.value(name, 0) - counts0[name])
                    for name in PERSISTENCE_METRICS
                )
                # Persistence is opt-in (--store / merges); the line only
                # appears when the experiment actually touched a snapshot.
                if saves or loads or wkeys or whits or mkeys or mconf:
                    print(f"[{key} persistence: {saves} saved, {loads} "
                          f"loaded, {wkeys} warm keys, {whits} warm hits, "
                          f"{mkeys} merged, {mconf} conflicts]")
                passes, dsolves, avoided, memo = (
                    int(metrics.value(name, 0) - counts0[name])
                    for name in SOLVER_METRICS
                )
                # Solver acceleration is also opt-in (tensor backend or the
                # delta solver); the line only appears when it did work.
                if passes or dsolves or avoided or memo:
                    print(f"[{key} solver: {passes} tensor passes, "
                          f"{dsolves} delta solves, {avoided} full solves "
                          f"avoided, {memo} t1-memo hits]")
                print()
    ok = True
    if explain_result is not None:
        if args.explain_json:
            ok &= _write_output(args.explain_json, explain_result.to_json(),
                                "explain report")
        if args.explain_html:
            ok &= _write_output(args.explain_html, explain_result.to_html(),
                                "explain HTML")
    elif args.explain_json or args.explain_html:
        print("--explain-json/--explain-html need the 'explain' experiment "
              "to have run", file=sys.stderr)
        ok = False
    if serve_result is not None:
        report = serve_result.report
        if args.soak_report:
            ok &= _write_output(args.soak_report, report.to_json(),
                                "soak report")
        if not report.healthy:
            print(f"[serve: UNHEALTHY -- {report.errored} errored, "
                  f"{report.dropped} dropped]", file=sys.stderr)
            ok = False
        if args.expect_warm:
            if report.solver_invocations == 0 and serve_result.warm_restored:
                print(f"[serve: fully warm -- {serve_result.warm_restored} "
                      "restored plans, 0 solver invocations]")
            else:
                print(f"[serve: NOT WARM -- {report.solver_invocations} "
                      f"solver invocations after restoring "
                      f"{serve_result.warm_restored} plans]", file=sys.stderr)
                ok = False
    elif args.soak or args.soak_report or args.expect_warm:
        print("--soak/--soak-report/--expect-warm need the 'serve' "
              "experiment to have run", file=sys.stderr)
        ok = False
    if args.profile:
        try:
            _prepare_output(args.profile)
            exporters.write_chrome_trace(args.profile, session.tracer)
        except OSError as exc:
            print(f"cannot write profile {args.profile}: {exc}", file=sys.stderr)
            return 1
        print(f"[profile written to {args.profile}]")
    if args.metrics:
        print(exporters.summary(session.tracer, session.metrics))
    if args.metrics_file:
        ok &= _write_output(args.metrics_file,
                            exporters.prometheus_text(session.metrics),
                            "metrics")
    if monitor is not None:
        ok &= _finish_lock_sanitizer(monitor, args)
    if not ok:
        return 1
    if failed:
        print(f"[{len(failed)} experiment(s) failed: {', '.join(failed)}]",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
