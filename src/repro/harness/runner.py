"""Command-line experiment runner: ``python -m repro.harness.runner``.

Regenerates paper artifacts outside of pytest, printing the same tables the
benchmark suite asserts on.  Useful for eyeballing a single figure quickly::

    python -m repro.harness.runner fig1 fig9
    python -m repro.harness.runner --list
    python -m repro.harness.runner all            # everything (~1 min)
    python -m repro.harness.runner fig9 --profile /tmp/trace.json --metrics

``--profile FILE.json`` writes a Chrome-trace (``chrome://tracing`` /
Perfetto) profile of the run; ``--metrics`` prints the telemetry counters
and span aggregates at the end.  A failing experiment no longer aborts the
whole run: its traceback goes to stderr, the remaining experiments still
run, and the exit status is non-zero.
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback

import repro.telemetry as telemetry
from repro.harness import experiments as E
from repro.telemetry import exporters

#: Experiment registry: id -> (callable, description).  Callables take no
#: arguments here (paper-default parameterizations).
REGISTRY = {
    "fig1": (E.fig1_best_vs_minus_one_byte,
             "cuDNN fallback cliff, AlexNet fwd (Best vs -1 byte)"),
    "fig8": (E.fig8_pareto_front,
             "desirable set (Pareto front) of conv2 Forward @120 MiB"),
    "fig9": (E.fig9_conv2_wr,
             "WR on conv2 @64 MiB per batch-size policy"),
    "fig10": (E.fig10_alexnet_three_gpus,
              "Caffe AlexNet on K80/P100/V100 x {8,64,512} MiB"),
    "fig11": (E.fig11_tensorflow,
              "TensorFlow driver: AlexNet/ResNet-50/DenseNet-40"),
    "fig12": (E.fig12_memory,
              "per-layer memory: cuDNN@512 MiB vs mu-cuDNN@64 MiB"),
    "fig13": (E.fig13_wr_vs_wd,
              "WR vs WD at equal total workspace"),
    "fig14": (E.fig14_workspace_division,
              "WD division of AlexNet's 120 MiB pool"),
    "opt-cost": (E.tab_optimization_cost,
                 "optimization cost: all vs powerOfTwo, 1 vs 4 GPUs"),
    "ilp-stats": (E.tab_ilp_stats,
                  "WD ILP size & solve time, ResNet-50"),
    "sweep": (E.tab_sweep_cost,
              "cross-limit sweep cost vs per-limit solvers, ResNet-50"),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.runner", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (or 'all'); see --list")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--format", choices=["table", "csv"], default="table",
                        help="output format (csv suits external plotting)")
    parser.add_argument("--profile", metavar="FILE.json", default=None,
                        help="write a Chrome-trace profile of the run")
    parser.add_argument("--metrics", action="store_true",
                        help="print the telemetry metrics/span summary")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        width = max(len(k) for k in REGISTRY)
        for key, (_, desc) in REGISTRY.items():
            print(f"{key:<{width}}  {desc}")
        return 0

    wanted = list(REGISTRY) if args.experiments == ["all"] else args.experiments
    unknown = [w for w in wanted if w not in REGISTRY]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; try --list",
              file=sys.stderr)
        return 2

    failed: list[str] = []
    with telemetry.capture() as session:
        metrics = session.metrics
        for key in wanted:
            fn, desc = REGISTRY[key]
            counts0 = {
                name: metrics.value(name, 0)
                for name in ("cache.bench.hits", "cache.bench.misses",
                             "cache.config.hits", "cache.config.misses")
            }
            start = time.perf_counter()
            with telemetry.span("experiment", id=key, description=desc) as espan:
                try:
                    result = fn()
                except Exception:
                    # Keep going: report the failure, run the rest, and let
                    # the exit status carry the bad news.
                    print(f"[{key}: FAILED]", file=sys.stderr)
                    traceback.print_exc()
                    failed.append(key)
                    espan.set("failed", True)
                    continue
            elapsed = time.perf_counter() - start
            bh, bm, ch, cm = (
                int(metrics.value(name, 0) - counts0[name])
                for name in ("cache.bench.hits", "cache.bench.misses",
                             "cache.config.hits", "cache.config.misses")
            )
            if args.format == "csv":
                print(result.table.to_csv())
            else:
                print(result.table.render())
                print(f"[{key}: {elapsed:.1f}s | "
                      f"cache: {bh + ch} hits, {bm + cm} misses "
                      f"(bench {bh}/{bm}, config {ch}/{cm})]\n")
    if args.profile:
        try:
            exporters.write_chrome_trace(args.profile, session.tracer)
        except OSError as exc:
            print(f"cannot write profile {args.profile}: {exc}", file=sys.stderr)
            return 1
        print(f"[profile written to {args.profile}]")
    if args.metrics:
        print(exporters.summary(session.tracer, session.metrics))
    if failed:
        print(f"[{len(failed)} experiment(s) failed: {', '.join(failed)}]",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
