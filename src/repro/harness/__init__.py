"""Experiment harness: one entry point per paper figure/table."""

from repro.harness.experiments import (
    fig1_best_vs_minus_one_byte,
    fig8_pareto_front,
    fig9_conv2_wr,
    fig10_alexnet_three_gpus,
    fig11_tensorflow,
    fig12_memory,
    fig13_wr_vs_wd,
    fig14_workspace_division,
    tab_ilp_stats,
    tab_optimization_cost,
)
from repro.harness.tables import Table

__all__ = [
    "Table",
    "fig1_best_vs_minus_one_byte",
    "fig8_pareto_front",
    "fig9_conv2_wr",
    "fig10_alexnet_three_gpus",
    "fig11_tensorflow",
    "fig12_memory",
    "fig13_wr_vs_wd",
    "fig14_workspace_division",
    "tab_ilp_stats",
    "tab_optimization_cost",
]
