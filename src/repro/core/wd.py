"""WD (Workspace Division) optimization -- the paper's section III-C.

One workspace pool of ``M_total`` bytes serves the whole network; WD decides
how to divide it among kernels by choosing one configuration per kernel:

    minimize   sum_i  time(i, c_i)
    subject to sum_i  workspace(i, c_i) <= M_total

i.e. the 0-1 ILP of Equations 1-4, with one binary per (kernel,
configuration) pair, one pick-exactly-one equality row per kernel, and the
single pooled-workspace inequality row.  Candidate configurations per kernel
are pruned to the kernel's *desirable set* (Pareto front) first -- the
section III-C1 theorem guarantees this drops no optimal solution, and it is
what makes the ILP practical (hundreds of binaries rather than exponential).

Two independent exact solvers are offered: the branch-and-bound ILP
(:mod:`repro.core.ilp`, the GLPK stand-in) and the Pareto-merge MCKP solver
(:mod:`repro.core.mckp`); tests assert they agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

import repro.observability as observability
import repro.telemetry as telemetry
from repro.core.benchmarker import KernelBenchmark, benchmark_kernel
from repro.core.config import Configuration
from repro.core.ilp import ILPSolution, ZeroOneProblem, solve_branch_and_bound
from repro.core.mckp import MCKPItem, solve_mckp
from repro.core.pareto import desirable_set
from repro.core.policies import BatchSizePolicy
from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.handle import CudnnHandle
from repro.errors import InfeasibleError, SolverError
from repro.telemetry.clock import Clock, WallClock
from repro.units import MIB

if TYPE_CHECKING:
    from repro.core.cache import BenchmarkCache

#: Injected time source for ``solve_time`` diagnostics (never in results);
#: swap for a ManualClock to make solver reports byte-reproducible.
_CLOCK: Clock = WallClock()


@dataclass
class WDKernel:
    """One kernel entering the WD optimization."""

    key: str
    geometry: ConvGeometry
    benchmark: KernelBenchmark
    desirable: list[Configuration]


@dataclass
class WDResult:
    """Outcome of a WD optimization over a set of kernels."""

    assignments: dict[str, Configuration]
    total_workspace_limit: int
    kernels: list[WDKernel] = field(repr=False, default_factory=list)
    #: Number of 0-1 variables after Pareto pruning (paper: 562 for
    #: ResNet-50 at 5088 MiB).
    num_variables: int = 0
    solver: str = "ilp"
    solve_time: float = 0.0
    ilp: ILPSolution | None = None
    benchmark_time: float = 0.0

    @property
    def total_time(self) -> float:
        return sum(c.time for c in self.assignments.values())

    @property
    def total_workspace(self) -> int:
        return sum(c.workspace for c in self.assignments.values())


def _build_problem(kernels: list[WDKernel], total_workspace: int):
    """Flatten (kernel, configuration) pairs into ILP arrays."""
    costs: list[float] = []
    weights: list[float] = []
    owner: list[int] = []
    configs: list[Configuration] = []
    for ki, kernel in enumerate(kernels):
        if not kernel.desirable:
            raise InfeasibleError(
                f"kernel {kernel.key} has no feasible configuration under "
                f"{total_workspace} bytes"
            )
        for config in kernel.desirable:
            costs.append(config.time)
            # Scale bytes to MiB for LP conditioning; exactness is preserved
            # because feasibility is re-checked in exact byte arithmetic below.
            weights.append(config.workspace / MIB)
            owner.append(ki)
            configs.append(config)
    n = len(costs)
    a_eq = np.zeros((len(kernels), n))
    for var, ki in enumerate(owner):
        a_eq[ki, var] = 1.0
    problem = ZeroOneProblem(
        costs=np.asarray(costs),
        a_ub=np.asarray(weights)[None, :],
        b_ub=np.asarray([total_workspace / MIB]),
        a_eq=a_eq,
        b_eq=np.ones(len(kernels)),
    )
    return problem, owner, configs


def symmetry_class_key(kernel: WDKernel) -> tuple:
    """Identity under which two WD kernels are interchangeable.

    Kernels with the same geometry (ResNet's replicated blocks) have the
    same benchmark table; together with an identical desirable set their
    configurations can be permuted in any solution without changing cost or
    workspace.
    """
    return (kernel.geometry.cache_key(), tuple(kernel.desirable))


def canonicalize_symmetric(
    kernels: list[WDKernel], assignments: dict[str, Configuration]
) -> dict[str, Configuration]:
    """Permute assignments within symmetry classes into canonical order.

    Interchangeable kernels make the WD optimum a multiset choice: *which*
    copy gets *which* configuration is arbitrary, and branch-and-bound
    search order would otherwise leak into the output.  Within each class
    the chosen configurations are redistributed to the member kernels (in
    input order) sorted by ascending workspace -- total time and workspace
    are untouched, and both the per-limit solvers and the sweep solver
    (:mod:`repro.core.sweep`, which solves the symmetry-reduced aggregated
    ILP) produce the same canonical form.
    """
    classes: dict[tuple, list[str]] = {}
    for kernel in kernels:
        classes.setdefault(symmetry_class_key(kernel), []).append(kernel.key)
    for keys in classes.values():
        if len(keys) < 2:
            continue
        chosen = sorted(
            (assignments[k] for k in keys),
            key=lambda c: (c.workspace, c.time),
        )
        for key, config in zip(keys, chosen):
            assignments[key] = config
    return assignments


def _warm_vector(
    kernels: list[WDKernel],
    owner: list[int],
    configs: list[Configuration],
    num_variables: int,
    warm_start: dict[str, Configuration],
) -> np.ndarray | None:
    """Map a per-kernel configuration dict onto the flattened 0-1 variables.

    Returns ``None`` when any kernel's warm configuration is missing from its
    desirable set (e.g. the previous limit pruned differently) -- the solve
    then proceeds cold, which is always correct.
    """
    x = np.zeros(num_variables)
    picked = [False] * len(kernels)
    for var, (ki, config) in enumerate(zip(owner, configs)):
        if not picked[ki] and config == warm_start.get(kernels[ki].key):
            x[var] = 1.0
            picked[ki] = True
    return x if all(picked) else None


def solve_from_kernels(
    kernels: list[WDKernel],
    total_workspace: int,
    solver: str = "ilp",
    warm_start: dict[str, Configuration] | None = None,
) -> WDResult:
    """Run the WD assignment over prepared kernels (benchmarks + fronts).

    ``warm_start`` optionally maps kernel keys to known-good configurations
    (typically the previous limit's optimum in a sweep); it seeds the ILP's
    branch-and-bound incumbent and is ignored by the ``mckp`` solver.
    """
    rec = observability.recorder()
    pid = -1
    if rec:
        # Opened before the solve so the nested solver.ilp / solver.mckp
        # provenance events attach to this WD pass.
        pid = rec.begin_pass(
            "wd", kernels=len(kernels), solver=solver,
            total_workspace=total_workspace,
        )
    with telemetry.span(
        "optimize.wd", solver=solver, kernels=len(kernels),
        total_workspace=total_workspace,
    ) as tspan:
        result = _solve_from_kernels(kernels, total_workspace, solver,
                                     warm_start=warm_start)
        tspan.set("variables", result.num_variables)
        tspan.set("time", result.total_time)
        tspan.set("workspace", result.total_workspace)
        # Equations 1-4: one pick-exactly-one row per kernel plus the single
        # pooled-workspace inequality row.
        telemetry.gauge("wd.ilp.variables", result.num_variables,
                        help="0-1 variables after Pareto pruning")
        telemetry.gauge("wd.ilp.rows", len(kernels) + 1,
                        help="WD constraint rows (kernels + workspace pool)")
        telemetry.count("wd.solves", help="WD optimizations performed")
    if rec:
        for kernel in kernels:
            config = result.assignments[kernel.key]
            rec.record(
                "chosen", kernel=kernel.key,
                front_index=kernel.desirable.index(config),
                front_size=len(kernel.desirable),
                total_workspace=total_workspace,
                **observability.configuration_detail(config),
            )
        rec.end_pass(
            pid, solver=solver, variables=result.num_variables,
            time=result.total_time, workspace=result.total_workspace,
        )
    return result


def _solve_from_kernels(
    kernels: list[WDKernel],
    total_workspace: int,
    solver: str = "ilp",
    warm_start: dict[str, Configuration] | None = None,
) -> WDResult:
    start = _CLOCK.now()
    if solver == "ilp":
        problem, owner, configs = _build_problem(kernels, total_workspace)
        x0 = None
        if warm_start is not None:
            x0 = _warm_vector(kernels, owner, configs,
                              problem.num_variables, warm_start)
        solution = solve_branch_and_bound(problem, warm_start=x0)
        assignments: dict[str, Configuration] = {}
        for var in solution.selected():
            assignments[kernels[owner[var]].key] = configs[var]
        ilp = solution
        num_vars = problem.num_variables
    elif solver == "mckp":
        groups = [
            [
                MCKPItem(cost=c.time, weight=c.workspace, index=ci)
                for ci, c in enumerate(kernel.desirable)
            ]
            for kernel in kernels
        ]
        try:
            sol = solve_mckp(groups, total_workspace)
        except SolverError as exc:
            raise InfeasibleError(str(exc)) from exc
        assignments = {
            kernel.key: kernel.desirable[choice]
            for kernel, choice in zip(kernels, sol.selection)
        }
        ilp = None
        num_vars = sum(len(k.desirable) for k in kernels)
    else:
        raise SolverError(f"unknown WD solver {solver!r}; use 'ilp' or 'mckp'")

    canonicalize_symmetric(kernels, assignments)
    result = WDResult(
        assignments=assignments,
        total_workspace_limit=total_workspace,
        kernels=kernels,
        num_variables=num_vars,
        solver=solver,
        solve_time=_CLOCK.now() - start,
        ilp=ilp,
        benchmark_time=sum(k.benchmark.benchmark_time for k in kernels),
    )
    if len(result.assignments) != len(kernels):
        raise SolverError("WD solver failed to assign every kernel")
    if result.total_workspace > total_workspace:
        raise InfeasibleError(
            f"WD solution uses {result.total_workspace} bytes > "
            f"limit {total_workspace}"
        )
    return result


def optimize(
    handle: CudnnHandle,
    geometries: dict[str, ConvGeometry],
    total_workspace: int,
    policy: BatchSizePolicy = BatchSizePolicy.POWER_OF_TWO,
    solver: str = "ilp",
    cache: BenchmarkCache | None = None,
    max_front: int | None = None,
) -> WDResult:
    """Benchmark, prune and solve WD for a whole network.

    ``geometries`` maps a stable kernel key (e.g. ``"conv2:Forward"``) to its
    geometry at the full mini-batch size.
    """
    kernels: list[WDKernel] = []
    for key, geometry in geometries.items():
        bench = benchmark_kernel(handle, geometry, policy, cache=cache)
        front = desirable_set(bench, workspace_limit=total_workspace,
                              max_front=max_front, kernel=key)
        kernels.append(
            WDKernel(key=key, geometry=geometry, benchmark=bench, desirable=front)
        )
    return solve_from_kernels(kernels, total_workspace, solver=solver)
