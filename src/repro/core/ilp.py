"""A from-scratch 0-1 Integer Linear Program solver.

The paper solves WD with GLPK; offline we provide our own exact solver:
branch-and-bound with best-first node selection, most-fractional branching,
and a greedy rounding pass to seed the incumbent.  An exhaustive solver is
included for cross-checking on small instances.

The solver handles the general form::

    minimize    c . x
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                x in {0, 1}^n

which covers the WD formulation (Equation 1-4): one equality row per kernel
("pick exactly one configuration") and a single inequality row (the shared
workspace pool).

Node bounds come from one of two LP relaxations of identical tightness:

* **generic** -- scipy's HiGHS ``linprog`` (any instance shape);
* **MCKP-specialized** -- when the instance is recognized as a
  multiple-choice knapsack (the WD shape), the LP optimum is computed
  combinatorially via the classic convex-hull / greedy-upgrade relaxation
  (Sinha & Zoltners): per group, only the lower-left convex hull of
  (weight, cost) points can appear in an LP optimum; starting from each
  group's min-weight hull point, hull arcs are taken in decreasing
  cost-per-byte efficiency until the capacity is spent, the last arc
  possibly fractionally.  This bound costs microseconds instead of a
  simplex solve, which is what lets the pure-Python branch-and-bound prove
  optimality on ResNet-50-sized WD instances in milliseconds -- the
  performance class the paper observes with GLPK (5.46 ms for 562
  binaries).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog

import repro.observability as observability
import repro.telemetry as telemetry
from repro.errors import SolverError
from repro.telemetry.clock import Clock, WallClock

#: Injected time source for ``solve_time`` diagnostics (never in results);
#: swap for a ManualClock to make solver reports byte-reproducible.
_CLOCK: Clock = WallClock()

#: Integrality tolerance: LP values this close to 0/1 count as integral.
_INT_TOL = 1e-6
#: Constraint-feasibility tolerance for candidate integral solutions.
_FEAS_TOL = 1e-6


@dataclass(frozen=True)
class ZeroOneProblem:
    """A 0-1 ILP instance (all arrays are dense numpy)."""

    costs: np.ndarray
    a_ub: np.ndarray | None = None
    b_ub: np.ndarray | None = None
    a_eq: np.ndarray | None = None
    b_eq: np.ndarray | None = None

    def __post_init__(self):
        n = self.num_variables
        if n == 0:
            raise SolverError("problem has no variables")
        for name in ("a_ub", "a_eq"):
            mat = getattr(self, name)
            if mat is not None and mat.shape[1] != n:
                raise SolverError(f"{name} has {mat.shape[1]} columns, expected {n}")
        if (self.a_ub is None) != (self.b_ub is None):
            raise SolverError("a_ub and b_ub must be provided together")
        if (self.a_eq is None) != (self.b_eq is None):
            raise SolverError("a_eq and b_eq must be provided together")

    @property
    def num_variables(self) -> int:
        return int(np.asarray(self.costs).shape[0])

    def is_feasible(self, x: np.ndarray) -> bool:
        if self.a_ub is not None and np.any(self.a_ub @ x > self.b_ub + _FEAS_TOL):
            return False
        if self.a_eq is not None and np.any(
            np.abs(self.a_eq @ x - self.b_eq) > _FEAS_TOL
        ):
            return False
        return True

    def objective(self, x: np.ndarray) -> float:
        return float(self.costs @ x)


@dataclass
class ILPSolution:
    """Result of an ILP solve."""

    x: np.ndarray
    objective: float
    optimal: bool
    nodes_explored: int = 0
    lp_calls: int = 0
    solve_time: float = 0.0
    num_variables: int = 0
    #: Variables eliminated by root reduced-cost fixing against a warm
    #: incumbent (:func:`_reduced_cost_fix`); 0 on cold solves.
    fixed_variables: int = 0

    def selected(self) -> list[int]:
        """Indices of variables set to 1."""
        return [int(i) for i in np.flatnonzero(self.x > 0.5)]


def _solve_lp(problem: ZeroOneProblem, lower: np.ndarray, upper: np.ndarray):
    """LP relaxation with variable bounds [lower, upper]; None if infeasible."""
    res = linprog(
        problem.costs,
        A_ub=problem.a_ub,
        b_ub=problem.b_ub,
        A_eq=problem.a_eq,
        b_eq=problem.b_eq,
        bounds=list(zip(lower, upper)),
        method="highs",
    )
    if not res.success:
        return None
    return res


@dataclass(order=True)
class _Node:
    bound: float
    seq: int
    lower: np.ndarray = field(compare=False)
    upper: np.ndarray = field(compare=False)
    branch_var: int = field(compare=False)


@dataclass(frozen=True)
class _MckpShape:
    """Recognized multiple-choice-knapsack structure of a 0-1 ILP."""

    groups: list[np.ndarray]  # variable indices per pick-exactly-one group
    weights: np.ndarray
    capacity: float


def _detect_mckp(problem: ZeroOneProblem) -> _MckpShape | None:
    """Return the MCKP structure if the instance has the WD shape."""
    if problem.a_eq is None or problem.a_ub is None or problem.a_ub.shape[0] != 1:
        return None
    a_eq = problem.a_eq
    if not np.all((a_eq == 0) | (a_eq == 1)) or not np.all(problem.b_eq == 1):
        return None
    if not np.all(a_eq.sum(axis=0) == 1):  # every var in exactly one group
        return None
    if np.any(problem.a_ub[0] < 0):
        return None  # hull relaxation assumes non-negative weights
    return _MckpShape(
        groups=[np.flatnonzero(a_eq[row]) for row in range(a_eq.shape[0])],
        weights=problem.a_ub[0],
        capacity=float(problem.b_ub[0]),
    )


def _group_hull(costs, weights, variables) -> list[int]:
    """Lower-left convex hull of a group's (weight, cost) points.

    Only hull vertices can carry weight in an LP optimum of the MCKP
    relaxation; returned ordered by increasing weight / decreasing cost.
    """
    order = sorted(variables, key=lambda v: (weights[v], costs[v]))
    # Staircase: strictly decreasing cost as weight increases.
    stairs: list[int] = []
    for v in order:
        if not stairs or costs[v] < costs[stairs[-1]] - 1e-15:
            stairs.append(v)
    # Convexify: efficiencies (cost drop per unit weight) must decrease.
    hull: list[int] = []
    for v in stairs:
        while len(hull) >= 2:
            a, b = hull[-2], hull[-1]
            eff_ab = (costs[a] - costs[b]) / max(weights[b] - weights[a], 1e-30)
            eff_bv = (costs[b] - costs[v]) / max(weights[v] - weights[b], 1e-30)
            if eff_bv >= eff_ab - 1e-15:
                hull.pop()
            else:
                break
        hull.append(v)
    return hull


class _MckpRelaxation:
    """Incremental MCKP LP bounds for branch-and-bound nodes.

    Root hulls, per-group base points, and the globally sorted arc list are
    computed once; a node is described by its path of variable fixings, so
    only the touched ("dirty") groups are re-hulled, and the greedy upgrade
    scan merges the static clean-arc stream with the few dirty arcs.  The
    scan stops as soon as the capacity is spent, so tight instances -- the
    expensive case for the generic LP -- are the *cheap* case here.
    """

    def __init__(self, problem: ZeroOneProblem, shape: _MckpShape):
        self.problem = problem
        self.shape = shape
        costs, weights = problem.costs, shape.weights
        self.var_group = np.empty(problem.num_variables, dtype=np.int64)
        for gi, group in enumerate(shape.groups):
            self.var_group[group] = gi
        self.root_hulls = [
            _group_hull(costs, weights, [int(v) for v in group])
            for group in shape.groups
        ]
        self.base_c = np.array([costs[h[0]] for h in self.root_hulls])
        self.base_w = np.array([weights[h[0]] for h in self.root_hulls])
        self.total_base_cost = float(self.base_c.sum())
        self.total_base_weight = float(self.base_w.sum())
        self.root_arcs = self._arcs_of(
            range(len(shape.groups)), self.root_hulls
        )

    def _arcs_of(self, group_ids, hulls):
        costs, weights = self.problem.costs, self.shape.weights
        arcs = []
        for gi in group_ids:
            hull = hulls[gi] if isinstance(hulls, list) else hulls[gi]
            for pos in range(1, len(hull)):
                a, b = hull[pos - 1], hull[pos]
                dw = weights[b] - weights[a]
                dc = costs[a] - costs[b]
                arcs.append((dc / max(dw, 1e-30), gi, pos, dw, dc))
        arcs.sort(key=lambda t: -t[0])
        return arcs

    def bound(self, fixed: tuple):
        """LP bound for the node whose decisions are ``fixed``.

        ``fixed`` is a tuple of (var, value) pairs.  Returns
        ``(bound, choice_or_None, branch_var_or_None)`` as
        the solver's ``evaluate`` contract requires.
        """
        problem, shape = self.problem, self.shape
        costs, weights = problem.costs, shape.weights
        excluded: dict[int, set] = {}
        forced: dict[int, int] = {}
        for var, value in fixed:
            gi = int(self.var_group[var])
            if value == 0.0:
                excluded.setdefault(gi, set()).add(var)
            else:
                if gi in forced and forced[gi] != var:
                    return math.inf, None, None
                forced[gi] = var
        dirty = set(excluded) | set(forced)

        dirty_hulls: dict[int, list[int]] = {}
        base_cost = self.total_base_cost
        base_weight = self.total_base_weight
        for gi in dirty:
            if gi in forced:
                var = forced[gi]
                if var in excluded.get(gi, ()):
                    return math.inf, None, None
                hull = [var]
            else:
                admissible = [
                    int(v) for v in shape.groups[gi]
                    if int(v) not in excluded.get(gi, ())
                ]
                if not admissible:
                    return math.inf, None, None
                hull = _group_hull(costs, weights, admissible)
            dirty_hulls[gi] = hull
            base_cost += costs[hull[0]] - self.base_c[gi]
            base_weight += weights[hull[0]] - self.base_w[gi]

        remaining = shape.capacity - base_weight
        if remaining < -_FEAS_TOL:
            return math.inf, None, None

        dirty_arcs = self._arcs_of(sorted(dirty_hulls), dirty_hulls) \
            if dirty_hulls else []

        # Merge the static clean-arc stream with the dirty arcs, both sorted
        # by decreasing efficiency; stop once the capacity is spent.
        position: dict[int, int] = {}
        bound = base_cost
        branch_var = None
        ri, di = 0, 0
        root_arcs = self.root_arcs
        while True:
            # Advance past clean arcs belonging to dirty groups.
            while ri < len(root_arcs) and root_arcs[ri][1] in dirty:
                ri += 1
            if ri < len(root_arcs) and (
                di >= len(dirty_arcs) or root_arcs[ri][0] >= dirty_arcs[di][0]
            ):
                arc = root_arcs[ri]
                ri += 1
            elif di < len(dirty_arcs):
                arc = dirty_arcs[di]
                di += 1
            else:
                break
            eff, gi, pos, dw, dc = arc
            if dw <= remaining + 1e-12:
                remaining -= dw
                bound -= dc
                position[gi] = pos
            else:
                frac = max(0.0, remaining / dw)
                bound -= frac * dc
                if frac > _INT_TOL:
                    hull = dirty_hulls.get(gi, self.root_hulls[gi])
                    branch_var = hull[pos]
                break
        if branch_var is not None:
            return bound, None, branch_var
        choice = []
        for gi in range(len(shape.groups)):
            hull = dirty_hulls.get(gi, self.root_hulls[gi])
            choice.append(hull[position.get(gi, 0)])
        return bound, choice, None


def _mckp_lp_bound(problem: ZeroOneProblem, shape: _MckpShape,
                   lower: np.ndarray, upper: np.ndarray):
    """Exact LP-relaxation optimum for an MCKP node, combinatorially.

    Returns ``(bound, choice, branch_var)``:
    ``choice`` is the integral per-group selection when the LP optimum is
    integral (else ``None``); ``branch_var`` is the upgrade item of the
    single fractional arc (else ``None``).  ``bound`` is ``inf`` when the
    node is infeasible.
    """
    costs, weights = problem.costs, shape.weights
    hulls: list[list[int]] = []
    for group in shape.groups:
        forced = [int(v) for v in group if lower[v] > 0.5]
        if len(forced) > 1:
            return math.inf, None, None
        if forced:
            hulls.append(forced)
            continue
        admissible = [int(v) for v in group if upper[v] > 0.5]
        if not admissible:
            return math.inf, None, None
        hulls.append(_group_hull(costs, weights, admissible))

    base_cost = sum(costs[h[0]] for h in hulls)
    base_weight = sum(weights[h[0]] for h in hulls)
    remaining = shape.capacity - base_weight
    if remaining < -_FEAS_TOL:
        return math.inf, None, None

    arcs = []  # (efficiency, group index, hull position of the upgrade)
    for gi, hull in enumerate(hulls):
        for pos in range(1, len(hull)):
            a, b = hull[pos - 1], hull[pos]
            dw = weights[b] - weights[a]
            dc = costs[a] - costs[b]
            arcs.append((dc / max(dw, 1e-30), gi, pos, dw, dc))
    arcs.sort(key=lambda t: -t[0])

    position = [0] * len(hulls)
    bound = base_cost
    branch_var = None
    for eff, gi, pos, dw, dc in arcs:
        if dw <= remaining + 1e-12:
            remaining -= dw
            bound -= dc
            position[gi] = pos
        else:
            frac = max(0.0, remaining / dw)
            bound -= frac * dc
            if frac > _INT_TOL:
                branch_var = hulls[gi][pos]
            remaining = 0.0
            break
    if branch_var is not None:
        return bound, None, branch_var
    choice = [hulls[gi][position[gi]] for gi in range(len(hulls))]
    return bound, choice, None


def _greedy_incumbent(problem: ZeroOneProblem) -> np.ndarray | None:
    """Heuristic feasible point for WD-shaped instances.

    Start from the min-weight item per group (most likely to be feasible),
    then greedily apply the single swap with the best cost reduction that
    stays feasible, until no swap helps.  Returns ``None`` when the instance
    is not MCKP-shaped or no feasible start is found -- the branch-and-bound
    works regardless, just with less pruning.
    """
    shape = _detect_mckp(problem)
    if shape is None:
        return None
    weights = shape.weights
    capacity = shape.capacity
    groups = shape.groups

    choice = [int(g[np.argmin(weights[g])]) for g in groups]
    if sum(weights[c] for c in choice) > capacity + _FEAS_TOL:
        return None
    improved = True
    while improved:
        improved = False
        used = sum(weights[c] for c in choice)
        best_gain, best_swap = 1e-12, None
        for gi, group in enumerate(groups):
            cur = choice[gi]
            for var in group:
                if var == cur:
                    continue
                if used - weights[cur] + weights[var] > capacity + _FEAS_TOL:
                    continue
                gain = problem.costs[cur] - problem.costs[var]
                if gain > best_gain:
                    best_gain, best_swap = gain, (gi, int(var))
        if best_swap is not None:
            choice[best_swap[0]] = best_swap[1]
            improved = True
    x = np.zeros(problem.num_variables)
    x[choice] = 1.0
    return x if problem.is_feasible(x) else None


class _Incumbent:
    """Best integral feasible solution found so far."""

    def __init__(self, problem: ZeroOneProblem):
        self.problem = problem
        self.x: np.ndarray | None = None
        self.objective = math.inf

    def consider(self, x: np.ndarray) -> None:
        xr = np.round(x)
        if self.problem.is_feasible(xr):
            obj = self.problem.objective(xr)
            if obj < self.objective - 1e-12:
                self.objective = obj
                self.x = xr

    def consider_choice(self, choice: list[int]) -> None:
        x = np.zeros(self.problem.num_variables)
        x[choice] = 1.0
        self.consider(x)


def _seed_warm_start(incumbent: _Incumbent, warm_start: np.ndarray | None) -> None:
    """Feed a caller-provided feasible point into the incumbent.

    Counted separately from the greedy seed: a warm start that survives as
    the initial cutoff is what lets limit sweeps prune most of the tree.
    """
    if warm_start is None:
        return
    telemetry.count("ilp.warm_starts", help="warm-start vectors offered")
    before = incumbent.objective
    incumbent.consider(np.asarray(warm_start, dtype=float))
    if incumbent.objective < before - 1e-12:
        telemetry.count("ilp.warm_start_hits",
                        help="warm starts that tightened the initial incumbent")


def _reduced_cost_fix(problem: ZeroOneProblem, shape: _MckpShape,
                      relax: _MckpRelaxation, cutoff: float):
    """Root-level reduced-cost variable fixing under a known cutoff.

    For every item, the forced-in relaxation bound ``bound((item, 1))`` is a
    lower bound on any solution containing that item; when it cannot strictly
    beat ``cutoff`` the item is removed from its group.  Only solutions with
    objective ``>= cutoff - tol`` are discarded, so with ``cutoff`` set to a
    feasible incumbent's objective the optimum below the cutoff is preserved
    exactly.  Removing items shrinks the group hulls, which *raises* every
    node bound and collapses most of the optimality-proof tree -- this is how
    a warm start actually saves branch-and-bound nodes (an incumbent alone
    cannot prune nodes whose bounds sit strictly below the optimum).

    Iterates to a fixpoint (tighter hulls can expose further removals).
    Returns ``(shape, relax, removed, bound_calls, emptied)``; ``emptied``
    means some group lost every item, i.e. nothing can strictly beat the
    cutoff and the incumbent is already optimal.
    """
    removed = 0
    bound_calls = 0
    while True:
        removed_this_pass = 0
        kept_groups: list[np.ndarray] = []
        for group in shape.groups:
            kept = []
            for v in group:
                bound, _, _ = relax.bound(((int(v), 1.0),))
                bound_calls += 1
                if bound < cutoff - 1e-12:
                    kept.append(int(v))
                else:
                    removed_this_pass += 1
            if not kept:
                return shape, relax, removed + removed_this_pass, \
                    bound_calls, True
            kept_groups.append(np.asarray(kept, dtype=np.int64))
        removed += removed_this_pass
        if removed_this_pass == 0:
            return shape, relax, removed, bound_calls, False
        shape = _MckpShape(groups=kept_groups, weights=shape.weights,
                           capacity=shape.capacity)
        relax = _MckpRelaxation(problem, shape)


def _solve_bnb_mckp(problem: ZeroOneProblem, shape: _MckpShape,
                    max_nodes: int, start: float,
                    warm_start: np.ndarray | None = None) -> ILPSolution:
    """Branch-and-bound with the incremental combinatorial MCKP bound."""
    relax = _MckpRelaxation(problem, shape)
    incumbent = _Incumbent(problem)
    greedy = _greedy_incumbent(problem)
    if greedy is not None:
        incumbent.consider(greedy)
    _seed_warm_start(incumbent, warm_start)

    lp_calls = 1
    fixed_vars = 0
    if warm_start is not None and incumbent.x is not None:
        # Warm-started solves (limit sweeps) pay a linear number of root
        # bound evaluations to fix variables against the incumbent cutoff;
        # cold solves keep the seed behaviour bit-for-bit.
        shape, relax, fixed_vars, bound_calls, emptied = _reduced_cost_fix(
            problem, shape, relax, incumbent.objective
        )
        lp_calls += bound_calls
        if fixed_vars:
            telemetry.count("ilp.fixed_vars", fixed_vars,
                            help="variables fixed to 0 by reduced-cost "
                                 "bounds against the warm incumbent")
        if emptied:
            # No assignment can strictly beat the incumbent: it is optimal.
            return ILPSolution(
                x=incumbent.x,
                objective=incumbent.objective,
                optimal=True,
                nodes_explored=0,
                lp_calls=lp_calls,
                solve_time=_CLOCK.now() - start,
                num_variables=problem.num_variables,
                fixed_variables=fixed_vars,
            )
    nodes = 0
    bound, choice, branch_var = relax.bound(())
    if math.isinf(bound):
        raise SolverError("ILP is infeasible (LP relaxation has no solution)")
    seq = itertools.count()
    heap: list[tuple] = []  # (bound, seq, fixed decisions, branch var)
    if choice is not None:
        incumbent.consider_choice(choice)
    else:
        heap.append((bound, next(seq), (), branch_var))

    while heap:
        bound, _, fixed, branch_var = heapq.heappop(heap)
        if bound >= incumbent.objective - 1e-12:
            continue
        nodes += 1
        if nodes > max_nodes:
            raise SolverError(f"branch-and-bound exceeded {max_nodes} nodes")
        for value in (1.0, 0.0):
            child_fixed = fixed + ((branch_var, value),)
            child_bound, child_choice, child_branch = relax.bound(child_fixed)
            lp_calls += 1
            if math.isinf(child_bound):
                continue
            if child_choice is not None:
                incumbent.consider_choice(child_choice)
            elif child_bound < incumbent.objective - 1e-12:
                heapq.heappush(
                    heap, (child_bound, next(seq), child_fixed, child_branch)
                )

    if incumbent.x is None:
        raise SolverError("ILP has no integral feasible solution")
    return ILPSolution(
        x=incumbent.x,
        objective=incumbent.objective,
        optimal=True,
        nodes_explored=nodes,
        lp_calls=lp_calls,
        solve_time=_CLOCK.now() - start,
        num_variables=problem.num_variables,
        fixed_variables=fixed_vars,
    )


def _solve_bnb_generic(problem: ZeroOneProblem, max_nodes: int,
                       start: float,
                       warm_start: np.ndarray | None = None) -> ILPSolution:
    """Branch-and-bound over scipy's HiGHS LP relaxation (any shape)."""
    n = problem.num_variables
    lp_calls = 0
    nodes = 0
    incumbent = _Incumbent(problem)
    _seed_warm_start(incumbent, warm_start)

    def evaluate(lower, upper):
        nonlocal lp_calls
        lp_calls += 1
        res = _solve_lp(problem, lower, upper)
        if res is None:
            return math.inf, None, None
        frac = np.abs(res.x - np.round(res.x))
        branch_var = int(np.argmax(frac))
        if frac[branch_var] <= _INT_TOL:
            return res.fun, res.x, None
        incumbent.consider(res.x)  # rounding heuristic
        return res.fun, None, branch_var

    root_lo = np.zeros(n)
    root_hi = np.ones(n)
    bound, x_int, branch_var = evaluate(root_lo, root_hi)
    if math.isinf(bound):
        raise SolverError("ILP is infeasible (LP relaxation has no solution)")

    seq = itertools.count()
    heap: list[_Node] = []
    if x_int is not None:
        incumbent.consider(x_int)
    else:
        heapq.heappush(heap, _Node(bound, next(seq), root_lo, root_hi, branch_var))

    while heap:
        node = heapq.heappop(heap)
        if node.bound >= incumbent.objective - 1e-12:
            continue
        nodes += 1
        if nodes > max_nodes:
            raise SolverError(f"branch-and-bound exceeded {max_nodes} nodes")
        for value in (1.0, 0.0):
            lo = node.lower.copy()
            hi = node.upper.copy()
            lo[node.branch_var] = hi[node.branch_var] = value
            child_bound, child_x, child_branch = evaluate(lo, hi)
            if math.isinf(child_bound):
                continue
            if child_x is not None:
                incumbent.consider(child_x)
            elif child_bound < incumbent.objective - 1e-12:
                heapq.heappush(
                    heap, _Node(child_bound, next(seq), lo, hi, child_branch)
                )

    if incumbent.x is None:
        raise SolverError("ILP has no integral feasible solution")
    return ILPSolution(
        x=incumbent.x,
        objective=incumbent.objective,
        optimal=True,
        nodes_explored=nodes,
        lp_calls=lp_calls,
        solve_time=_CLOCK.now() - start,
        num_variables=n,
    )


def solve_branch_and_bound(
    problem: ZeroOneProblem,
    max_nodes: int = 200_000,
    warm_start: np.ndarray | None = None,
) -> ILPSolution:
    """Exact best-first branch-and-bound.

    Dispatches to the incremental combinatorial MCKP relaxation when the
    instance has the WD shape, and to scipy's HiGHS LP otherwise (see the
    module docstring for why both bounds are equally tight).

    ``warm_start`` is an optional 0-1 vector seeding the incumbent (after
    the greedy seed, replacing it only on strict improvement -- preserving
    the cold solve's deterministic tie-breaking).  Beyond the usual cutoff
    pruning, a warm incumbent enables root reduced-cost variable fixing on
    MCKP-shaped instances (see :func:`_reduced_cost_fix`), which is how
    limit sweeps (:mod:`repro.core.sweep`) shrink the tree itself.
    """
    start = _CLOCK.now()
    shape = _detect_mckp(problem)
    with telemetry.span(
        "ilp.solve",
        variables=problem.num_variables,
        relaxation="mckp" if shape is not None else "highs",
        warm_start=warm_start is not None,
    ) as tspan:
        if shape is not None:
            solution = _solve_bnb_mckp(problem, shape, max_nodes, start,
                                       warm_start=warm_start)
        else:
            solution = _solve_bnb_generic(problem, max_nodes, start,
                                          warm_start=warm_start)
        tspan.set("objective", solution.objective)
        tspan.set("nodes", solution.nodes_explored)
        telemetry.count("ilp.nodes_explored", solution.nodes_explored,
                        help="branch-and-bound nodes expanded")
        telemetry.count("ilp.lp_calls", solution.lp_calls,
                        help="LP relaxation bounds computed")
    rec = observability.recorder()
    if rec:
        if solution.fixed_variables:
            rec.record(
                "candidate.fixed.reduced_cost",
                variables=solution.fixed_variables,
                cutoff=solution.objective,
            )
        rec.record(
            "solver.ilp",
            variables=problem.num_variables,
            relaxation="mckp" if shape is not None else "highs",
            warm_start=warm_start is not None,
            objective=solution.objective,
            nodes_explored=solution.nodes_explored,
            lp_calls=solution.lp_calls,
            fixed_variables=solution.fixed_variables,
            optimal=solution.optimal,
        )
    return solution


def solve_exhaustive(problem: ZeroOneProblem) -> ILPSolution:
    """Enumerate all 2^n assignments (testing aid; n <= ~20)."""
    start = _CLOCK.now()
    n = problem.num_variables
    if n > 24:
        raise SolverError(f"exhaustive solve refused for n={n} > 24")
    best_x = None
    best_obj = math.inf
    for bits in itertools.product((0.0, 1.0), repeat=n):
        x = np.array(bits)
        if problem.is_feasible(x):
            obj = problem.objective(x)
            if obj < best_obj:
                best_obj = obj
                best_x = x
    if best_x is None:
        raise SolverError("ILP has no integral feasible solution")
    return ILPSolution(
        x=best_x,
        objective=best_obj,
        optimal=True,
        solve_time=_CLOCK.now() - start,
        num_variables=n,
    )
