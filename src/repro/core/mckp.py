"""Exact Multiple-Choice Knapsack solver by Pareto-front merging.

WD's ILP (Equations 1-4) is a Multiple-Choice Knapsack Problem: one item
(configuration) must be chosen per group (kernel), weights (workspaces) add,
and total weight is capped.  Independent of the branch-and-bound ILP solver,
this module solves it exactly by merging group fronts:

    front(G1 x G2) = pareto( { (t1+t2, w1+w2) } )

applied left-to-right over all groups; the optimum under any cap ``W`` is
the cheapest merged point with weight <= W.  Pruning dominated partial
combinations is safe for the same monotone-composition reason as in
:mod:`repro.core.pareto` (both aggregates are sums here).

This is the same dominance idea the paper uses to prune configurations per
kernel, lifted to the cross-kernel level; it serves as a second exact WD
solver for cross-checking the ILP and as a fast path for chain networks.
Worst-case front size is the product of group sizes, but after per-group
Pareto pruning real networks stay small (hundreds of points for ResNet-50).
"""

from __future__ import annotations

from dataclasses import dataclass

import repro.observability as observability
import repro.telemetry as telemetry
from repro.errors import SolverError
from repro.telemetry.clock import Clock, WallClock

#: Injected time source for ``solve_time`` diagnostics (never in results);
#: swap for a ManualClock to make solver reports byte-reproducible.
_CLOCK: Clock = WallClock()


@dataclass(frozen=True)
class MCKPItem:
    """One choice: (cost=time, weight=workspace, payload index)."""

    cost: float
    weight: int
    index: int


@dataclass
class MCKPSolution:
    """Chosen item index per group, plus totals."""

    selection: list[int]
    cost: float
    weight: int
    solve_time: float
    front_peak: int  # largest intermediate front (complexity diagnostics)


def _front(points: list[tuple[float, int, tuple[int, ...]]]):
    """Pareto front over (cost, weight) pairs, keeping selection payloads."""
    points.sort(key=lambda p: (p[1], p[0]))
    out = []
    best_cost = float("inf")
    for cost, weight, sel in points:
        if cost < best_cost:
            out.append((cost, weight, sel))
            best_cost = cost
    return out


def solve_mckp(
    groups: list[list[MCKPItem]],
    capacity: int,
    max_front: int = 2_000_000,
    backend: str = "auto",
) -> MCKPSolution:
    """Pick one item per group minimizing cost with total weight <= capacity.

    ``backend`` selects the merge implementation: ``"serial"`` is the
    Python reference loop below, ``"tensor"`` the vectorized pass of
    :mod:`repro.core.tensor_solve`, and ``"auto"`` (default) the tensor
    pass.  The two are bit-identical -- same selections, costs, weights,
    ``front_peak``, and error messages -- so the choice is purely a speed
    knob (property-tested in :mod:`tests.test_tensor_solve`).
    """
    if backend not in ("auto", "tensor", "serial"):
        raise SolverError(
            f"unknown MCKP backend {backend!r}; use 'auto', 'tensor', or "
            f"'serial'"
        )
    with telemetry.span(
        "mckp.solve", groups=len(groups), capacity=capacity, backend=backend
    ) as tspan:
        if backend == "serial":
            solution = _solve_mckp(groups, capacity, max_front)
        else:
            # Local import: tensor_solve imports this module's types.
            from repro.core.tensor_solve import solve_mckp_tensor

            solution = solve_mckp_tensor(groups, capacity, max_front, _CLOCK)
        tspan.set("front_peak", solution.front_peak)
        tspan.set("cost", solution.cost)
    rec = observability.recorder()
    if rec:
        rec.record(
            "solver.mckp",
            groups=len(groups),
            items=sum(len(g) for g in groups),
            capacity=capacity,
            front_peak=solution.front_peak,
            cost=solution.cost,
            weight=solution.weight,
        )
    return solution


def _solve_mckp(
    groups: list[list[MCKPItem]],
    capacity: int,
    max_front: int,
) -> MCKPSolution:
    start = _CLOCK.now()
    if not groups:
        raise SolverError("MCKP needs at least one group")
    for gi, group in enumerate(groups):
        if not group:
            raise SolverError(f"MCKP group {gi} is empty")

    merged: list[tuple[float, int, tuple[int, ...]]] = [(0.0, 0, ())]
    peak = 1
    for group in groups:
        candidates = [
            (cost + item.cost, weight + item.weight, sel + (item.index,))
            for cost, weight, sel in merged
            for item in group
            if weight + item.weight <= capacity  # early capacity pruning
        ]
        if not candidates:
            raise SolverError(
                f"no item combination fits capacity {capacity} "
                f"(infeasible after {len(merged)}-point front)"
            )
        merged = _front(candidates)
        peak = max(peak, len(merged))
        if len(merged) > max_front:
            raise SolverError(
                f"MCKP front exploded to {len(merged)} points; "
                "use the branch-and-bound ILP solver instead"
            )

    best = min(merged, key=lambda p: p[0])
    return MCKPSolution(
        selection=list(best[2]),
        cost=best[0],
        weight=best[1],
        solve_time=_CLOCK.now() - start,
        front_peak=peak,
    )
