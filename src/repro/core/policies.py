"""Batch-size policies (paper section III-D).

The policy determines which micro-batch sizes the WR benchmarking step
measures:

* ``all``        -- every size ``1..N``; optimal but costs ``O(N)`` benchmark
  invocations per kernel.
* ``powerOfTwo`` -- sizes ``1, 2, 4, ..., 2^floor(log2 N)`` plus ``N`` itself;
  ``O(log N)`` cost, near-optimal in practice (paper: 3.82 s vs 34.16 s for
  AlexNet at nearly identical quality).
* ``undivided``  -- only ``N``: equivalent to plain cuDNN, used to measure
  mu-cuDNN's overhead.

Policies are selectable programmatically or through the
``UCUDNN_BATCH_SIZE_POLICY`` environment variable (see
:mod:`repro.core.options`).
"""

from __future__ import annotations

import enum


class BatchSizePolicy(enum.Enum):
    """Which micro-batch sizes the benchmarking step evaluates."""

    ALL = "all"
    POWER_OF_TWO = "powerOfTwo"
    UNDIVIDED = "undivided"

    @classmethod
    def parse(cls, name: str) -> "BatchSizePolicy":
        """Parse the paper's spelling (``all``/``powerOfTwo``/``undivided``),
        case-insensitively."""
        lowered = name.strip().lower()
        for policy in cls:
            if policy.value.lower() == lowered:
                return policy
        raise ValueError(
            f"unknown batch size policy {name!r}; "
            f"expected one of {[p.value for p in cls]}"
        )


def candidate_sizes(policy: BatchSizePolicy, batch: int) -> list[int]:
    """Micro-batch sizes to benchmark for a mini-batch of ``batch``.

    Always includes ``batch`` itself (the undivided option must stay
    available so the optimizer can never do worse than plain cuDNN).
    Returned ascending and duplicate-free.
    """
    if batch <= 0:
        raise ValueError(f"batch must be positive, got {batch}")
    if policy == BatchSizePolicy.UNDIVIDED:
        return [batch]
    if policy == BatchSizePolicy.POWER_OF_TWO:
        sizes = set()
        p = 1
        while p <= batch:
            sizes.add(p)
            p *= 2
        sizes.add(batch)
        return sorted(sizes)
    if policy == BatchSizePolicy.ALL:
        return list(range(1, batch + 1))
    raise AssertionError(f"unhandled policy {policy}")
