"""Desirable configuration sets -- the Pareto pruning of section III-C1.

The WD optimizer must consider, for every kernel, not just the fastest
configuration under one limit (as WR does) but every configuration that
could be worth picking under *some* share of the global workspace pool.  The
paper defines this as the Pareto front in (execution time x workspace) space
and proves that pruning everything else never removes the ILP optimum:
configurations off the front are dominated, and substituting the dominating
configuration into any ILP solution only improves it.

The front is computed by a modified WR dynamic program whose states are
*sets* of undominated configurations:

    D(0) = { [] }
    D(i) = prune( union over measured m <= i, micro options o at m of
                  { c ⊕ o : c in D(i - m) } )

Pruning intermediate states is safe because both aggregates compose
monotonically: time is a sum and workspace a max of the parts, so a
dominated prefix can only produce dominated completions.

The practical payoff the paper reports: AlexNet kernels keep at most ~68
desirable configurations, versus the ``O(|A|^(B/2))`` full space.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from typing import TypeVar

import numpy as np

import repro.observability as observability
import repro.telemetry as telemetry
from repro.core.benchmarker import KernelBenchmark
from repro.core.config import Configuration, MicroConfig
from repro.errors import OptimizationError

T = TypeVar("T")


def pareto_front(
    items: Iterable[T],
    time_of: Callable[[T], float],
    workspace_of: Callable[[T], float],
) -> list[T]:
    """Undominated subset of ``items`` in (time, workspace) space.

    Weak dominance: ``a`` dominates ``b`` when it is no worse in both
    coordinates and strictly better in at least one.  Of exact ties, the
    first item encountered is kept.  Output is sorted by ascending
    workspace (descending time), the paper's Fig. 8 presentation order.
    """
    ordered = sorted(items, key=lambda it: (workspace_of(it), time_of(it)))
    front: list[T] = []
    best_time = float("inf")
    for item in ordered:
        # Sorted by (ws, time): an item survives iff it strictly beats the
        # best time seen at any smaller-or-equal workspace.
        if time_of(item) < best_time:
            front.append(item)
            best_time = time_of(item)
    return front


def configuration_front(configs: Iterable[Configuration]) -> list[Configuration]:
    """:func:`pareto_front` specialized to configurations."""
    return pareto_front(configs, lambda c: c.time, lambda c: c.workspace)


def _array_front(times: "np.ndarray", wss: "np.ndarray"):
    """Indices of the Pareto-undominated points (vectorized).

    Sort by (workspace, time); a point survives iff its time strictly beats
    every time at smaller-or-equal workspace, i.e. the running minimum.
    """
    order = np.lexsort((times, wss))
    t_sorted = times[order]
    cummin = np.minimum.accumulate(t_sorted)
    keep = np.empty(len(order), dtype=bool)
    keep[0] = True
    keep[1:] = t_sorted[1:] < cummin[:-1]
    return order[keep]


def desirable_set(
    benchmark: KernelBenchmark,
    workspace_limit: int | None = None,
    max_front: int | None = None,
    kernel: str | None = None,
) -> list[Configuration]:
    """All desirable (Pareto-undominated) configurations of one kernel.

    See :func:`_desirable_set` below for the DP itself; this wrapper adds
    the telemetry span and the front-size histogram (the paper's "at most
    ~68 desirable configurations" claim, checkable from any profiled run).
    ``kernel`` optionally names the kernel in provenance events (network
    optimizers pass their stable layer key, e.g. ``"conv2:Forward"``);
    defaults to the geometry cache key.
    """
    with telemetry.span(
        "optimize.pareto",
        kernel=benchmark.geometry.cache_key(),
        policy=benchmark.policy.value,
    ) as tspan:
        front = _desirable_set(benchmark, workspace_limit, max_front)
        tspan.set("front_size", len(front))
        telemetry.observe(
            "pareto.front_size", len(front),
            help="desirable-set sizes per kernel",
            buckets=telemetry.metrics.SIZE_BUCKETS,
        )
    rec = observability.recorder()
    if rec:
        _record_pareto_provenance(rec, benchmark, workspace_limit, front, kernel)
    return front


def _record_pareto_provenance(
    rec, benchmark, workspace_limit, front, kernel=None
) -> None:
    """Post-hoc decision log for one desirable-set pass (provenance on only).

    Replays the per-size first-level pruning against the already-memoized
    benchmark queries to name each rejected algorithm's fate, then records
    the configuration-level front itself.
    """
    key = kernel or benchmark.geometry.cache_key()
    pid = rec.begin_pass(
        "pareto", kernel=key, policy=benchmark.policy.value,
        workspace_limit=workspace_limit,
    )
    for size in benchmark.sizes:
        options = benchmark.micro_options(size, workspace_limit)
        admitted = {(o.algo, o.time, o.workspace) for o in options}
        for res in benchmark.results[size]:
            if (res.algo, res.time, res.workspace) in admitted:
                continue
            if workspace_limit is not None and res.workspace > workspace_limit:
                rec.record(
                    "candidate.rejected.workspace", kernel=key,
                    micro_batch=size, algo=res.algo.name,
                    workspace=res.workspace, workspace_limit=workspace_limit,
                )
                continue
            dominator = next(
                (o for o in options
                 if o.time <= res.time and o.workspace <= res.workspace),
                None,
            )
            rec.record(
                "candidate.dominated", kernel=key,
                micro_batch=size, algo=res.algo.name,
                time=res.time, workspace=res.workspace,
                dominated_by=dominator.algo.name if dominator else None,
                dominated_by_time=dominator.time if dominator else None,
                dominated_by_workspace=dominator.workspace if dominator else None,
            )
    rec.record(
        "front", kernel=key, size=len(front),
        points=[
            {
                "micro_batches": list(c.micro_batch_sizes()),
                "time": c.time,
                "workspace": c.workspace,
            }
            for c in front
        ],
    )
    rec.end_pass(pid, kernel=key, front_size=len(front))


def _desirable_set(
    benchmark: KernelBenchmark,
    workspace_limit: int | None = None,
    max_front: int | None = None,
) -> list[Configuration]:
    """The desirable-set DP (section III-C1).

    Parameters
    ----------
    benchmark:
        The kernel's benchmark table (any policy).
    workspace_limit:
        Optional hard cap -- configurations above it can never be selected
        by the WD ILP (whose pool is this large), so they are excluded from
        the front up front.  ``None`` keeps the full front.
    max_front:
        Optional size cap on intermediate fronts, keeping an evenly-spread
        subset by workspace.  ``None`` (default) is exact; a cap trades
        optimality for speed on very large ``all``-policy problems and is
        *not* used by any experiment that reproduces a paper figure.

    Returns
    -------
    list[Configuration]
        Sorted by ascending workspace; the last element is the fastest.
        Always contains the WR optimum for this limit (the paper notes
        ``WR(B) in D(B)``).

    Notes
    -----
    The DP states are kept as flat numpy arrays with parent pointers and
    configurations are only materialized for the final front -- the ``all``
    policy at mini-batch 256 generates millions of candidate extensions, so
    the per-state work must stay vectorized (see the repository's
    hpc-parallel guides: push the inner loops into numpy).
    """
    batch = benchmark.geometry.n
    micro_options: list[MicroConfig] = []
    for size in benchmark.sizes:
        micro_options.extend(benchmark.micro_options(size, workspace_limit))
    if not micro_options:
        raise OptimizationError(
            f"no algorithm fits workspace limit {workspace_limit} for "
            f"{benchmark.geometry}"
        )
    opt_size = np.array([o.micro_batch for o in micro_options])
    opt_time = np.array([o.time for o in micro_options])
    opt_ws = np.array([o.workspace for o in micro_options], dtype=np.int64)

    # Per-state arrays: time, workspace, and a parent pointer
    # (previous state index i - m, row in that state's front, option id).
    empty = (np.empty(0), np.empty(0, dtype=np.int64), np.empty((0, 3), dtype=np.int64))
    fronts: list[tuple] = [empty] * (batch + 1)
    fronts[0] = (np.zeros(1), np.zeros(1, dtype=np.int64), np.full((1, 3), -1, np.int64))

    for i in range(1, batch + 1):
        cand_t, cand_w, cand_p = [], [], []
        for j in range(len(micro_options)):
            m = int(opt_size[j])
            if m > i:
                continue
            pt, pw, _ = fronts[i - m]
            if len(pt) == 0:
                continue
            cand_t.append(pt + opt_time[j])
            cand_w.append(np.maximum(pw, opt_ws[j]))
            parents = np.empty((len(pt), 3), dtype=np.int64)
            parents[:, 0] = i - m
            parents[:, 1] = np.arange(len(pt))
            parents[:, 2] = j
            cand_p.append(parents)
        if not cand_t:
            continue
        times = np.concatenate(cand_t)
        wss = np.concatenate(cand_w)
        parents = np.concatenate(cand_p)
        keep = _array_front(times, wss)
        if max_front is not None and len(keep) > max_front:
            # Evenly spread by rank, always retaining the fastest (last).
            picks = np.unique(
                np.round(np.linspace(0, len(keep) - 1, max_front)).astype(int)
            )
            keep = keep[picks]
        fronts[i] = (times[keep], wss[keep], parents[keep])

    final_t, final_w, _ = fronts[batch]
    if len(final_t) == 0:
        raise OptimizationError(
            f"mini-batch {batch} is not composable from measured sizes "
            f"{sorted(set(int(s) for s in opt_size))} "
            f"(policy {benchmark.policy.value})"
        )

    # Materialize configurations by walking parent pointers.
    def build(state: int, row: int) -> Configuration:
        micros = []
        while state > 0:
            _, _, parents = fronts[state]
            prev_state, prev_row, opt_id = parents[row]
            micros.append(micro_options[int(opt_id)])
            state, row = int(prev_state), int(prev_row)
        micros.sort(key=lambda mc: -mc.micro_batch)
        return Configuration(tuple(micros))

    order = np.argsort(final_w, kind="stable")
    return [build(batch, int(row)) for row in order]


def assert_valid_front(configs: Sequence[Configuration]) -> None:
    """Raise if ``configs`` is not a valid Pareto front (test helper)."""
    for i, a in enumerate(configs):
        for j, b in enumerate(configs):
            if i != j and a.dominates(b):
                raise AssertionError(f"front contains dominated entry: {b} by {a}")
