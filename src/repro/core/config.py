"""Configuration types of the mu-cuDNN optimizer (paper section III-A).

A *micro-configuration* is a pair of a convolution algorithm and a
micro-batch size (plus the modeled time and workspace the benchmarking step
attached to it).  A *configuration* of a segmented convolution kernel is "a
list of micro-configurations" whose micro-batch sizes sum to the kernel's
mini-batch size; e.g. a kernel with mini-batch 256 divided into four
micro-batches of 64 running algorithm ``a`` is ``[(64, a)] * 4``.

Aggregate semantics (used by both WR and WD):

* execution **time** is the *sum* over micro-configurations -- micro-batches
  run sequentially;
* **workspace** is the *max* over micro-configurations -- micro-batches of
  one kernel reuse a single workspace slot.

The ``+`` operator implements the paper's list-concatenation ``⊕``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cudnn.enums import Algo, BwdDataAlgo, BwdFilterAlgo, ConvType, FwdAlgo


@dataclass(frozen=True)
class MicroConfig:
    """One micro-batch: (micro-batch size, algorithm, modeled time/workspace)."""

    micro_batch: int
    algo: Algo
    time: float
    workspace: int

    def __post_init__(self):
        if self.micro_batch <= 0:
            raise ValueError(f"micro_batch must be positive, got {self.micro_batch}")
        if self.time < 0 or not math.isfinite(self.time):
            raise ValueError(f"time must be finite and >= 0, got {self.time}")
        if self.workspace < 0:
            raise ValueError(f"workspace must be >= 0, got {self.workspace}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.micro_batch}, {self.algo.name})"


@dataclass(frozen=True)
class Configuration:
    """An ordered list of micro-configurations for one kernel."""

    micros: tuple[MicroConfig, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "micros", tuple(self.micros))

    # -- aggregates -----------------------------------------------------------

    @property
    def batch(self) -> int:
        """Total mini-batch covered by this configuration."""
        return sum(m.micro_batch for m in self.micros)

    @property
    def time(self) -> float:
        """Sequential execution time of all micro-batches."""
        return sum(m.time for m in self.micros)

    @property
    def workspace(self) -> int:
        """Resident workspace: micro-batches share one slot, so the max."""
        return max((m.workspace for m in self.micros), default=0)

    @property
    def num_micro_batches(self) -> int:
        return len(self.micros)

    @property
    def is_undivided(self) -> bool:
        return len(self.micros) == 1

    def micro_batch_sizes(self) -> tuple[int, ...]:
        return tuple(m.micro_batch for m in self.micros)

    def algorithms(self) -> tuple[Algo, ...]:
        return tuple(m.algo for m in self.micros)

    # -- the paper's ⊕ operator ----------------------------------------------

    def __add__(self, other: "Configuration | MicroConfig") -> "Configuration":
        if isinstance(other, MicroConfig):
            return Configuration(self.micros + (other,))
        if isinstance(other, Configuration):
            return Configuration(self.micros + other.micros)
        return NotImplemented

    def __iter__(self):
        return iter(self.micros)

    def __len__(self) -> int:
        return len(self.micros)

    def dominates(self, other: "Configuration") -> bool:
        """Weak Pareto dominance in (time, workspace) space."""
        return (
            self.time <= other.time
            and self.workspace <= other.workspace
            and (self.time < other.time or self.workspace < other.workspace)
        )

    def canonical(self) -> tuple:
        """Order-insensitive identity (micro-batches commute semantically
        for time/workspace purposes)."""
        return tuple(sorted((m.micro_batch, int(m.algo)) for m in self.micros))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "[" + ", ".join(str(m) for m in self.micros) + "]"

    # -- (de)serialization for the file-based configuration cache -------------

    def to_dict(self, conv_type: ConvType) -> dict:
        return {
            "conv_type": conv_type.value,
            "micros": [
                {
                    "micro_batch": m.micro_batch,
                    "algo": int(m.algo),
                    "time": m.time,
                    "workspace": m.workspace,
                }
                for m in self.micros
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Configuration":
        conv_type = ConvType(data["conv_type"])
        algo_enum = {
            ConvType.FORWARD: FwdAlgo,
            ConvType.BACKWARD_DATA: BwdDataAlgo,
            ConvType.BACKWARD_FILTER: BwdFilterAlgo,
        }[conv_type]
        return cls(
            tuple(
                MicroConfig(
                    micro_batch=m["micro_batch"],
                    algo=algo_enum(m["algo"]),
                    time=m["time"],
                    workspace=m["workspace"],
                )
                for m in data["micros"]
            )
        )


#: The empty configuration (identity of ``⊕``); time 0, workspace 0.
EMPTY = Configuration(())
