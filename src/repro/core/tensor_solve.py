"""Tensorized network-wide solves and incremental re-optimization.

The per-kernel solvers (:mod:`repro.core.wr`, :mod:`repro.core.mckp`) spend
their time in Python inner loops: the WR coin-change DP iterates
``batch x sizes`` candidate cells per kernel, and the MCKP front merge
iterates ``front x group`` candidates per group.  Both loops are data
parallel across kernels (WR: the paper's key independence property -- one
kernel's optimum never depends on another's) and across candidates (MCKP:
one front merge is a sort + prefix scan), so this module re-expresses them
as numpy tensor passes -- the same trick
:func:`repro.cudnn.api.find_algorithms_batched` used for the benchmarking
find path.

**Bit-identity, not approximation.**  The tensor passes perform the *same*
float64 additions in the *same* association order as the serial loops and
break ties by the *same* deterministic rules, so results are equal as
Python objects, not merely numerically close:

* WR: the serial DP scans ``t1.items()`` in ascending-size order and keeps
  the first strict minimum; the tensor DP lays sizes out ascending per row
  and uses ``np.argmin`` (first occurrence of the minimum) -- the same
  winner.  Each candidate is one binary add ``times[i-m] + T1(m)`` on both
  sides.  Backtracing replays :func:`repro.core.wr._rebuild` exactly,
  reusing the very :class:`~repro.core.config.MicroConfig` objects of the
  memoized ``T1`` table.
* MCKP: the serial front sorts candidates by ``(weight, cost)`` with
  Python's stable sort and keeps strict cost minima in a forward scan; the
  tensor front generates candidates in the same (front-major, group-minor)
  order, sorts with the stable ``np.lexsort((cost, weight))``, and computes
  the same keep-mask with ``np.minimum.accumulate``.  Selection backtracks
  through per-stage parent indices instead of carrying tuples.

Padding convention: per-kernel ``T1`` tables of different lengths are
packed into ``(kernels, max_sizes)`` tensors with size ``0`` / time ``inf``
padding; a mask (``sizes > 0``) keeps padding out of every argmin.

**Incremental re-optimization.**  :class:`DeltaSolver` caches per-kernel WR
breakpoints and per-bucket answers plus WD desirable fronts and ILP
warm-start bases, keyed on ``(gpu, kernel geometry, policy)`` and guarded
by a fingerprint of the benchmark rows.  When one kernel's geometry,
limit, or bench row changes, only the affected kernels are re-solved (one
tensor pass over the misses) and recombined with the cached rest --
correct because WR kernels are independent and WR answers are constant
between breakpoints.  Correctness is proven by equality against the serial
solvers (:mod:`tests.test_tensor_solve`), never re-derived.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

import repro.observability as observability
import repro.telemetry as telemetry
from repro.core.benchmarker import KernelBenchmark
from repro.core.config import Configuration, MicroConfig
from repro.core.mckp import MCKPItem, MCKPSolution
from repro.core.pareto import desirable_set
from repro.core.wd import WDKernel, symmetry_class_key
from repro.core.wr import _record_wr_provenance, t1_table
from repro.errors import OptimizationError, SolverError
from repro.telemetry.clock import Clock


# ---------------------------------------------------------------------------
# Tensorized WR
# ---------------------------------------------------------------------------


def _wr_tensors(
    t1s: "list[dict[int, MicroConfig]]",
) -> "tuple[np.ndarray, np.ndarray, list[list[MicroConfig]]]":
    """Pack per-kernel ``T1`` tables into padded ``(K, S)`` tensors.

    Row order follows ``t1s``; column order is ascending micro-batch size
    (the tables iterate in insertion order, which
    :func:`~repro.core.wr.t1_table` builds ascending) -- the order the
    serial DP's first-strict-minimum tie-break depends on.  Padding cells
    carry size ``0`` and time ``inf``.
    """
    width = max(len(t1) for t1 in t1s)
    sizes = np.zeros((len(t1s), width), dtype=np.int64)
    times = np.full((len(t1s), width), np.inf, dtype=np.float64)
    micros: list[list[MicroConfig]] = []
    for row, t1 in enumerate(t1s):
        items = list(t1.items())
        micros.append([micro for _, micro in items])
        for col, (size, micro) in enumerate(items):
            sizes[row, col] = size
            times[row, col] = micro.time
    return sizes, times, micros


def _tensor_wr_dp(
    sizes: np.ndarray, t1_times: np.ndarray, max_batch: int
) -> "tuple[np.ndarray, np.ndarray]":
    """One vectorized coin-change DP stage per batch row, all kernels at once.

    Returns ``times`` (``(K, max_batch + 1)`` float64, ``inf`` = not
    composable) and ``choice`` (``(K, max_batch + 1)`` int64 column index of
    the last summand into the kernel's ``T1`` table, ``-1`` = none) --
    cell-for-cell equal to :func:`repro.core.wr._wr_dp` run per kernel.
    """
    kernels = sizes.shape[0]
    times = np.full((kernels, max_batch + 1), np.inf, dtype=np.float64)
    times[:, 0] = 0.0
    choice = np.full((kernels, max_batch + 1), -1, dtype=np.int64)
    rows = np.arange(kernels)
    rows_col = rows[:, None]
    # Padding columns carry time inf (see _wr_tensors), so their candidates
    # come out inf through the add alone -- padding needs no mask here.  A
    # padding cell's back-reference is column ``i`` itself (size 0), which
    # is still inf when stage ``i`` reads it: stages write their column
    # only after the gather.
    for i in range(1, max_batch + 1):
        back = i - sizes
        feasible = back >= 0
        np.maximum(back, 0, out=back)
        cand = times[rows_col, back]
        # One binary add per candidate, exactly the serial
        # ``times[i - size] + micro.time`` (same operands, same order).
        cand += t1_times
        cand[~feasible] = np.inf
        best = np.argmin(cand, axis=1)  # first minimum = serial strict "<"
        best_time = cand[rows, best]
        times[:, i] = best_time
        choice[:, i] = np.where(np.isfinite(best_time), best, -1)
    return times, choice


def _backtrace(
    choice_row: np.ndarray, micros: "list[MicroConfig]", batch: int
) -> Configuration:
    """Replay :func:`repro.core.wr._rebuild` along one kernel's choice path."""
    chosen: list[MicroConfig] = []
    remaining = batch
    while remaining > 0:
        micro = micros[int(choice_row[remaining])]
        chosen.append(micro)
        remaining -= micro.micro_batch
    chosen.sort(key=lambda m: -m.micro_batch)
    return Configuration(tuple(chosen))


def solve_network_wr_outcomes(
    benches: "Mapping[str, KernelBenchmark]", workspace_limit: int
) -> "tuple[dict[str, Configuration], dict[str, OptimizationError]]":
    """Network-wide WR solve with per-kernel outcomes, one tensor pass.

    Returns ``(configurations, errors)`` keyed by kernel name; every kernel
    lands in exactly one of the two.  Errors are the same
    :class:`~repro.errors.OptimizationError` the serial solver raises
    (infeasible-limit errors are the memoized instances of
    :func:`~repro.core.wr.t1_table`; not-composable errors carry the
    serial message verbatim).  Sweep backends and the
    :class:`DeltaSolver` build on this; :func:`solve_network_wr` is the
    raise-on-first-error wrapper matching the serial network optimizer.
    """
    configurations: dict[str, Configuration] = {}
    errors: dict[str, OptimizationError] = {}
    if not benches:
        return configurations, errors
    feasible: list[tuple[str, KernelBenchmark, dict[int, MicroConfig]]] = []
    for name, bench in benches.items():
        try:
            t1 = t1_table(bench, workspace_limit)
        except OptimizationError as exc:
            errors[name] = exc
        else:
            feasible.append((name, bench, t1))
    if not feasible:
        return configurations, errors
    with telemetry.span(
        "solve.tensor.wr", kernels=len(benches),
        workspace_limit=workspace_limit,
    ) as tspan:
        sizes, t1_times, micros = _wr_tensors([t1 for _, _, t1 in feasible])
        batches = [bench.geometry.n for _, bench, _ in feasible]
        max_batch = max(batches)
        times, choice = _tensor_wr_dp(sizes, t1_times, max_batch)
        if telemetry.enabled():
            telemetry.count("solver.tensor_passes",
                            help="network-wide tensorized WR DP passes")
            telemetry.count("wr.dp_rows", sum(batches),
                            help="WR dynamic-program rows solved")
        rec = observability.recorder()
        for row, (name, bench, t1) in enumerate(feasible):
            batch = bench.geometry.n
            if not math.isfinite(times[row, batch]):
                errors[name] = OptimizationError(
                    f"mini-batch {batch} is not composable from measured "
                    f"sizes {sorted(t1)} (policy {bench.policy.value})"
                )
                continue
            config = _backtrace(choice[row], micros[row], batch)
            if telemetry.enabled() or rec:
                unconstrained = bench.fastest_micro(batch)
                constrained = t1.get(batch)
                fallback = unconstrained is not None and (
                    constrained is None
                    or constrained.algo != unconstrained.algo
                )
                if fallback and telemetry.enabled():
                    telemetry.count(
                        "fallback.events",
                        help="kernels whose unconstrained-fastest algorithm "
                             "exceeds the workspace limit")
                if rec:
                    _record_wr_provenance(
                        rec, bench, workspace_limit, t1,
                        [float(t) for t in times[row]],
                        [micros[row][int(c)] if c >= 0 else None
                         for c in choice[row]],
                        config, unconstrained, constrained, name,
                    )
            configurations[name] = config
        tspan.set("max_batch", max_batch)
        tspan.set("infeasible", len(errors))
    return configurations, errors


def solve_network_wr(
    benches: "Mapping[str, KernelBenchmark]", workspace_limit: int
) -> "dict[str, Configuration]":
    """WR-optimize every kernel of a network in one tensor pass.

    Bit-identical to calling
    :func:`~repro.core.wr.optimize_from_benchmark` per kernel: same
    configurations, and on failure the same error for the *first* failing
    kernel in input order (whether infeasible-limit or not-composable),
    exactly as the serial network loop would raise it.
    """
    configurations, errors = solve_network_wr_outcomes(benches, workspace_limit)
    if errors:
        for name in benches:
            if name in errors:
                raise errors[name]
    return {name: configurations[name] for name in benches}


# ---------------------------------------------------------------------------
# Tensorized MCKP
# ---------------------------------------------------------------------------


def solve_mckp_tensor(
    groups: "list[list[MCKPItem]]",
    capacity: int,
    max_front: int,
    clock: Clock,
) -> MCKPSolution:
    """Vectorized Pareto-front merge, bit-identical to the serial MCKP.

    Candidate generation, stable ``(weight, cost)`` ordering, the strict
    cost-minimum keep scan, overflow/infeasibility errors, and the final
    first-minimum pick all mirror :func:`repro.core.mckp._solve_mckp`
    (see the module docstring for the equivalences).  Selection payloads
    are replaced by per-stage parent/item index arrays and recovered by a
    backward walk.  ``clock`` is injected by the dispatching wrapper so
    ``solve_time`` accounting matches the serial path's source.
    """
    start = clock.now()
    if not groups:
        raise SolverError("MCKP needs at least one group")
    for gi, group in enumerate(groups):
        if not group:
            raise SolverError(f"MCKP group {gi} is empty")

    front_cost = np.zeros(1, dtype=np.float64)
    front_weight = np.zeros(1, dtype=np.int64)
    parents: list[np.ndarray] = []
    picks: list[np.ndarray] = []
    peak = 1
    for group in groups:
        gcost = np.array([item.cost for item in group], dtype=np.float64)
        gweight = np.array([item.weight for item in group], dtype=np.int64)
        gindex = np.array([item.index for item in group], dtype=np.int64)
        n = len(group)
        # Front-major, group-minor C-order ravel = the serial generation
        # order, which the stable sort's tie-breaking depends on.
        cand_cost = (front_cost[:, None] + gcost[None, :]).ravel()
        cand_weight = (front_weight[:, None] + gweight[None, :]).ravel()
        admitted = np.flatnonzero(cand_weight <= capacity)
        if admitted.size == 0:
            raise SolverError(
                f"no item combination fits capacity {capacity} "
                f"(infeasible after {len(front_cost)}-point front)"
            )
        cost = cand_cost[admitted]
        weight = cand_weight[admitted]
        parent = admitted // n
        pick = gindex[admitted % n]
        order = np.lexsort((cost, weight))  # stable; primary weight, then cost
        cost = cost[order]
        weight = weight[order]
        keep = np.empty(len(cost), dtype=bool)
        keep[0] = bool(cost[0] < np.inf)
        if len(cost) > 1:
            running = np.minimum.accumulate(cost)
            keep[1:] = cost[1:] < running[:-1]  # strict < over the prefix min
        front_cost = cost[keep]
        front_weight = weight[keep]
        kept = order[keep]
        parents.append(parent[kept])
        picks.append(pick[kept])
        peak = max(peak, len(front_cost))
        if len(front_cost) > max_front:
            raise SolverError(
                f"MCKP front exploded to {len(front_cost)} points; "
                "use the branch-and-bound ILP solver instead"
            )

    best = int(np.argmin(front_cost))  # first minimum = serial min()
    selection: list[int] = []
    pos = best
    for stage in range(len(groups) - 1, -1, -1):
        selection.append(int(picks[stage][pos]))
        pos = int(parents[stage][pos])
    selection.reverse()
    return MCKPSolution(
        selection=selection,
        cost=float(front_cost[best]),
        weight=int(front_weight[best]),
        solve_time=clock.now() - start,
        front_peak=peak,
    )


# ---------------------------------------------------------------------------
# Incremental re-optimization
# ---------------------------------------------------------------------------


_BATCH_COMPONENT = re.compile(r"n\d+")


def geometry_family(cache_key: str) -> str:
    """A geometry cache key with its mini-batch component wildcarded.

    Benchmark rows are stored per *micro*-batch geometry
    (``forward:n8c64...``) while plans are keyed by the *mini*-batch
    geometry (``forward:n32c64...``); both belong to one kernel family.
    Invalidation (bench rows changed at any size) must therefore match on
    the batch-normalized key, which this helper produces
    (``forward:n*c64...``).
    """
    return _BATCH_COMPONENT.sub("n*", cache_key, count=1)


def bench_fingerprint(bench: KernelBenchmark) -> tuple:
    """Value identity of a benchmark table (rows, order, and sizes).

    Two benches with equal fingerprints produce identical WR/WD answers
    under every limit, so cached per-bucket solutions keyed by it stay
    exact; any row edit (time, workspace, algorithm set, or size set)
    changes the fingerprint and invalidates the cache entry.
    """
    return tuple(
        (
            size,
            tuple(
                (int(r.algo), r.time, r.workspace)
                for r in bench.results[size]
            ),
        )
        for size in bench.sizes
    )


@dataclass
class DeltaStats:
    """Monotonic counters of one :class:`DeltaSolver` (read freely)."""

    #: ``solve_network`` calls answered entirely from cached buckets.
    full_solves_avoided: int = 0
    #: Calls that re-solved a strict subset and recombined with the cache.
    delta_solves: int = 0
    #: Calls that had to solve every kernel (cold start or total change).
    full_solves: int = 0
    kernels_solved: int = 0
    kernels_reused: int = 0
    #: Cache entries dropped because a fingerprint or an explicit
    #: invalidation said the underlying bench rows changed.
    invalidations: int = 0
    #: WD solves that reused a cached ILP warm-start basis.
    wd_warm_reuses: int = 0

    def as_dict(self) -> "dict[str, int]":
        return {
            "full_solves_avoided": self.full_solves_avoided,
            "delta_solves": self.delta_solves,
            "full_solves": self.full_solves,
            "kernels_solved": self.kernels_solved,
            "kernels_reused": self.kernels_reused,
            "invalidations": self.invalidations,
            "wd_warm_reuses": self.wd_warm_reuses,
        }


@dataclass
class _WRDeltaEntry:
    """Cached WR state of one ``(gpu, geometry, policy)`` kernel."""

    fingerprint: tuple
    #: The kernel's WR breakpoints (union workspace steps): answers are
    #: constant between consecutive entries, so one bucket index keys them.
    breakpoints: "list[int]"
    configurations: "dict[int, Configuration]" = field(default_factory=dict)
    errors: "dict[int, OptimizationError]" = field(default_factory=dict)


@dataclass
class _WDDeltaEntry:
    """Cached WD state of one ``(gpu, geometry, policy)`` kernel."""

    fingerprint: tuple
    #: Full (limit-free) desirable front; per-limit fronts are prefixes.
    front: "list[Configuration]"


class DeltaSolver:
    """Incremental network solver: re-solve only what changed.

    Caches, per ``(gpu, kernel geometry, policy)``: WR breakpoints and
    per-breakpoint-bucket configurations/errors, WD desirable fronts, and
    (per network shape and limit) ILP warm-start bases.  A benchmark-row
    fingerprint guards every entry, so a mutated kernel re-solves while
    untouched kernels recombine from the cache -- exact because WR kernels
    are independent and WR answers are constant within a breakpoint bucket
    (:mod:`repro.core.sweep` proves the same invariance for sweeps).

    Thread-safe: all cache and counter state is mutated under one internal
    lock; one solve runs at a time (callers such as
    :class:`~repro.service.PlanService` already serialize device work).
    """

    def __init__(self, gpu: str = "p100-sxm2") -> None:
        self.gpu = gpu
        self.stats = DeltaStats()
        #: Owning lock for every mutable mapping and for ``stats``; solves
        #: read *and* write cache entries, so they hold it end to end.
        self._lock = threading.Lock()
        self._wr: dict[tuple[str, str, str], _WRDeltaEntry] = {}
        self._wd: dict[tuple[str, str, str], _WDDeltaEntry] = {}
        #: Merged symmetry-class fronts keyed by (class key, multiplicity,
        #: prefix cut, prefix signature) -- signature-guarded so a mutated
        #: front can never serve stale multisets.
        self._merged: dict[tuple, list] = {}
        #: Last optimal per-class counts per (network signature): the ILP
        #: warm-start basis for re-solves of the same network shape.
        self._wd_warm: dict[tuple, tuple[int, list]] = {}

    def _key(self, bench: KernelBenchmark) -> "tuple[str, str, str]":
        return (self.gpu, bench.geometry.cache_key(), bench.policy.value)

    def _wr_entry(self, bench: KernelBenchmark) -> _WRDeltaEntry:
        """The kernel's WR cache entry, replaced if its bench rows changed.

        Must be called under ``self._lock``.
        """
        key = self._key(bench)
        fingerprint = bench_fingerprint(bench)
        entry = self._wr.get(key)
        if entry is None or entry.fingerprint != fingerprint:
            if entry is not None:
                self.stats.invalidations += 1
                if telemetry.enabled():
                    telemetry.count(
                        "solver.delta_invalidations",
                        help="delta-cache entries dropped on bench change")
            entry = _WRDeltaEntry(
                fingerprint=fingerprint,
                breakpoints=bench.workspace_step_union(),
            )
            self._wr[key] = entry  # reprolint: disable=THR001 -- caller holds self._lock (documented precondition)
        return entry

    def solve_network(
        self, benches: "Mapping[str, KernelBenchmark]", workspace_limit: int
    ) -> "dict[str, Configuration]":
        """WR-solve a network, reusing every cached per-kernel answer.

        Bit-identical to :func:`solve_network_wr` (hence to the serial
        per-kernel path): cached buckets return the identical
        configurations and raise the identical errors; only kernels whose
        ``(bucket, fingerprint)`` is unseen are solved -- all of them in
        one tensor pass -- and their answers cached for next time.
        """
        with self._lock:
            return self._solve_network_locked(benches, workspace_limit)

    def _solve_network_locked(
        self, benches: "Mapping[str, KernelBenchmark]", workspace_limit: int
    ) -> "dict[str, Configuration]":
        if not benches:
            return {}
        outcomes: dict[str, Configuration | OptimizationError] = {}
        # Distinct misses; duplicates share one solve.  The dedup key
        # includes the fingerprint so same-geometry benches carrying
        # *different* rows in one call (mid-mutation) never coalesce onto
        # each other's answers.
        misses: dict[tuple, tuple[str, KernelBenchmark,
                                  _WRDeltaEntry, int]] = {}
        owners: dict[tuple, list[str]] = {}
        reused = 0
        for name, bench in benches.items():
            entry = self._wr_entry(bench)
            key = self._key(bench) + (entry.fingerprint,)
            bucket = bisect.bisect_right(entry.breakpoints, workspace_limit)
            cached_config = entry.configurations.get(bucket)
            if cached_config is not None:
                outcomes[name] = cached_config
                reused += 1
            elif bucket in entry.errors:
                outcomes[name] = entry.errors[bucket]
                reused += 1
            elif key in misses:
                owners[key].append(name)
            else:
                misses[key] = (name, bench, entry, bucket)
                owners[key] = [name]
        if misses:
            miss_benches = {
                name: bench for name, bench, _, _ in misses.values()
            }
            configs, errors = solve_network_wr_outcomes(
                miss_benches, workspace_limit
            )
            for key, (name, _, entry, bucket) in misses.items():
                solved: Configuration | OptimizationError
                if name in configs:
                    solved = configs[name]
                    entry.configurations[bucket] = solved
                else:
                    solved = errors[name]
                    entry.errors[bucket] = solved
                for owner in owners[key]:
                    outcomes[owner] = solved
        self.stats.kernels_solved += len(misses)
        self.stats.kernels_reused += reused
        if not misses:
            self.stats.full_solves_avoided += 1
            if telemetry.enabled():
                telemetry.count("solver.full_solves_avoided",
                                help="network solves answered entirely from "
                                     "the delta cache")
        elif reused:
            self.stats.delta_solves += 1
            if telemetry.enabled():
                telemetry.count("solver.delta_solves",
                                help="network solves that re-solved only "
                                     "changed kernels")
        else:
            self.stats.full_solves += 1
            if telemetry.enabled():
                telemetry.count("solver.full_solves",
                                help="network solves with no reusable "
                                     "delta-cache entry")
        for name in benches:
            outcome = outcomes[name]
            if isinstance(outcome, OptimizationError):
                raise outcome
        return {
            name: outcome
            for name, outcome in outcomes.items()
            if isinstance(outcome, Configuration)
        }

    def invalidate_family(
        self, family: str, policy: "str | None" = None
    ) -> int:
        """Drop cached entries of one kernel family (all batch sizes).

        ``family`` is a :func:`geometry_family` key;  ``policy`` optionally
        restricts the drop.  Warm-start bases are cleared wholesale (they
        aggregate over the whole network).  Returns the number of entries
        dropped; the next solve delta-solves exactly those kernels.
        """
        dropped = 0
        with self._lock:
            for store in (self._wr, self._wd):
                for key in list(store):
                    if geometry_family(key[1]) != family:
                        continue
                    if policy is not None and key[2] != policy:
                        continue
                    del store[key]
                    dropped += 1
            if dropped:
                self.stats.invalidations += dropped
                self._wd_warm.clear()
        if dropped and telemetry.enabled():
            telemetry.count("solver.delta_invalidations", dropped,
                            help="delta-cache entries dropped on bench change")
        return dropped

    # -- WD: cached fronts + ILP warm-start bases ---------------------------

    def _wd_front(self, bench: KernelBenchmark) -> "list[Configuration]":
        """The kernel's full desirable front, recomputed on bench change.

        Must be called under ``self._lock``.
        """
        key = self._key(bench)
        fingerprint = bench_fingerprint(bench)
        entry = self._wd.get(key)
        if entry is None or entry.fingerprint != fingerprint:
            if entry is not None:
                self.stats.invalidations += 1
            front = desirable_set(bench, workspace_limit=None)
            self._wd[key] = _WDDeltaEntry(  # reprolint: disable=THR001 -- caller holds self._lock (documented precondition)
                fingerprint=fingerprint, front=front)
            self.stats.kernels_solved += 1
        else:
            front = entry.front
            self.stats.kernels_reused += 1
        return front

    def solve_network_wd(
        self,
        benches: "Mapping[str, KernelBenchmark]",
        total_workspace: int,
        solver: str = "ilp",
    ) -> "dict[str, Configuration]":
        """WD-solve a network, reusing cached fronts and warm-start bases.

        Assignments equal :func:`repro.core.sweep.sweep_wd` at the same
        limit (both run the symmetry-aggregated solve and the canonical
        disaggregation).  Desirable fronts, merged class fronts, and the
        previous optimum of the same network shape (the ILP warm-start
        basis) are cached; the pick-one combine itself always runs -- WD
        couples kernels through the shared pool, so only its *inputs*
        delta, not the final solve.
        """
        from repro.core.sweep import (  # local: sweep imports this module
            _merged_front,
            _solve_aggregated,
            truncate_front,
        )

        with self._lock:
            kernels = [
                WDKernel(key=name, geometry=bench.geometry, benchmark=bench,
                         desirable=self._wd_front(bench))
                for name, bench in benches.items()
            ]
            classes: dict[tuple, list[WDKernel]] = {}
            for kernel in kernels:
                classes.setdefault(symmetry_class_key(kernel), []).append(kernel)
            class_list = list(classes.values())
            class_keys = list(classes.keys())
            fronts = [members[0].desirable for members in class_list]
            cuts = [
                bisect.bisect_right([c.workspace for c in front],
                                    total_workspace)
                for front in fronts
            ]
            for members, cut in zip(class_list, cuts):
                if cut == 0:
                    truncate_front(members[0], total_workspace)  # raises
            items_per_class = []
            for class_key, members, front, cut in zip(
                class_keys, class_list, fronts, cuts
            ):
                signature = tuple(
                    (c.time, c.workspace) for c in front[:cut]
                )
                memo_key = (class_key, len(members), cut, signature)
                items = self._merged.get(memo_key)
                if items is None:
                    items = _merged_front(front[:cut], len(members))
                    self._merged[memo_key] = items
                items_per_class.append(items)
            network_signature = tuple(
                (class_key, len(members))
                for class_key, members in zip(class_keys, class_list)
            )
            warm = self._wd_warm.get(network_signature)
            prev_choice = None
            if warm is not None and warm[0] <= total_workspace:
                # Feasible by monotonicity: the basis fit a smaller (or
                # equal) pool; _solve_aggregated drops it gracefully if a
                # mutated front no longer contains the multisets.
                prev_choice = warm[1]
            chosen, _solution, _num_vars, warm_used = _solve_aggregated(
                class_list, fronts, items_per_class, total_workspace,
                solver, prev_choice,
            )
            if warm_used:
                self.stats.wd_warm_reuses += 1
            self._wd_warm[network_signature] = (total_workspace, chosen)
            assignments: dict[str, Configuration] = {}
            for members, front, counts in zip(class_list, fronts, chosen):
                picked: list[Configuration] = []
                for j, count in enumerate(counts):
                    picked.extend([front[j]] * count)
                # Ascending-workspace order over members in input order is
                # the canonical symmetric form (same loop as sweep_wd).
                for kernel, config in zip(members, picked):
                    assignments[kernel.key] = config
        return assignments


__all__ = [
    "DeltaSolver",
    "DeltaStats",
    "bench_fingerprint",
    "geometry_family",
    "solve_mckp_tensor",
    "solve_network_wr",
    "solve_network_wr_outcomes",
]
