"""Micro-batched convolution execution (paper sections II and III-A).

Given an optimized :class:`~repro.core.config.Configuration`, these helpers
issue one cuDNN call per micro-configuration against disjoint slices of the
mini-batch:

* **Forward / BackwardData** -- iterations of the mini-batch loop are
  independent, so each micro-batch reads and writes its own batch slice.
* **BackwardFilter** -- the filter gradient carries an output dependency
  across the whole mini-batch, so micro-batches run *sequentially with
  accumulation*: the first call applies the caller's ``beta``, every
  subsequent call uses ``beta = 1`` (cuDNN's output-scale accumulation).
  This is exactly the loop-splitting argument of section II, and it keeps
  the computation bit-for-bit equivalent to the undivided kernel up to
  floating-point reassociation of the gradient sum.

The provided ``workspace`` is a single slot sized for the configuration's
max micro-workspace -- the WR sharing discipline.
"""

from __future__ import annotations

import numpy as np

import repro.telemetry as telemetry
from repro.core.config import Configuration
from repro.cudnn import api
from repro.cudnn.descriptors import (
    ConvolutionDescriptor,
    FilterDescriptor,
    TensorDescriptor,
)
from repro.cudnn.handle import CudnnHandle
from repro.cudnn.status import Status
from repro.errors import BadParamError


def _check_batch(config: Configuration, batch: int) -> None:
    if config.batch != batch:
        raise BadParamError(
            Status.BAD_PARAM,
            f"configuration covers batch {config.batch}, tensors have {batch}",
        )


def _slice(arr: np.ndarray | None, start: int, stop: int):
    return None if arr is None else arr[start:stop]


def _micro_span(op: str, micro):
    """Telemetry for one micro-batch execution (inert when disabled).

    Kept behind a single ``enabled()`` check so the per-micro-batch loop --
    the hottest path in the library -- does not build attribute dicts when
    telemetry is off.
    """
    if not telemetry.enabled():
        return telemetry.NULL_SPAN
    telemetry.count("exec.micro_batches", help="micro-batches executed")
    telemetry.observe(
        "exec.micro_batch_size", micro.micro_batch,
        help="executed micro-batch sizes",
        buckets=telemetry.metrics.SIZE_BUCKETS,
    )
    return telemetry.span(
        "exec.micro_batch", op=op, algo=micro.algo.name,
        micro_batch=micro.micro_batch, workspace=micro.workspace,
    )


def forward(
    handle: CudnnHandle,
    config: Configuration,
    x_desc: TensorDescriptor,
    x: np.ndarray | None,
    w_desc: FilterDescriptor,
    w: np.ndarray | None,
    conv_desc: ConvolutionDescriptor,
    workspace: int,
    y_desc: TensorDescriptor,
    y: np.ndarray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> np.ndarray | None:
    """Micro-batched ``cudnnConvolutionForward``."""
    _check_batch(config, x_desc.n)
    if y is None and x is not None:
        y = np.zeros(y_desc.shape, dtype=np.float32)
    offset = 0
    for micro in config:
        m = micro.micro_batch
        with _micro_span("Forward", micro):
            out = api.convolution_forward(
                handle,
                x_desc.with_batch(m),
                _slice(x, offset, offset + m),
                w_desc,
                w,
                conv_desc,
                micro.algo,
                workspace,
                y_desc.with_batch(m),
                _slice(y, offset, offset + m),
                alpha=alpha,
                beta=beta,
            )
        if y is not None and out is not None:
            y[offset : offset + m] = out
        offset += m
    return y


def backward_data(
    handle: CudnnHandle,
    config: Configuration,
    w_desc: FilterDescriptor,
    w: np.ndarray | None,
    dy_desc: TensorDescriptor,
    dy: np.ndarray | None,
    conv_desc: ConvolutionDescriptor,
    workspace: int,
    dx_desc: TensorDescriptor,
    dx: np.ndarray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> np.ndarray | None:
    """Micro-batched ``cudnnConvolutionBackwardData``."""
    _check_batch(config, dy_desc.n)
    if dx is None and dy is not None:
        dx = np.zeros(dx_desc.shape, dtype=np.float32)
    offset = 0
    for micro in config:
        m = micro.micro_batch
        with _micro_span("BackwardData", micro):
            out = api.convolution_backward_data(
                handle,
                w_desc,
                w,
                dy_desc.with_batch(m),
                _slice(dy, offset, offset + m),
                conv_desc,
                micro.algo,
                workspace,
                dx_desc.with_batch(m),
                _slice(dx, offset, offset + m),
                alpha=alpha,
                beta=beta,
            )
        if dx is not None and out is not None:
            dx[offset : offset + m] = out
        offset += m
    return dx


def backward_filter(
    handle: CudnnHandle,
    config: Configuration,
    x_desc: TensorDescriptor,
    x: np.ndarray | None,
    dy_desc: TensorDescriptor,
    dy: np.ndarray | None,
    conv_desc: ConvolutionDescriptor,
    workspace: int,
    dw_desc: FilterDescriptor,
    dw: np.ndarray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> np.ndarray | None:
    """Micro-batched ``cudnnConvolutionBackwardFilter`` with accumulation."""
    _check_batch(config, x_desc.n)
    if dw is None and x is not None:
        dw = np.zeros(dw_desc.shape, dtype=np.float32)
        beta = 0.0  # fresh buffer: first micro-batch overwrites it
    offset = 0
    for i, micro in enumerate(config):
        m = micro.micro_batch
        with _micro_span("BackwardFilter", micro):
            dw = api.convolution_backward_filter(
                handle,
                x_desc.with_batch(m),
                _slice(x, offset, offset + m),
                dy_desc.with_batch(m),
                _slice(dy, offset, offset + m),
                conv_desc,
                micro.algo,
                workspace,
                dw_desc,
                dw,
                alpha=alpha,
                # First micro-batch honors the caller's beta; the rest
                # accumulate.
                beta=beta if i == 0 else 1.0,
            )
        offset += m
    return dw
