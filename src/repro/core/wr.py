"""WR (Workspace Reuse) optimization -- the paper's section III-B.

Each convolutional kernel owns one workspace slot of at most ``M`` bytes,
shared sequentially by its micro-batches.  The optimal division of the
mini-batch ``B`` is found by dynamic programming over the total execution
time::

    T(0) = 0
    T(i) = min over benchmarked micro sizes m <= i of  T(i - m) + T1(m)

where ``T1(m)`` is the fastest single-kernel time at micro-batch ``m`` whose
workspace fits ``M`` (the paper states the recurrence as "either keep the
batch whole or split it and recurse", which unrolls to exactly this
coin-change form).  The DP is exact for the measured size set: with the
``all`` policy it is the true optimum; with ``powerOfTwo`` it is the optimum
over power-of-two compositions.

Key property (paper): the optimal configuration of a kernel is independent
of every other kernel, because WR assumes kernels never run concurrently --
which is what keeps this a per-kernel DP rather than a global problem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import repro.observability as observability
import repro.telemetry as telemetry
from repro.core.benchmarker import KernelBenchmark, benchmark_kernel
from repro.core.config import Configuration, MicroConfig
from repro.core.policies import BatchSizePolicy
from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.handle import CudnnHandle
from repro.errors import OptimizationError

if TYPE_CHECKING:
    from repro.core.cache import BenchmarkCache


@dataclass
class WRResult:
    """Outcome of one kernel's WR optimization."""

    configuration: Configuration
    benchmark: KernelBenchmark
    workspace_limit: int
    #: ``T1(B)`` -- the undivided (plain cuDNN) time under the same limit,
    #: for speedup reporting.  ``inf`` if nothing fits undivided.
    undivided_time: float

    @property
    def speedup_vs_undivided(self) -> float:
        if not math.isfinite(self.undivided_time):
            return math.inf
        return self.undivided_time / self.configuration.time


def t1_table(
    benchmark: KernelBenchmark, workspace_limit: int | None
) -> dict[int, MicroConfig]:
    """Per-size ``T1`` entries under one limit (the DP's coin denominations).

    Raises :class:`OptimizationError` when no measured size has any algorithm
    fitting the limit.

    Memoized per ``(benchmark identity, limit bucket)`` through the
    benchmark's query cache: two limits between consecutive union workspace
    steps admit the same rows at every size and share one table, so repeated
    per-limit and trace calls stop rebuilding the same dict.  The returned
    dict is shared -- treat it as immutable.  Infeasible buckets cache (and
    re-raise) the same :class:`OptimizationError`, which therefore quotes
    the bucket's first-seen limit (the sweep solvers already document this
    for interval representatives).  Mutating ``benchmark.results`` requires
    :meth:`~repro.core.benchmarker.KernelBenchmark.invalidate_query_cache`,
    which drops this memo too.
    """
    memo = benchmark._query_cache
    key = ("t1", benchmark.t1_bucket(workspace_limit))
    cached = memo.get(key)
    if cached is not None:
        if telemetry.enabled():
            telemetry.count("wr.t1_memo_hits",
                            help="T1 tables served from the per-benchmark memo")
        if isinstance(cached, OptimizationError):
            raise cached
        return cached
    t1: dict[int, MicroConfig] = {}
    for size in benchmark.sizes:
        micro = benchmark.fastest_micro(size, workspace_limit)
        if micro is not None:
            t1[size] = micro
    if not t1:
        error = OptimizationError(
            f"no algorithm fits workspace limit {workspace_limit} for "
            f"{benchmark.geometry}"
        )
        memo[key] = error
        raise error
    memo[key] = t1
    return t1


def _wr_dp(t1: dict[int, MicroConfig], batch: int):
    """The coin-change DP core shared by the optimizer and the tracer.

    Returns the ``times`` table (``times[i]`` = optimal time for batch ``i``,
    ``inf`` when not composable) and the ``choice`` table (last summand of an
    optimal division, ``None`` when not composable).
    """
    times = [0.0] + [math.inf] * batch
    choice: list[MicroConfig | None] = [None] * (batch + 1)
    # Coin-change order: ascending i with all sizes admissible at each i
    # allows unlimited reuse of any measured size.
    for i in range(1, batch + 1):
        best = math.inf
        best_micro = None
        for size, micro in t1.items():
            if size > i or not math.isfinite(times[i - size]):
                continue
            cand = times[i - size] + micro.time
            if cand < best:
                best = cand
                best_micro = micro
        times[i] = best
        choice[i] = best_micro
    return times, choice


def _rebuild(choice: list[MicroConfig | None], batch: int) -> Configuration:
    """Reconstruct the configuration for batch ``batch`` from ``choice``."""
    micros: list[MicroConfig] = []
    remaining = batch
    while remaining > 0:
        micro = choice[remaining]
        assert micro is not None
        micros.append(micro)
        remaining -= micro.micro_batch
    # Largest micro-batches first, cosmetic but matches the paper's figures.
    micros.sort(key=lambda m: -m.micro_batch)
    return Configuration(tuple(micros))


def optimize_from_benchmark(
    benchmark: KernelBenchmark, workspace_limit: int,
    kernel: str | None = None,
) -> Configuration:
    """Run the WR dynamic program against an existing benchmark table.

    ``kernel`` optionally names the kernel in provenance events (network
    optimizers pass their stable layer key); defaults to the geometry
    cache key.
    """
    with telemetry.span(
        "optimize.wr",
        kernel=benchmark.geometry.cache_key(),
        policy=benchmark.policy.value,
        workspace_limit=workspace_limit,
    ) as tspan:
        config = _optimize_from_benchmark(benchmark, workspace_limit, tspan,
                                          kernel=kernel)
        tspan.set("time", config.time)
        tspan.set("workspace", config.workspace)
        tspan.set("micro_batches", config.micro_batch_sizes())
    return config


def _optimize_from_benchmark(
    benchmark: KernelBenchmark, workspace_limit: int, tspan,
    kernel: str | None = None,
) -> Configuration:
    batch = benchmark.geometry.n
    t1 = t1_table(benchmark, workspace_limit)
    # A fallback in the paper's Fig. 1 sense: the kernel's unconstrained
    # optimum at the full batch does not fit the limit, so slower (or
    # divided) execution must cover for it.
    unconstrained = benchmark.fastest_micro(batch)
    constrained = t1.get(batch)
    if unconstrained is not None and (
        constrained is None or constrained.algo != unconstrained.algo
    ):
        telemetry.count("fallback.events",
                        help="kernels whose unconstrained-fastest algorithm "
                             "exceeds the workspace limit")
        tspan.set("fallback", True)
    telemetry.count("wr.dp_rows", batch, help="WR dynamic-program rows solved")

    times, choice = _wr_dp(t1, batch)

    if not math.isfinite(times[batch]):
        raise OptimizationError(
            f"mini-batch {batch} is not composable from measured sizes "
            f"{sorted(t1)} (policy {benchmark.policy.value})"
        )
    config = _rebuild(choice, batch)
    rec = observability.recorder()
    if rec:
        _record_wr_provenance(
            rec, benchmark, workspace_limit, t1, times, choice, config,
            unconstrained, constrained, kernel,
        )
    return config


def _record_wr_provenance(
    rec, benchmark, workspace_limit, t1, times, choice, config,
    unconstrained, constrained, kernel=None,
) -> None:
    """Post-hoc decision log for one WR pass (only when provenance is on).

    Reconstructs candidate fates from the DP tables already computed -- the
    hot loops above run identically whether or not this executes.
    """
    key = kernel or benchmark.geometry.cache_key()
    batch = benchmark.geometry.n
    pid = rec.begin_pass(
        "wr", kernel=key, batch=batch, policy=benchmark.policy.value,
        workspace_limit=workspace_limit,
    )
    if unconstrained is not None and (
        constrained is None or constrained.algo != unconstrained.algo
    ):
        # The Fig. 1 fallback, per candidate: the unconstrained-fastest
        # algorithm at the full batch overflows the limit.
        rec.record(
            "candidate.rejected.workspace", kernel=key,
            micro_batch=batch, algo=unconstrained.algo.name,
            workspace=unconstrained.workspace,
            workspace_limit=workspace_limit,
            unconstrained_time=unconstrained.time,
            admitted=constrained.algo.name if constrained else None,
            admitted_time=constrained.time if constrained else None,
        )
    winner = choice[batch]
    for size in benchmark.sizes:
        micro = t1.get(size)
        if micro is None:
            rec.record(
                "candidate.infeasible", kernel=key, micro_batch=size,
                workspace_limit=workspace_limit,
            )
            continue
        if size > batch or not math.isfinite(times[batch - size]):
            continue
        # The Eq. 1 final cell: ending the division with T1(size) costs
        # `candidate_time`; strictly worse than the winning cell => pruned.
        candidate_time = times[batch - size] + micro.time
        if candidate_time > times[batch]:
            rec.record(
                "candidate.pruned.dp", kernel=key,
                micro_batch=size, algo=micro.algo.name, t1_time=micro.time,
                candidate_time=candidate_time, best_time=times[batch],
                beaten_by_size=winner.micro_batch if winner else None,
            )
    rec.record("chosen", kernel=key, **observability.configuration_detail(config))
    rec.end_pass(pid, kernel=key, time=config.time, workspace=config.workspace)


def optimize_kernel(
    handle: CudnnHandle,
    geometry: ConvGeometry,
    workspace_limit: int,
    policy: BatchSizePolicy = BatchSizePolicy.POWER_OF_TWO,
    cache: BenchmarkCache | None = None,
) -> WRResult:
    """Benchmark + WR-optimize one convolution kernel."""
    benchmark = benchmark_kernel(handle, geometry, policy, cache=cache)
    configuration = optimize_from_benchmark(benchmark, workspace_limit)
    undivided = benchmark.fastest_micro(geometry.n, workspace_limit)
    return WRResult(
        configuration=configuration,
        benchmark=benchmark,
        workspace_limit=workspace_limit,
        undivided_time=undivided.time if undivided is not None else math.inf,
    )


@dataclass
class WRTraceRow:
    """One row of the DP table (the paper's Fig. 5 illustration)."""

    batch: int
    time: float
    chosen_micro: MicroConfig | None
    configuration: Configuration


def trace_wr(benchmark: KernelBenchmark, workspace_limit: int) -> list[WRTraceRow]:
    """The full WR DP table ``T(1..B)`` with reconstructed configurations.

    Exposes the recurrence the paper illustrates in Fig. 5: for every
    intermediate batch size, the optimal time, the micro-batch chosen as the
    last summand, and the implied full configuration.  Row ``B`` equals
    :func:`optimize_from_benchmark`'s result; intermediate rows show where
    divisions become profitable (useful for teaching and debugging).
    """
    batch = benchmark.geometry.n
    t1 = t1_table(benchmark, workspace_limit)
    times, choice = _wr_dp(t1, batch)
    return [
        WRTraceRow(i, times[i], choice[i], _rebuild(choice, i))
        for i in range(1, batch + 1)
        if math.isfinite(times[i])
    ]


def optimize_greedy_halving(
    handle: CudnnHandle,
    geometry: ConvGeometry,
    workspace_limit: int,
) -> Configuration:
    """Naive halve-until-it-fits baseline (ablation comparator for the DP).

    The obvious heuristic a framework author might hand-roll: keep halving
    the micro-batch size until the *unconstrained-fastest* algorithm's
    workspace fits the limit, then run the whole mini-batch at that size.
    It ignores three effects the DP captures: (a) the fastest-at-full-batch
    algorithm is not necessarily fastest at the divided size, (b) mixed and
    non-power-of-two divisions can dominate uniform halving, and (c) when
    *nothing* fast ever fits, dividing is pure loss -- the heuristic halves
    to micro-batch 1 regardless and can end up several times slower than
    undivided cuDNN (the 8 MiB column of the division ablation), while the
    DP correctly stays whole.  Tests assert the DP never loses to this
    baseline; the ablation benchmark quantifies the gap.
    """
    batch = geometry.n
    micro = batch
    while micro > 1:
        best_any = handle.perf.fastest(geometry.with_batch(micro))
        if best_any is not None and best_any.workspace <= workspace_limit:
            break
        micro = -(-micro // 2)  # ceil halving
    micros: list[MicroConfig] = []
    remaining = batch
    while remaining > 0:
        m = min(micro, remaining)
        chosen = handle.perf.fastest(
            geometry.with_batch(m), workspace_limit=workspace_limit
        )
        if chosen is None:
            raise OptimizationError(
                f"no algorithm fits workspace limit {workspace_limit} at "
                f"micro-batch {m} for {geometry}"
            )
        micros.append(MicroConfig(m, chosen.algo, chosen.time, chosen.workspace))
        remaining -= m
    return Configuration(tuple(micros))
