"""Benchmark and configuration caching (paper section III-D).

mu-cuDNN "caches the optimized configurations and the benchmark results into
memory and optional file-based database respectively, to skip unnecessary
recomputations" -- crucial for networks that replicate convolutional layers
of the same shape (ResNet), and enabling offline benchmarking plus sharing
across a homogeneous GPU cluster via a network filesystem.

Keys incorporate the GPU model and the full kernel geometry (including the
micro-batch size being measured); configuration cache keys additionally
carry the optimizer inputs (policy, workspace limit, WR/WD).  The file
format is a single JSON document, written atomically (write-to-temp +
rename) so concurrent readers on a shared filesystem never observe a torn
file.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path

import repro.telemetry as telemetry
from repro.core.config import Configuration
from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.enums import ALGOS_FOR, ConvType
from repro.cudnn.perfmodel import PerfResult
from repro.cudnn.status import Status
from repro.errors import CacheError

_FORMAT_VERSION = 1


def _bench_key(gpu_name: str, geometry: ConvGeometry) -> str:
    return f"{gpu_name}|{geometry.cache_key()}"


class BenchmarkCache:
    """In-memory benchmark-result cache with optional file persistence.

    Parameters
    ----------
    path:
        Optional database file.  When given, existing contents are loaded
        eagerly and :meth:`save` persists the merged state.  The same file
        can be shared by many processes/nodes (last writer wins, which is
        safe: entries are deterministic for a given GPU model).
    capacity:
        Optional bound on the total number of in-memory entries (benchmark
        tables plus optimized configurations together).  ``None`` -- the
        default, and the paper's behavior -- is unlimited.  When bounded,
        inserting past the limit evicts the least-recently-*used* entry
        (lookups refresh recency) and increments :attr:`evictions`.
    """

    def __init__(
        self,
        path: "str | os.PathLike[str] | None" = None,
        capacity: int | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.path = Path(path) if path is not None else None
        self.capacity = capacity
        #: Owning lock for all mutable state below: the cache is shared by
        #: the parallel evaluator's worker threads and across policies.
        self._lock = threading.RLock()
        self._bench: dict[str, list[PerfResult]] = {}
        self._configs: dict[str, dict] = {}
        #: Hit/miss counters, split by what was looked up: benchmark tables
        #: (the expensive cudnnFind results) vs optimized configurations
        #: (cheap to recompute, but hits skip a whole WR/WD solve).
        self.bench_hits = 0
        self.bench_misses = 0
        self.config_hits = 0
        self.config_misses = 0
        #: Entries dropped by the LRU bound (always 0 when unbounded).
        self.evictions = 0
        #: Global LRU order across both stores; keys are ("bench"|"config",
        #: entry key), values unused.  Maintained even when unbounded so
        #: setting a capacity later via a subclass stays possible.
        self._recency: "OrderedDict[tuple[str, str], None]" = OrderedDict()
        self._dirty = False
        if self.path is not None and self.path.exists():
            self.load()

    @property
    def hits(self) -> int:
        """Total cache hits (benchmark + configuration)."""
        return self.bench_hits + self.config_hits

    @property
    def misses(self) -> int:
        """Total cache misses (benchmark + configuration)."""
        return self.bench_misses + self.config_misses

    @property
    def dirty(self) -> bool:
        """Whether in-memory state has changed since the last save/load."""
        return self._dirty

    # -- benchmark results ----------------------------------------------------

    def get_benchmark(
        self, gpu_name: str, geometry: ConvGeometry
    ) -> list[PerfResult] | None:
        with self._lock:
            key = _bench_key(gpu_name, geometry)
            entry = self._bench.get(key)
            if entry is None:
                self.bench_misses += 1
            else:
                self.bench_hits += 1
                self._recency.move_to_end(("bench", key))
                entry = list(entry)
        if entry is None:
            if telemetry.enabled():
                telemetry.count("cache.misses", help="benchmark/config cache misses")
                telemetry.count("cache.bench.misses",
                                help="benchmark-table cache misses")
                telemetry.event("cache.miss", key=_bench_key(gpu_name, geometry))
            return None
        if telemetry.enabled():
            telemetry.count("cache.hits", help="benchmark/config cache hits")
            telemetry.count("cache.bench.hits", help="benchmark-table cache hits")
            telemetry.event("cache.hit", key=_bench_key(gpu_name, geometry))
        return entry

    def put_benchmark(
        self, gpu_name: str, geometry: ConvGeometry, results: list[PerfResult]
    ) -> None:
        with self._lock:
            key = _bench_key(gpu_name, geometry)
            self._bench[key] = list(results)
            self._recency[("bench", key)] = None
            self._recency.move_to_end(("bench", key))
            self._dirty = True
            evicted = self._evict_over_capacity()
        if evicted and telemetry.enabled():
            telemetry.count("cache.evictions", evicted,
                            help="entries dropped by the LRU capacity bound")

    # -- optimized configurations ----------------------------------------------

    def config_key(
        self,
        gpu_name: str,
        geometry: ConvGeometry,
        policy: str,
        workspace_limit: int,
        scheme: str,
    ) -> str:
        return f"{gpu_name}|{geometry.cache_key()}|{policy}|{workspace_limit}|{scheme}"

    def get_configuration(self, key: str) -> Configuration | None:
        with self._lock:
            data = self._configs.get(key)
            if data is None:
                self.config_misses += 1
            else:
                self.config_hits += 1
                self._recency.move_to_end(("config", key))
        if data is None:
            if telemetry.enabled():
                telemetry.count("cache.misses", help="benchmark/config cache misses")
                telemetry.count("cache.config.misses",
                                help="optimized-configuration cache misses")
                telemetry.event("cache.miss", key=key)
            return None
        if telemetry.enabled():
            telemetry.count("cache.hits", help="benchmark/config cache hits")
            telemetry.count("cache.config.hits",
                            help="optimized-configuration cache hits")
            telemetry.event("cache.hit", key=key)
        return Configuration.from_dict(data)

    def put_configuration(
        self, key: str, conv_type: ConvType, configuration: Configuration
    ) -> None:
        with self._lock:
            self._configs[key] = configuration.to_dict(conv_type)
            self._recency[("config", key)] = None
            self._recency.move_to_end(("config", key))
            self._dirty = True
            evicted = self._evict_over_capacity()
        if evicted and telemetry.enabled():
            telemetry.count("cache.evictions", evicted,
                            help="entries dropped by the LRU capacity bound")

    def _evict_over_capacity(self) -> int:
        """Drop LRU entries past :attr:`capacity` (re-entrant on the lock)."""
        if self.capacity is None:
            return 0
        evicted = 0
        with self._lock:
            while len(self._bench) + len(self._configs) > self.capacity:
                (kind, old_key), _ = self._recency.popitem(last=False)
                if kind == "bench":
                    del self._bench[old_key]
                else:
                    del self._configs[old_key]
                self.evictions += 1
                evicted += 1
        return evicted

    # -- persistence ------------------------------------------------------------

    def save(self) -> None:
        """Atomically persist to :attr:`path` (no-op without a path).

        Skips the write entirely when nothing changed since the last
        save/load -- frameworks call ``save`` once per training step, and
        after warm-up every step would otherwise rewrite an identical
        multi-megabyte JSON document.
        """
        if self.path is None:
            return
        with self._lock:
            if not self._dirty and self.path.exists():
                telemetry.count("cache.saves_skipped",
                                help="persist calls skipped because nothing changed")
                return
            with telemetry.span("cache.save", path=str(self.path), entries=len(self)):
                self._save()
            self._dirty = False
        telemetry.count("cache.saves", help="benchmark DB persist operations")

    def _save(self) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "benchmarks": {
                key: [
                    {
                        "conv_type": key.split("|", 1)[1].split(":", 1)[0],
                        "algo": int(r.algo),
                        "time": r.time,
                        "workspace": r.workspace,
                    }
                    for r in results
                ]
                for key, results in self._bench.items()
            },
            "configurations": self._configs,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load(self) -> None:
        """Load (replacing in-memory state) from :attr:`path`."""
        if self.path is None:
            raise CacheError("cache has no backing file")
        try:
            with open(self.path) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CacheError(f"cannot read benchmark DB {self.path}: {exc}") from exc
        if payload.get("version") != _FORMAT_VERSION:
            raise CacheError(
                f"benchmark DB {self.path} has version {payload.get('version')}, "
                f"expected {_FORMAT_VERSION}"
            )
        bench: dict[str, list[PerfResult]] = {}
        for key, rows in payload.get("benchmarks", {}).items():
            conv_type = ConvType(rows[0]["conv_type"]) if rows else ConvType.FORWARD
            algo_enum = ALGOS_FOR[conv_type]
            bench[key] = [
                PerfResult(
                    algo=algo_enum(r["algo"]),
                    status=Status.SUCCESS,
                    time=float(r["time"]),
                    workspace=int(r["workspace"]),
                )
                for r in rows
            ]
        with self._lock:
            self._bench = bench
            self._configs = dict(payload.get("configurations", {}))
            self._recency = OrderedDict(
                [(("bench", key), None) for key in self._bench]
                + [(("config", key), None) for key in self._configs]
            )
            evicted = self._evict_over_capacity()
            self._dirty = False
        if evicted and telemetry.enabled():
            telemetry.count("cache.evictions", evicted,
                            help="entries dropped by the LRU capacity bound")
        telemetry.event("cache.load", path=str(self.path), entries=len(self))

    def __len__(self) -> int:
        return len(self._bench) + len(self._configs)
