"""Benchmark and configuration caching (paper section III-D).

mu-cuDNN "caches the optimized configurations and the benchmark results into
memory and optional file-based database respectively, to skip unnecessary
recomputations" -- crucial for networks that replicate convolutional layers
of the same shape (ResNet), and enabling offline benchmarking plus sharing
across a homogeneous GPU cluster via a network filesystem.

Keys incorporate the GPU model and the full kernel geometry (including the
micro-batch size being measured); configuration cache keys additionally
carry the optimizer inputs (policy, workspace limit, WR/WD).  The file
format is a single JSON document, written atomically (write-to-temp +
rename) so concurrent readers on a shared filesystem never observe a torn
file.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Callable

import repro.telemetry as telemetry
from repro.core.config import Configuration
from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.enums import ALGOS_FOR, ConvType
from repro.cudnn.perfmodel import PerfResult
from repro.cudnn.status import Status
from repro.errors import CacheError
from repro.telemetry.locks import blocking, new_lock

_FORMAT_VERSION = 1


def _bench_key(gpu_name: str, geometry: ConvGeometry) -> str:
    return f"{gpu_name}|{geometry.cache_key()}"


def _parse_bench_section(section: object, where: str) -> dict[str, list[PerfResult]]:
    """Validate + decode the ``benchmarks`` section of a payload.

    Malformed structure (wrong container types, rows missing fields,
    unknown algorithm/conv-type codes) raises
    :class:`~repro.errors.CacheError` naming the damaged key, instead of
    leaking ``KeyError``/``TypeError``/``ValueError`` from half-parsed data.
    """
    if not isinstance(section, dict):
        raise CacheError(
            f"{where}: 'benchmarks' must be an object, "
            f"got {type(section).__name__}"
        )
    bench: dict[str, list[PerfResult]] = {}
    for key, rows in section.items():
        try:
            conv_type = ConvType(rows[0]["conv_type"]) if rows else ConvType.FORWARD
            algo_enum = ALGOS_FOR[conv_type]
            bench[key] = [
                PerfResult(
                    algo=algo_enum(r["algo"]),
                    status=Status.SUCCESS,
                    time=float(r["time"]),
                    workspace=int(r["workspace"]),
                )
                for r in rows
            ]
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise CacheError(
                f"{where}: corrupt benchmark entry {key!r}: {exc}"
            ) from exc
    return bench


def _parse_config_section(section: object, where: str) -> dict[str, dict]:
    """Validate + copy the ``configurations`` section of a payload.

    Each entry must round-trip through
    :meth:`~repro.core.config.Configuration.from_dict` now, so a damaged
    entry fails at load time with a :class:`~repro.errors.CacheError`
    rather than at some later lookup deep inside an optimizer pass.
    """
    if not isinstance(section, dict):
        raise CacheError(
            f"{where}: 'configurations' must be an object, "
            f"got {type(section).__name__}"
        )
    configs: dict[str, dict] = {}
    for key, data in section.items():
        try:
            Configuration.from_dict(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise CacheError(
                f"{where}: corrupt configuration entry {key!r}: {exc}"
            ) from exc
        configs[key] = dict(data)
    return configs


class BenchmarkCache:
    """In-memory benchmark-result cache with optional file persistence.

    Parameters
    ----------
    path:
        Optional database file.  When given, existing contents are loaded
        eagerly and :meth:`save` persists the merged state.  The same file
        can be shared by many processes/nodes (last writer wins, which is
        safe: entries are deterministic for a given GPU model).
    capacity:
        Optional bound on the total number of in-memory entries (benchmark
        tables plus optimized configurations together).  ``None`` -- the
        default, and the paper's behavior -- is unlimited.  When bounded,
        inserting past the limit evicts the least-recently-*used* entry
        (lookups refresh recency) and increments :attr:`evictions`.
    """

    def __init__(
        self,
        path: "str | os.PathLike[str] | None" = None,
        capacity: int | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.path = Path(path) if path is not None else None
        self.capacity = capacity
        #: Owning lock for all mutable state below: the cache is shared by
        #: the parallel evaluator's worker threads and across policies.
        self._lock = new_lock("bench", reentrant=True)
        #: Serializes file writes only.  ``save`` snapshots the payload
        #: under the data lock, releases it, then writes under this one --
        #: so a multi-megabyte JSON dump never stalls cache lookups.  The
        #: "bench.io" level is blocking-allowed by contract (DESIGN.md
        #: section 14); "bench" is not.
        self._io_lock = new_lock("bench.io")
        self._bench: dict[str, list[PerfResult]] = {}
        self._configs: dict[str, dict] = {}
        #: Hit/miss counters, split by what was looked up: benchmark tables
        #: (the expensive cudnnFind results) vs optimized configurations
        #: (cheap to recompute, but hits skip a whole WR/WD solve).
        self.bench_hits = 0
        self.bench_misses = 0
        self.config_hits = 0
        self.config_misses = 0
        #: Entries dropped by the LRU bound (always 0 when unbounded).
        self.evictions = 0
        #: Global LRU order across both stores; keys are ("bench"|"config",
        #: entry key), values unused.  Maintained even when unbounded so
        #: setting a capacity later via a subclass stays possible.
        self._recency: "OrderedDict[tuple[str, str], None]" = OrderedDict()
        #: Callbacks fired (outside the lock) when :meth:`put_benchmark`
        #: overwrites existing rows with different values -- the signal that
        #: plans derived from the old rows are stale.
        self._listeners: list[Callable[[str, ConvGeometry], None]] = []
        self._dirty = False
        if self.path is not None and self.path.exists():
            self.load()

    @property
    def hits(self) -> int:
        """Total cache hits (benchmark + configuration)."""
        return self.bench_hits + self.config_hits

    @property
    def misses(self) -> int:
        """Total cache misses (benchmark + configuration)."""
        return self.bench_misses + self.config_misses

    @property
    def dirty(self) -> bool:
        """Whether in-memory state has changed since the last save/load."""
        return self._dirty

    # -- benchmark results ----------------------------------------------------

    def get_benchmark(
        self, gpu_name: str, geometry: ConvGeometry
    ) -> list[PerfResult] | None:
        with self._lock:
            key = _bench_key(gpu_name, geometry)
            entry = self._bench.get(key)
            if entry is None:
                self.bench_misses += 1
            else:
                self.bench_hits += 1
                self._recency.move_to_end(("bench", key))
                entry = list(entry)
        if entry is None:
            if telemetry.enabled():
                telemetry.count("cache.misses", help="benchmark/config cache misses")
                telemetry.count("cache.bench.misses",
                                help="benchmark-table cache misses")
                telemetry.event("cache.miss", key=_bench_key(gpu_name, geometry))
            return None
        if telemetry.enabled():
            telemetry.count("cache.hits", help="benchmark/config cache hits")
            telemetry.count("cache.bench.hits", help="benchmark-table cache hits")
            telemetry.event("cache.hit", key=_bench_key(gpu_name, geometry))
        return entry

    def has_benchmark(self, gpu_name: str, geometry: ConvGeometry) -> bool:
        """Whether benchmark rows exist, without counting a hit or miss.

        A pure peek for schedulers deciding *where* to run a solve: the
        probe must not perturb the hit/miss counters (or LRU recency) that
        describe actual cache traffic, or scheduling would skew the very
        locality signal it reads.
        """
        with self._lock:
            return _bench_key(gpu_name, geometry) in self._bench

    def put_benchmark(
        self, gpu_name: str, geometry: ConvGeometry, results: list[PerfResult]
    ) -> None:
        """Insert or refresh benchmark rows for one kernel geometry.

        Overwriting an existing key with *different* rows notifies every
        registered invalidation listener (outside the lock) so dependent
        caches -- plan stores, delta solvers -- can drop stale derivations.
        First-time inserts and byte-identical rewrites stay silent, which
        keeps the solver's miss-then-put path listener-free.  Callers that
        can change rows must not hold locks a listener may take.
        """
        with self._lock:
            key = _bench_key(gpu_name, geometry)
            old = self._bench.get(key)
            changed = old is not None and old != list(results)
            self._bench[key] = list(results)
            self._recency[("bench", key)] = None
            self._recency.move_to_end(("bench", key))
            self._dirty = True
            evicted = self._evict_over_capacity()
            listeners = list(self._listeners) if changed else []
        if evicted and telemetry.enabled():
            telemetry.count("cache.evictions", evicted,
                            help="entries dropped by the LRU capacity bound")
        if listeners and telemetry.enabled():
            telemetry.count("cache.bench.refreshes",
                            help="benchmark rows overwritten with new values")
        for listener in listeners:
            listener(gpu_name, geometry)

    def add_invalidation_listener(
        self, listener: Callable[[str, ConvGeometry], None]
    ) -> None:
        """Register ``listener(gpu_name, geometry)`` for row refreshes."""
        with self._lock:
            self._listeners.append(listener)

    def remove_invalidation_listener(
        self, listener: Callable[[str, ConvGeometry], None]
    ) -> None:
        """Unregister a listener; unknown listeners are ignored."""
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    # -- optimized configurations ----------------------------------------------

    def config_key(
        self,
        gpu_name: str,
        geometry: ConvGeometry,
        policy: str,
        workspace_limit: int,
        scheme: str,
    ) -> str:
        return f"{gpu_name}|{geometry.cache_key()}|{policy}|{workspace_limit}|{scheme}"

    def get_configuration(self, key: str) -> Configuration | None:
        with self._lock:
            data = self._configs.get(key)
            if data is None:
                self.config_misses += 1
            else:
                self.config_hits += 1
                self._recency.move_to_end(("config", key))
        if data is None:
            if telemetry.enabled():
                telemetry.count("cache.misses", help="benchmark/config cache misses")
                telemetry.count("cache.config.misses",
                                help="optimized-configuration cache misses")
                telemetry.event("cache.miss", key=key)
            return None
        if telemetry.enabled():
            telemetry.count("cache.hits", help="benchmark/config cache hits")
            telemetry.count("cache.config.hits",
                            help="optimized-configuration cache hits")
            telemetry.event("cache.hit", key=key)
        return Configuration.from_dict(data)

    def put_configuration(
        self, key: str, conv_type: ConvType, configuration: Configuration
    ) -> None:
        with self._lock:
            self._configs[key] = configuration.to_dict(conv_type)
            self._recency[("config", key)] = None
            self._recency.move_to_end(("config", key))
            self._dirty = True
            evicted = self._evict_over_capacity()
        if evicted and telemetry.enabled():
            telemetry.count("cache.evictions", evicted,
                            help="entries dropped by the LRU capacity bound")

    def _evict_over_capacity(self) -> int:
        """Drop LRU entries past :attr:`capacity` (re-entrant on the lock)."""
        if self.capacity is None:
            return 0
        evicted = 0
        with self._lock:
            while len(self._bench) + len(self._configs) > self.capacity:
                (kind, old_key), _ = self._recency.popitem(last=False)
                if kind == "bench":
                    del self._bench[old_key]
                else:
                    del self._configs[old_key]
                self.evictions += 1
                evicted += 1
        return evicted

    # -- persistence ------------------------------------------------------------

    def save(self) -> None:
        """Atomically persist to :attr:`path` (no-op without a path).

        Skips the write entirely when nothing changed since the last
        save/load -- frameworks call ``save`` once per training step, and
        after warm-up every step would otherwise rewrite an identical
        multi-megabyte JSON document.
        """
        if self.path is None:
            return
        with self._io_lock:
            with self._lock:
                if not self._dirty and self.path.exists():
                    telemetry.count("cache.saves_skipped",
                                    help="persist calls skipped because "
                                         "nothing changed")
                    return
                payload = {"version": _FORMAT_VERSION, **self.export_payload()}
                entries = len(self)
                self._dirty = False
            # The write happens with only the io lock held: lookups and
            # inserts proceed against the snapshot-consistent payload.
            try:
                with telemetry.span(
                    "cache.save", path=str(self.path), entries=entries
                ):
                    self._save(payload)
            except BaseException:
                with self._lock:
                    self._dirty = True  # the state never reached disk
                raise
        telemetry.count("cache.saves", help="benchmark DB persist operations")

    def export_payload(self) -> dict:
        """The persistable sections (a deep-enough copy, safe to serialize).

        This is the schema the file DB and the plan-snapshot backend
        (:mod:`repro.persistence`) share: ``benchmarks`` maps cache keys to
        benchmark rows, ``configurations`` maps config keys to serialized
        :class:`~repro.core.config.Configuration` dicts.
        """
        with self._lock:
            return {
                "benchmarks": {
                    key: [
                        {
                            "conv_type": key.split("|", 1)[1].split(":", 1)[0],
                            "algo": int(r.algo),
                            "time": r.time,
                            "workspace": r.workspace,
                        }
                        for r in results
                    ]
                    for key, results in self._bench.items()
                },
                "configurations": {
                    key: dict(value) for key, value in self._configs.items()
                },
            }

    def _save(self, payload: dict) -> None:
        blocking("cache.save")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load(self) -> None:
        """Load (replacing in-memory state) from :attr:`path`.

        A file that cannot be read or parsed -- missing, empty, truncated
        mid-document, or structurally malformed (sections of the wrong
        type, benchmark rows missing fields) -- raises
        :class:`~repro.errors.CacheError` with the offending path, never a
        raw ``KeyError``/``TypeError`` traceback: a shared benchmark DB on
        a network filesystem *will* eventually be half-written or damaged,
        and the caller needs "the DB is corrupt" as a routable condition.
        """
        if self.path is None:
            raise CacheError("cache has no backing file")
        blocking("cache.load")
        try:
            with open(self.path) as fh:
                text = fh.read()
        except OSError as exc:
            raise CacheError(f"cannot read benchmark DB {self.path}: {exc}") from exc
        if not text.strip():
            raise CacheError(f"benchmark DB {self.path} is empty")
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CacheError(
                f"benchmark DB {self.path} is not valid JSON "
                f"(truncated or corrupt?): {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise CacheError(
                f"benchmark DB {self.path} must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        if payload.get("version") != _FORMAT_VERSION:
            raise CacheError(
                f"benchmark DB {self.path} has version {payload.get('version')}, "
                f"expected {_FORMAT_VERSION}"
            )
        bench = _parse_bench_section(payload.get("benchmarks", {}), str(self.path))
        configs = _parse_config_section(
            payload.get("configurations", {}), str(self.path)
        )
        with self._lock:
            self._bench = bench
            self._configs = configs
            self._recency = OrderedDict(
                [(("bench", key), None) for key in self._bench]
                + [(("config", key), None) for key in self._configs]
            )
            evicted = self._evict_over_capacity()
            self._dirty = False
        if evicted and telemetry.enabled():
            telemetry.count("cache.evictions", evicted,
                            help="entries dropped by the LRU capacity bound")
        telemetry.event("cache.load", path=str(self.path), entries=len(self))

    def import_payload(
        self, payload: dict, *, only_gpu: str | None = None
    ) -> int:
        """Merge a :meth:`export_payload`-shaped payload into this cache.

        Existing entries always win (keep-local): benchmark rows are
        deterministic per GPU model, so a key already measured locally needs
        no replacement.  ``only_gpu`` restricts the import to entries whose
        key's GPU prefix matches -- the isolation rule for snapshots merged
        across heterogeneous fleets.  Returns the number of entries added;
        malformed payloads raise :class:`~repro.errors.CacheError`.
        """
        bench = _parse_bench_section(payload.get("benchmarks", {}), "import")
        configs = _parse_config_section(
            payload.get("configurations", {}), "import"
        )
        added = 0
        with self._lock:
            for key, results in bench.items():
                if only_gpu is not None and key.split("|", 1)[0] != only_gpu:
                    continue
                if key in self._bench:
                    continue
                self._bench[key] = results
                self._recency[("bench", key)] = None
                added += 1
            for key, data in configs.items():
                if only_gpu is not None and key.split("|", 1)[0] != only_gpu:
                    continue
                if key in self._configs:
                    continue
                self._configs[key] = data
                self._recency[("config", key)] = None
                added += 1
            if added:
                self._dirty = True
            evicted = self._evict_over_capacity()
        if evicted and telemetry.enabled():
            telemetry.count("cache.evictions", evicted,
                            help="entries dropped by the LRU capacity bound")
        return added

    def __len__(self) -> int:
        return len(self._bench) + len(self._configs)
