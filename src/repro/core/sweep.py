"""Cross-limit sweep solvers: O(breakpoints) instead of O(limits).

The paper's evaluation (Figs. 9, 12, 13, 14 and the ablations) sweeps the
same kernels over many workspace limits.  Re-running the per-limit solvers
at every limit repeats almost all of the work, because both optimizers are
*step functions* of the limit:

* **WR** -- the DP input is the ``T1`` table, and each ``T1(m)`` only
  changes when the limit crosses one of the finitely many distinct result
  workspace sizes measured at size ``m``.  Two limits between consecutive
  *breakpoints* (the union of those workspace sizes over all sizes) admit
  exactly the same result rows, hence build identical ``T1`` tables and
  identical DP outputs.  :func:`sweep_wr` therefore buckets the requested
  limits by breakpoint interval and runs :func:`~repro.core.wr.
  optimize_from_benchmark` once per non-empty interval -- bit-identical
  answers, ``O(breakpoints)`` DP solves.

* **WD** -- a kernel's desirable set under a limit is the full
  (limit-independent) Pareto front truncated to ``workspace <= limit``:
  dominance in (time, workspace) does not depend on the limit, and the
  front is sorted by ascending workspace, so truncation is a *prefix*.
  :func:`sweep_wd` computes each front once and slices per limit.  It then
  solves the *symmetry-reduced* ILP: kernels with identical geometry
  (ResNet's replicated blocks -- 159 kernels but only ~60 distinct) are
  interchangeable in any solution, and naive per-copy branch-and-bound
  re-proves optimality across every permutation of them.  Each class of
  ``r`` interchangeable kernels becomes *one* pick-one group whose items
  are the Pareto front of ``r``-fold sums of the class front (annotated
  with multiplicity counts, so "2 copies run cheap, 1 runs fast" stays
  expressible); the solved counts are disaggregated back to per-kernel
  assignments in canonical order.  Limits are solved ascending, each ILP
  warm-started with the previous limit's optimum (feasible at every larger
  limit); the warm incumbent additionally enables root reduced-cost
  variable fixing inside the solver (``ilp.fixed_vars``).

Exactness: sweeps never approximate.  ``sweep_wr`` runs the very same DP on
the very same ``T1`` tables.  For WD, a dominated class multiset can always
be swapped for its dominator without raising cost or workspace (section
III-C1's theorem lifted to symmetry classes), so the aggregated optimum
equals the per-copy optimum; warm starts only ever *replace* the incumbent
on strict objective improvement.  Per-kernel assignments match the
per-limit solvers exactly because both sides emit the same canonical form
(:func:`~repro.core.wd.canonicalize_symmetric`).  Property-based tests
assert exact equality against the per-limit solvers, including infeasible
limits.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

import repro.observability as observability
import repro.telemetry as telemetry
from repro.core.benchmarker import KernelBenchmark, benchmark_kernel
from repro.core.config import Configuration
from repro.core.ilp import ZeroOneProblem, solve_branch_and_bound
from repro.core.mckp import MCKPItem, solve_mckp
from repro.core.optimizer import KernelPlan, NetworkPlan
from repro.core.pareto import desirable_set
from repro.core.policies import BatchSizePolicy
from repro.core.tensor_solve import solve_network_wr_outcomes
from repro.core.wd import WDKernel, WDResult, symmetry_class_key
from repro.core.wr import optimize_from_benchmark
from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.handle import CudnnHandle
from repro.errors import InfeasibleError, OptimizationError, SolverError
from repro.telemetry.clock import Clock, WallClock
from repro.units import MIB

if TYPE_CHECKING:
    from repro.core.cache import BenchmarkCache

#: Injected time source for ``solve_time`` diagnostics (never in results);
#: swap for a ManualClock to make solver reports byte-reproducible.
_CLOCK: Clock = WallClock()


# ---------------------------------------------------------------------------
# WR sweep
# ---------------------------------------------------------------------------


def wr_breakpoints(benchmark: KernelBenchmark) -> list[int]:
    """All limits at which this kernel's WR answer can change, ascending.

    The union over measured sizes of the distinct result workspace values:
    crossing one admits at least one new table row somewhere; between two
    consecutive values every per-size admissible set -- hence every
    ``T1(m)`` and the whole DP -- is constant.
    """
    points: set[int] = set()
    for size in benchmark.sizes:
        points.update(benchmark.workspace_steps(size))
    return sorted(points)


@dataclass
class WRSweep:
    """Per-limit WR results of one kernel over a limit grid.

    Infeasible limits are recorded in :attr:`errors` (the same
    :class:`~repro.errors.OptimizationError` the per-limit solver raises);
    :meth:`configuration` re-raises it for API parity.
    """

    benchmark: KernelBenchmark
    limits: tuple[int, ...]
    configurations: dict[int, Configuration]
    errors: dict[int, OptimizationError]
    breakpoints: list[int]
    #: DP executions actually performed (== number of occupied intervals).
    dp_solves: int

    @property
    def dp_solves_saved(self) -> int:
        return len(set(self.limits)) - self.dp_solves

    def configuration(self, limit: int) -> Configuration:
        if limit in self.errors:
            raise self.errors[limit]
        return self.configurations[limit]


def sweep_wr(benchmark: KernelBenchmark, limits: Iterable[int]) -> WRSweep:
    """WR-optimize one kernel under every limit in ``limits``.

    Bit-identical to calling :func:`~repro.core.wr.optimize_from_benchmark`
    per limit, at the cost of one DP per *occupied breakpoint interval*.
    (Error messages for infeasible limits quote the interval's
    representative limit; the error type and cause are identical.)
    """
    limits = tuple(int(m) for m in limits)
    rec = observability.recorder()
    pid = -1
    if rec:
        # Opened before the interval loop so each representative DP's own
        # "wr" pass (with its chosen event) nests under this sweep pass.
        pid = rec.begin_pass(
            "sweep.wr", kernel=benchmark.geometry.cache_key(),
            policy=benchmark.policy.value, limits=len(limits),
        )
    with telemetry.span(
        "sweep.wr", kernel=benchmark.geometry.cache_key(),
        policy=benchmark.policy.value, limits=len(limits),
    ) as tspan:
        points = wr_breakpoints(benchmark)
        buckets: dict[int, list[int]] = {}
        for limit in limits:
            buckets.setdefault(bisect.bisect_right(points, limit), []).append(limit)
        configurations: dict[int, Configuration] = {}
        errors: dict[int, OptimizationError] = {}
        for bucket_limits in buckets.values():
            try:
                config = optimize_from_benchmark(benchmark, bucket_limits[0])
            except OptimizationError as exc:
                for limit in bucket_limits:
                    errors[limit] = exc
            else:
                for limit in bucket_limits:
                    configurations[limit] = config
        dp_solves = len(buckets)
        saved = len(set(limits)) - dp_solves
        tspan.set("breakpoints", len(points))
        tspan.set("dp_solves", dp_solves)
        telemetry.count("sweep.breakpoints", len(points),
                        help="distinct WR breakpoints across swept kernels")
        telemetry.count("sweep.intervals_solved", dp_solves,
                        help="occupied breakpoint intervals actually solved")
        telemetry.count("sweep.dp_solves_saved", saved,
                        help="per-limit WR DP executions avoided by interval "
                             "bucketing")
    if rec:
        key = benchmark.geometry.cache_key()
        for interval in sorted(buckets):
            bucket_limits = buckets[interval]
            rec.record(
                "sweep.interval", kernel=key,
                interval=interval,
                representative_limit=bucket_limits[0],
                covered_limits=sorted(bucket_limits),
                feasible=bucket_limits[0] not in errors,
            )
        rec.end_pass(
            pid, kernel=key, breakpoints=len(points), dp_solves=dp_solves,
            dp_solves_saved=saved,
        )
    return WRSweep(
        benchmark=benchmark,
        limits=limits,
        configurations=configurations,
        errors=errors,
        breakpoints=points,
        dp_solves=dp_solves,
    )


@dataclass
class WRNetworkSweep:
    """WR network plans for every limit of a sweep."""

    limits: tuple[int, ...]
    plans: dict[int, NetworkPlan]
    errors: dict[int, OptimizationError]
    sweeps: dict[str, WRSweep] = field(repr=False, default_factory=dict)
    dp_solves: int = 0
    dp_solves_saved: int = 0

    def plan(self, limit: int) -> NetworkPlan:
        if limit in self.errors:
            raise self.errors[limit]
        return self.plans[limit]


def _tensor_shared_sweeps(
    benches: "dict[str, KernelBenchmark]", limits: "tuple[int, ...]"
) -> "dict[str, WRSweep]":
    """Network-wide tensor sweeps, one per distinct geometry.

    Instead of one Python DP per (kernel, occupied interval), limits are
    bucketed on the *network union* of every kernel's breakpoints (a
    superset of each kernel's own grid, so every per-kernel answer is still
    constant within a bucket) and each occupied bucket is answered by one
    tensorized network solve (:func:`~repro.core.tensor_solve.
    solve_network_wr_outcomes`).  Configurations and error types equal the
    serial sweep's; infeasible-limit messages quote the *network* bucket's
    representative limit (same caveat the serial sweep documents for its
    per-kernel representatives).  ``dp_solves`` of the returned sweeps
    counts the tensor passes covering the kernel.
    """
    distinct: dict[str, KernelBenchmark] = {}
    for bench in benches.values():
        distinct.setdefault(bench.geometry.cache_key(), bench)
    union: set[int] = set()
    for bench in distinct.values():
        union.update(bench.workspace_step_union())
    points = sorted(union)
    buckets: dict[int, list[int]] = {}
    for limit in limits:
        buckets.setdefault(bisect.bisect_right(points, limit), []).append(limit)
    configurations: dict[str, dict[int, Configuration]] = {
        key: {} for key in distinct
    }
    errors: dict[str, dict[int, OptimizationError]] = {
        key: {} for key in distinct
    }
    with telemetry.span(
        "sweep.wr.tensor", kernels=len(distinct), limits=len(limits),
        buckets=len(buckets),
    ):
        for bucket_limits in buckets.values():
            configs, errs = solve_network_wr_outcomes(
                distinct, bucket_limits[0]
            )
            for key in distinct:
                if key in errs:
                    for limit in bucket_limits:
                        errors[key][limit] = errs[key]
                else:
                    for limit in bucket_limits:
                        configurations[key][limit] = configs[key]
        if telemetry.enabled():
            telemetry.count("sweep.intervals_solved", len(buckets),
                            help="occupied breakpoint intervals actually "
                                 "solved")
            telemetry.count(
                "sweep.dp_solves_saved",
                len(distinct) * (len(set(limits)) - len(buckets)),
                help="per-limit WR DP executions avoided by interval "
                     "bucketing")
    return {
        key: WRSweep(
            benchmark=bench,
            limits=limits,
            configurations=configurations[key],
            errors=errors[key],
            breakpoints=wr_breakpoints(bench),
            dp_solves=len(buckets),
        )
        for key, bench in distinct.items()
    }


def sweep_network_wr(
    handle: CudnnHandle,
    geometries: dict[str, ConvGeometry],
    limits: Iterable[int],
    policy: BatchSizePolicy = BatchSizePolicy.POWER_OF_TWO,
    cache: BenchmarkCache | None = None,
    backend: str = "serial",
) -> WRNetworkSweep:
    """Per-limit :func:`~repro.core.optimizer.optimize_network_wr`, swept.

    Each kernel is benchmarked once and swept once; plans are assembled per
    limit from the shared sweeps.  Kernels with identical geometry (ResNet's
    replicated blocks) have identical benchmark tables, so they share one
    sweep -- the same deduplication the paper's benchmark cache performs one
    layer down.  A limit where any kernel is infeasible lands in ``errors``
    (the per-limit path would raise on its first infeasible kernel).

    ``backend="serial"`` (default, the BENCH_sweep baseline) runs one
    Python DP per occupied interval per distinct kernel; ``"tensor"``
    answers each occupied *network-union* interval with one tensorized
    network solve (see :func:`_tensor_shared_sweeps`) -- identical plans
    and error types, and what BENCH_tensor measures.
    """
    if backend not in ("serial", "tensor"):
        raise SolverError(
            f"unknown WR sweep backend {backend!r}; use 'serial' or 'tensor'"
        )
    limits = tuple(int(m) for m in limits)
    benches = {
        name: benchmark_kernel(handle, g, policy, cache=cache)
        for name, g in geometries.items()
    }
    shared: dict[str, WRSweep] = {}
    sweeps: dict[str, WRSweep] = {}
    if backend == "tensor":
        shared = _tensor_shared_sweeps(benches, limits)
        for name, bench in benches.items():
            sweeps[name] = shared[bench.geometry.cache_key()]
    else:
        for name, bench in benches.items():
            dedup_key = bench.geometry.cache_key()
            if dedup_key not in shared:
                shared[dedup_key] = sweep_wr(bench, limits)
            sweeps[name] = shared[dedup_key]
    plans: dict[int, NetworkPlan] = {}
    errors: dict[int, OptimizationError] = {}
    benchmark_time = sum(b.benchmark_time for b in benches.values())
    #: Replicated geometries have identical benchmark tables, so their
    #: undivided baseline at a limit is identical too -- look it up once
    #: per (distinct kernel, limit) instead of once per copy.
    undivided_times: dict[tuple[str, int], float] = {}
    for limit in limits:
        plan = NetworkPlan(scheme="wr", policy=policy,
                           benchmark_time=benchmark_time)
        for name, g in geometries.items():
            sweep = sweeps[name]
            if limit in sweep.errors:
                errors[limit] = sweep.errors[limit]
                break
            undivided_key = (g.cache_key(), limit)
            undivided_time = undivided_times.get(undivided_key)
            if undivided_time is None:
                undivided = benches[name].fastest_micro(g.n, limit)
                undivided_time = undivided.time if undivided else math.inf
                undivided_times[undivided_key] = undivided_time
            plan.kernels.append(
                KernelPlan(
                    name=name,
                    geometry=g,
                    configuration=sweep.configurations[limit],
                    undivided_time=undivided_time,
                )
            )
        else:
            plans[limit] = plan
    per_limit_solves = len(geometries) * len(set(limits))
    dp_solves = sum(s.dp_solves for s in shared.values())
    return WRNetworkSweep(
        limits=limits,
        plans=plans,
        errors=errors,
        sweeps=sweeps,
        dp_solves=dp_solves,
        dp_solves_saved=per_limit_solves - dp_solves,
    )


# ---------------------------------------------------------------------------
# WD sweep
# ---------------------------------------------------------------------------


def prepare_wd_kernels(
    handle: CudnnHandle,
    geometries: dict[str, ConvGeometry],
    policy: BatchSizePolicy = BatchSizePolicy.POWER_OF_TWO,
    cache: BenchmarkCache | None = None,
) -> list[WDKernel]:
    """Benchmark kernels and compute their *full* (limit-free) fronts.

    The full front is limit-independent; per-limit desirable sets are
    recovered by prefix truncation in :func:`sweep_wd`.
    """
    kernels: list[WDKernel] = []
    for key, geometry in geometries.items():
        bench = benchmark_kernel(handle, geometry, policy, cache=cache)
        front = desirable_set(bench, workspace_limit=None)
        kernels.append(
            WDKernel(key=key, geometry=geometry, benchmark=bench, desirable=front)
        )
    return kernels


def truncate_front(kernel: WDKernel, limit: int) -> WDKernel:
    """The kernel with its front truncated to ``workspace <= limit``.

    Equals ``desirable_set(kernel.benchmark, workspace_limit=limit)``
    exactly: dominance does not depend on the limit and the front is sorted
    by ascending workspace, so the per-limit front is a prefix of the full
    one.  When the prefix is empty the limit is infeasible for this kernel;
    the per-limit DP is consulted so its exact error is raised.
    """
    cut = bisect.bisect_right([c.workspace for c in kernel.desirable], limit)
    if cut == 0:
        # Re-derive the per-limit error (no-fit vs not-composable) from the
        # same code path the per-limit optimizer uses.
        desirable_set(kernel.benchmark, workspace_limit=limit)
        raise OptimizationError(  # pragma: no cover - defensive
            f"no desirable configuration fits {limit} bytes for "
            f"{kernel.geometry} yet the per-limit front is non-empty"
        )
    return WDKernel(
        key=kernel.key,
        geometry=kernel.geometry,
        benchmark=kernel.benchmark,
        desirable=kernel.desirable[:cut],
    )


def _merged_front(front: list[Configuration], multiplicity: int) -> list:
    """Pareto front of ``multiplicity``-fold sums of ``front``, with counts.

    Items are ``(counts, time, workspace)``: take ``counts[j]`` copies of
    ``front[j]`` with ``sum(counts) == multiplicity``; time and workspace
    are the summed totals (each copy owns its slice of the pooled
    workspace, so workspaces *add* here, unlike WR's per-kernel max).
    Only Pareto optima in (workspace, time) survive each fold: a dominated
    multiset inside a pick-one group under a single capacity row can always
    be swapped for its dominator, so no optimal solution is lost.  Ties are
    broken deterministically (smallest counts vector).
    """
    size = len(front)
    current: dict[tuple[int, ...], tuple[float, int]] = {(0,) * size: (0.0, 0)}
    for _ in range(multiplicity):
        grown: dict[tuple[int, ...], tuple[float, int]] = {}
        for counts, (total_time, total_ws) in current.items():
            for j, config in enumerate(front):
                key = counts[:j] + (counts[j] + 1,) + counts[j + 1:]
                cand = (total_time + config.time, total_ws + config.workspace)
                old = grown.get(key)
                if old is None or cand < old:
                    grown[key] = cand
        ranked = sorted(grown.items(), key=lambda kv: (kv[1][1], kv[1][0], kv[0]))
        current = {}
        best_time = math.inf
        for counts, (total_time, total_ws) in ranked:
            if total_time < best_time:
                current[counts] = (total_time, total_ws)
                best_time = total_time
    return [
        (counts, total_time, total_ws)
        for counts, (total_time, total_ws) in sorted(
            current.items(), key=lambda kv: (kv[1][1], kv[1][0])
        )
    ]


def _aggregated_warm(items_per_class, offsets, prev_choice, num_variables):
    """0-1 vector selecting the previous limit's class multisets, or None.

    The previous counts are padded with zeros to the current (longer)
    prefix length; a multiset that got Pareto-dominated once the larger
    limit admitted new configurations simply yields no warm start.
    """
    if prev_choice is None:
        return None
    x = np.zeros(num_variables)
    for items, offset, counts in zip(items_per_class, offsets, prev_choice):
        if counts is None:
            return None
        width = len(items[0][0])
        padded = counts + (0,) * (width - len(counts))
        for var, (item_counts, _, _) in enumerate(items):
            if item_counts == padded:
                x[offset + var] = 1.0
                break
        else:
            return None
    return x


def _solve_aggregated(class_list, fronts, items_per_class, limit, solver,
                      prev_choice):
    """One symmetry-reduced WD solve; returns per-class counts + metadata."""
    costs: list[float] = []
    weights: list[float] = []
    owner: list[int] = []
    offsets: list[int] = []
    for ci, items in enumerate(items_per_class):
        offsets.append(len(costs))
        for _, total_time, total_ws in items:
            costs.append(total_time)
            weights.append(total_ws / MIB)
            owner.append(ci)
    num_variables = len(costs)
    warm_used = False
    if solver == "ilp":
        a_eq = np.zeros((len(class_list), num_variables))
        for var, ci in enumerate(owner):
            a_eq[ci, var] = 1.0
        problem = ZeroOneProblem(
            costs=np.asarray(costs),
            a_ub=np.asarray(weights)[None, :],
            b_ub=np.asarray([limit / MIB]),
            a_eq=a_eq,
            b_eq=np.ones(len(class_list)),
        )
        x0 = _aggregated_warm(items_per_class, offsets, prev_choice,
                              num_variables)
        warm_used = x0 is not None
        solution = solve_branch_and_bound(problem, warm_start=x0)
        chosen: list[tuple[int, ...] | None] = [None] * len(class_list)
        for var in solution.selected():
            ci = owner[var]
            chosen[ci] = items_per_class[ci][var - offsets[ci]][0]
    elif solver == "mckp":
        groups = [
            [
                MCKPItem(cost=total_time, weight=total_ws, index=i)
                for i, (_, total_time, total_ws) in enumerate(items)
            ]
            for items in items_per_class
        ]
        try:
            sol = solve_mckp(groups, limit)
        except SolverError as exc:
            raise InfeasibleError(str(exc)) from exc
        chosen = [
            items_per_class[ci][pick][0] for ci, pick in enumerate(sol.selection)
        ]
        solution = None
    else:
        raise SolverError(f"unknown WD solver {solver!r}; use 'ilp' or 'mckp'")
    return chosen, solution, num_variables, warm_used


@dataclass
class WDSweep:
    """Per-limit WD results over a limit grid."""

    kernels: list[WDKernel] = field(repr=False, default_factory=list)
    limits: tuple[int, ...] = ()
    results: dict[int, WDResult] = field(default_factory=dict)
    errors: dict[int, Exception] = field(default_factory=dict)
    #: Total branch-and-bound nodes over all solves of the sweep -- the
    #: symmetry-reduced instances need orders of magnitude fewer than the
    #: per-copy per-limit baseline.
    ilp_nodes: int = 0
    #: ILP solves that received a warm start (all but the first feasible
    #: limit; ``ilp.warm_start_hits`` telemetry counts how many tightened
    #: the incumbent, ``ilp.fixed_vars`` the variables they eliminated).
    warm_started_solves: int = 0

    def result(self, limit: int) -> WDResult:
        if limit in self.errors:
            raise self.errors[limit]
        return self.results[limit]


def sweep_wd(
    kernels: list[WDKernel],
    limits: Iterable[int],
    solver: str = "ilp",
) -> WDSweep:
    """WD-solve prepared kernels under every pooled limit in ``limits``.

    ``kernels`` must carry *full* fronts (:func:`prepare_wd_kernels`).
    Fronts are truncated per limit by prefix; interchangeable kernels are
    aggregated into multiplicity-annotated classes (see the module
    docstring) so the branch-and-bound never pays for permutation
    symmetry; limits are solved in ascending order so each ILP can be
    warm-started from the previous optimum, which stays feasible as the
    pool grows.  Assignments are identical to the per-limit
    :func:`~repro.core.wd.optimize` (both emit the canonical symmetric
    form).  ``results[limit].num_variables`` counts the aggregated ILP's
    variables, which is at most the per-copy count.
    """
    limits = tuple(int(m) for m in limits)
    sweep = WDSweep(kernels=kernels, limits=limits)
    classes: dict[tuple, list[WDKernel]] = {}
    for kernel in kernels:
        classes.setdefault(symmetry_class_key(kernel), []).append(kernel)
    class_list = list(classes.values())
    fronts = [members[0].desirable for members in class_list]
    class_workspaces = [[c.workspace for c in front] for front in fronts]
    merged_memo: list[dict[int, list]] = [{} for _ in class_list]
    benchmark_time = sum(k.benchmark.benchmark_time for k in kernels)
    rec = observability.recorder()
    pid = -1
    if rec:
        # Opened before the limit loop so each aggregated ILP's solver.ilp
        # event nests under this sweep pass.
        pid = rec.begin_pass(
            "sweep.wd", solver=solver, kernels=len(kernels),
            classes=len(class_list), limits=len(limits),
        )
    with telemetry.span(
        "sweep.wd", solver=solver, kernels=len(kernels),
        classes=len(class_list), limits=len(limits),
    ) as tspan:
        prev_choice = None
        for limit in sorted(set(limits)):
            start = _CLOCK.now()
            cuts = [bisect.bisect_right(ws, limit) for ws in class_workspaces]
            if any(cut == 0 for cut in cuts):
                try:
                    for members, cut in zip(class_list, cuts):
                        if cut == 0:
                            truncate_front(members[0], limit)
                except OptimizationError as exc:
                    sweep.errors[limit] = exc
                    prev_choice = None
                    continue
            items_per_class = []
            for ci, (members, cut) in enumerate(zip(class_list, cuts)):
                items = merged_memo[ci].get(cut)
                if items is None:
                    items = _merged_front(fronts[ci][:cut], len(members))
                    merged_memo[ci][cut] = items
                items_per_class.append(items)
            try:
                with telemetry.span(
                    "sweep.wd.limit", limit=limit, solver=solver
                ) as lspan:
                    chosen, solution, num_variables, warm_used = \
                        _solve_aggregated(
                            class_list, fronts, items_per_class, limit,
                            solver, prev_choice,
                        )
                    lspan.set("variables", num_variables)
                    lspan.set("warm_start", warm_used)
            except (InfeasibleError, SolverError) as exc:
                sweep.errors[limit] = exc
                prev_choice = None
                continue
            if telemetry.enabled():
                telemetry.count("sweep.wd.solves",
                                help="per-limit WD solves performed by sweeps")
            if rec:
                rec.record(
                    "sweep.warm_start", limit=limit, warm_start=warm_used,
                    variables=num_variables,
                )
            assignments: dict[str, Configuration] = {}
            for members, front, counts in zip(class_list, fronts, chosen):
                configs: list[Configuration] = []
                for j, count in enumerate(counts):
                    configs.extend([front[j]] * count)
                # Ascending-workspace order over members in input order is
                # exactly the canonical form canonicalize_symmetric emits.
                for kernel, config in zip(members, configs):
                    assignments[kernel.key] = config
            result = WDResult(
                assignments=assignments,
                total_workspace_limit=limit,
                kernels=[
                    WDKernel(
                        key=k.key, geometry=k.geometry, benchmark=k.benchmark,
                        desirable=k.desirable[
                            :bisect.bisect_right(
                                [c.workspace for c in k.desirable], limit
                            )
                        ],
                    )
                    for k in kernels
                ],
                num_variables=num_variables,
                solver=solver,
                solve_time=_CLOCK.now() - start,
                ilp=solution,
                benchmark_time=benchmark_time,
            )
            if len(result.assignments) != len(kernels):
                raise SolverError("WD sweep failed to assign every kernel")
            if result.total_workspace > limit:
                sweep.errors[limit] = InfeasibleError(
                    f"WD solution uses {result.total_workspace} bytes > "
                    f"limit {limit}"
                )
                prev_choice = None
                continue
            sweep.results[limit] = result
            if rec:
                for key in sorted(assignments):
                    rec.record(
                        "chosen", kernel=key, limit=limit,
                        **observability.configuration_detail(assignments[key]),
                    )
            if solution is not None:
                sweep.ilp_nodes += solution.nodes_explored
                if warm_used:
                    sweep.warm_started_solves += 1
            prev_choice = chosen
        tspan.set("ilp_nodes", sweep.ilp_nodes)
        tspan.set("solved", len(sweep.results))
    if rec:
        rec.end_pass(
            pid, solver=solver, solved=len(sweep.results),
            errors=len(sweep.errors), ilp_nodes=sweep.ilp_nodes,
            warm_started_solves=sweep.warm_started_solves,
        )
    return sweep


def sweep_network_wd(
    handle: CudnnHandle,
    geometries: dict[str, ConvGeometry],
    limits: Iterable[int],
    policy: BatchSizePolicy = BatchSizePolicy.POWER_OF_TWO,
    solver: str = "ilp",
    cache: BenchmarkCache | None = None,
) -> tuple[WDSweep, dict[int, NetworkPlan]]:
    """Per-limit :func:`~repro.core.optimizer.optimize_network_wd`, swept.

    Returns the raw :class:`WDSweep` plus assembled per-limit network plans
    (same :class:`~repro.core.optimizer.NetworkPlan` shape the harness
    consumes for the non-swept path).
    """
    kernels = prepare_wd_kernels(handle, geometries, policy, cache=cache)
    sweep = sweep_wd(kernels, limits, solver=solver)
    benchmark_time = sum(k.benchmark.benchmark_time for k in kernels)
    plans: dict[int, NetworkPlan] = {}
    for limit, result in sweep.results.items():
        plan = NetworkPlan(scheme="wd", policy=policy,
                           benchmark_time=benchmark_time, wd=result)
        for kernel in kernels:
            micro = kernel.benchmark.fastest_micro(kernel.geometry.n, limit)
            plan.kernels.append(
                KernelPlan(
                    name=kernel.key,
                    geometry=kernel.geometry,
                    configuration=result.assignments[kernel.key],
                    undivided_time=micro.time if micro else math.inf,
                )
            )
        plans[limit] = plan
    return sweep, plans
