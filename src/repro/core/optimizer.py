"""Network-level optimization orchestration.

Convenience layer used by the experiment harness: take every convolution
kernel of a network (as ``name -> ConvGeometry``), optimize under WR (one
limit per kernel) or WD (one pooled limit), and report per-kernel and total
times, workspace consumption, and optimization cost -- the quantities
Figures 10-14 plot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import repro.observability as observability
import repro.telemetry as telemetry
from repro.core.benchmarker import benchmark_kernel
from repro.core.cache import BenchmarkCache
from repro.core.config import Configuration
from repro.core.pareto import desirable_set
from repro.core.policies import BatchSizePolicy
from repro.core.tensor_solve import solve_network_wr
from repro.core.wd import WDKernel, WDResult, solve_from_kernels
from repro.core.wr import optimize_from_benchmark
from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.handle import CudnnHandle
from repro.errors import SolverError


@dataclass
class KernelPlan:
    """Optimization outcome for one kernel."""

    name: str
    geometry: ConvGeometry
    configuration: Configuration
    #: Plain-cuDNN time under the same per-kernel limit (inf if nothing fits).
    undivided_time: float

    @property
    def speedup(self) -> float:
        if not math.isfinite(self.undivided_time):
            return math.inf
        return self.undivided_time / self.configuration.time


@dataclass
class NetworkPlan:
    """Optimization outcome for a whole network."""

    scheme: str  # "wr" or "wd"
    policy: BatchSizePolicy
    kernels: list[KernelPlan] = field(default_factory=list)
    benchmark_time: float = 0.0
    wd: WDResult | None = None

    @property
    def total_time(self) -> float:
        return sum(k.configuration.time for k in self.kernels)

    @property
    def total_undivided_time(self) -> float:
        return sum(k.undivided_time for k in self.kernels)

    @property
    def total_workspace(self) -> int:
        return sum(k.configuration.workspace for k in self.kernels)

    @property
    def speedup(self) -> float:
        return self.total_undivided_time / self.total_time

    def by_name(self) -> dict[str, KernelPlan]:
        return {k.name: k for k in self.kernels}


def optimize_network_wr(
    handle: CudnnHandle,
    geometries: dict[str, ConvGeometry],
    workspace_limit: int,
    policy: BatchSizePolicy = BatchSizePolicy.POWER_OF_TWO,
    cache: BenchmarkCache | None = None,
    backend: str = "serial",
) -> NetworkPlan:
    """WR: each kernel gets its own ``workspace_limit``-byte slot.

    ``backend="serial"`` (default) runs one Python DP per kernel;
    ``"tensor"`` solves every kernel in one vectorized pass
    (:func:`~repro.core.tensor_solve.solve_network_wr`).  Plans are
    bit-identical; on failure both raise the same error for the first
    failing kernel in input order (the tensor path benchmarks every kernel
    before raising, the serial path stops at the failure).
    """
    if backend not in ("serial", "tensor"):
        raise SolverError(
            f"unknown WR backend {backend!r}; use 'serial' or 'tensor'"
        )
    plan = NetworkPlan(scheme="wr", policy=policy)
    rec = observability.recorder()
    pid = -1
    if rec:
        pid = rec.begin_pass(
            "network", scheme="wr", policy=policy.value,
            kernels=len(geometries), workspace_limit=workspace_limit,
        )
    with telemetry.span(
        "optimize.network", scheme="wr", kernels=len(geometries),
        policy=policy.value, workspace_limit=workspace_limit,
    ) as tspan:
        if backend == "tensor":
            benches = {
                name: benchmark_kernel(handle, g, policy, cache=cache)
                for name, g in geometries.items()
            }
            plan.benchmark_time = sum(
                b.benchmark_time for b in benches.values()
            )
            configs = solve_network_wr(benches, workspace_limit)
            for name, g in geometries.items():
                undivided = benches[name].fastest_micro(g.n, workspace_limit)
                plan.kernels.append(
                    KernelPlan(
                        name=name,
                        geometry=g,
                        configuration=configs[name],
                        undivided_time=(
                            undivided.time if undivided else math.inf
                        ),
                    )
                )
        else:
            for name, g in geometries.items():
                bench = benchmark_kernel(handle, g, policy, cache=cache)
                plan.benchmark_time += bench.benchmark_time
                config = optimize_from_benchmark(
                    bench, workspace_limit, kernel=name
                )
                undivided = bench.fastest_micro(g.n, workspace_limit)
                plan.kernels.append(
                    KernelPlan(
                        name=name,
                        geometry=g,
                        configuration=config,
                        undivided_time=(
                            undivided.time if undivided else math.inf
                        ),
                    )
                )
        tspan.set("benchmark_seconds", plan.benchmark_time)
        tspan.set("total_time", plan.total_time)
    if rec:
        _record_network_baselines(rec, pid, plan)
    return plan


def _record_network_baselines(rec, pid: int, plan: NetworkPlan) -> None:
    """Per-kernel speedup accounting + pass close (provenance on only)."""
    for k in plan.kernels:
        rec.record(
            "kernel.baseline", kernel=k.name,
            undivided_time=k.undivided_time,
            time=k.configuration.time,
            speedup=k.speedup,
        )
    rec.end_pass(
        pid, scheme=plan.scheme, total_time=plan.total_time,
        total_workspace=plan.total_workspace,
    )


def optimize_network_wd(
    handle: CudnnHandle,
    geometries: dict[str, ConvGeometry],
    total_workspace: int,
    policy: BatchSizePolicy = BatchSizePolicy.POWER_OF_TWO,
    solver: str = "ilp",
    cache: BenchmarkCache | None = None,
    max_front: int | None = None,
) -> NetworkPlan:
    """WD: all kernels share one ``total_workspace``-byte pool."""
    plan = NetworkPlan(scheme="wd", policy=policy)
    rec = observability.recorder()
    pid = -1
    if rec:
        pid = rec.begin_pass(
            "network", scheme="wd", policy=policy.value,
            kernels=len(geometries), total_workspace=total_workspace,
        )
    with telemetry.span(
        "optimize.network", scheme="wd", kernels=len(geometries),
        policy=policy.value, total_workspace=total_workspace,
    ) as tspan:
        wd_kernels: list[WDKernel] = []
        undivided: dict[str, float] = {}
        for name, g in geometries.items():
            bench = benchmark_kernel(handle, g, policy, cache=cache)
            plan.benchmark_time += bench.benchmark_time
            front = desirable_set(bench, workspace_limit=total_workspace,
                                  max_front=max_front, kernel=name)
            wd_kernels.append(
                WDKernel(key=name, geometry=g, benchmark=bench, desirable=front)
            )
            micro = bench.fastest_micro(g.n, total_workspace)
            undivided[name] = micro.time if micro else math.inf
        result = solve_from_kernels(wd_kernels, total_workspace, solver=solver)
        plan.wd = result
        for kernel in wd_kernels:
            plan.kernels.append(
                KernelPlan(
                    name=kernel.key,
                    geometry=kernel.geometry,
                    configuration=result.assignments[kernel.key],
                    undivided_time=undivided[kernel.key],
                )
            )
        tspan.set("benchmark_seconds", plan.benchmark_time)
        tspan.set("total_time", plan.total_time)
    if rec:
        _record_network_baselines(rec, pid, plan)
    return plan
