"""``UcudnnHandle_t`` -- the transparent interposition layer (section III-D/E).

The paper's deployment story: replace ``cudnnHandle_t`` with
``UcudnnHandle_t`` (about three lines in Caffe) and keep calling the cuDNN
API.  The wrapper then:

1. intercepts ``cudnnGetConvolution*Algorithm``: records the kernel's
   parameters and the framework's workspace limit, and returns a *virtual*
   algorithm ID with **zero** required workspace -- so the framework never
   allocates its own workspace and never errors;
2. intercepts ``cudnnConvolution*``: on first use it runs the optimizer
   (WR immediately per kernel; WD over every kernel registered so far, per
   section III-E's "first convolution call triggers the optimization"),
   allocates the real workspace itself, and executes the micro-batched
   configuration;
3. delegates everything else to the wrapped ``cudnnHandle_t`` (the paper's
   cast operator) -- here via ``__getattr__``.

In this Python rendering, the substrate's API functions
(:mod:`repro.cudnn.api`) check for the marker attribute
``UCUDNN_INTERPOSE`` and route to the wrapper's methods, which is the
moral equivalent of the C symbol interposition: frameworks written against
the plain cuDNN API run unmodified on a ``UcudnnHandle``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

import repro.telemetry as telemetry
from repro.core import convolution as uconv
from repro.core.benchmarker import benchmark_kernel
from repro.core.cache import BenchmarkCache
from repro.core.config import Configuration
from repro.core.options import Options
from repro.core.pareto import desirable_set
from repro.core.wd import WDKernel, WDResult, solve_from_kernels
from repro.core.wr import optimize_from_benchmark
from repro.cudnn import api
from repro.cudnn.descriptors import (
    ConvGeometry,
    ConvolutionDescriptor,
    FilterDescriptor,
    TensorDescriptor,
)
from repro.cudnn.device import Gpu
from repro.cudnn.enums import Algo, ConvType
from repro.cudnn.handle import CudnnHandle, ExecMode
from repro.cudnn.perfmodel import PerfResult
from repro.cudnn.status import Status
from repro.errors import UcudnnError


@dataclass(frozen=True)
class VirtualAlgo:
    """The virtual algorithm ID mu-cuDNN hands back to the framework.

    Frameworks treat algorithm IDs as opaque tokens they pass straight back
    into ``cudnnConvolution*``; this object plays that role and lets the
    wrapper recognize its own kernels.
    """

    conv_type: ConvType

    def __int__(self) -> int:  # looks like an algo enum value if coerced
        return -1

    @property
    def name(self) -> str:
        return f"UCUDNN_VIRTUAL_{self.conv_type.short}"


class UcudnnHandle:
    """Drop-in replacement for :class:`~repro.cudnn.handle.CudnnHandle`."""

    #: Marker checked by :mod:`repro.cudnn.api` for interposition.
    UCUDNN_INTERPOSE = True

    def __init__(
        self,
        gpu: Gpu | None = None,
        mode: ExecMode = ExecMode.NUMERIC,
        options: Options | None = None,
        cache: BenchmarkCache | None = None,
        jitter: float = 0.0,
        transient_workspace: bool = False,
    ) -> None:
        self.inner = CudnnHandle(gpu=gpu, mode=mode, jitter=jitter)
        #: Caffe keeps one persistent workspace per layer (False); TF-style
        #: scratch allocation acquires/releases around every kernel (True).
        self.transient_workspace = transient_workspace
        self.options = options if options is not None else Options.from_env()
        if cache is not None:
            self.cache = cache
        else:
            self.cache = BenchmarkCache(self.options.benchmark_db)
        #: Workspace limit the framework supplied per registered kernel.
        self._limits: dict[ConvGeometry, int | None] = {}
        #: Registration order (WD wants deterministic kernel ordering).
        self._registered: list[ConvGeometry] = []
        self._frozen = False
        #: Optimized configurations per kernel geometry.
        self._configs: dict[ConvGeometry, Configuration] = {}
        #: Live workspace allocation ids per kernel geometry.
        self._workspaces: dict[ConvGeometry, int] = {}
        self.wd_result: WDResult | None = None
        #: Simulated seconds spent benchmarking (the optimization cost the
        #: paper reports as 34.16 s for `all` vs 3.82 s for `powerOfTwo`).
        self.benchmark_time = 0.0

    # -- the cast operator: delegate everything else to the inner handle ------

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)

    # -- interposed cuDNN API ---------------------------------------------------

    def get_algorithm(
        self,
        g: ConvGeometry,
        preference: api.AlgoPreference | None = None,
        memory_limit: int | None = None,
    ) -> VirtualAlgo:
        """Interposed ``cudnnGetConvolution*Algorithm``.

        Registers the kernel and returns a virtual algorithm; after
        :meth:`freeze` (the paper's post-net-init library call for Caffe)
        repeated registrations are ignored.
        """
        if not self._frozen:
            if g not in self._limits:
                self._registered.append(g)
            self._limits[g] = memory_limit
        return VirtualAlgo(g.conv_type)

    def find_algorithms(self, g: ConvGeometry) -> list[PerfResult]:
        """Interposed ``cudnnFindConvolution*Algorithm``.

        Registers the kernel and reports a single virtual entry with zero
        workspace, satisfying the interface contract so frameworks that
        benchmark (rather than Get) still hand control to mu-cuDNN.
        """
        self.get_algorithm(g)
        return [PerfResult(VirtualAlgo(g.conv_type), Status.SUCCESS, 0.0, 0)]

    def get_workspace_size(self, g: ConvGeometry, algo: Algo | VirtualAlgo) -> int:
        """Interposed ``cudnnGetConvolution*WorkspaceSize``: zero for virtual
        algorithms (mu-cuDNN owns the workspace), passthrough otherwise."""
        if isinstance(algo, VirtualAlgo):
            return 0
        return api.get_workspace_size(self.inner, g, algo)

    def freeze(self) -> None:
        """Stop accepting kernel registrations (Caffe integration hook)."""
        self._frozen = True

    # -- optimization -----------------------------------------------------------

    def _config_cache_key(self, g: ConvGeometry, limit: int, scheme: str) -> str:
        if self.options.deterministic:
            scheme = f"{scheme}:det"
        return self.cache.config_key(
            self.inner.gpu.spec.name, g, self.options.policy.value, limit, scheme
        )

    def _optimize_wr(self, g: ConvGeometry) -> Configuration:
        limit = self._limits.get(g)
        if limit is None:
            limit = self.options.workspace_limit
        key = self._config_cache_key(g, limit, "wr")
        cached = self.cache.get_configuration(key)
        if cached is not None:
            return cached
        with telemetry.span(
            "ucudnn.optimize", scheme="wr", kernel=g.cache_key(),
            workspace_limit=limit,
        ):
            bench = benchmark_kernel(
                self.inner, g, self.options.policy, cache=self.cache,
                deterministic_only=self.options.deterministic,
            )
            self.benchmark_time += bench.benchmark_time
            config = optimize_from_benchmark(bench, limit)
        self.cache.put_configuration(key, g.conv_type, config)
        return config

    def _optimize_wd(self) -> None:
        """Run WD over every registered kernel (first convolution call)."""
        total = self.options.total_workspace
        assert total is not None
        with telemetry.span(
            "ucudnn.optimize", scheme="wd", kernels=len(self._registered),
            total_workspace=total,
        ):
            kernels: list[WDKernel] = []
            for g in self._registered:
                bench = benchmark_kernel(
                    self.inner, g, self.options.policy, cache=self.cache,
                    deterministic_only=self.options.deterministic,
                )
                self.benchmark_time += bench.benchmark_time
                front = desirable_set(bench, workspace_limit=total)
                kernels.append(
                    WDKernel(key=g.cache_key(), geometry=g, benchmark=bench, desirable=front)
                )
            result = solve_from_kernels(kernels, total, solver=self.options.wd_solver)
        self.wd_result = result
        for kernel in kernels:
            self._configs[kernel.geometry] = result.assignments[kernel.key]
        self.freeze()

    def configuration_for(self, g: ConvGeometry) -> Configuration:
        """The (lazily computed) optimized configuration of a kernel."""
        config = self._configs.get(g)
        if config is not None:
            return config
        if self.options.use_wd:
            if g not in self._limits:
                # A kernel the framework never registered: register late and
                # redo WD (conservative; real frameworks always register).
                self._frozen = False
                self.wd_result = None
                self._configs.clear()
                self.release_workspaces()
                self.get_algorithm(g)
            self._optimize_wd()
            return self._configs[g]
        config = self._optimize_wr(g)
        self._configs[g] = config
        return config

    def _workspace_for(self, g: ConvGeometry, config: Configuration) -> int:
        """Ensure the kernel's workspace is available; return its size.

        Persistent mode keeps one slot per kernel alive (Caffe); transient
        mode charges the allocator only for the duration of the execution
        (TF scratch allocation), which :meth:`_run_with_workspace` handles.
        """
        if self.transient_workspace:
            return config.workspace
        if g not in self._workspaces:
            self._workspaces[g] = self.inner.gpu.memory.alloc(
                config.workspace, tag="workspace"
            )
            telemetry.count("workspace.allocations",
                            help="workspace slots allocated")
            telemetry.count("workspace.allocated_bytes", config.workspace,
                            help="workspace bytes allocated")
        return config.workspace

    def _run_with_workspace(
        self, config: Configuration, fn: Callable[[], np.ndarray | None]
    ) -> np.ndarray | None:
        """Run ``fn`` with a transient workspace allocation when enabled."""
        if not self.transient_workspace:
            return fn()
        memory = self.inner.gpu.memory
        ident = memory.alloc(config.workspace, tag="workspace")
        telemetry.count("workspace.allocations", help="workspace slots allocated")
        telemetry.count("workspace.allocated_bytes", config.workspace,
                        help="workspace bytes allocated")
        try:
            return fn()
        finally:
            memory.free(ident)

    def release_workspaces(self) -> None:
        """Free every workspace slot (e.g. between phases)."""
        for ident in self._workspaces.values():
            self.inner.gpu.memory.free(ident)
        self._workspaces.clear()

    # -- interposed execution -----------------------------------------------------

    def convolution_forward(
        self,
        x_desc: TensorDescriptor,
        x: np.ndarray | None,
        w_desc: FilterDescriptor,
        w: np.ndarray | None,
        conv_desc: ConvolutionDescriptor,
        algo: Algo | VirtualAlgo,
        workspace: int,
        y_desc: TensorDescriptor,
        y: np.ndarray | None = None,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> np.ndarray | None:
        g = api.make_geometry(ConvType.FORWARD, x_desc, w_desc, conv_desc, y_desc)
        config = self.configuration_for(g)
        ws = self._workspace_for(g, config)
        return self._run_with_workspace(config, lambda: uconv.forward(
            self.inner, config, x_desc, x, w_desc, w, conv_desc, ws,
            y_desc, y, alpha=alpha, beta=beta,
        ))

    def convolution_backward_data(
        self,
        w_desc: FilterDescriptor,
        w: np.ndarray | None,
        dy_desc: TensorDescriptor,
        dy: np.ndarray | None,
        conv_desc: ConvolutionDescriptor,
        algo: Algo | VirtualAlgo,
        workspace: int,
        dx_desc: TensorDescriptor,
        dx: np.ndarray | None = None,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> np.ndarray | None:
        g = api.make_geometry(ConvType.BACKWARD_DATA, dx_desc, w_desc, conv_desc, dy_desc)
        config = self.configuration_for(g)
        ws = self._workspace_for(g, config)
        return self._run_with_workspace(config, lambda: uconv.backward_data(
            self.inner, config, w_desc, w, dy_desc, dy, conv_desc, ws,
            dx_desc, dx, alpha=alpha, beta=beta,
        ))

    def convolution_backward_filter(
        self,
        x_desc: TensorDescriptor,
        x: np.ndarray | None,
        dy_desc: TensorDescriptor,
        dy: np.ndarray | None,
        conv_desc: ConvolutionDescriptor,
        algo: Algo | VirtualAlgo,
        workspace: int,
        dw_desc: FilterDescriptor,
        dw: np.ndarray | None = None,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> np.ndarray | None:
        g = api.make_geometry(ConvType.BACKWARD_FILTER, x_desc, dw_desc, conv_desc, dy_desc)
        config = self.configuration_for(g)
        ws = self._workspace_for(g, config)
        return self._run_with_workspace(config, lambda: uconv.backward_filter(
            self.inner, config, x_desc, x, dy_desc, dy, conv_desc, ws,
            dw_desc, dw, alpha=alpha, beta=beta,
        ))

    # -- reporting ---------------------------------------------------------------

    def configurations(self) -> dict[ConvGeometry, Configuration]:
        return dict(self._configs)

    def total_workspace_bytes(self) -> int:
        """Sum of live workspace slots (the Fig. 10 memory accounting)."""
        return sum(
            self._configs[g].workspace for g in self._workspaces
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "WD" if self.options.use_wd else "WR"
        return (
            f"UcudnnHandle({mode}, policy={self.options.policy.value}, "
            f"kernels={len(self._configs)})"
        )


def raise_if_virtual(algo: object) -> None:
    """Guard for code paths that must never see a virtual algorithm."""
    if isinstance(algo, VirtualAlgo):
        raise UcudnnError(
            "virtual mu-cuDNN algorithm leaked into a plain cuDNN handle; "
            "pass the UcudnnHandle that issued it"
        )


# Backward-compatible alias matching the paper's C type name.
UcudnnHandle_t = UcudnnHandle
