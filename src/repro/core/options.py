"""Runtime options for mu-cuDNN (env-var driven, paper section III-D).

The paper's library is configured without code changes through environment
variables; we reproduce that surface:

=============================  ==============================================
``UCUDNN_BATCH_SIZE_POLICY``   ``all`` / ``powerOfTwo`` / ``undivided``
                               (default ``powerOfTwo``)
``UCUDNN_WORKSPACE_LIMIT``     per-kernel WR workspace limit in bytes
                               (default 64 MiB, Caffe2's default, section IV)
``UCUDNN_TOTAL_WORKSPACE_SIZE`` total pool in bytes; setting it switches the
                               optimizer from WR to WD (section III-E)
``UCUDNN_BENCHMARK_DB``        path of the file-based benchmark database
``UCUDNN_BENCHMARK_DEVICES``   number of (homogeneous) GPUs used for the
                               parallel micro-configuration evaluation
``UCUDNN_WD_SOLVER``           ``ilp`` (default, the GLPK stand-in) / ``mckp``
``UCUDNN_DETERMINISTIC``       ``1`` restricts selection to bitwise-
                               reproducible algorithms (no atomics-based
                               backward kernels)
=============================  ==============================================

Programmatic construction is equally supported (``Options(...)``); the
environment is only consulted by :meth:`Options.from_env`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.policies import BatchSizePolicy
from repro.units import CAFFE2_DEFAULT_WORKSPACE

ENV_POLICY = "UCUDNN_BATCH_SIZE_POLICY"
ENV_WORKSPACE_LIMIT = "UCUDNN_WORKSPACE_LIMIT"
ENV_TOTAL_WORKSPACE = "UCUDNN_TOTAL_WORKSPACE_SIZE"
ENV_BENCHMARK_DB = "UCUDNN_BENCHMARK_DB"
ENV_BENCHMARK_DEVICES = "UCUDNN_BENCHMARK_DEVICES"
ENV_WD_SOLVER = "UCUDNN_WD_SOLVER"
ENV_DETERMINISTIC = "UCUDNN_DETERMINISTIC"


@dataclass
class Options:
    """Resolved mu-cuDNN options."""

    policy: BatchSizePolicy = BatchSizePolicy.POWER_OF_TWO
    workspace_limit: int = CAFFE2_DEFAULT_WORKSPACE
    total_workspace: int | None = None
    benchmark_db: str | None = None
    benchmark_devices: int = 1
    wd_solver: str = "ilp"
    deterministic: bool = False

    def __post_init__(self):
        if self.workspace_limit < 0:
            raise ValueError("workspace_limit must be >= 0")
        if self.total_workspace is not None and self.total_workspace < 0:
            raise ValueError("total_workspace must be >= 0")
        if self.benchmark_devices < 1:
            raise ValueError("benchmark_devices must be >= 1")
        if self.wd_solver not in ("ilp", "mckp"):
            raise ValueError("wd_solver must be 'ilp' or 'mckp'")

    @property
    def use_wd(self) -> bool:
        """WD mode is enabled by providing a total workspace pool."""
        return self.total_workspace is not None

    @classmethod
    def from_env(cls, env: dict | None = None) -> "Options":
        """Build options from (a copy of) the process environment."""
        env = os.environ if env is None else env
        kwargs: dict = {}
        if ENV_POLICY in env:
            kwargs["policy"] = BatchSizePolicy.parse(env[ENV_POLICY])
        if ENV_WORKSPACE_LIMIT in env:
            kwargs["workspace_limit"] = int(env[ENV_WORKSPACE_LIMIT])
        if ENV_TOTAL_WORKSPACE in env:
            kwargs["total_workspace"] = int(env[ENV_TOTAL_WORKSPACE])
        if ENV_BENCHMARK_DB in env:
            kwargs["benchmark_db"] = env[ENV_BENCHMARK_DB]
        if ENV_BENCHMARK_DEVICES in env:
            kwargs["benchmark_devices"] = int(env[ENV_BENCHMARK_DEVICES])
        if ENV_WD_SOLVER in env:
            kwargs["wd_solver"] = env[ENV_WD_SOLVER]
        if ENV_DETERMINISTIC in env:
            kwargs["deterministic"] = env[ENV_DETERMINISTIC].strip() not in (
                "", "0", "false", "False", "no",
            )
        return cls(**kwargs)
