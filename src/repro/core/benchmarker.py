"""Step 1 of the WR/WD pipeline: micro-batch benchmarking.

For every candidate micro-batch size the policy admits, every convolution
algorithm is "executed" through ``cudnnFindConvolution*Algorithm`` (here: the
performance model) and the resulting (time, workspace) table is recorded.
This is the expensive step the paper's ``powerOfTwo`` policy exists to tame
(34.16 s for ``all`` vs 3.82 s for ``powerOfTwo`` on AlexNet/P100), so the
benchmark *cost* -- the simulated device time spent measuring -- is tracked
explicitly, and results are memoized through an optional
:class:`~repro.core.cache.BenchmarkCache`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import repro.telemetry as telemetry
from repro.core.config import MicroConfig
from repro.core.policies import BatchSizePolicy, candidate_sizes
from repro.cudnn.api import find_algorithms, find_algorithms_batched
from repro.cudnn.enums import AlgoFamily, is_deterministic
from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.handle import CudnnHandle
from repro.cudnn.perfmodel import PerfResult
from repro.telemetry.locks import blocking

if TYPE_CHECKING:
    from repro.core.cache import BenchmarkCache


@dataclass
class KernelBenchmark:
    """Benchmark table of one convolution kernel.

    Attributes
    ----------
    geometry:
        The kernel at its full mini-batch size.
    policy:
        Batch-size policy that selected the measured sizes.
    results:
        ``micro_batch -> [PerfResult ...]`` (successful algorithms only,
        fastest first, *unfiltered* by any workspace limit -- limits are
        applied by the optimizers so one table serves many limits).
    benchmark_time:
        Simulated device seconds spent producing the table (each supported
        algorithm runs once per measured size, as ``cudnnFind*`` does).
    """

    geometry: ConvGeometry
    policy: BatchSizePolicy
    results: dict[int, list[PerfResult]] = field(default_factory=dict)
    benchmark_time: float = 0.0
    #: Query memo for :meth:`fastest_micro` / :meth:`micro_options`, keyed by
    #: (kind, size, limit bucket).  Two limits that admit the same result rows
    #: at a size share a bucket, so limit sweeps stop rescanning the table.
    _query_cache: dict = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def sizes(self) -> list[int]:
        """Measured micro-batch sizes, ascending."""
        return sorted(self.results)

    def invalidate_query_cache(self) -> None:
        """Drop memoized queries after mutating :attr:`results` in place."""
        self._query_cache.clear()

    def workspace_steps(self, micro_batch: int) -> list[int]:
        """Distinct result workspace sizes at one micro-batch, ascending.

        These are the only limit values at which any workspace-limited query
        at this size can change its answer (``T1`` and the per-size option
        front are step functions of the limit with exactly these steps).
        """
        key = ("steps", micro_batch)
        steps = self._query_cache.get(key)
        if steps is None:
            steps = sorted({r.workspace for r in self.results.get(micro_batch, ())})
            self._query_cache[key] = steps
        return steps

    def workspace_step_union(self) -> list[int]:
        """Union of :meth:`workspace_steps` over all measured sizes, ascending.

        These are the WR breakpoints: two limits between consecutive union
        steps admit the same result rows at *every* size, hence identical
        ``T1`` tables and identical WR answers (:mod:`repro.core.sweep`
        buckets limits by exactly this grid).
        """
        key = ("step_union",)
        union = self._query_cache.get(key)
        if union is None:
            points: set[int] = set()
            for size in self.sizes:
                points.update(self.workspace_steps(size))
            union = sorted(points)
            self._query_cache[key] = union
        return union

    def t1_bucket(self, workspace_limit: int | None) -> int | None:
        """Memoization bucket of a limit for whole-table (``T1``) queries.

        Like :meth:`limit_bucket` but over the union of every size's steps:
        limits in the same bucket produce identical ``T1`` tables.  ``None``
        (no limit) is its own bucket.
        """
        if workspace_limit is None:
            return None
        return bisect.bisect_right(self.workspace_step_union(), workspace_limit)

    def limit_bucket(self, micro_batch: int, workspace_limit: int | None) -> int | None:
        """Memoization bucket of a limit at one size.

        The bucket counts how many distinct workspace steps the limit admits;
        limits in the same bucket admit the *same rows* of the result table,
        hence identical answers to every query.  ``None`` (no limit) is its
        own bucket.
        """
        if workspace_limit is None:
            return None
        return bisect.bisect_right(self.workspace_steps(micro_batch), workspace_limit)

    def micro_options(
        self, micro_batch: int, workspace_limit: int | None = None
    ) -> list[MicroConfig]:
        """Pareto-undominated micro-configurations at one size.

        Among algorithms at a fixed micro-batch size, any algorithm that is
        both slower and hungrier than another can never appear in an optimal
        configuration, so it is dropped here (first-level pruning; the
        configuration-level pruning of section III-C1 happens in
        :mod:`repro.core.pareto`).
        """
        key = ("options", micro_batch, self.limit_bucket(micro_batch, workspace_limit))
        cached = self._query_cache.get(key)
        if cached is None:
            cached = self._compute_micro_options(micro_batch, workspace_limit)
            self._query_cache[key] = cached
        return list(cached)

    def _compute_micro_options(
        self, micro_batch: int, workspace_limit: int | None
    ) -> list[MicroConfig]:
        options: list[MicroConfig] = []
        for res in self.results.get(micro_batch, ()):
            if workspace_limit is not None and res.workspace > workspace_limit:
                continue
            dominated = any(
                o.time <= res.time and o.workspace <= res.workspace for o in options
            )
            if dominated:
                continue
            options = [
                o
                for o in options
                if not (res.time <= o.time and res.workspace <= o.workspace)
            ]
            options.append(
                MicroConfig(micro_batch, res.algo, res.time, res.workspace)
            )
        return options

    def restricted(self, families: Iterable[AlgoFamily]) -> "KernelBenchmark":
        """Copy of this table keeping only the given algorithm families.

        Used by the related-work comparisons: ZNNi's micro-batching applies
        only to FFT convolution, so restricting the table to the FFT family
        turns the WR optimizer into a faithful ZNNi-style baseline -- "the
        paper generalizes the schema so that micro-batching can be applied
        to any convolution algorithm" is then a measurable delta.
        """
        from repro.cudnn.enums import family_of  # local: avoid import cycle

        families = set(families)
        out = KernelBenchmark(
            geometry=self.geometry,
            policy=self.policy,
            benchmark_time=self.benchmark_time,
        )
        for size, results in self.results.items():
            out.results[size] = [
                r for r in results
                if family_of(self.geometry.conv_type, r.algo) in families
            ]
        return out

    _MISS = object()  # memo sentinel: fastest_micro legitimately caches None

    def fastest_micro(
        self, micro_batch: int, workspace_limit: int | None = None
    ) -> MicroConfig | None:
        """The paper's ``T1``: fastest micro-configuration within the limit."""
        key = ("fastest", micro_batch, self.limit_bucket(micro_batch, workspace_limit))
        cached = self._query_cache.get(key, self._MISS)
        if cached is self._MISS:
            cached = self._compute_fastest_micro(micro_batch, workspace_limit)
            self._query_cache[key] = cached
        return cached

    def _compute_fastest_micro(
        self, micro_batch: int, workspace_limit: int | None
    ) -> MicroConfig | None:
        best: MicroConfig | None = None
        for res in self.results.get(micro_batch, ()):
            if workspace_limit is not None and res.workspace > workspace_limit:
                continue
            if best is None or res.time < best.time:
                best = MicroConfig(micro_batch, res.algo, res.time, res.workspace)
        return best


def _aggregate_samples(runs: list[list[PerfResult]]) -> list[PerfResult]:
    """Median per-algorithm time over repeated Find invocations.

    Robust benchmarking for noisy measurements: a single sample of a jittery
    kernel can invert the ranking of close algorithms; the per-algorithm
    median is the standard remedy (and what careful users of cudnnFind do).
    """
    by_algo: dict = {}
    for run in runs:
        for r in run:
            by_algo.setdefault(r.algo, []).append(r)
    out = []
    for algo, results in by_algo.items():
        times = sorted(r.time for r in results)
        median = times[len(times) // 2]
        out.append(PerfResult(algo, results[0].status, median, results[0].workspace))
    out.sort(key=lambda r: r.time)
    return out


def benchmark_kernel(
    handle: CudnnHandle,
    geometry: ConvGeometry,
    policy: BatchSizePolicy = BatchSizePolicy.POWER_OF_TWO,
    cache: "BenchmarkCache | None" = None,
    samples: int = 1,
    deterministic_only: bool = False,
) -> KernelBenchmark:
    """Benchmark every (candidate micro-batch size, algorithm) pair.

    ``cache`` is an optional :class:`repro.core.cache.BenchmarkCache`; hits
    contribute zero benchmark time (the whole point of the paper's file DB:
    skip recomputation for replicated layer shapes, e.g. ResNet's repeated
    blocks).

    ``samples > 1`` repeats each Find invocation and keeps the per-algorithm
    median time -- pointless on the deterministic model, essential when the
    handle carries measurement jitter (see the noise-robustness ablation).
    Every sample's cost is charged to ``benchmark_time``.

    ``deterministic_only`` drops cuDNN's atomics-based algorithms (the
    backward ``ALGO_0``s), honoring a framework's reproducibility switch.
    The filter is applied after cache retrieval and before caching occurs on
    the unfiltered table, so a single cache serves both settings.
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    blocking("solver.benchmark_kernel")
    bench = KernelBenchmark(geometry=geometry, policy=policy)
    gpu_name = handle.gpu.spec.name
    with telemetry.span(
        "benchmark.kernel", kernel=geometry.cache_key(), policy=policy.value
    ) as kspan:
        sizes = candidate_sizes(policy, geometry.n)
        found_map: dict[int, list[PerfResult]] = {}
        pending: list[int] = []
        for size in sizes:
            g = geometry.with_batch(size)
            cached = cache.get_benchmark(gpu_name, g) if cache is not None else None
            if cached is not None:
                found_map[size] = cached
            else:
                pending.append(size)

        if pending and samples == 1:
            # Single-sample misses answer in one vectorized pass of the
            # performance model (bit-identical to per-size Find calls).
            all_results = find_algorithms_batched(handle, geometry, pending)
        else:
            all_results = None

        for idx, size in enumerate(pending):
            g = geometry.with_batch(size)
            # One benchmark unit: every algorithm at one micro-batch size,
            # as a single cudnnFind* invocation measures them.
            with telemetry.span("benchmark.find", size=size) as unit:
                if all_results is not None:
                    run = [r for r in all_results[idx] if r.ok]
                    unit_time = sum(r.time for r in run)
                    found = run
                else:
                    unit_time = 0.0
                    runs = []
                    for _ in range(samples):
                        run = [r for r in find_algorithms(handle, g) if r.ok]
                        # cudnnFind executes each supported algorithm once
                        # per sample.
                        unit_time += sum(r.time for r in run)
                        runs.append(run)
                    found = runs[0] if samples == 1 else _aggregate_samples(runs)
                bench.benchmark_time += unit_time
                unit.set("algorithms", len(found))
                unit.set("device_seconds", unit_time)
            if telemetry.enabled():
                telemetry.count(
                    "benchmark.units", help="cudnnFind benchmark units evaluated"
                )
                telemetry.count(
                    "benchmark.device_seconds", unit_time,
                    help="simulated device seconds spent benchmarking",
                )
                telemetry.observe(
                    "benchmark.unit_seconds", unit_time,
                    help="simulated device seconds per benchmark unit",
                )
            if cache is not None:
                cache.put_benchmark(gpu_name, g, found)
            found_map[size] = found

        for size in sizes:
            found = found_map[size]
            if deterministic_only:
                found = [
                    r for r in found if is_deterministic(geometry.conv_type, r.algo)
                ]
            bench.results[size] = found
        kspan.set("sizes", len(bench.results))
        kspan.set("benchmark_seconds", bench.benchmark_time)
    return bench
