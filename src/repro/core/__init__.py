"""mu-cuDNN: the paper's contribution.

Micro-batching optimizer layers over the simulated cuDNN substrate:
configuration types, batch-size policies, the WR dynamic program, the
desirable-set Pareto pruning, the WD 0-1 ILP (with two exact solvers),
benchmark/configuration caching, micro-batched execution, and the
transparent ``UcudnnHandle`` interposition wrapper.
"""

from repro.core.benchmarker import KernelBenchmark, benchmark_kernel
from repro.core.cache import BenchmarkCache
from repro.core.config import EMPTY, Configuration, MicroConfig
from repro.core.handle import UcudnnHandle, UcudnnHandle_t, VirtualAlgo
from repro.core.optimizer import (
    KernelPlan,
    NetworkPlan,
    optimize_network_wd,
    optimize_network_wr,
)
from repro.core.options import Options
from repro.core.pareto import configuration_front, desirable_set, pareto_front
from repro.core.policies import BatchSizePolicy, candidate_sizes
from repro.core.tensor_solve import (
    DeltaSolver,
    DeltaStats,
    bench_fingerprint,
    geometry_family,
    solve_network_wr,
    solve_network_wr_outcomes,
)
from repro.core.sweep import (
    WDSweep,
    WRNetworkSweep,
    WRSweep,
    prepare_wd_kernels,
    sweep_network_wd,
    sweep_network_wr,
    sweep_wd,
    sweep_wr,
    wr_breakpoints,
)
from repro.core.wd import WDKernel, WDResult
from repro.core.wr import WRResult, optimize_kernel

__all__ = [
    "BatchSizePolicy",
    "BenchmarkCache",
    "Configuration",
    "DeltaSolver",
    "DeltaStats",
    "EMPTY",
    "KernelBenchmark",
    "KernelPlan",
    "MicroConfig",
    "NetworkPlan",
    "Options",
    "UcudnnHandle",
    "UcudnnHandle_t",
    "VirtualAlgo",
    "WDKernel",
    "WDResult",
    "WDSweep",
    "WRNetworkSweep",
    "WRResult",
    "WRSweep",
    "bench_fingerprint",
    "benchmark_kernel",
    "candidate_sizes",
    "configuration_front",
    "desirable_set",
    "geometry_family",
    "optimize_kernel",
    "optimize_network_wd",
    "optimize_network_wr",
    "pareto_front",
    "prepare_wd_kernels",
    "solve_network_wr",
    "solve_network_wr_outcomes",
    "sweep_network_wd",
    "sweep_network_wr",
    "sweep_wd",
    "sweep_wr",
    "wr_breakpoints",
]
