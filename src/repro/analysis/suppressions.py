"""Inline suppression comments and their bookkeeping.

Grammar (one comment per line, reason optional but encouraged)::

    x = 1048576  # reprolint: disable=UNI001 -- historical constant, not bytes
    def hot():   # reprolint: disable=ZOV001,DET001 -- whole-function scope
    # reprolint: disable-file=THR001 -- single-threaded by construction

A suppression on a ``def``/``class``/``with`` header line covers that
whole block (including multi-line parenthesized ``with`` headers); a
``disable-file`` comment anywhere covers the file; anything else covers its
own line.  Suppressions that never match a finding of an *enabled* rule are
themselves reported as ``SUP001`` -- stale pragmas are contract rot.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.context import FUNCTION_NODES

#: Statements whose header line(s) extend a suppression over the whole
#: block: function/class definitions and ``with`` statements (whose
#: multi-line parenthesized headers would otherwise leave lines 2+ of the
#: header uncovered).
_BLOCK_NODES = (*FUNCTION_NODES, ast.ClassDef, ast.With, ast.AsyncWith)

_PATTERN = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable|disable-file)\s*="
    r"\s*(?P<rules>[A-Za-z0-9_, ]+?)\s*(?:--(?P<reason>.*))?$"
)


@dataclass
class Suppression:
    """One parsed ``# reprolint: disable`` comment."""

    line: int
    rules: tuple[str, ...]
    file_level: bool
    reason: str
    #: Inclusive line range the suppression covers (file level: whole file).
    start: int = 0
    end: int = 0
    #: Rule ids that actually matched a finding (for SUP001).
    used: set[str] = field(default_factory=set)

    def covers(self, rule_id: str, line: int) -> bool:
        if rule_id not in self.rules:
            return False
        if self.file_level:
            return True
        return self.start <= line <= self.end


def parse_suppressions(source: str) -> list[Suppression]:
    """Extract every suppression comment (tolerates tokenize failures)."""
    suppressions: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PATTERN.search(token.string)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        if not rules:
            continue
        suppressions.append(
            Suppression(
                line=token.start[0],
                rules=rules,
                file_level=match.group("kind") == "disable-file",
                reason=(match.group("reason") or "").strip(),
            )
        )
    return suppressions


def resolve_ranges(suppressions: list[Suppression], tree: ast.Module) -> None:
    """Assign each suppression its covered line range (see module docstring).

    A comment on the header of a ``def``/``class``/``with`` (anywhere from
    the first decorator -- or the ``with`` keyword -- through the line
    before the body starts) covers the whole block; other line comments
    cover only their own line.
    """
    blocks: list[tuple[int, int, int]] = []  # (header_start, header_end, end)
    for node in ast.walk(tree):
        if isinstance(node, _BLOCK_NODES):
            decorators = getattr(node, "decorator_list", [])
            header_start = min(
                [node.lineno] + [d.lineno for d in decorators]
            )
            body_start = node.body[0].lineno if node.body else node.lineno
            end = node.end_lineno if node.end_lineno is not None else node.lineno
            blocks.append((header_start, max(body_start - 1, node.lineno), end))
    for suppression in suppressions:
        if suppression.file_level:
            continue
        suppression.start = suppression.end = suppression.line
        best: tuple[int, int, int] | None = None
        for header_start, header_end, end in blocks:
            if header_start <= suppression.line <= header_end:
                # Innermost matching block wins (largest header_start).
                if best is None or header_start > best[0]:
                    best = (header_start, header_end, end)
        if best is not None:
            suppression.start = best[0]
            suppression.end = best[2]
