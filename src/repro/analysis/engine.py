"""The reprolint engine: walk files, run rules, apply suppressions.

The engine owns everything rule-agnostic: file discovery, parsing, scoping
(per-rule ``paths``/``exclude`` plus the global ``exclude``), severity
resolution from config, suppression matching, and the unused-suppression
(``SUP001``) and parse-failure (``SYN001``) diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import registry
from repro.analysis.concurrency import ConcurrencyModel, analyze_modules
from repro.analysis.config import LintConfig, path_matches
from repro.analysis.context import TreeContext, build_context, package_relpath
from repro.analysis.suppressions import (
    Suppression,
    parse_suppressions,
    resolve_ranges,
)
from repro.analysis.violations import Violation


@dataclass
class Report:
    """Outcome of one lint run."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for v in self.violations if v.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for v in self.violations if v.severity == "warning")

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for violation in self.violations:
            out[violation.rule] = out.get(violation.rule, 0) + 1
        return dict(sorted(out.items()))


def discover_files(paths: list[Path]) -> list[tuple[Path, str]]:
    """``(file, package_relpath)`` for every ``.py`` under the given paths."""
    out: list[tuple[Path, str]] = []
    seen: set[Path] = set()
    for path in paths:
        root = path if path.is_dir() else path.parent
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            resolved = file.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            out.append((file, package_relpath(file, root)))
    out.sort(key=lambda pair: pair[1])
    return out


def check_source(
    source: str, relpath: str, config: LintConfig, path: Path | None = None
) -> list[Violation]:
    """Lint one module's source text (the heart of the engine)."""
    file_for_errors = path if path is not None else Path(relpath)
    try:
        module = build_context(file_for_errors, relpath, source, config)
    except SyntaxError as exc:
        rule = registry.get_rule("SYN001")
        assert rule is not None
        severity = config.severity_for(rule.id, rule.default_severity)
        if not config.enabled(rule.id, rule.default_severity):
            return []
        return [
            Violation(
                file=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                rule=rule.id,
                severity=severity,
                message=f"file does not parse: {exc.msg}",
            )
        ]

    suppressions = parse_suppressions(source)
    resolve_ranges(suppressions, module.tree)

    raw: list[Violation] = []
    enabled_rules: set[str] = set()
    for rule in registry.iter_checkable():
        if not config.enabled(rule.id, rule.default_severity):
            continue
        enabled_rules.add(rule.id)
        options = config.rule_options(rule.id)
        paths_opt = options.get("paths", rule.default_paths)
        exclude_opt = options.get("exclude", rule.default_exclude)
        if not isinstance(paths_opt, (list, tuple)):
            paths_opt = rule.default_paths
        if not isinstance(exclude_opt, (list, tuple)):
            exclude_opt = rule.default_exclude
        if not path_matches(relpath, tuple(str(p) for p in paths_opt)):
            continue
        if path_matches(relpath, tuple(str(p) for p in exclude_opt)):
            continue
        severity = config.severity_for(rule.id, rule.default_severity)
        for violation in rule.check(module):
            raw.append(
                Violation(
                    file=violation.file,
                    line=violation.line,
                    col=violation.col,
                    rule=violation.rule,
                    severity=severity,
                    message=violation.message,
                )
            )

    kept: list[Violation] = []
    for violation in raw:
        suppressed = False
        for suppression in suppressions:
            if suppression.covers(violation.rule, violation.line):
                suppression.used.add(violation.rule)
                suppressed = True
        if not suppressed:
            kept.append(violation)

    sup_rule = registry.get_rule("SUP001")
    assert sup_rule is not None
    if config.enabled(sup_rule.id, sup_rule.default_severity):
        sup_severity = config.severity_for(
            sup_rule.id, sup_rule.default_severity
        )
        known = registry.rule_ids()
        for suppression in suppressions:
            for rule_id in suppression.rules:
                if rule_id not in known:
                    kept.append(
                        Violation(
                            file=relpath, line=suppression.line, col=1,
                            rule=sup_rule.id, severity=sup_severity,
                            message=f"suppression names unknown rule "
                                    f"`{rule_id}`",
                        )
                    )
                elif rule_id in enabled_rules and rule_id not in suppression.used:
                    kept.append(
                        Violation(
                            file=relpath, line=suppression.line, col=1,
                            rule=sup_rule.id, severity=sup_severity,
                            message=f"unused suppression: `{rule_id}` does "
                                    "not fire here; delete the pragma",
                        )
                    )

    kept.sort(key=Violation.sort_key)
    return kept


def lint_paths(paths: list[Path], config: LintConfig) -> Report:
    """Lint every Python file under ``paths`` and aggregate a report.

    Runs the per-module rules file by file (:func:`check_source`), then the
    whole-tree rules (``Rule.whole_tree``) once over every parseable module
    -- those need the cross-module call graph, so they cannot run per file.
    Suppression pragmas work identically for both kinds; the unused-
    suppression check for tree-rule pragmas happens here because only this
    function knows whether a tree rule fired.
    """
    report = Report()
    sources: list[tuple[Path, str, str]] = []
    for file, relpath in discover_files(paths):
        if path_matches(relpath, config.exclude):
            continue
        try:
            source = file.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            report.violations.append(
                Violation(
                    file=relpath, line=1, col=1, rule="SYN001",
                    severity="error", message=f"cannot read file: {exc}",
                )
            )
            report.files_checked += 1
            continue
        report.files_checked += 1
        sources.append((file, relpath, source))
        report.violations.extend(check_source(source, relpath, config, path=file))
    report.violations.extend(_check_tree(sources, config))
    report.violations.sort(key=Violation.sort_key)
    return report


def build_lock_model(paths: list[Path], config: LintConfig) -> ConcurrencyModel:
    """The static lock model for the tree under ``paths`` (for the CLI's
    ``--lock-graph``/``--check-lock-graph``; unparseable files are skipped,
    which the lint pass reports separately as SYN001)."""
    modules = []
    for file, relpath in discover_files(paths):
        if path_matches(relpath, config.exclude):
            continue
        try:
            source = file.read_text(encoding="utf-8")
            modules.append(build_context(file, relpath, source, config))
        except (OSError, UnicodeDecodeError, SyntaxError):
            continue
    return analyze_modules(
        modules,
        level_aliases=config.lock_levels(),
        blocking_allowed=config.blocking_allowed(),
    )


def _check_tree(
    sources: list[tuple[Path, str, str]], config: LintConfig
) -> list[Violation]:
    """Run every enabled whole-tree rule over the parseable modules."""
    tree_rules = [
        rule for rule in registry.iter_tree_rules()
        if config.enabled(rule.id, rule.default_severity)
    ]
    if not tree_rules:
        return []
    modules = []
    suppression_map: dict[str, list[Suppression]] = {}
    for file, relpath, source in sources:
        try:
            module = build_context(file, relpath, source, config)
        except SyntaxError:
            continue  # already reported as SYN001 by check_source
        modules.append(module)
        suppressions = parse_suppressions(source)
        resolve_ranges(suppressions, module.tree)
        suppression_map[relpath] = suppressions

    tree = TreeContext(modules=tuple(modules), config=config)
    raw: list[Violation] = []
    for rule in tree_rules:
        options = config.rule_options(rule.id)
        paths_opt = options.get("paths", rule.default_paths)
        exclude_opt = options.get("exclude", rule.default_exclude)
        if not isinstance(paths_opt, (list, tuple)):
            paths_opt = rule.default_paths
        if not isinstance(exclude_opt, (list, tuple)):
            exclude_opt = rule.default_exclude
        severity = config.severity_for(rule.id, rule.default_severity)
        for violation in rule.check_tree(tree):
            if not path_matches(
                violation.file, tuple(str(p) for p in paths_opt)
            ):
                continue
            if path_matches(
                violation.file, tuple(str(p) for p in exclude_opt)
            ):
                continue
            raw.append(
                Violation(
                    file=violation.file,
                    line=violation.line,
                    col=violation.col,
                    rule=violation.rule,
                    severity=severity,
                    message=violation.message,
                )
            )

    kept: list[Violation] = []
    for violation in raw:
        suppressed = False
        for suppression in suppression_map.get(violation.file, []):
            if suppression.covers(violation.rule, violation.line):
                suppression.used.add(violation.rule)
                suppressed = True
        if not suppressed:
            kept.append(violation)

    sup_rule = registry.get_rule("SUP001")
    assert sup_rule is not None
    if config.enabled(sup_rule.id, sup_rule.default_severity):
        sup_severity = config.severity_for(
            sup_rule.id, sup_rule.default_severity
        )
        tree_rule_ids = {rule.id for rule in tree_rules}
        for relpath in sorted(suppression_map):
            for suppression in suppression_map[relpath]:
                for rule_id in suppression.rules:
                    if (rule_id in tree_rule_ids
                            and rule_id not in suppression.used):
                        kept.append(
                            Violation(
                                file=relpath, line=suppression.line, col=1,
                                rule=sup_rule.id, severity=sup_severity,
                                message=f"unused suppression: `{rule_id}` "
                                        "does not fire here; delete the "
                                        "pragma",
                            )
                        )
    return kept
