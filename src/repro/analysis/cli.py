"""``python -m repro.analysis`` -- the reprolint command line.

Exit codes: 0 clean (warnings allowed), 1 at least one error-severity
finding, 2 usage or configuration problems.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.concurrency import compare_graphs
from repro.analysis.config import ConfigError, find_pyproject, load_config
from repro.analysis.engine import build_lock_model, lint_paths
from repro.analysis.report import (
    render_explanation,
    render_json,
    render_rules,
    render_sarif,
    render_text,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: statically enforce the repo's determinism, "
            "zero-overhead, units, thread-safety, error-taxonomy, and "
            "annotation contracts"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=[],
        help="files or directories to check (default: src/ if present, else .)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="also write the report to FILE (parent dirs created)",
    )
    parser.add_argument(
        "--config", metavar="PYPROJECT", default=None,
        help="pyproject.toml with a [tool.reprolint] table "
             "(default: nearest pyproject.toml above the first path)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list every rule and exit"
    )
    parser.add_argument(
        "--explain", metavar="RULE", default=None,
        help="print one rule's invariant/rationale/fix card and exit",
    )
    parser.add_argument(
        "--lock-graph", metavar="FILE", default=None,
        help="write the static lock graph (canonical JSON) to FILE and exit",
    )
    parser.add_argument(
        "--check-lock-graph", metavar="DYNAMIC_JSON", default=None,
        help="check that the dynamic lock graph dumped by --sanitize-locks "
             "is a subgraph of the static one; exit 1 on any edge or level "
             "the static analysis did not predict",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        sys.stdout.write(render_rules())
        return 0
    if args.explain is not None:
        card = render_explanation(args.explain)
        if card is None:
            sys.stderr.write(f"unknown rule: {args.explain}\n")
            return 2
        sys.stdout.write(card)
        return 0

    raw_paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    paths = [Path(p) for p in raw_paths]
    for path in paths:
        if not path.exists():
            sys.stderr.write(f"no such path: {path}\n")
            return 2

    config_path = args.config
    if config_path is None:
        config_path = find_pyproject(paths[0])
    try:
        config = load_config(config_path)
    except ConfigError as exc:
        sys.stderr.write(f"configuration error: {exc}\n")
        return 2

    if args.lock_graph is not None or args.check_lock_graph is not None:
        model = build_lock_model(paths, config)
        if args.lock_graph is not None:
            out = Path(args.lock_graph)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(model.dump_graph(), encoding="utf-8")
            sys.stdout.write(
                f"wrote static lock graph "
                f"({len(model.graph()['edges'])} edge(s)) to {out}\n"
            )
        if args.check_lock_graph is not None:
            dynamic_path = Path(args.check_lock_graph)
            if not dynamic_path.exists():
                sys.stderr.write(f"no such file: {dynamic_path}\n")
                return 2
            try:
                dynamic = json.loads(
                    dynamic_path.read_text(encoding="utf-8")
                )
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                sys.stderr.write(f"cannot parse {dynamic_path}: {exc}\n")
                return 2
            problems = compare_graphs(model.graph(), dynamic)
            if problems:
                for problem in problems:
                    sys.stderr.write(f"lock-graph mismatch: {problem}\n")
                return 1
            sys.stdout.write(
                "dynamic lock graph is a subgraph of the static one\n"
            )
        return 0

    report = lint_paths(paths, config)
    if args.format == "json":
        rendered = render_json(report)
    elif args.format == "sarif":
        rendered = render_sarif(report)
    else:
        rendered = render_text(report)
    if args.output is not None:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(rendered, encoding="utf-8")
    sys.stdout.write(rendered)
    return report.exit_code
