"""reprolint: AST-based enforcement of this repo's load-bearing contracts.

The package carries three conventions nothing used to check mechanically:
telemetry/provenance are zero-overhead when off (DESIGN.md sections 7-8),
the sweep solvers and explain reports are byte-deterministic, and all byte
accounting goes through :mod:`repro.units` because a one-byte workspace
error flips kernels onto cuDNN's slow fallback path (Fig. 1).  ``reprolint``
turns each convention into a named rule checked on every PR, the way cuDNN
enforces its own contract at the API boundary instead of by reviewer
vigilance::

    PYTHONPATH=src python -m repro.analysis src/              # text report
    PYTHONPATH=src python -m repro.analysis src/ --format=json
    PYTHONPATH=src python -m repro.analysis --list-rules
    PYTHONPATH=src python -m repro.analysis --explain ZOV001

Rules (see ``--explain`` or DESIGN.md section 9 for the full cards):

=======  ==================  ==================================================
id       name                invariant
=======  ==================  ==================================================
DET001   determinism         no wall-clock/ambient-RNG/set-order dependence in
                             ``core/`` and the report builder
ZOV001   zero-overhead       recorder calls behind ``if rec:``; in-loop
                             telemetry behind ``if telemetry.enabled():``
UNI001   units               no raw byte-count literals outside ``units.py``
THR001   thread-safety       shared state in threaded modules mutates under
                             its lock
ERR001   error-taxonomy      no swallowing broad excepts; raises stay inside
                             the ``repro.errors`` taxonomy
API001   public-annotations  public ``core/``/``cudnn/`` signatures are fully
                             annotated
CONC001  lock-order-cycle    whole-tree: the may-hold-while-acquiring lock
                             graph is acyclic (both witness paths reported)
CONC002  blocking-under-lock whole-tree: no sleeps/socket/file I/O under a
                             lock unless its level is blocking-allowed
CONC003  callback-under-lock whole-tree: no arbitrary callbacks invoked
                             while holding a lock
CONC004  split-acquire       whole-tree: ``acquire()`` pairs with
                             ``release()`` in the same function
SUP001   unused-suppression  every ``# reprolint: disable=`` still fires
SYN001   unparseable         every checked file parses
=======  ==================  ==================================================

The CONC rules are one interprocedural pass (:mod:`repro.analysis.
concurrency`) that resolves every lock to a stable identity and level,
and doubles as the static half of the runtime lock sanitizer
(:mod:`repro.telemetry.locks`): ``--lock-graph`` dumps the static graph,
``--check-lock-graph`` gates a dynamic dump against it (DESIGN.md
section 14).

Configuration lives in ``[tool.reprolint]`` in ``pyproject.toml``
(:mod:`repro.analysis.config`); suppressions are inline
``# reprolint: disable=RULE -- reason`` comments with unused-suppression
detection (:mod:`repro.analysis.suppressions`).
"""

from __future__ import annotations

from repro.analysis.concurrency import ConcurrencyModel, compare_graphs
from repro.analysis.config import ConfigError, LintConfig, load_config
from repro.analysis.engine import (
    Report,
    build_lock_model,
    check_source,
    lint_paths,
)
from repro.analysis.registry import all_rules, get_rule
from repro.analysis.report import (
    REPORT_SCHEMA_VERSION,
    render_explanation,
    render_json,
    render_rules,
    render_sarif,
    render_text,
)
from repro.analysis.rules.base import Rule
from repro.analysis.violations import SEVERITIES, Violation

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "SEVERITIES",
    "ConcurrencyModel",
    "ConfigError",
    "LintConfig",
    "Report",
    "Rule",
    "Violation",
    "all_rules",
    "build_lock_model",
    "check_source",
    "compare_graphs",
    "get_rule",
    "lint_paths",
    "load_config",
    "render_explanation",
    "render_json",
    "render_rules",
    "render_sarif",
    "render_text",
]
