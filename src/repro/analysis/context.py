"""Per-module analysis context shared by every rule.

One :class:`ModuleContext` wraps a parsed module with the derived facts the
rules keep needing: a child->parent map, import alias resolution ("which
local name is the ``time`` module here?"), lexical queries ("is this node
inside a loop?", "is it guarded by ``if telemetry.enabled():``?"), and the
package-relative path used for rule scoping.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Mapping

from repro.analysis.config import LintConfig

#: Node types whose bodies iterate (ZOV001's definition of a "hot loop").
LOOP_NODES = (ast.For, ast.AsyncFor, ast.While, ast.ListComp, ast.SetComp,
              ast.DictComp, ast.GeneratorExp)

FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def package_relpath(file: Path, root: Path) -> str:
    """Path of ``file`` relative to the scanned package, posix separators.

    The scoping patterns in the config ("core/", "observability/report.py")
    are relative to the ``repro`` package, so ``src`` and ``repro`` path
    components are stripped: scanning ``src/`` yields ``core/wr.py`` for
    ``src/repro/core/wr.py``, and a fixture tree ``tmp/core/bad.py`` scanned
    at ``tmp`` yields ``core/bad.py``.
    """
    resolved = file.resolve()
    parts = list(resolved.parts)
    if "repro" in parts:
        parts = parts[len(parts) - parts[::-1].index("repro"):]
    else:
        try:
            parts = list(resolved.relative_to(root.resolve()).parts)
        except ValueError:
            parts = [resolved.name]
        while parts and parts[0] in ("src", "repro"):
            parts = parts[1:]
    return "/".join(parts)


@dataclass
class ModuleContext:
    """Everything a rule may ask about one module (see module docstring)."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    config: LintConfig
    _parents: dict[int, ast.AST] = field(default_factory=dict)
    _module_aliases: dict[str, str] = field(default_factory=dict)
    _imported_names: dict[str, tuple[str, str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self._imported_names[alias.asname or alias.name] = (
                        node.module, alias.name
                    )

    # -- tree navigation ------------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, FUNCTION_NODES):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
            if isinstance(ancestor, FUNCTION_NODES):
                # A class defined inside a function shadows nothing here;
                # keep walking only until the nearest class or module.
                continue
        return None

    def in_loop(self, node: ast.AST) -> bool:
        """Whether the node sits inside a loop body or a comprehension."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, LOOP_NODES):
                return True
            if isinstance(ancestor, FUNCTION_NODES):
                return False  # loops outside a nested def don't iterate it
        return False

    def guarded_by(self, node: ast.AST, predicate: Callable[[ast.expr], bool]) -> bool:
        """Whether an ancestor ``if`` (with the node in its *body*) has a
        test satisfying ``predicate`` anywhere in its expression."""
        child: ast.AST = node
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.If) and child not in ancestor.orelse:
                for sub in ast.walk(ancestor.test):
                    if isinstance(sub, ast.expr) and predicate(sub):
                        return True
            child = ancestor
        return False

    def within_with(self, node: ast.AST, predicate: Callable[[ast.expr], bool]) -> bool:
        """Whether an ancestor ``with`` block has a matching context item."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    if predicate(item.context_expr):
                        return True
        return False

    # -- import resolution ----------------------------------------------------

    def resolve_module(self, name: str) -> str | None:
        """The dotted module a bare local name refers to, if it is a module
        alias (``import time as _time`` makes ``_time`` resolve to ``time``)."""
        return self._module_aliases.get(name)

    def resolve_import(self, name: str) -> tuple[str, str] | None:
        """``(module, original_name)`` for a ``from m import x [as y]``."""
        return self._imported_names.get(name)

    def call_target(self, call: ast.Call) -> str | None:
        """Fully-resolved dotted name of a call target, when resolvable.

        ``_time.perf_counter()`` resolves to ``time.perf_counter`` under
        ``import time as _time``; ``perf_counter()`` resolves the same way
        under ``from time import perf_counter``.  Unresolvable targets
        (methods on objects, locals) return ``None``.
        """
        func = call.func
        if isinstance(func, ast.Name):
            imported = self.resolve_import(func.id)
            if imported is not None:
                return f"{imported[0]}.{imported[1]}"
            return None
        if isinstance(func, ast.Attribute):
            base = _dotted_base(func.value)
            if base is None:
                return None
            head = base.split(".")[0]
            module = self.resolve_module(head)
            if module is not None:
                rest = base.split(".")[1:]
                return ".".join([module, *rest, func.attr])
            imported = self.resolve_import(head)
            if imported is not None:
                rest = base.split(".")[1:]
                return ".".join([imported[0], imported[1], *rest, func.attr])
            return None
        return None

    def rule_options(self, rule_id: str) -> Mapping[str, object]:
        return self.config.rule_options(rule_id)


def _dotted_base(node: ast.expr) -> str | None:
    """``a.b.c`` for nested Name/Attribute chains, else ``None``."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def build_context(
    path: Path, relpath: str, source: str, config: LintConfig
) -> ModuleContext:
    """Parse and wrap one module (raises ``SyntaxError`` on bad source)."""
    tree = ast.parse(source, filename=str(path))
    return ModuleContext(
        path=path, relpath=relpath, source=source, tree=tree, config=config
    )


@dataclass
class TreeContext:
    """Every parseable module of one lint run, for whole-tree rules.

    Rules that need interprocedural facts (the CONC family) receive this
    instead of a single :class:`ModuleContext`.  ``cache`` lets several
    rules share one expensive analysis: build it on first use, stash it
    under a stable key, and later rules find it ready.
    """

    modules: tuple[ModuleContext, ...]
    config: LintConfig
    cache: dict[str, object] = field(default_factory=dict)

    def module(self, relpath: str) -> ModuleContext | None:
        for ctx in self.modules:
            if ctx.relpath == relpath:
                return ctx
        return None
