"""Interprocedural lock analysis: the model behind the CONC rules.

The serving stack's concurrency contract is a *lock hierarchy*: every lock
has a level name (``"service"``, ``"store"``, ``"metrics.values"``, ...),
the may-hold-while-acquiring relation over levels must be acyclic, and
blocking work (solver calls, socket I/O, snapshot writes) may only happen
under levels explicitly sanctioned in ``[tool.reprolint.locks]``.  This
module checks those facts statically over the whole tree:

1. **Lock identification.**  Every ``threading.Lock()``/``RLock()``/
   :func:`repro.telemetry.locks.new_lock` assigned to a module global or a
   ``self.<attr>`` gets a stable identity (``"core/cache.py::
   BenchmarkCache._lock"``).  Its *level* is the first argument of
   ``new_lock``, a ``[tool.reprolint.locks.levels]`` alias, or (for
   undeclared plain locks) the identity itself.
2. **A type oracle** resolves receivers through parameter/return/attribute
   annotations, constructor assignments, and dataclass fields -- enough to
   follow ``telemetry.count`` into ``session.metrics.counter(...).inc()``
   without the false aliasing a name-based call graph would invent.
3. **Held-set propagation.**  Each function is walked with the stack of
   ``with <lock>:`` blocks; call edges propagate *may-acquire* and
   *may-block* summaries to a fixpoint, each fact carrying a witness chain
   for reporting.
4. **Findings** feed the CONC rules: lock-order cycles (CONC001, with
   both acquisition paths), blocking under a disallowed lock (CONC002),
   callbacks invoked under a lock (CONC003), and acquire/release split
   across functions (CONC004).

The may-hold-while-acquiring edges also render as a canonical-JSON **lock
graph** with the same schema as the runtime sanitizer's dynamic graph
(:mod:`repro.telemetry.locks`), so CI can assert the dynamic graph is a
subgraph of this one -- evidence the static analysis is sound on the
traffic the soak driver actually generates.

Everything here is deterministic: modules, functions, and facts are
visited in sorted order, and witness chains record the first derivation
found under that order.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.analysis.context import FUNCTION_NODES, ModuleContext, TreeContext
from repro.telemetry.locks import LOCK_GRAPH_SCHEMA_VERSION

#: Fully-resolved dotted calls that block the calling thread.
BLOCKING_DOTTED = frozenset({
    "open",
    "os.fdopen",
    "os.fsync",
    "os.rename",
    "os.replace",
    "select.select",
    "shutil.copy",
    "shutil.move",
    "socket.create_connection",
    "subprocess.check_call",
    "subprocess.run",
    "tempfile.NamedTemporaryFile",
    "tempfile.mkstemp",
    "time.sleep",
})

#: Methods on a typed receiver that block: ``(builtin type, method)``.
BUILTIN_BLOCKING = frozenset({
    ("Condition", "wait"),
    ("Condition", "wait_for"),
    ("Event", "wait"),
    ("Future", "exception"),
    ("Future", "result"),
    ("Queue", "get"),
    ("Queue", "join"),
    ("Queue", "put"),
    ("Thread", "join"),
    ("socket", "accept"),
    ("socket", "close"),
    ("socket", "connect"),
    ("socket", "makefile"),
    ("socket", "recv"),
    ("socket", "recv_into"),
    ("socket", "send"),
    ("socket", "sendall"),
    ("socket", "sendto"),
    ("socket", "shutdown"),
})

#: Solver entry points: intrinsically long-running whatever their body does.
SOLVER_ENTRIES = frozenset({
    "benchmark_kernel",
    "optimize_from_benchmark",
    "optimize_network",
    "solve_network",
})

#: ``from X import Y`` pairs that resolve to blocking-relevant builtins.
_BUILTIN_IMPORTS = {
    ("concurrent.futures", "Future"): "Future",
    ("queue", "Queue"): "Queue",
    ("socket", "socket"): "socket",
    ("threading", "Condition"): "Condition",
    ("threading", "Event"): "Event",
    ("threading", "Thread"): "Thread",
}

#: Dotted annotations/constructor calls for the same builtins.
_BUILTIN_DOTTED = {
    "concurrent.futures.Future": "Future",
    "queue.Queue": "Queue",
    "socket.create_connection": "socket",
    "socket.socket": "socket",
    "threading.Condition": "Condition",
    "threading.Event": "Event",
    "threading.Thread": "Thread",
}

#: Container/function names that look like user-callback registries.
_CALLBACK_RE = re.compile(r"listener|callback|hook", re.IGNORECASE)

#: Methods whose whole job is lock delegation (CONC004 exempt).
_DELEGATION_METHODS = frozenset({
    "__enter__", "__exit__", "acquire", "release", "locked",
})

_LOCK_CTORS = frozenset({"Lock", "RLock"})


@dataclass(frozen=True)
class LockDecl:
    """One statically-identified lock object."""

    identity: str   #: e.g. ``"service/store.py::PlanStore._lock"``
    level: str      #: hierarchy level name (identity when undeclared)
    reentrant: bool
    file: str
    line: int


@dataclass(frozen=True)
class Finding:
    """One raw CONC finding (the rules wrap these as Violations)."""

    rule: str
    file: str
    line: int
    message: str


# -- type oracle values -------------------------------------------------------
# ("class", "relpath::Name") | ("builtin", "socket") | ("callable", "")
_Type = tuple[str, str]


@dataclass
class _ClassInfo:
    relpath: str
    name: str
    key: str
    node: ast.ClassDef
    base_keys: list[str] = field(default_factory=list)
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    attr_types: dict[str, _Type] = field(default_factory=dict)
    locks: dict[str, LockDecl] = field(default_factory=dict)


@dataclass
class _ModuleInfo:
    ctx: ModuleContext
    relpath: str
    classes: dict[str, _ClassInfo] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    module_locks: dict[str, LockDecl] = field(default_factory=dict)
    global_types: dict[str, _Type] = field(default_factory=dict)
    callable_aliases: set[str] = field(default_factory=set)


_Held = tuple[tuple[LockDecl, int], ...]


@dataclass
class _FuncInfo:
    fid: str
    qual: str
    file: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    minfo: _ModuleInfo
    cls: _ClassInfo | None
    #: ``(lock, line, held-before)`` for every ``with <lock>:`` entered.
    direct_acquires: list[tuple[LockDecl, int, _Held]] = field(
        default_factory=list
    )
    #: ``(callee fid, line, held)`` for every resolved repro call.
    calls: list[tuple[str, int, _Held]] = field(default_factory=list)
    #: ``(reason, line, held)`` for directly-blocking call sites.
    blocking_sites: list[tuple[str, int, _Held]] = field(default_factory=list)
    #: ``(description, line, held)`` for callback invocations.
    callback_sites: list[tuple[str, int, _Held]] = field(default_factory=list)
    #: identity -> lines of bare ``.acquire()`` calls.
    acquire_lines: dict[str, list[int]] = field(default_factory=dict)
    #: identity -> lines of bare ``.release()`` calls.
    release_lines: dict[str, list[int]] = field(default_factory=dict)


class ConcurrencyModel:
    """The whole-tree lock model; build once, query from every CONC rule."""

    def __init__(
        self,
        modules: list[ModuleContext],
        level_aliases: Mapping[str, str] | None = None,
        blocking_allowed: tuple[str, ...] = (),
    ) -> None:
        self._level_aliases = dict(level_aliases or {})
        self._blocking_allowed = frozenset(blocking_allowed)
        self._mods: dict[str, _ModuleInfo] = {}
        self._class_index: dict[str, _ClassInfo] = {}
        self._class_by_node: dict[int, _ClassInfo] = {}
        self._funcs: dict[str, _FuncInfo] = {}
        #: (level, level) -> (file, line, witness text), first derivation.
        self.edges: dict[tuple[str, str], tuple[str, int, str]] = {}
        self.findings: list[Finding] = []

        for ctx in sorted(modules, key=lambda m: m.relpath):
            self._mods[ctx.relpath] = _ModuleInfo(ctx=ctx, relpath=ctx.relpath)
        for minfo in self._mods.values():
            self._index_module(minfo)
        for minfo in self._mods.values():
            self._type_module_globals(minfo)
        for minfo in self._mods.values():
            self._type_class_attrs(minfo)
        for minfo in self._mods.values():
            self._collect_functions(minfo)
        self._may_acquire = self._propagate_acquires()
        self._may_block = self._propagate_blocking()
        self._build_edges()
        self._find_cycles()
        self._find_blocking()
        self._find_callbacks()
        self._find_split_acquire_release()
        self.findings.sort(key=lambda f: (f.file, f.line, f.rule, f.message))

    # -- indexing -----------------------------------------------------------

    def _module_relpath(self, dotted: str) -> str | None:
        """The tree-relative path a dotted module name refers to, if any."""
        if dotted == "repro":
            dotted = ""
        elif dotted.startswith("repro."):
            dotted = dotted[len("repro."):]
        stem = dotted.replace(".", "/")
        candidates = (
            ("__init__.py",) if not stem
            else (f"{stem}.py", f"{stem}/__init__.py")
        )
        for candidate in candidates:
            if candidate in self._mods:
                return candidate
        return None

    def _index_module(self, minfo: _ModuleInfo) -> None:
        ctx = minfo.ctx
        for node in ctx.tree.body:
            if isinstance(node, FUNCTION_NODES):
                minfo.functions[node.name] = node
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self._index_global(minfo, target.id, node.value, node)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                # Annotation typing happens in _type_module_globals, after
                # every module's classes are registered.
                if node.value is not None:
                    decl = self._lock_ctor(minfo, node.target.id, node.value,
                                           owner=None)
                    if decl is not None:
                        minfo.module_locks[node.target.id] = decl
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                info = _ClassInfo(
                    relpath=minfo.relpath, name=node.name,
                    key=f"{minfo.relpath}::{node.name}", node=node,
                )
                self._class_by_node[id(node)] = info
                if node.name not in minfo.classes:
                    minfo.classes[node.name] = info
                    self._class_index[info.key] = info
                for item in node.body:
                    if isinstance(item, FUNCTION_NODES):
                        info.methods[item.name] = item

    def _type_module_globals(self, minfo: _ModuleInfo) -> None:
        """Type annotated module globals (``_session: Session | None``).

        Runs after every module's classes are indexed so the annotations can
        name classes defined later in the same file or in other modules.
        """
        for node in minfo.ctx.tree.body:
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                typ = self._resolve_annotation(minfo, node.annotation)
                if typ is not None:
                    minfo.global_types[node.target.id] = typ

    def _index_global(
        self, minfo: _ModuleInfo, name: str, value: ast.expr, node: ast.stmt
    ) -> None:
        decl = self._lock_ctor(minfo, name, value, owner=None)
        if decl is not None:
            minfo.module_locks[name] = decl
            return
        if isinstance(value, ast.Subscript) or isinstance(value, ast.Name):
            # ``SlowLogFn = Callable[[str], None]`` style type aliases.
            if self._resolve_annotation(minfo, value) == ("callable", ""):
                minfo.callable_aliases.add(name)

    def _lock_ctor(
        self, minfo: _ModuleInfo, attr: str, value: ast.expr,
        owner: _ClassInfo | None,
    ) -> LockDecl | None:
        """A :class:`LockDecl` if ``value`` constructs a lock, else None."""
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        ctor: str | None = None
        if isinstance(func, ast.Name):
            imported = minfo.ctx.resolve_import(func.id)
            if imported is not None:
                if imported[0] == "threading" and imported[1] in _LOCK_CTORS:
                    ctor = imported[1]
                elif imported[1] == "new_lock" and imported[0].startswith(
                    "repro"
                ):
                    ctor = "new_lock"
            elif func.id in _LOCK_CTORS:
                ctor = None  # bare Lock() without an import: not resolvable
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            head = minfo.ctx.resolve_module(func.value.id)
            imported = minfo.ctx.resolve_import(func.value.id)
            if head == "threading" and func.attr in _LOCK_CTORS:
                ctor = func.attr
            elif func.attr == "new_lock" and (
                (head or "").startswith("repro")
                or (imported is not None and imported[0].startswith("repro"))
            ):
                ctor = "new_lock"
        if ctor is None:
            return None
        if owner is None:
            identity = f"{minfo.relpath}::{attr}"
        else:
            identity = f"{minfo.relpath}::{owner.name}.{attr}"
        reentrant = ctor == "RLock"
        level = self._level_aliases.get(identity, identity)
        if ctor == "new_lock":
            if value.args and isinstance(value.args[0], ast.Constant) and \
                    isinstance(value.args[0].value, str):
                level = value.args[0].value
            for kw in value.keywords:
                if kw.arg == "reentrant" and isinstance(kw.value, ast.Constant):
                    reentrant = bool(kw.value.value)
        return LockDecl(
            identity=identity, level=level, reentrant=reentrant,
            file=minfo.relpath, line=value.lineno,
        )

    # -- class attribute typing ---------------------------------------------

    def _type_class_attrs(self, minfo: _ModuleInfo) -> None:
        for cls in minfo.classes.values():
            for base in cls.node.bases:
                key = self._annotation_class_key(minfo, base)
                if key is not None:
                    cls.base_keys.append(key)
            for item in cls.node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    typ = self._resolve_annotation(minfo, item.annotation)
                    if typ is not None:
                        cls.attr_types[item.target.id] = typ
            for method in cls.methods.values():
                params = self._param_types(minfo, method)
                for node in ast.walk(method):
                    if not (isinstance(node, ast.Assign)
                            and len(node.targets) == 1):
                        continue
                    target = node.targets[0]
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    decl = self._lock_ctor(
                        minfo, target.attr, node.value, owner=cls
                    )
                    if decl is not None:
                        cls.locks.setdefault(target.attr, decl)
                        continue
                    typ = self._value_type(minfo, params, node.value)
                    if typ is not None:
                        cls.attr_types.setdefault(target.attr, typ)

    def _param_types(
        self, minfo: _ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> dict[str, _Type]:
        out: dict[str, _Type] = {}
        args = func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.annotation is not None:
                typ = self._resolve_annotation(minfo, arg.annotation)
                if typ is not None:
                    out[arg.arg] = typ
        return out

    def _value_type(
        self, minfo: _ModuleInfo, env: dict[str, _Type], value: ast.expr
    ) -> _Type | None:
        """Shallow value typing for ``self.x = <value>`` assignments."""
        if isinstance(value, ast.Name):
            if value.id in env:
                return env[value.id]
            return minfo.global_types.get(value.id)
        if isinstance(value, ast.IfExp):
            return (self._value_type(minfo, env, value.body)
                    or self._value_type(minfo, env, value.orelse))
        if isinstance(value, ast.Call):
            return self._call_result_type(minfo, env, None, value)
        return None

    # -- annotations ---------------------------------------------------------

    def _resolve_annotation(
        self, minfo: _ModuleInfo, node: ast.expr
    ) -> _Type | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
            return self._resolve_annotation(minfo, parsed)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return (self._resolve_annotation(minfo, node.left)
                    or self._resolve_annotation(minfo, node.right))
        if isinstance(node, ast.Subscript):
            base = self._resolve_annotation(minfo, node.value)
            if base == ("callable", ""):
                return base
            if base is not None and base[0] != "callable":
                return base
            # ``Optional[X]`` / ``list[X]``: prefer the inner type only for
            # Optional; bare containers stay untyped.
            if isinstance(node.value, ast.Name) and node.value.id == "Optional":
                return self._resolve_annotation(minfo, node.slice)
            return None
        if isinstance(node, ast.Name):
            return self._named_type(minfo, node.id)
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is None:
                return None
            return self._dotted_type(minfo, dotted)
        return None

    def _named_type(self, minfo: _ModuleInfo, name: str) -> _Type | None:
        if name in ("None", "object", "Any"):
            return None
        if name == "Callable" or name in minfo.callable_aliases:
            imported = minfo.ctx.resolve_import(name)
            if name in minfo.callable_aliases or (
                imported is not None
                and imported[0] in ("typing", "collections.abc")
            ):
                return ("callable", "")
        key = self._class_key_for_name(minfo, name)
        if key is not None:
            return ("class", key)
        imported = minfo.ctx.resolve_import(name)
        if imported is not None and imported in _BUILTIN_IMPORTS:
            return ("builtin", _BUILTIN_IMPORTS[imported])
        return None

    def _dotted_type(self, minfo: _ModuleInfo, dotted: str) -> _Type | None:
        head, _, rest = dotted.partition(".")
        module = minfo.ctx.resolve_module(head)
        if module is not None:
            full = f"{module}.{rest}" if rest else module
            if full in _BUILTIN_DOTTED:
                return ("builtin", _BUILTIN_DOTTED[full])
            if full == "typing.Callable" or full == "collections.abc.Callable":
                return ("callable", "")
            rel = self._module_relpath(module)
            if rel is not None and rest and "." not in rest:
                owner = self._mods[rel]
                if rest in owner.classes:
                    return ("class", owner.classes[rest].key)
            return None
        imported = minfo.ctx.resolve_import(head)
        if imported is not None and rest and "." not in rest:
            rel = self._module_relpath(f"{imported[0]}.{imported[1]}")
            if rel is not None:
                owner = self._mods[rel]
                if rest in owner.classes:
                    return ("class", owner.classes[rest].key)
        return None

    def _class_key_for_name(
        self, minfo: _ModuleInfo, name: str
    ) -> str | None:
        if name in minfo.classes:
            return minfo.classes[name].key
        imported = minfo.ctx.resolve_import(name)
        if imported is not None:
            rel = self._module_relpath(imported[0])
            if rel is not None and imported[1] in self._mods[rel].classes:
                return self._mods[rel].classes[imported[1]].key
        return None

    def _annotation_class_key(
        self, minfo: _ModuleInfo, node: ast.expr
    ) -> str | None:
        typ = self._resolve_annotation(minfo, node)
        if typ is not None and typ[0] == "class":
            return typ[1]
        return None

    # -- MRO lookups ---------------------------------------------------------

    def _mro(self, key: str) -> Iterator[_ClassInfo]:
        seen: set[str] = set()
        queue = [key]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self._class_index.get(current)
            if info is None:
                continue
            yield info
            queue.extend(info.base_keys)

    def _find_attr_type(self, key: str, attr: str) -> _Type | None:
        for info in self._mro(key):
            if attr in info.attr_types:
                return info.attr_types[attr]
        return None

    def _find_method(
        self, key: str, name: str
    ) -> tuple[_ClassInfo, ast.FunctionDef | ast.AsyncFunctionDef] | None:
        for info in self._mro(key):
            if name in info.methods:
                return info, info.methods[name]
        return None

    def _find_class_lock(self, key: str, attr: str) -> LockDecl | None:
        for info in self._mro(key):
            if attr in info.locks:
                return info.locks[attr]
        return None

    def _has_callback_attr(self, key: str, attr: str) -> bool:
        return self._find_attr_type(key, attr) == ("callable", "")

    # -- function collection -------------------------------------------------

    def _collect_functions(self, minfo: _ModuleInfo) -> None:
        for node in ast.walk(minfo.ctx.tree):
            if not isinstance(node, FUNCTION_NODES):
                continue
            qual_parts = [node.name]
            cls: _ClassInfo | None = None
            for ancestor in minfo.ctx.ancestors(node):
                if isinstance(ancestor, ast.ClassDef):
                    if cls is None:
                        cls = self._class_by_node.get(id(ancestor))
                    qual_parts.append(ancestor.name)
                elif isinstance(ancestor, FUNCTION_NODES):
                    qual_parts.append(ancestor.name)
            qual = ".".join(reversed(qual_parts))
            fid = f"{minfo.relpath}::{qual}"
            if fid in self._funcs:
                continue
            finfo = _FuncInfo(
                fid=fid, qual=qual, file=minfo.relpath, node=node,
                minfo=minfo, cls=cls,
            )
            self._funcs[fid] = finfo
            self._walk_function(finfo)

    def _local_env(self, finfo: _FuncInfo) -> dict[str, _Type]:
        minfo = finfo.minfo
        env = self._param_types(minfo, finfo.node)
        if finfo.cls is not None:
            args = finfo.node.args
            positional = (*args.posonlyargs, *args.args)
            if positional and positional[0].arg in ("self", "cls"):
                env.setdefault(positional[0].arg, ("class", finfo.cls.key))
        assigns = [
            stmt for stmt in ast.walk(finfo.node)
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ]
        # Two passes so chained locals (``s = _session; m = s.metrics``)
        # resolve regardless of a single pass's discovery order.
        for _ in range(2):
            for stmt in assigns:
                name = stmt.targets[0].id  # type: ignore[attr-defined]
                if name in env:
                    continue
                typ = self._expr_type(finfo, env, stmt.value)
                if typ is not None:
                    env[name] = typ
        return env

    # -- expression typing ---------------------------------------------------

    def _expr_type(
        self, finfo: _FuncInfo, env: dict[str, _Type], expr: ast.expr
    ) -> _Type | None:
        minfo = finfo.minfo
        if isinstance(expr, ast.Name):
            if expr.id in env:
                return env[expr.id]
            return minfo.global_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base_type = self._expr_type(finfo, env, expr.value)
            if base_type is not None and base_type[0] == "class":
                return self._find_attr_type(base_type[1], expr.attr)
            if isinstance(expr.value, ast.Name):
                # Module attribute access: ``othermod.SOME_GLOBAL``.
                module = minfo.ctx.resolve_module(expr.value.id)
                rel = (self._module_relpath(module)
                       if module is not None else None)
                if rel is not None:
                    return self._mods[rel].global_types.get(expr.attr)
            return None
        if isinstance(expr, ast.IfExp):
            return (self._expr_type(finfo, env, expr.body)
                    or self._expr_type(finfo, env, expr.orelse))
        if isinstance(expr, ast.Call):
            return self._call_result_type(minfo, env, finfo, expr)
        if isinstance(expr, ast.Await):
            return self._expr_type(finfo, env, expr.value)
        return None

    def _call_result_type(
        self, minfo: _ModuleInfo, env: dict[str, _Type],
        finfo: "_FuncInfo | None", call: ast.Call,
    ) -> _Type | None:
        resolved = self._resolve_call(minfo, env, finfo, call)
        if resolved is None:
            return None
        kind, payload = resolved
        if kind == "ctor":
            return ("class", payload)
        if kind == "func":
            target = self._funcs.get(payload)
            pair = ((target.node, target.minfo) if target is not None
                    else self._func_node_for_fid(payload))
            if pair is not None and pair[0].returns is not None:
                return self._resolve_annotation(pair[1], pair[0].returns)
            return None
        if kind == "dotted" and payload in _BUILTIN_DOTTED:
            return ("builtin", _BUILTIN_DOTTED[payload])
        return None

    def _func_node_for_fid(
        self, fid: str
    ) -> "tuple[ast.FunctionDef | ast.AsyncFunctionDef, _ModuleInfo] | None":
        relpath, _, qual = fid.partition("::")
        minfo = self._mods.get(relpath)
        if minfo is None:
            return None
        if qual in minfo.functions:
            return minfo.functions[qual], minfo
        cls_name, _, meth = qual.partition(".")
        cls = minfo.classes.get(cls_name)
        if cls is not None and meth in cls.methods:
            return cls.methods[meth], minfo
        return None

    # -- call resolution -----------------------------------------------------

    def _resolve_call(
        self, minfo: _ModuleInfo, env: dict[str, _Type],
        finfo: "_FuncInfo | None", call: ast.Call,
    ) -> tuple[str, str] | None:
        """``("func", fid)`` | ``("ctor", class key)`` | ``("dotted", name)``
        | ``("builtin_method", "type.method")`` | ``None``."""
        func = call.func
        ctx = minfo.ctx
        if isinstance(func, ast.Name):
            name = func.id
            if name in minfo.functions:
                return ("func", f"{minfo.relpath}::{name}")
            key = self._class_key_for_name(minfo, name)
            if key is not None:
                return ("ctor", key)
            imported = ctx.resolve_import(name)
            if imported is not None:
                rel = self._module_relpath(imported[0])
                if rel is not None:
                    owner = self._mods[rel]
                    if imported[1] in owner.functions:
                        return ("func", f"{rel}::{imported[1]}")
                return ("dotted", f"{imported[0]}.{imported[1]}")
            if name == "open":
                return ("dotted", "open")
            return None
        if not isinstance(func, ast.Attribute):
            return None
        value = func.value
        attr = func.attr
        # ``super().method(...)``
        if (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
                and value.func.id == "super"):
            if finfo is not None and finfo.cls is not None:
                for base_key in finfo.cls.base_keys:
                    found = self._find_method(base_key, attr)
                    if found is not None:
                        return ("func", f"{found[0].relpath}::"
                                        f"{found[0].name}.{attr}")
            return None
        # Module-qualified: ``telemetry.count(...)``, ``time.sleep(...)``.
        if isinstance(value, ast.Name):
            module = ctx.resolve_module(value.id)
            imported = ctx.resolve_import(value.id)
            if module is None and imported is not None:
                # ``from repro import telemetry`` imports a submodule.
                dotted_mod = f"{imported[0]}.{imported[1]}"
                if self._module_relpath(dotted_mod) is not None:
                    module = dotted_mod
            if module is not None:
                rel = self._module_relpath(module)
                if rel is not None:
                    owner = self._mods[rel]
                    if attr in owner.functions:
                        return ("func", f"{rel}::{attr}")
                    if attr in owner.classes:
                        return ("ctor", owner.classes[attr].key)
                    return None
                return ("dotted", f"{module}.{attr}")
        # Typed receiver: ``self.x.method()``, ``store.get()``, chains.
        if finfo is not None:
            receiver = self._expr_type(finfo, env, value)
        else:
            receiver = (self._value_type(minfo, env, value)
                        if isinstance(value, (ast.Name, ast.Call, ast.IfExp))
                        else None)
        if receiver is not None:
            if receiver[0] == "class":
                found = self._find_method(receiver[1], attr)
                if found is not None:
                    return ("func",
                            f"{found[0].relpath}::{found[0].name}.{attr}")
                return None
            if receiver[0] == "builtin":
                return ("builtin_method", f"{receiver[1]}.{attr}")
        target = ctx.call_target(call)
        if target is not None:
            return ("dotted", target)
        return None

    # -- lock expression resolution ------------------------------------------

    def _resolve_lock(
        self, finfo: _FuncInfo, env: dict[str, _Type], expr: ast.expr
    ) -> LockDecl | None:
        minfo = finfo.minfo
        if isinstance(expr, ast.Name):
            lock = minfo.module_locks.get(expr.id)
            if lock is not None:
                return lock
            imported = minfo.ctx.resolve_import(expr.id)
            if imported is not None:
                rel = self._module_relpath(imported[0])
                if rel is not None:
                    return self._mods[rel].module_locks.get(imported[1])
            return None
        if isinstance(expr, ast.Attribute):
            value = expr.value
            if isinstance(value, ast.Name):
                module = minfo.ctx.resolve_module(value.id)
                if module is not None:
                    rel = self._module_relpath(module)
                    if rel is not None:
                        return self._mods[rel].module_locks.get(expr.attr)
            base_type = self._expr_type(finfo, env, value)
            if base_type is not None and base_type[0] == "class":
                return self._find_class_lock(base_type[1], expr.attr)
        return None

    # -- the per-function walk -----------------------------------------------

    def _walk_function(self, finfo: _FuncInfo) -> None:
        env = self._local_env(finfo)
        callback_vars: set[str] = set()

        def visit(node: ast.AST, held: _Held) -> None:
            if isinstance(node, (*FUNCTION_NODES, ast.ClassDef, ast.Lambda)):
                return  # nested definitions run later, not under these locks
            if isinstance(node, (ast.With, ast.AsyncWith)):
                new_held = held
                for item in node.items:
                    visit(item.context_expr, new_held)
                    lock = self._resolve_lock(finfo, env, item.context_expr)
                    if lock is not None:
                        finfo.direct_acquires.append(
                            (lock, item.context_expr.lineno, new_held)
                        )
                        new_held = (*new_held,
                                    (lock, item.context_expr.lineno))
                for child in node.body:
                    visit(child, new_held)
                return
            if isinstance(node, (ast.For, ast.AsyncFor)):
                source = _trailing_name(node.iter)
                if (source is not None and _CALLBACK_RE.search(source)
                        and isinstance(node.target, ast.Name)):
                    callback_vars.add(node.target.id)
            if isinstance(node, ast.Call):
                self._record_call(finfo, env, callback_vars, node, held)
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in finfo.node.body:
            visit(stmt, ())

    def _record_call(
        self, finfo: _FuncInfo, env: dict[str, _Type],
        callback_vars: set[str], call: ast.Call, held: _Held,
    ) -> None:
        minfo = finfo.minfo
        func = call.func
        line = call.lineno
        # Bare acquire()/release() on a resolvable lock: CONC004 input.
        if isinstance(func, ast.Attribute) and func.attr in (
            "acquire", "release"
        ):
            lock = self._resolve_lock(finfo, env, func.value)
            if lock is not None:
                bucket = (finfo.acquire_lines if func.attr == "acquire"
                          else finfo.release_lines)
                bucket.setdefault(lock.identity, []).append(line)
                return
        resolved = self._resolve_call(minfo, env, finfo, call)
        if resolved is not None:
            kind, payload = resolved
            if kind == "func":
                if payload == "telemetry/locks.py::blocking":
                    reason = "blocking checkpoint"
                    if call.args and isinstance(call.args[0], ast.Constant):
                        reason = f"blocking checkpoint '{call.args[0].value}'"
                    finfo.blocking_sites.append((reason, line, held))
                else:
                    name = payload.rsplit(".", 1)[-1].rsplit("::", 1)[-1]
                    if name in SOLVER_ENTRIES:
                        finfo.blocking_sites.append(
                            (f"solver entry point {name}()", line, held)
                        )
                    finfo.calls.append((payload, line, held))
            elif kind == "dotted":
                if payload in BLOCKING_DOTTED:
                    finfo.blocking_sites.append((payload, line, held))
            elif kind == "builtin_method":
                builtin, _, attr = payload.partition(".")
                if (builtin, attr) in BUILTIN_BLOCKING:
                    finfo.blocking_sites.append((payload, line, held))
        if held:
            desc = self._callback_desc(finfo, env, callback_vars, call)
            if desc is not None:
                finfo.callback_sites.append((desc, line, held))

    def _callback_desc(
        self, finfo: _FuncInfo, env: dict[str, _Type],
        callback_vars: set[str], call: ast.Call,
    ) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in callback_vars:
                return f"`{func.id}(...)` (iterated from a listener container)"
            if _CALLBACK_RE.search(func.id):
                return f"`{func.id}(...)`"
            if env.get(func.id) == ("callable", ""):
                return f"`{func.id}(...)` (Callable-typed parameter)"
            return None
        if isinstance(func, ast.Attribute):
            if _CALLBACK_RE.search(func.attr):
                return f"`...{func.attr}(...)`"
            if (isinstance(func.value, ast.Name)
                    and func.value.id == "self" and finfo.cls is not None
                    and self._has_callback_attr(finfo.cls.key, func.attr)):
                return f"`self.{func.attr}(...)` (Callable-typed attribute)"
        return None

    # -- summary propagation -------------------------------------------------

    _Chain = tuple[tuple[str, int, str], ...]

    def _propagate_acquires(self) -> dict[str, dict[str, "_Chain"]]:
        """``fid -> level -> witness chain`` to a deterministic fixpoint."""
        may: dict[str, dict[str, ConcurrencyModel._Chain]] = {
            fid: {} for fid in self._funcs
        }
        changed = True
        while changed:
            changed = False
            for fid in sorted(self._funcs):
                finfo = self._funcs[fid]
                facts = may[fid]
                for lock, line, _held in finfo.direct_acquires:
                    if lock.level not in facts:
                        facts[lock.level] = (
                            (fid, line, f"acquires '{lock.level}'"),
                        )
                        changed = True
                for callee, line, _held in finfo.calls:
                    for level, chain in may.get(callee, {}).items():
                        if level not in facts:
                            facts[level] = (
                                (fid, line, f"calls {_short(callee)}"),
                                *chain,
                            )
                            changed = True
        return may

    def _propagate_blocking(self) -> dict[str, dict[str, "_Chain"]]:
        """``fid -> blocking reason -> witness chain`` to a fixpoint."""
        may: dict[str, dict[str, ConcurrencyModel._Chain]] = {
            fid: {} for fid in self._funcs
        }
        changed = True
        while changed:
            changed = False
            for fid in sorted(self._funcs):
                finfo = self._funcs[fid]
                facts = may[fid]
                for reason, line, _held in finfo.blocking_sites:
                    if reason not in facts:
                        facts[reason] = ((fid, line, reason),)
                        changed = True
                for callee, line, _held in finfo.calls:
                    for reason, chain in may.get(callee, {}).items():
                        if reason not in facts:
                            facts[reason] = (
                                (fid, line, f"calls {_short(callee)}"),
                                *chain,
                            )
                            changed = True
        return may

    # -- the lock graph ------------------------------------------------------

    def _add_edge(
        self, held: LockDecl, acquired_level: str,
        file: str, line: int, witness: str,
    ) -> None:
        if held.level == acquired_level:
            if held.reentrant:
                return  # re-entering an RLock's level is not an order fact
        edge = (held.level, acquired_level)
        if edge not in self.edges:
            self.edges[edge] = (file, line, witness)

    def _build_edges(self) -> None:
        for fid in sorted(self._funcs):
            finfo = self._funcs[fid]
            for lock, line, held in finfo.direct_acquires:
                for held_lock, held_line in held:
                    self._add_edge(
                        held_lock, lock.level, finfo.file, line,
                        f"{_short(fid)} ({finfo.file}:{line}) acquires "
                        f"'{lock.level}' while holding '{held_lock.level}' "
                        f"(taken at line {held_line})",
                    )
            for callee, line, held in finfo.calls:
                if not held:
                    continue
                for level, chain in sorted(
                    self._may_acquire.get(callee, {}).items()
                ):
                    for held_lock, held_line in held:
                        self._add_edge(
                            held_lock, level, finfo.file, line,
                            f"{_short(fid)} ({finfo.file}:{line}) holds "
                            f"'{held_lock.level}' (taken at line {held_line}) "
                            f"and calls {_render_chain(chain)}, which "
                            f"acquires '{level}'",
                        )

    # -- findings ------------------------------------------------------------

    def _find_cycles(self) -> None:
        adjacency: dict[str, list[str]] = {}
        for a, b in self.edges:
            adjacency.setdefault(a, []).append(b)
        for neighbours in adjacency.values():
            neighbours.sort()
        for (a, b) in sorted(self.edges):
            if a == b:
                file, line, witness = self.edges[(a, b)]
                self.findings.append(Finding(
                    rule="CONC001", file=file, line=line,
                    message=(
                        f"same-level acquisition: non-reentrant lock level "
                        f"'{a}' acquired while already held -- {witness}"
                    ),
                ))
        reported: set[tuple[str, ...]] = set()
        for (a, b) in sorted(self.edges):
            if a == b:
                continue
            path = self._shortest_path(adjacency, b, a)
            if path is None:
                continue
            cycle = (a, *path)
            canon = _canonical_cycle(cycle)
            if canon in reported:
                continue
            reported.add(canon)
            file, line, witness_ab = self.edges[(a, b)]
            back_edges = list(zip(path[:-1], path[1:])) or [(b, a)]
            witness_back = "; ".join(
                self.edges[edge][2] for edge in back_edges
                if edge in self.edges
            )
            rendered = " -> ".join(f"'{node}'" for node in cycle)
            self.findings.append(Finding(
                rule="CONC001", file=file, line=line,
                message=(
                    f"lock-order cycle: {rendered}; "
                    f"path 1: {witness_ab}; path 2: {witness_back}"
                ),
            ))

    @staticmethod
    def _shortest_path(
        adjacency: dict[str, list[str]], start: str, goal: str
    ) -> tuple[str, ...] | None:
        """Node sequence from ``start`` to ``goal`` (inclusive), BFS order."""
        if start == goal:
            return (start,)
        queue: list[tuple[str, ...]] = [(start,)]
        seen = {start}
        while queue:
            path = queue.pop(0)
            for nxt in adjacency.get(path[-1], []):
                if nxt == goal:
                    return (*path, nxt)
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append((*path, nxt))
        return None

    def _find_blocking(self) -> None:
        for fid in sorted(self._funcs):
            finfo = self._funcs[fid]
            reported: set[int] = set()  # one CONC002 per source line
            for reason, line, held in finfo.blocking_sites:
                self._report_blocking(
                    finfo, line, held, reason, chain=None, reported=reported
                )
            for callee, line, held in finfo.calls:
                if not held:
                    continue
                reasons = self._may_block.get(callee, {})
                if not reasons:
                    continue
                reason = sorted(reasons)[0]
                self._report_blocking(
                    finfo, line, held, reason, chain=reasons[reason],
                    reported=reported,
                )

    def _report_blocking(
        self, finfo: _FuncInfo, line: int, held: _Held,
        reason: str, chain: "_Chain | None", reported: set[int],
    ) -> None:
        if line in reported:
            return
        disallowed = [
            (lock, held_line) for lock, held_line in held
            if lock.level not in self._blocking_allowed
        ]
        if not disallowed:
            return
        reported.add(line)
        levels = ", ".join(
            f"'{lock.level}' (taken at line {held_line})"
            for lock, held_line in disallowed
        )
        via = f" via {_render_chain(chain)}" if chain else ""
        self.findings.append(Finding(
            rule="CONC002", file=finfo.file, line=line,
            message=(
                f"blocking call ({reason}) while holding lock {levels}"
                f"{via}; move the blocking work outside the lock or declare "
                f"the level in [tool.reprolint.locks] blocking-allowed"
            ),
        ))

    def _find_callbacks(self) -> None:
        for fid in sorted(self._funcs):
            finfo = self._funcs[fid]
            for desc, line, held in finfo.callback_sites:
                levels = ", ".join(
                    f"'{lock.level}'" for lock, _line in held
                )
                self.findings.append(Finding(
                    rule="CONC003", file=finfo.file, line=line,
                    message=(
                        f"user callback {desc} invoked while holding lock "
                        f"{levels}; collect callbacks under the lock, invoke "
                        f"them after release"
                    ),
                ))

    def _find_split_acquire_release(self) -> None:
        for fid in sorted(self._funcs):
            finfo = self._funcs[fid]
            if finfo.node.name in _DELEGATION_METHODS:
                continue
            identities = sorted(
                set(finfo.acquire_lines) | set(finfo.release_lines)
            )
            for identity in identities:
                acquired = finfo.acquire_lines.get(identity, [])
                released = finfo.release_lines.get(identity, [])
                if len(acquired) == len(released):
                    continue
                if len(acquired) > len(released):
                    line = acquired[0]
                    what = (
                        f"lock `{identity}` acquired here is not released "
                        f"in the same function"
                    )
                else:
                    line = released[0]
                    what = (
                        f"lock `{identity}` released here was not acquired "
                        f"in the same function"
                    )
                self.findings.append(Finding(
                    rule="CONC004", file=finfo.file, line=line,
                    message=(
                        f"{what}; cross-function acquire/release hides the "
                        f"critical section -- use `with` in one scope"
                    ),
                ))

    # -- graphs --------------------------------------------------------------

    def declared_levels(self) -> list[str]:
        levels: set[str] = set()
        for minfo in self._mods.values():
            for decl in minfo.module_locks.values():
                levels.add(decl.level)
            for cls in minfo.classes.values():
                for decl in cls.locks.values():
                    levels.add(decl.level)
        return sorted(levels)

    def graph(self) -> dict[str, object]:
        """The static lock graph, same canonical schema as the sanitizer's."""
        return {
            "schema_version": LOCK_GRAPH_SCHEMA_VERSION,
            "levels": self.declared_levels(),
            "edges": [
                {"from": a, "to": b} for a, b in sorted(self.edges)
            ],
        }

    def dump_graph(self) -> str:
        return json.dumps(self.graph(), indent=2, sort_keys=True) + "\n"

    def findings_for(self, rule: str) -> list[Finding]:
        return [f for f in self.findings if f.rule == rule]


# -- helpers ------------------------------------------------------------------


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _trailing_name(node: ast.expr) -> str | None:
    """The identifying name of an iteration source (``self._listeners`` ->
    ``_listeners``; ``list(callbacks)`` -> ``callbacks``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call) and node.args:
        return _trailing_name(node.args[0])
    return None


def _short(fid: str) -> str:
    relpath, _, qual = fid.partition("::")
    return f"{qual} ({relpath})"


def _render_chain(chain: "ConcurrencyModel._Chain | None") -> str:
    if not chain:
        return ""
    steps = [
        f"{_short(fid)}:{line} {text}" for fid, line, text in chain[:4]
    ]
    if len(chain) > 4:
        steps.append("...")
    return " -> ".join(steps)


def _canonical_cycle(cycle: tuple[str, ...]) -> tuple[str, ...]:
    """Rotation-invariant key for a cycle ``(a, b, ..., a)``."""
    nodes = cycle[:-1] if len(cycle) > 1 and cycle[0] == cycle[-1] else cycle
    rotations = [
        tuple(nodes[i:] + nodes[:i]) for i in range(len(nodes))
    ]
    return min(rotations)


# -- public entry points ------------------------------------------------------


def analyze_modules(
    modules: list[ModuleContext],
    level_aliases: Mapping[str, str] | None = None,
    blocking_allowed: tuple[str, ...] = (),
) -> ConcurrencyModel:
    """Build the lock model for a set of parsed modules."""
    return ConcurrencyModel(
        modules, level_aliases=level_aliases,
        blocking_allowed=blocking_allowed,
    )


def analyze_tree(tree: TreeContext) -> ConcurrencyModel:
    """The (memoized) lock model for one lint run's tree."""
    cached = tree.cache.get("concurrency")
    if isinstance(cached, ConcurrencyModel):
        return cached
    model = analyze_modules(
        list(tree.modules),
        level_aliases=tree.config.lock_levels(),
        blocking_allowed=tree.config.blocking_allowed(),
    )
    tree.cache["concurrency"] = model
    return model


def compare_graphs(
    static: Mapping[str, object], dynamic: Mapping[str, object]
) -> list[str]:
    """Problems that make ``dynamic`` not a subgraph of ``static``."""
    problems: list[str] = []
    static_levels = set(static.get("levels", []))  # type: ignore[arg-type]
    static_edges = {
        (e["from"], e["to"])  # type: ignore[index]
        for e in static.get("edges", [])  # type: ignore[union-attr]
    }
    for level in dynamic.get("levels", []):  # type: ignore[union-attr]
        if level not in static_levels:
            problems.append(
                f"dynamic lock level '{level}' is unknown to the static "
                f"analysis (undeclared lock?)"
            )
    for e in dynamic.get("edges", []):  # type: ignore[union-attr]
        edge = (e["from"], e["to"])  # type: ignore[index]
        if edge not in static_edges:
            problems.append(
                f"dynamic edge '{edge[0]}' -> '{edge[1]}' is missing from "
                f"the static lock graph (unsound analysis or untracked "
                f"call path)"
            )
    return problems


__all__ = [
    "BLOCKING_DOTTED",
    "BUILTIN_BLOCKING",
    "ConcurrencyModel",
    "Finding",
    "LockDecl",
    "SOLVER_ENTRIES",
    "analyze_modules",
    "analyze_tree",
    "compare_graphs",
]

