"""reprolint configuration: defaults, ``pyproject.toml`` loading, round-trip.

Configuration lives in a ``[tool.reprolint]`` table::

    [tool.reprolint]
    select = ["DET001", "ZOV001", ...]      # default: every registered rule
    exclude = ["analysis/fixtures/"]        # path prefixes skipped entirely
    [tool.reprolint.severity]
    API001 = "warning"                      # override a rule's default
    [tool.reprolint.rules.uni001]
    min-bytes = 1048576                     # per-rule options

Paths in ``exclude`` and per-rule ``paths`` options are package-relative
(``core/``, ``observability/report.py``): entries ending in ``/`` match a
directory prefix, other entries match one file exactly, and ``"."`` matches
everything.  :func:`LintConfig.to_mapping` inverts :func:`LintConfig.from_mapping`
exactly (tested), so configs survive a serialize/parse round trip.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.analysis.violations import SEVERITIES


class ConfigError(ValueError):
    """The ``[tool.reprolint]`` table is malformed."""


@dataclass(frozen=True)
class LintConfig:
    """Effective reprolint settings (immutable; see module docstring)."""

    #: Rule ids to run; empty tuple means "every registered rule".
    select: tuple[str, ...] = ()
    #: Per-rule severity overrides (rule id -> "error"/"warning"/"off").
    severity: Mapping[str, str] = field(default_factory=dict)
    #: Package-relative path prefixes excluded from every rule.
    exclude: tuple[str, ...] = ()
    #: Per-rule option tables, keyed by lower-case rule id.
    rules: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    #: The ``[tool.reprolint.locks]`` table: ``blocking-allowed`` (levels
    #: under which blocking work is sanctioned) and ``levels`` (identity ->
    #: level aliases for locks not created via ``new_lock``).
    locks: Mapping[str, object] = field(default_factory=dict)

    def rule_options(self, rule_id: str) -> Mapping[str, object]:
        return self.rules.get(rule_id.lower(), {})

    def lock_levels(self) -> dict[str, str]:
        """Identity -> level aliases from ``[tool.reprolint.locks.levels]``."""
        levels = self.locks.get("levels", {})
        if not isinstance(levels, Mapping):
            return {}
        return {str(k): str(v) for k, v in levels.items()}

    def blocking_allowed(self) -> tuple[str, ...]:
        """Lock levels under which blocking calls are sanctioned."""
        allowed = self.locks.get("blocking-allowed", ())
        if not isinstance(allowed, (list, tuple)):
            return ()
        return tuple(str(level) for level in allowed)

    def severity_for(self, rule_id: str, default: str) -> str:
        return self.severity.get(rule_id, default)

    def enabled(self, rule_id: str, default_severity: str) -> bool:
        if self.select and rule_id not in self.select:
            return False
        return self.severity_for(rule_id, default_severity) != "off"

    @classmethod
    def from_mapping(cls, data: Mapping[str, object]) -> "LintConfig":
        """Build a config from a ``[tool.reprolint]``-shaped mapping."""
        select = _str_tuple(data.get("select", ()), "select")
        exclude = _str_tuple(data.get("exclude", ()), "exclude")
        severity_raw = data.get("severity", {})
        if not isinstance(severity_raw, Mapping):
            raise ConfigError("[tool.reprolint.severity] must be a table")
        severity: dict[str, str] = {}
        for rule_id, level in severity_raw.items():
            if not isinstance(level, str) or level not in SEVERITIES:
                raise ConfigError(
                    f"severity for {rule_id} must be one of {SEVERITIES}, "
                    f"got {level!r}"
                )
            severity[str(rule_id)] = level
        rules_raw = data.get("rules", {})
        if not isinstance(rules_raw, Mapping):
            raise ConfigError("[tool.reprolint.rules] must be a table")
        rules: dict[str, dict[str, object]] = {}
        for rule_id, table in rules_raw.items():
            if not isinstance(table, Mapping):
                raise ConfigError(
                    f"[tool.reprolint.rules.{rule_id}] must be a table"
                )
            rules[str(rule_id).lower()] = {str(k): v for k, v in table.items()}
        locks_raw = data.get("locks", {})
        if not isinstance(locks_raw, Mapping):
            raise ConfigError("[tool.reprolint.locks] must be a table")
        locks: dict[str, object] = {}
        for key, value in locks_raw.items():
            if key == "blocking-allowed":
                locks[key] = list(_str_tuple(value, "locks.blocking-allowed"))
            elif key == "levels":
                if not isinstance(value, Mapping):
                    raise ConfigError(
                        "[tool.reprolint.locks.levels] must be a table"
                    )
                locks[key] = {str(k): str(v) for k, v in value.items()}
            else:
                raise ConfigError(
                    f"unknown [tool.reprolint.locks] key {key!r} "
                    "(expected blocking-allowed or levels)"
                )
        return cls(select=select, severity=severity, exclude=exclude,
                   rules=rules, locks=locks)

    def to_mapping(self) -> dict[str, object]:
        """The inverse of :meth:`from_mapping` (lossless round trip)."""
        out: dict[str, object] = {}
        if self.select:
            out["select"] = list(self.select)
        if self.exclude:
            out["exclude"] = list(self.exclude)
        if self.severity:
            out["severity"] = dict(self.severity)
        if self.rules:
            out["rules"] = {k: dict(v) for k, v in self.rules.items()}
        if self.locks:
            locks: dict[str, object] = {}
            for key, value in self.locks.items():
                if isinstance(value, Mapping):
                    locks[key] = dict(value)
                elif isinstance(value, (list, tuple)):
                    locks[key] = list(value)
                else:
                    locks[key] = value
            out["locks"] = locks
        return out


def _str_tuple(value: object, key: str) -> tuple[str, ...]:
    if isinstance(value, str):
        raise ConfigError(f"{key} must be a list of strings, not a string")
    if not isinstance(value, (list, tuple)):
        raise ConfigError(f"{key} must be a list of strings")
    items: list[str] = []
    for item in value:
        if not isinstance(item, str):
            raise ConfigError(f"{key} entries must be strings, got {item!r}")
        items.append(item)
    return tuple(items)


def load_config(pyproject: str | Path | None) -> LintConfig:
    """Read ``[tool.reprolint]`` from a ``pyproject.toml``.

    ``None`` or a missing file (or a file without the table) yields the
    all-defaults config rather than an error, so the linter runs usefully on
    trees that have not adopted a config block yet.
    """
    if pyproject is None:
        return LintConfig()
    path = Path(pyproject)
    if not path.exists():
        return LintConfig()
    try:
        with open(path, "rb") as fh:
            document = tomllib.load(fh)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        raise ConfigError(f"cannot read {path}: {exc}") from exc
    tool = document.get("tool", {})
    if not isinstance(tool, Mapping):
        return LintConfig()
    table = tool.get("reprolint", {})
    if not isinstance(table, Mapping):
        raise ConfigError("[tool.reprolint] must be a table")
    return LintConfig.from_mapping(table)


def find_pyproject(start: str | Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start`` (file or directory)."""
    node = Path(start).resolve()
    if node.is_file():
        node = node.parent
    for candidate in (node, *node.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def path_matches(relpath: str, patterns: tuple[str, ...] | list[str]) -> bool:
    """Whether a package-relative path matches any pattern (see module doc)."""
    for pattern in patterns:
        if pattern == ".":
            return True
        if pattern.endswith("/"):
            if relpath.startswith(pattern):
                return True
        elif relpath == pattern or relpath.startswith(pattern + "/"):
            return True
    return False
