"""The rule registry: one place that knows every rule that exists.

Rules self-register at import time via the :func:`register` decorator; the
engine, the CLI's ``--list-rules``/``--explain``, and the unused-suppression
check all consult the same table, so adding a rule is a single-file change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Type

if TYPE_CHECKING:  # imported lazily at runtime to avoid a rules<->registry cycle
    from repro.analysis.rules.base import Rule

_RULES: dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one rule instance to the global registry."""
    rule = rule_cls()
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    _RULES[rule.id] = rule
    return rule_cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id (stable report order)."""
    _ensure_loaded()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule | None:
    _ensure_loaded()
    return _RULES.get(rule_id)


def rule_ids() -> set[str]:
    _ensure_loaded()
    return set(_RULES)


def iter_checkable() -> Iterator[Rule]:
    """Per-module rules (skips engine-emitted and whole-tree rules)."""
    for rule in all_rules():
        if not rule.engine_emitted and not rule.whole_tree:
            yield rule


def iter_tree_rules() -> Iterator[Rule]:
    """Whole-tree (interprocedural) rules, run once per lint invocation."""
    for rule in all_rules():
        if rule.whole_tree and not rule.engine_emitted:
            yield rule


def _ensure_loaded() -> None:
    # Importing the rules package registers every rule module; done lazily
    # so `import repro.analysis.registry` alone carries no import cycle.
    import repro.analysis.rules  # noqa: F401  (import-for-side-effect)
