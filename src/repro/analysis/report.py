"""Text and JSON reporters for lint runs.

Both renderings are pure functions of the findings -- no timestamps, no
absolute paths, keys sorted -- so reports are byte-identical across runs
and machines, the same contract as the observability reports they sit
beside in CI artifacts.
"""

from __future__ import annotations

import json

from repro.analysis import registry
from repro.analysis.engine import Report

#: Version of the JSON report schema; bump on incompatible layout changes.
REPORT_SCHEMA_VERSION = 1


def render_json(report: Report) -> str:
    """Machine-readable report (schema-versioned, byte-deterministic)."""
    payload = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "tool": "reprolint",
        "files_checked": report.files_checked,
        "errors": report.errors,
        "warnings": report.warnings,
        "counts": report.counts(),
        "violations": [v.to_dict() for v in report.violations],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


#: SARIF spec version emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"


def render_sarif(report: Report) -> str:
    """SARIF 2.1.0 report for code-scanning upload (byte-deterministic).

    The driver's rule table lists every registered rule (not just the ones
    that fired) so rule metadata -- invariant, rationale, fix -- renders in
    the code-scanning UI; results reference rules by index.
    """
    rules = registry.all_rules()
    rule_index = {rule.id: index for index, rule in enumerate(rules)}
    driver_rules = []
    for rule in rules:
        driver_rules.append({
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.invariant or rule.name},
            "fullDescription": {"text": rule.rationale or rule.invariant},
            "help": {"text": rule.fix or rule.invariant},
            "defaultConfiguration": {
                "level": "error" if rule.default_severity == "error"
                else "warning",
            },
        })
    results = []
    for violation in report.violations:
        results.append({
            "ruleId": violation.rule,
            "ruleIndex": rule_index.get(violation.rule, -1),
            "level": "error" if violation.severity == "error" else "warning",
            "message": {"text": violation.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.file,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": violation.line,
                        "startColumn": violation.col,
                    },
                },
            }],
        })
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "informationUri":
                        "https://example.invalid/repro/DESIGN.md",
                    "rules": driver_rules,
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_text(report: Report) -> str:
    """Human-readable report grouped by file, with a per-rule summary."""
    lines: list[str] = []
    if not report.violations:
        lines.append(
            f"reprolint: clean ({report.files_checked} file(s) checked)"
        )
        return "\n".join(lines) + "\n"

    lines.append(
        f"reprolint: {len(report.violations)} finding(s) in "
        f"{len({v.file for v in report.violations})} of "
        f"{report.files_checked} file(s)"
    )
    current_file: str | None = None
    width_pos = max(
        len(f"{v.line}:{v.col}") for v in report.violations
    )
    width_rule = max(len(v.rule) for v in report.violations)
    width_sev = max(len(v.severity) for v in report.violations)
    for violation in report.violations:
        if violation.file != current_file:
            current_file = violation.file
            lines.append("")
            lines.append(current_file)
        position = f"{violation.line}:{violation.col}"
        lines.append(
            f"  {position.ljust(width_pos)}  "
            f"{violation.rule.ljust(width_rule)}  "
            f"{violation.severity.ljust(width_sev)}  {violation.message}"
        )

    lines.append("")
    lines.append("summary")
    counts = report.counts()
    width_id = max(len(rule_id) for rule_id in counts)
    for rule_id, count in counts.items():
        rule = registry.get_rule(rule_id)
        name = rule.name if rule is not None else ""
        lines.append(f"  {rule_id.ljust(width_id)}  {count:>4}  {name}")
    lines.append("")
    lines.append(f"{report.errors} error(s), {report.warnings} warning(s)")
    return "\n".join(lines) + "\n"


def render_rules() -> str:
    """The ``--list-rules`` table."""
    rules = registry.all_rules()
    width_id = max(len(rule.id) for rule in rules)
    width_name = max(len(rule.name) for rule in rules)
    lines = []
    for rule in rules:
        lines.append(
            f"{rule.id.ljust(width_id)}  {rule.name.ljust(width_name)}  "
            f"{rule.default_severity:<7}  {rule.invariant}"
        )
    return "\n".join(lines) + "\n"


def render_explanation(rule_id: str) -> str | None:
    """The ``--explain RULE`` card, or ``None`` for an unknown id."""
    rule = registry.get_rule(rule_id)
    if rule is None:
        return None
    scope = ", ".join(rule.default_paths)
    lines = [
        f"{rule.id} ({rule.name}) -- default severity: {rule.default_severity}",
        "",
        f"invariant: {rule.invariant}",
        f"why:       {rule.rationale}",
        f"fix:       {rule.fix}",
        f"scope:     {scope}" + (
            f" (excluding {', '.join(rule.default_exclude)})"
            if rule.default_exclude else ""
        ),
        "",
        f"suppress with `# reprolint: disable={rule.id} -- <reason>` on the "
        "line, def/class header, or `disable-file=` for the module.",
    ]
    return "\n".join(lines) + "\n"
