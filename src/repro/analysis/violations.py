"""The diagnostic record every rule emits and the severity scale.

A :class:`Violation` is deliberately flat and stringly-typed: the JSON
reporter serializes it verbatim, and byte-determinism of reports (the same
contract as :mod:`repro.observability.report`) is easiest to guarantee when
the record is already plain data.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Severity levels, weakest to strongest.  ``"off"`` disables a rule
#: entirely; ``"warning"`` reports without affecting the exit code;
#: ``"error"`` reports and fails the run.
SEVERITIES: tuple[str, str, str] = ("off", "warning", "error")


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, how severe, and what is wrong."""

    file: str  # path relative to the scanned root, posix separators
    line: int  # 1-based
    col: int  # 1-based (ast col_offset + 1)
    rule: str  # rule id, e.g. "DET001"
    severity: str  # "error" or "warning" (never "off")
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.file, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
