"""THR001 -- shared mutable state in threaded modules mutates under its lock.

The parallel evaluator runs benchmark units on a ``ThreadPoolExecutor``, a
``BenchmarkCache`` is shared across policies/workers, and the telemetry
tracer/metrics registries accept writes from every worker thread.  Modules
on that list are *declared threaded* (the rule's ``paths`` option), and in
them this rule checks two things:

* Inside a class that owns a lock (an attribute whose name contains
  ``lock`` assigned ``threading.Lock()``/``RLock()`` in ``__init__`` or at
  class level), any method other than ``__init__``/``__post_init__`` that
  mutates ``self`` state (``self.x = ...``, ``self.x[k] = ...``,
  ``self.x.append(...)``, ``del self.x[...]``) must do so inside a
  ``with <lock>:`` block.
* A class (or module global under ``global``) in a threaded module that
  mutates shared state but declares **no** lock at all is flagged at the
  mutation site -- that is precisely how a "works on my laptop" race ships.

The check is lexical: one level of ``self.<attr>`` only, and any ``with``
whose context expression names something containing ``lock`` counts.
Thread-confined state (e.g. span objects owned by their opening thread)
is suppressed at the class with a reason comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FUNCTION_NODES, ModuleContext
from repro.analysis.registry import register
from repro.analysis.rules.base import Rule
from repro.analysis.violations import Violation

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "clear", "pop", "popitem",
    "remove", "discard", "setdefault", "sort", "reverse", "appendleft",
})

#: Methods exempt from the lock requirement (construction is single-threaded).
CONSTRUCTION_METHODS = frozenset({"__init__", "__post_init__", "__new__",
                                  "__set_name__"})


@register
class ThreadSafetyRule(Rule):
    id = "THR001"
    name = "thread-safety"
    default_severity = "error"
    default_paths = ("parallel/", "core/cache.py", "telemetry/")
    invariant = (
        "in threaded modules, shared mutable class/module state is only "
        "mutated inside a `with <lock>:` block on the owning lock"
    )
    rationale = (
        "the evaluator is genuinely concurrent (ThreadPoolExecutor) and the "
        "BenchmarkCache and telemetry registries are shared across its "
        "workers; an unlocked `self.hits += 1` is a read-modify-write race "
        "that loses updates only under load"
    )
    fix = (
        "guard the mutation with the class's lock (add one if the class has "
        "none), move the state into thread-local storage, or suppress on the "
        "class with a reason when the state is thread-confined by design"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        module_locks = _module_level_locks(module.tree)
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)
            elif isinstance(node, FUNCTION_NODES):
                yield from self._check_globals(module, node, module_locks)

    # -- classes ---------------------------------------------------------------

    def _check_class(
        self, module: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Violation]:
        locks = _class_locks(cls)
        for item in cls.body:
            if not isinstance(item, FUNCTION_NODES):
                continue
            if item.name in CONSTRUCTION_METHODS:
                continue
            self_name = _self_parameter(item)
            if self_name is None:
                continue
            for mutation, described in _self_mutations(item, self_name):
                if _under_lock(module, mutation):
                    continue
                if locks:
                    lock_names = ", ".join(sorted(locks))
                    yield self.violation(
                        module, mutation.lineno, mutation.col_offset,
                        f"mutation of `{described}` in threaded module outside "
                        f"`with self.{lock_names}:` "
                        f"(class {cls.name} owns that lock)",
                    )
                else:
                    yield self.violation(
                        module, mutation.lineno, mutation.col_offset,
                        f"class {cls.name} mutates shared state "
                        f"(`{described}`) in a threaded module but declares "
                        "no lock",
                    )

    # -- module globals --------------------------------------------------------

    def _check_globals(
        self,
        module: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        module_locks: set[str],
    ) -> Iterator[Violation]:
        declared: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared.update(node.names)
        if not declared:
            return
        for node in ast.walk(func):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                for name_node in _flatten_targets(target):
                    if (
                        isinstance(name_node, ast.Name)
                        and name_node.id in declared
                        and not _under_lock(module, node)
                    ):
                        where = (
                            f"`with {', '.join(sorted(module_locks))}:`"
                            if module_locks else "a module-level lock"
                        )
                        yield self.violation(
                            module, node.lineno, node.col_offset,
                            f"assignment to module global `{name_node.id}` in "
                            f"threaded module outside {where}",
                        )


def _module_level_locks(tree: ast.Module) -> set[str]:
    locks: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign) and _is_lock_ctor(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    locks.add(target.id)
    return locks


def _class_locks(cls: ast.ClassDef) -> set[str]:
    """Names of lock attributes the class owns (``self.<name>`` or class var)."""
    locks: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not _is_lock_ctor(node.value):
            continue
        for target in node.targets:
            if isinstance(target, ast.Attribute) and "lock" in target.attr.lower():
                locks.add(target.attr)
            elif isinstance(target, ast.Name) and "lock" in target.id.lower():
                locks.add(target.id)
    return locks


def _is_lock_ctor(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    # ``new_lock`` is the sanitizer-aware factory from repro.telemetry.locks.
    return name in (
        "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
        "new_lock",
    )


def _self_parameter(func: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    for decorator in func.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id in (
            "staticmethod", "classmethod",
        ):
            return None
    if func.args.posonlyargs:
        return func.args.posonlyargs[0].arg
    if func.args.args:
        return func.args.args[0].arg
    return None


def _is_self_attr(expr: ast.expr, self_name: str) -> str | None:
    """``attr`` when the expression is exactly ``self.<attr>``."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == self_name
    ):
        return expr.attr
    return None


def _self_mutations(
    func: ast.FunctionDef | ast.AsyncFunctionDef, self_name: str
) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(node, description)`` for each direct mutation of self state."""
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for leaf in _flatten_targets(target):
                    attr = _mutated_self_attr(leaf, self_name)
                    if attr is not None:
                        yield node, f"self.{attr}"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _mutated_self_attr(target, self_name)
                if attr is not None:
                    yield node, f"self.{attr}"
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr not in MUTATOR_METHODS:
                continue
            receiver = node.func.value
            attr = _is_self_attr(receiver, self_name)
            if attr is None and isinstance(receiver, ast.Subscript):
                attr = _is_self_attr(receiver.value, self_name)
            if attr is not None:
                yield node, f"self.{attr}.{node.func.attr}(...)"


def _mutated_self_attr(target: ast.expr, self_name: str) -> str | None:
    attr = _is_self_attr(target, self_name)
    if attr is not None and "lock" not in attr.lower():
        return attr
    if isinstance(target, ast.Subscript):
        return _is_self_attr(target.value, self_name)
    return None


def _flatten_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)
    else:
        yield target


def _under_lock(module: ModuleContext, node: ast.AST) -> bool:
    def is_lock_expr(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Attribute):
            return "lock" in expr.attr.lower()
        if isinstance(expr, ast.Name):
            return "lock" in expr.id.lower()
        return False

    return module.within_with(node, is_lock_expr)
