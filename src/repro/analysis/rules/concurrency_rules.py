"""CONC001-CONC004 -- the interprocedural concurrency contract.

All four rules are views over one shared :class:`ConcurrencyModel`
(:mod:`repro.analysis.concurrency`), built once per lint run and memoized
on the :class:`~repro.analysis.context.TreeContext`.  The model resolves
lock objects to stable identities and level names, propagates held-lock
sets through ``with`` blocks and call edges, and derives the
may-hold-while-acquiring lock graph that the runtime sanitizer
(``--sanitize-locks``) is checked against in CI.

The lock hierarchy itself -- which levels exist and which may legitimately
cover blocking work -- is declared in ``[tool.reprolint.locks]`` and
documented in DESIGN.md section 14.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.concurrency import ConcurrencyModel, analyze_tree
from repro.analysis.context import TreeContext
from repro.analysis.registry import register
from repro.analysis.rules.base import Rule
from repro.analysis.violations import Violation


class _ConcRule(Rule):
    """Shared plumbing: fetch the memoized model, report own findings."""

    whole_tree = True
    default_severity = "error"

    def check_tree(self, tree: TreeContext) -> Iterator[Violation]:
        model: ConcurrencyModel = analyze_tree(tree)
        for finding in model.findings_for(self.id):
            yield self.tree_violation(
                finding.file, finding.line, 0, finding.message
            )


@register
class LockOrderCycleRule(_ConcRule):
    id = "CONC001"
    name = "lock-order-cycle"
    invariant = (
        "the may-hold-while-acquiring relation over lock levels is acyclic "
        "(and non-reentrant levels are never re-acquired while held)"
    )
    rationale = (
        "two threads taking the same pair of locks in opposite orders is "
        "the classic deadlock; with worker pools, coalesced solves, the "
        "wire server, and cache listeners all holding locks, only an "
        "acyclic lock hierarchy makes deadlock freedom checkable"
    )
    fix = (
        "restructure so locks are always taken in hierarchy order (see "
        "DESIGN.md section 14): release the lower lock first, snapshot the "
        "state you need, or split the lock"
    )


@register
class BlockingUnderLockRule(_ConcRule):
    id = "CONC002"
    name = "blocking-under-lock"
    invariant = (
        "no blocking call (solver entry, socket I/O, time.sleep, file "
        "I/O, Future.result) runs while holding a lock whose level is not "
        "in [tool.reprolint.locks] blocking-allowed"
    )
    rationale = (
        "a lock held across blocking work stalls every other thread that "
        "needs it for the full duration -- the contention cliff the "
        "micro-batch serving stack exists to avoid; locks that exist to "
        "serialize blocking work (solver, snapshot writers) are declared "
        "blocking-allowed instead of suppressed ad hoc"
    )
    fix = (
        "move the blocking call outside the `with` block (snapshot state "
        "under the lock, do the slow work after release), or -- for a lock "
        "whose *purpose* is serializing that work -- add its level to "
        "blocking-allowed in [tool.reprolint.locks]"
    )


@register
class CallbackUnderLockRule(_ConcRule):
    id = "CONC003"
    name = "callback-under-lock"
    invariant = (
        "user callbacks/listeners/hooks are never invoked while holding a "
        "lock"
    )
    rationale = (
        "a callback is arbitrary user code: it may take arbitrarily long "
        "or re-enter the component and try to take the same lock, a "
        "self-deadlock no hierarchy can excuse; the cache's invalidation "
        "listeners established the collect-under-lock, fire-after-release "
        "pattern this rule enforces"
    )
    fix = (
        "copy the callback list (and its arguments) while holding the "
        "lock, then invoke every callback after release -- see "
        "BenchmarkCache.put_benchmark for the canonical shape"
    )


@register
class SplitAcquireReleaseRule(_ConcRule):
    id = "CONC004"
    name = "split-acquire-release"
    invariant = (
        "a lock acquired with bare .acquire() is released by the same "
        "function (context-manager delegation methods are exempt)"
    )
    rationale = (
        "acquire-here-release-elsewhere hides the critical section from "
        "both readers and this analyzer: no scope bounds the hold, and "
        "one missed error path leaks the lock forever"
    )
    fix = (
        "use `with lock:` so the critical section is a lexical scope; if "
        "an object genuinely owns a lock across calls, wrap it in a "
        "context manager (__enter__/__exit__ are exempt)"
    )
