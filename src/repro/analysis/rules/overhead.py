"""ZOV001 -- the telemetry/provenance zero-overhead-when-off contract.

Telemetry (PR 1) and decision provenance (PR 3) promise that disabled
instrumentation costs one module-global check at most.  Two conventions
carry that promise, and this rule enforces both:

* **Recorder calls** (``.record`` / ``.begin_pass`` / ``.end_pass``) on a
  recorder fetched via ``observability.recorder()`` must sit behind an
  ``if rec:`` truthiness guard -- the :data:`NULL_RECORDER` is falsy for
  exactly this purpose.  Recorders received as *function parameters* are
  treated as already checked by the caller (the ``_record_*_provenance``
  helper pattern).
* **Telemetry metric calls** (``count``/``event``/``gauge``/``observe``/
  ``device_span``) inside loop bodies must be hoisted behind one
  ``if telemetry.enabled():`` per loop -- the helpers are individually
  cheap when disabled, but per-iteration helper calls plus argument
  construction are not free.  ``with telemetry.span(...)`` is the
  sanctioned null-object form and is allowed anywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.registry import register
from repro.analysis.rules.base import Rule
from repro.analysis.violations import Violation

#: Helpers that record data (guard inside loops).
METRIC_HELPERS = frozenset({"count", "event", "gauge", "observe", "device_span"})
#: Helpers that *return* a null object when disabled (allowed anywhere).
NULL_OBJECT_HELPERS = frozenset({"span", "capture"})
#: Provenance recorder methods that must be truthiness-guarded.
RECORDER_METHODS = frozenset({"record", "begin_pass", "end_pass"})

#: Modules whose attributes count as "the telemetry module".
TELEMETRY_MODULES = frozenset({"repro.telemetry", "telemetry"})


@register
class ZeroOverheadRule(Rule):
    id = "ZOV001"
    name = "zero-overhead"
    default_severity = "error"
    default_paths = (".",)
    default_exclude = ("telemetry/", "observability/", "analysis/")
    invariant = (
        "disabled instrumentation costs one global check: recorder calls sit "
        "behind `if rec:`, and telemetry metric calls inside loops sit behind "
        "`if telemetry.enabled():`"
    )
    rationale = (
        "the telemetry and provenance subsystems advertise zero overhead "
        "when off (DESIGN.md sections 7-8, tested by the zero-overhead spy); "
        "one unguarded per-iteration call in a hot loop silently re-adds the "
        "cost the null objects exist to remove"
    )
    fix = (
        "wrap the block in `if telemetry.enabled():` / `if rec:`, pass the "
        "recorder in as a parameter after a caller-side guard, or use the "
        "`with telemetry.span(...)` null-object form"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        telemetry_aliases = self._telemetry_aliases(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in telemetry_aliases
                and func.attr in METRIC_HELPERS
            ):
                yield from self._check_metric_call(module, node, func)
            elif func.attr in RECORDER_METHODS:
                yield from self._check_recorder_call(module, node, func)

    @staticmethod
    def _telemetry_aliases(module: ModuleContext) -> set[str]:
        aliases: set[str] = set()
        for name in TELEMETRY_MODULES:
            short = name.split(".")[-1]
            if module.resolve_module(short) in TELEMETRY_MODULES:
                aliases.add(short)
        imported = module.resolve_import("telemetry")
        if imported is not None and imported[0].startswith("repro"):
            aliases.add("telemetry")
        # `import repro.telemetry as X` for arbitrary X:
        for local in list(aliases) + ["telemetry"]:
            if module.resolve_module(local) in TELEMETRY_MODULES:
                aliases.add(local)
        return aliases

    def _check_metric_call(
        self, module: ModuleContext, node: ast.Call, func: ast.Attribute
    ) -> Iterator[Violation]:
        if not module.in_loop(node):
            return
        alias = func.value.id if isinstance(func.value, ast.Name) else "telemetry"

        def is_enabled_check(expr: ast.expr) -> bool:
            return (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "enabled"
                and isinstance(expr.func.value, ast.Name)
                and expr.func.value.id == alias
            )

        if module.guarded_by(node, is_enabled_check):
            return
        yield self.violation(
            module, node.lineno, node.col_offset,
            f"telemetry call `{alias}.{func.attr}(...)` inside a loop without "
            f"an `if {alias}.enabled():` guard (zero-overhead contract)",
        )

    def _check_recorder_call(
        self, module: ModuleContext, node: ast.Call, func: ast.Attribute
    ) -> Iterator[Violation]:
        receiver = func.value
        if isinstance(receiver, ast.Call):
            # Chained `observability.recorder().record(...)`: structurally
            # unguardable, flag only when it is really a recorder fetch.
            target = module.call_target(receiver)
            attr_name = (
                receiver.func.attr if isinstance(receiver.func, ast.Attribute)
                else receiver.func.id if isinstance(receiver.func, ast.Name)
                else ""
            )
            if (target or "").endswith("recorder") or attr_name == "recorder":
                yield self.violation(
                    module, node.lineno, node.col_offset,
                    f"chained recorder call `...recorder().{func.attr}(...)` "
                    "can never be guarded; bind the recorder and guard with "
                    "`if rec:`",
                )
            return
        if not isinstance(receiver, ast.Name):
            return  # attribute receivers are out of scope for this rule
        name = receiver.id
        if not self._is_recorder_binding(module, node, name):
            return
        enclosing = module.enclosing_function(node)
        if enclosing is not None and name in _parameter_names(enclosing):
            return  # caller-guarded helper pattern

        def names_receiver(expr: ast.expr) -> bool:
            return isinstance(expr, ast.Name) and expr.id == name

        if module.guarded_by(node, names_receiver):
            return
        yield self.violation(
            module, node.lineno, node.col_offset,
            f"recorder call `{name}.{func.attr}(...)` without an "
            f"`if {name}:` guard (NULL_RECORDER is falsy for exactly this)",
        )

    @staticmethod
    def _is_recorder_binding(
        module: ModuleContext, node: ast.AST, name: str
    ) -> bool:
        """Whether ``name`` is bound from ``observability.recorder()`` in the
        enclosing function (or module), so `.record` is not a false positive
        on some unrelated object."""
        scope: ast.AST | None = module.enclosing_function(node)
        if scope is None:
            scope = module.tree
        for sub in ast.walk(scope):
            if not isinstance(sub, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == name for t in sub.targets
            ):
                continue
            value = sub.value
            if isinstance(value, ast.Call):
                target = module.call_target(value)
                attr_name = (
                    value.func.attr if isinstance(value.func, ast.Attribute)
                    else value.func.id if isinstance(value.func, ast.Name)
                    else ""
                )
                if (target or "").endswith("recorder") or attr_name == "recorder":
                    return True
        enclosing = module.enclosing_function(node)
        if enclosing is not None and name in _parameter_names(enclosing):
            # Parameters named like recorders participate (rec, recorder).
            return name in ("rec", "recorder") or "recorder" in name
        return False


def _parameter_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = func.args
    names = {a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names
