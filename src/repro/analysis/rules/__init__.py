"""Rule modules; importing this package registers every rule.

The imports are for side effect (each module's ``@register`` decorator runs
at import time); :mod:`repro.analysis.registry` triggers this lazily.
"""

from __future__ import annotations

from repro.analysis.rules import api as _api
from repro.analysis.rules import concurrency_rules as _concurrency_rules
from repro.analysis.rules import determinism as _determinism
from repro.analysis.rules import errors_rule as _errors_rule
from repro.analysis.rules import meta as _meta
from repro.analysis.rules import overhead as _overhead
from repro.analysis.rules import threadsafety as _threadsafety
from repro.analysis.rules import units as _units
from repro.analysis.rules.base import Rule

__all__ = [
    "Rule",
    "_api",
    "_concurrency_rules",
    "_determinism",
    "_errors_rule",
    "_meta",
    "_overhead",
    "_threadsafety",
    "_units",
]
