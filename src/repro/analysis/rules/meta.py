"""Engine-emitted diagnostics: unused suppressions and parse failures.

These are registered like ordinary rules so ``--list-rules``/``--explain``
document them and config can re-level them, but the engine produces their
findings itself (suppression bookkeeping and parsing happen outside any
single rule's view).
"""

from __future__ import annotations

from repro.analysis.registry import register
from repro.analysis.rules.base import Rule


@register
class UnusedSuppressionRule(Rule):
    id = "SUP001"
    name = "unused-suppression"
    default_severity = "error"
    engine_emitted = True
    invariant = (
        "every `# reprolint: disable=` names an enabled rule that actually "
        "fires on the suppressed line or block"
    )
    rationale = (
        "stale suppressions are how contracts rot: the violation moves or "
        "gets fixed, the pragma stays, and the next genuine violation on "
        "that line ships silently"
    )
    fix = "delete the suppression (or fix its rule id)"


@register
class SyntaxFailureRule(Rule):
    id = "SYN001"
    name = "unparseable"
    default_severity = "error"
    engine_emitted = True
    invariant = "every checked file parses as Python"
    rationale = (
        "a file the AST cannot represent is invisible to every other rule; "
        "failing loudly keeps 'reprolint passed' meaningful"
    )
    fix = "fix the syntax error (python -m py_compile shows the details)"
