"""UNI001 -- byte counts are built with :mod:`repro.units`, never spelled raw.

The whole reproduction turns on exact byte accounting: a workspace limit
off by one byte flips a kernel onto cuDNN's slow fallback path (Fig. 1).
The package convention is that all internal accounting is plain integer
bytes built at the edges from the ``units.py`` helpers (``mib(8)``,
``64 * MIB``), so a reviewer can always tell a MiB from a byte.  A raw
``1048576``-style literal hides the unit and invites MiB/byte mixing.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping

from repro.analysis.context import ModuleContext
from repro.analysis.registry import register
from repro.analysis.rules.base import Rule
from repro.analysis.violations import Violation
from repro.units import KIB, MIB


@register
class UnitsRule(Rule):
    id = "UNI001"
    name = "units"
    default_severity = "error"
    default_paths = (".",)
    default_exclude = ("units.py", "analysis/")
    invariant = (
        "byte counts are expressed through repro.units helpers/constants; no "
        "raw KiB-multiple integer literals of a mebibyte or more"
    )
    rationale = (
        "workspace limits are compared exactly -- one byte decides whether "
        "cuDNN falls back to a much slower algorithm -- so every size must "
        "be readable as the unit it means; 1048576 could be bytes, KiB, or "
        "a miscopied MiB"
    )
    fix = (
        "replace the literal with units.mib(n)/kib(n) or n * units.MIB; for "
        "a number that genuinely is not a byte count, suppress with a reason"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        options: Mapping[str, object] = module.rule_options(self.id)
        min_bytes = int(options.get("min-bytes", MIB))  # type: ignore[call-overload]
        reported: set[int] = set()
        for node in ast.walk(module.tree):
            value = _fold_literal_int(node)
            if value is None or value < min_bytes or value % KIB != 0:
                continue
            # Report the outermost folded expression once, not its operands.
            if id(node) in reported:
                continue
            parent = module.parent(node)
            if parent is not None and _fold_literal_int(parent) is not None:
                continue
            for sub in ast.walk(node):
                reported.add(id(sub))
            yield self.violation(
                module, node.lineno, node.col_offset,
                f"raw byte-count literal {value} ({value // MIB} MiB if bytes)"
                " -- build sizes with repro.units helpers (mib/kib or * MIB) "
                "so the unit is explicit",
            )


def _fold_literal_int(node: ast.AST) -> int | None:
    """Value of an all-literal integer expression, else ``None``.

    Folds the arithmetic people actually write for sizes: ``8 * 1024 * 1024``,
    ``1 << 20``, ``2 ** 30``, sums and differences thereof.
    """
    if isinstance(node, ast.Constant):
        return node.value if type(node.value) is int else None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _fold_literal_int(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.BinOp):
        left = _fold_literal_int(node.left)
        right = _fold_literal_int(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.LShift) and 0 <= right < 64:
            return left << right
        if isinstance(node.op, ast.Pow) and 0 <= right < 64:
            return left ** right
    return None
