"""DET001 -- deterministic modules must not read ambient nondeterminism.

The sweep equality proofs (``tests/test_sweep.py``) and the explain reports
(DESIGN.md section 8) promise *byte-identical* output for identical inputs.
That only holds if the optimizer core and the report builder never consult
wall clocks, process-seeded RNGs, or unordered-collection iteration.  Time
must come from an injected ``Clock`` (:mod:`repro.telemetry.clock`) and
randomness from an explicitly seeded generator passed in by the caller.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import LOOP_NODES, ModuleContext
from repro.analysis.registry import register
from repro.analysis.rules.base import Rule
from repro.analysis.violations import Violation

#: Fully-qualified callables whose results depend on when/where they run.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "time.process_time_ns", "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Ambient randomness: the process-seeded module-level RNG and entropy taps.
RANDOM_MODULES = frozenset({"random", "numpy.random", "np.random"})
ENTROPY_CALLS = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes",
                           "secrets.token_hex", "secrets.randbelow"})


@register
class DeterminismRule(Rule):
    id = "DET001"
    name = "determinism"
    default_severity = "error"
    default_paths = ("core/", "observability/report.py")
    invariant = (
        "deterministic modules take time from injected Clocks and randomness "
        "from caller-seeded generators; no wall-clock, ambient-RNG, or "
        "set-iteration order dependence"
    )
    rationale = (
        "the sweep equality proofs and explain reports are byte-deterministic "
        "contracts (DESIGN.md sections 7-8); a single time.time() or "
        "unordered set walk silently breaks replay equality"
    )
    fix = (
        "inject a repro.telemetry.clock Clock (WallClock in production, "
        "ManualClock in tests), thread an explicit numpy Generator, or sort "
        "the set before iterating; suppress only for diagnostics that never "
        "reach deterministic output"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                target = module.call_target(node)
                if target is None:
                    continue
                if target in WALL_CLOCK_CALLS:
                    yield self.violation(
                        module, node.lineno, node.col_offset,
                        f"wall-clock call `{target}()` in deterministic module; "
                        "take time from an injected Clock "
                        "(repro.telemetry.clock) instead",
                    )
                elif target in ENTROPY_CALLS:
                    yield self.violation(
                        module, node.lineno, node.col_offset,
                        f"entropy source `{target}()` in deterministic module; "
                        "thread an explicitly seeded generator instead",
                    )
                elif self._ambient_random(target):
                    yield self.violation(
                        module, node.lineno, node.col_offset,
                        f"ambient RNG call `{target}()` in deterministic "
                        "module; accept a seeded numpy Generator / "
                        "random.Random from the caller instead",
                    )
            elif isinstance(node, LOOP_NODES):
                yield from self._check_set_iteration(module, node)

    @staticmethod
    def _ambient_random(target: str) -> bool:
        for prefix in RANDOM_MODULES:
            if target.startswith(prefix + "."):
                tail = target[len(prefix) + 1:]
                # default_rng/Generator/Random construction is fine -- the
                # caller is choosing a seed; module-level draws are not.
                return tail not in ("default_rng", "Random", "Generator", "SeedSequence")
        return False

    def _check_set_iteration(
        self, module: ModuleContext, node: ast.AST
    ) -> Iterator[Violation]:
        iters: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for expr in iters:
            if _is_set_expression(expr):
                yield self.violation(
                    module, expr.lineno, expr.col_offset,
                    "iteration over a set has no contractual order in "
                    "deterministic module; iterate `sorted(...)` instead",
                )


def _is_set_expression(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in ("set", "frozenset")
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, (ast.BitAnd, ast.BitOr,
                                                            ast.Sub, ast.BitXor)):
        # set algebra like `a | b` is only flagged when an operand is
        # syntactically a set -- names are untyped here.
        return _is_set_expression(expr.left) or _is_set_expression(expr.right)
    return False
