"""API001 -- public functions in the optimizer core carry full annotations.

``mypy --strict`` runs on ``core/`` and ``units.py`` in CI; this rule is the
fast in-repo subset of that contract (no mypy needed to see a bare public
signature in review) and extends it to the cuDNN substrate, whose public
surface is the API boundary the whole package simulates.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FUNCTION_NODES, ModuleContext
from repro.analysis.registry import register
from repro.analysis.rules.base import Rule
from repro.analysis.violations import Violation


@register
class PublicApiRule(Rule):
    id = "API001"
    name = "public-annotations"
    default_severity = "error"
    default_paths = ("core/", "cudnn/")
    invariant = (
        "public functions and methods (plus __init__) in core/ and cudnn/ "
        "annotate every parameter and the return type"
    )
    rationale = (
        "cuDNN enforces its contract at the API boundary with typed "
        "signatures and status codes; the reproduction's boundary is these "
        "signatures, and mypy strict (CI) can only hold the line when the "
        "public surface is annotated"
    )
    fix = (
        "annotate the missing parameters/return (use `-> None` for "
        "procedures and __init__); prefix genuinely internal helpers with _"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, FUNCTION_NODES):
                continue
            if not self._is_public_def(module, node):
                continue
            missing = self._missing_annotations(module, node)
            if missing:
                yield self.violation(
                    module, node.lineno, node.col_offset,
                    f"public function `{node.name}` missing annotations: "
                    f"{', '.join(missing)}",
                )

    @staticmethod
    def _is_public_def(
        module: ModuleContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        if node.name.startswith("_") and node.name != "__init__":
            return False
        parent = module.parent(node)
        if isinstance(parent, ast.ClassDef):
            return not parent.name.startswith("_")
        return isinstance(parent, ast.Module)  # skip nested closures

    @staticmethod
    def _missing_annotations(
        module: ModuleContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[str]:
        missing: list[str] = []
        args = node.args
        positional = [*args.posonlyargs, *args.args]
        skip_first = isinstance(module.parent(node), ast.ClassDef) and not any(
            isinstance(d, ast.Name) and d.id == "staticmethod"
            for d in node.decorator_list
        )
        for index, arg in enumerate(positional):
            if skip_first and index == 0:
                continue  # self / cls
            if arg.annotation is None:
                missing.append(f"parameter `{arg.arg}`")
        for arg in args.kwonlyargs:
            if arg.annotation is None:
                missing.append(f"parameter `{arg.arg}`")
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None and vararg.annotation is None:
                missing.append(f"parameter `{vararg.arg}`")
        if node.returns is None:
            missing.append("return type")
        return missing
