"""ERR001 -- exceptions follow the :mod:`repro.errors` taxonomy.

Callers distinguish "the simulated library rejected this call"
(:class:`~repro.errors.CudnnStatusError`) from "the optimizer was misused"
(:class:`~repro.errors.UcudnnError`) by exception type, so raising generic
``RuntimeError``/``Exception`` breaks their handlers.  Broad ``except``
clauses likewise swallow taxonomy information unless they re-raise.

Allowed raises: the taxonomy classes, a configurable set of precise
builtins (``ValueError``, ``TypeError``, ``OSError``, ...), and classes
defined in the checked module whose base-class chain reaches an allowed
name (local refinement like ``SchemaError(ValueError)``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping

from repro.analysis.context import ModuleContext
from repro.analysis.registry import register
from repro.analysis.rules.base import Rule
from repro.analysis.violations import Violation

#: The repro.errors taxonomy (kept in sync by the meta-test on src/).
TAXONOMY = (
    "ReproError", "CudnnStatusError", "BadParamError", "NotSupportedError",
    "AllocFailedError", "ExecutionFailedError", "WorkspaceTooSmallError",
    "UcudnnError", "OptimizationError", "InfeasibleError", "SolverError",
    "CacheError", "PersistenceError", "SnapshotCorruptError",
    "SnapshotVersionError", "MergeConflictError", "ServiceError",
    "ServiceOverloadedError", "DeadlineExceededError", "WireError",
    "WireProtocolError", "RemoteError", "FrameworkError", "ShapeError",
)

#: Precise builtins allowed in ordinary code (config key ``allowed``).
DEFAULT_ALLOWED_BUILTINS = (
    "ValueError", "TypeError", "KeyError", "IndexError", "AttributeError",
    "NotImplementedError", "AssertionError", "OSError", "FileNotFoundError",
    "StopIteration", "SystemExit", "KeyboardInterrupt", "TimeoutError",
)

#: Builtin exception names recognized as "raisable" at all; anything else
#: (locals, imported non-taxonomy classes) is resolved structurally.
KNOWN_BUILTIN_EXCEPTIONS = frozenset({
    "Exception", "BaseException", "RuntimeError", "ArithmeticError",
    "ZeroDivisionError", "OverflowError", "FloatingPointError", "EOFError",
    "LookupError", "MemoryError", "NameError", "ReferenceError",
    "StopAsyncIteration", "SyntaxError", "SystemError", "UnicodeError",
    "BufferError", "ImportError", "ModuleNotFoundError", "RecursionError",
    "ConnectionError", "BrokenPipeError", "InterruptedError", "IsADirectoryError",
    "NotADirectoryError", "PermissionError", "ProcessLookupError",
}) | frozenset(DEFAULT_ALLOWED_BUILTINS)


@register
class ErrorTaxonomyRule(Rule):
    id = "ERR001"
    name = "error-taxonomy"
    default_severity = "error"
    default_paths = (".",)
    default_exclude = ("analysis/",)
    invariant = (
        "no bare/broad excepts that swallow (broad is fine when re-raising), "
        "and raised exceptions come from the repro.errors taxonomy or a "
        "small allowed-builtin set"
    )
    rationale = (
        "frameworks route on the taxonomy (CudnnStatusError vs UcudnnError, "
        "see repro/errors.py); a generic RuntimeError escapes every targeted "
        "handler, and a swallowed broad except hides the status code the "
        "substrate went to lengths to model"
    )
    fix = (
        "raise the closest taxonomy class (or add one), narrow the except, "
        "or re-raise inside the broad handler; suppress with a reason at "
        "genuine process boundaries (e.g. the harness experiment isolation)"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        options: Mapping[str, object] = module.rule_options(self.id)
        allowed = set(TAXONOMY) | set(DEFAULT_ALLOWED_BUILTINS)
        extra = options.get("allowed", ())
        if isinstance(extra, (list, tuple)):
            allowed.update(str(name) for name in extra)
        local_classes = _local_exception_classes(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(module, node)
            elif isinstance(node, ast.Raise):
                yield from self._check_raise(module, node, allowed, local_classes)

    def _check_handler(
        self, module: ModuleContext, handler: ast.ExceptHandler
    ) -> Iterator[Violation]:
        broad = _broad_exception_names(handler.type)
        if handler.type is None:
            broad = ["(bare)"]
        if not broad:
            return
        if any(isinstance(sub, ast.Raise) for sub in ast.walk(handler)):
            return  # broad-catch-and-re-raise cleanup pattern is fine
        label = "bare `except:`" if broad == ["(bare)"] else (
            f"broad `except {', '.join(broad)}`"
        )
        yield self.violation(
            module, handler.lineno, handler.col_offset,
            f"{label} without re-raise swallows taxonomy information; catch "
            "the specific repro.errors classes or re-raise",
        )

    def _check_raise(
        self,
        module: ModuleContext,
        node: ast.Raise,
        allowed: set[str],
        local_classes: Mapping[str, list[str]],
    ) -> Iterator[Violation]:
        name = _raised_name(node.exc)
        if name is None:
            return
        if name in allowed:
            return
        if _resolves_to_allowed(name, allowed, local_classes):
            return
        imported = module.resolve_import(name)
        if imported is not None and imported[0] in ("repro.errors",):
            return  # future taxonomy members imported from the hierarchy
        if name in KNOWN_BUILTIN_EXCEPTIONS or name in local_classes or (
            imported is not None
        ):
            yield self.violation(
                module, node.lineno, node.col_offset,
                f"raise of `{name}` outside the repro.errors taxonomy; use "
                "the closest taxonomy class (see repro/errors.py) or a "
                "precise builtin",
            )


def _broad_exception_names(expr: ast.expr | None) -> list[str]:
    if expr is None:
        return []
    names = []
    candidates = expr.elts if isinstance(expr, ast.Tuple) else [expr]
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in (
            "Exception", "BaseException",
        ):
            names.append(candidate.id)
    return names


def _raised_name(exc: ast.expr | None) -> str | None:
    if exc is None:
        return None  # bare re-raise
    node = exc
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        # Lower-case names are almost certainly bound exception *instances*
        # (`raise err`), which the rule cannot and need not resolve.
        return node.id if node.id[:1].isupper() else None
    return None


def _local_exception_classes(tree: ast.Module) -> dict[str, list[str]]:
    """Class name -> base-class names, for classes defined in this module."""
    classes: dict[str, list[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            bases = []
            for base in node.bases:
                if isinstance(base, ast.Name):
                    bases.append(base.id)
                elif isinstance(base, ast.Attribute):
                    bases.append(base.attr)
            classes[node.name] = bases
    return classes


def _resolves_to_allowed(
    name: str, allowed: set[str], local_classes: Mapping[str, list[str]]
) -> bool:
    seen: set[str] = set()
    frontier = [name]
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        if current in allowed:
            return True
        frontier.extend(local_classes.get(current, []))
    return False
