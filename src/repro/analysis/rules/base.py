"""Base class every reprolint rule derives from."""

from __future__ import annotations

from typing import Iterator

from repro.analysis.context import ModuleContext, TreeContext
from repro.analysis.violations import Violation


class Rule:
    """One statically-checkable contract.

    Subclasses set the class attributes and implement :meth:`check`; the
    engine handles scoping (``paths``/``exclude`` options), severity
    resolution, and suppressions, so ``check`` only reports raw findings.
    """

    #: Stable identifier, e.g. ``"DET001"`` (what suppressions name).
    id: str = ""
    #: Short kebab-case name for reports, e.g. ``"determinism"``.
    name: str = ""
    #: ``"error"`` or ``"warning"`` unless overridden in config.
    default_severity: str = "error"
    #: Package-relative path patterns the rule applies to (see config docs).
    default_paths: tuple[str, ...] = (".",)
    #: Path patterns exempt even when ``paths`` matches.
    default_exclude: tuple[str, ...] = ()
    #: One-line statement of the invariant being enforced.
    invariant: str = ""
    #: Why the invariant exists -- shown by ``--explain``.
    rationale: str = ""
    #: How to fix or legitimately suppress a finding.
    fix: str = ""
    #: True for diagnostics the engine emits itself (no ``check`` body).
    engine_emitted: bool = False
    #: True for interprocedural rules: the engine calls :meth:`check_tree`
    #: once with every parsed module instead of :meth:`check` per module.
    whole_tree: bool = False

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        """Yield every finding in one module.  Default: nothing."""
        return iter(())

    def check_tree(self, tree: TreeContext) -> Iterator[Violation]:
        """Yield every finding across the whole tree (``whole_tree`` rules)."""
        return iter(())

    def violation(
        self, module: ModuleContext, line: int, col: int, message: str
    ) -> Violation:
        """Build a finding with this rule's id and *default* severity.

        The engine rewrites the severity from config before reporting.
        """
        return Violation(
            file=module.relpath,
            line=line,
            col=col + 1,
            rule=self.id,
            severity=self.default_severity,
            message=message,
        )

    def tree_violation(
        self, file: str, line: int, col: int, message: str
    ) -> Violation:
        """Like :meth:`violation` but for whole-tree rules, which report
        against arbitrary files rather than "the" module being checked."""
        return Violation(
            file=file,
            line=line,
            col=col + 1,
            rule=self.id,
            severity=self.default_severity,
            message=message,
        )
