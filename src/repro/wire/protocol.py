"""Length-prefixed JSON wire protocol for out-of-process plan serving.

Framing: every message is a 4-byte big-endian payload length followed by
that many bytes of UTF-8 JSON.  The JSON is a versioned *envelope*::

    {"body": <message body>, "id": <request id>, "type": <str>, "v": 1}

serialized canonically (sorted keys, compact separators), so identical
messages are identical bytes -- the golden-bytes tests in
``tests/test_wire.py`` pin the frames down to the byte.

Request types (client -> server): ``plan`` (a serialized
:class:`~repro.service.PlanRequest`), ``ping``, ``stats``, ``save``
(snapshot the server's store to its configured path).  The server replies
with an envelope of the *same* ``type`` and ``id`` on success, or one of
type ``error`` whose body is ``{"error": <class name>, "message": <str>}``.
Error bodies map back onto the :mod:`repro.errors` taxonomy on the client
(:data:`WIRE_ERRORS`); unmapped classes surface as
:class:`~repro.errors.RemoteError`, never silently.

Deadlines travel *inside* the plan body (``deadline_s``), so a client's
latency budget is enforced by the server's own degradation ladder --
the wire adds transport, not new timeout semantics.

Anything that violates this grammar -- truncated frame, oversized length
prefix, undecodable JSON, wrong envelope version, non-object body --
raises :class:`~repro.errors.WireProtocolError`.
"""

from __future__ import annotations

import json
import socket
import struct

from repro.core.config import Configuration
from repro.core.policies import BatchSizePolicy
from repro.cudnn.descriptors import ConvGeometry
from repro.cudnn.enums import ConvType, ConvolutionMode
from repro.errors import (
    CacheError,
    ClusterError,
    DeadlineExceededError,
    InfeasibleError,
    MergeConflictError,
    OptimizationError,
    PersistenceError,
    RemoteError,
    ServiceError,
    ServiceOverloadedError,
    SnapshotCorruptError,
    SnapshotVersionError,
    SolverError,
    UcudnnError,
    WireProtocolError,
)
from repro.persistence.snapshot import conv_type_of
from repro.service.requests import PlanKey, PlanRequest, PlanResponse
from repro.telemetry.locks import blocking
from repro.telemetry.spans import Span
from repro.units import MIB

#: Envelope version; bumped on any incompatible change to the grammar above.
WIRE_VERSION = 1

#: Upper bound on one frame's payload; a length prefix above this is
#: rejected before any allocation (a garbage prefix must not OOM the peer).
MAX_FRAME_BYTES = 16 * MIB

#: Request types the server dispatches.
REQUEST_TYPES = ("plan", "ping", "stats", "save")

#: Error-body class names -> local taxonomy classes (all constructible from
#: a bare message).  Anything else maps to :class:`RemoteError`.
WIRE_ERRORS: dict[str, type[Exception]] = {
    cls.__name__: cls
    for cls in (
        UcudnnError,
        OptimizationError,
        InfeasibleError,
        SolverError,
        CacheError,
        PersistenceError,
        SnapshotCorruptError,
        SnapshotVersionError,
        MergeConflictError,
        ServiceError,
        ServiceOverloadedError,
        DeadlineExceededError,
        ClusterError,
        WireProtocolError,
    )
}


# ---------------------------------------------------------------------------
# Envelopes and frames (pure bytes <-> values; golden-testable)
# ---------------------------------------------------------------------------


def encode_envelope(msg_type: str, body: object, msg_id: int) -> bytes:
    """Canonical JSON payload bytes for one envelope (no length prefix)."""
    payload = json.dumps(
        {"body": body, "id": msg_id, "type": msg_type, "v": WIRE_VERSION},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"outgoing {msg_type!r} payload is {len(payload)} bytes, "
            f"over the {MAX_FRAME_BYTES}-byte frame limit"
        )
    return payload


def encode_frame(msg_type: str, body: object, msg_id: int) -> bytes:
    """One complete frame: length prefix + envelope payload."""
    payload = encode_envelope(msg_type, body, msg_id)
    return struct.pack(">I", len(payload)) + payload


def decode_envelope(payload: bytes) -> tuple[str, int, object]:
    """``(type, id, body)`` of one envelope payload; validates the grammar."""
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireProtocolError(f"undecodable envelope: {exc}") from exc
    if not isinstance(document, dict):
        raise WireProtocolError(
            f"envelope must be a JSON object, got {type(document).__name__}"
        )
    version = document.get("v")
    if version != WIRE_VERSION:
        raise WireProtocolError(
            f"envelope version {version!r} is not speakable by this build "
            f"(expected {WIRE_VERSION})"
        )
    msg_type = document.get("type")
    if not isinstance(msg_type, str):
        raise WireProtocolError("envelope 'type' must be a string")
    msg_id = document.get("id")
    if not isinstance(msg_id, int) or isinstance(msg_id, bool):
        raise WireProtocolError("envelope 'id' must be an integer")
    return msg_type, msg_id, document.get("body")


# ---------------------------------------------------------------------------
# Socket framing
# ---------------------------------------------------------------------------


def _recv_exact(sock: socket.socket, count: int, what: str) -> bytes | None:
    """Exactly ``count`` bytes, ``None`` on clean EOF before the first byte.

    EOF *after* the first byte is a truncated ``what`` and raises
    :class:`WireProtocolError` -- a peer vanishing mid-message is protocol
    damage, not a polite goodbye.
    """
    chunks: list[bytes] = []
    received = 0
    while received < count:
        chunk = sock.recv(count - received)
        if not chunk:
            if received == 0:
                return None
            raise WireProtocolError(
                f"connection closed mid-{what}: got {received} of "
                f"{count} bytes"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> bytes | None:
    """The next frame's payload bytes; ``None`` on clean EOF between frames."""
    blocking("wire.read_frame")
    header = _recv_exact(sock, 4, "length prefix")
    if header is None:
        return None
    (length,) = struct.unpack(">I", header)
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"incoming frame claims {length} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte limit (corrupt or hostile prefix?)"
        )
    payload = _recv_exact(sock, length, "frame payload")
    if payload is None and length > 0:
        raise WireProtocolError(
            f"connection closed before any of the {length} payload bytes"
        )
    return payload if payload is not None else b""


def write_frame(sock: socket.socket, payload: bytes) -> int:
    """Send one frame; returns bytes written (prefix included)."""
    blocking("wire.write_frame")
    if len(payload) > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    frame = struct.pack(">I", len(payload)) + payload
    sock.sendall(frame)
    return len(frame)


# ---------------------------------------------------------------------------
# Message bodies
# ---------------------------------------------------------------------------


def geometry_to_wire(geometry: ConvGeometry) -> dict:
    return {
        "conv_type": geometry.conv_type.value,
        "n": geometry.n, "c": geometry.c, "h": geometry.h, "w": geometry.w,
        "k": geometry.k, "r": geometry.r, "s": geometry.s,
        "pad_h": geometry.pad_h, "pad_w": geometry.pad_w,
        "stride_h": geometry.stride_h, "stride_w": geometry.stride_w,
        "dilation_h": geometry.dilation_h, "dilation_w": geometry.dilation_w,
        "mode": geometry.mode.value,
        "groups": geometry.groups,
    }


def geometry_from_wire(data: object) -> ConvGeometry:
    if not isinstance(data, dict):
        raise WireProtocolError("plan body 'geometry' must be an object")
    try:
        return ConvGeometry(
            conv_type=ConvType(data["conv_type"]),
            n=data["n"], c=data["c"], h=data["h"], w=data["w"],
            k=data["k"], r=data["r"], s=data["s"],
            pad_h=data["pad_h"], pad_w=data["pad_w"],
            stride_h=data["stride_h"], stride_w=data["stride_w"],
            dilation_h=data["dilation_h"], dilation_w=data["dilation_w"],
            mode=ConvolutionMode(data["mode"]),
            groups=data["groups"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireProtocolError(f"corrupt wire geometry: {exc}") from exc


def request_to_wire(request: PlanRequest) -> dict:
    out = {
        "kernel": request.kernel,
        "geometry": geometry_to_wire(request.geometry),
        "policy": request.policy.value,
        "workspace_limit": request.workspace_limit,
        "deadline_s": request.deadline_s,
        "client": request.client,
    }
    # The trace-context key is *omitted* for untraced requests, so frames
    # from tracing-off builds are byte-identical to pre-tracing builds and
    # old peers (which ignore unknown keys) interoperate either way.
    if request.trace_id:
        out["trace"] = {
            "parent_span_id": request.parent_span_id,
            "trace_id": request.trace_id,
        }
    # Same omit-when-empty discipline for the cluster routing hint: frames
    # from unrouted clients stay byte-identical to pre-cluster builds.
    if request.shard:
        out["shard"] = request.shard
    return out


def request_from_wire(data: object) -> PlanRequest:
    if not isinstance(data, dict):
        raise WireProtocolError("plan body must be an object")
    deadline = data.get("deadline_s")
    if deadline is not None and (
        not isinstance(deadline, (int, float)) or isinstance(deadline, bool)
    ):
        raise WireProtocolError("plan body 'deadline_s' must be null or a number")
    trace = data.get("trace")
    trace_id = ""
    parent_span_id = ""
    if trace is not None:
        if not isinstance(trace, dict):
            raise WireProtocolError("plan body 'trace' must be an object")
        trace_id = trace.get("trace_id", "")
        parent_span_id = trace.get("parent_span_id", "")
        if not isinstance(trace_id, str) or not isinstance(parent_span_id, str):
            raise WireProtocolError(
                "plan body 'trace' fields must be strings"
            )
    shard = data.get("shard", "")
    if not isinstance(shard, str):
        raise WireProtocolError("plan body 'shard' must be a string")
    try:
        return PlanRequest(
            kernel=str(data["kernel"]),
            geometry=geometry_from_wire(data["geometry"]),
            policy=BatchSizePolicy(data["policy"]),
            workspace_limit=int(data["workspace_limit"]),
            deadline_s=None if deadline is None else float(deadline),
            client=str(data.get("client", "")),
            trace_id=trace_id,
            parent_span_id=parent_span_id,
            shard=shard,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireProtocolError(f"corrupt wire plan request: {exc}") from exc


def response_to_wire(response: PlanResponse) -> dict:
    key = response.key
    out = {
        "kernel": response.kernel,
        "key": {
            "gpu": key.gpu,
            "kernel": key.kernel,
            "policy": key.policy,
            "workspace_limit": key.workspace_limit,
            "scheme": key.scheme,
        },
        "configuration": response.configuration.to_dict(
            conv_type_of(response.configuration, key.kernel)
        ),
        "source": response.source,
        "solve_seconds": response.solve_seconds,
        "latency_s": response.latency_s,
        "fallback_reason": response.fallback_reason,
        "client": response.client,
    }
    # Omitted for single-shard services (byte-identity with older peers);
    # cluster responses carry the shard that actually served the plan.
    if response.shard:
        out["shard"] = response.shard
    return out


def response_from_wire(data: object) -> PlanResponse:
    if not isinstance(data, dict):
        raise WireProtocolError("plan response body must be an object")
    try:
        key_fields = data["key"]
        return PlanResponse(
            kernel=str(data["kernel"]),
            key=PlanKey(
                gpu=str(key_fields["gpu"]),
                kernel=str(key_fields["kernel"]),
                policy=str(key_fields["policy"]),
                workspace_limit=int(key_fields["workspace_limit"]),
                scheme=str(key_fields["scheme"]),
            ),
            configuration=Configuration.from_dict(data["configuration"]),
            source=str(data["source"]),
            solve_seconds=float(data["solve_seconds"]),
            latency_s=float(data["latency_s"]),
            fallback_reason=str(data["fallback_reason"]),
            client=str(data["client"]),
            shard=str(data.get("shard", "")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireProtocolError(f"corrupt wire plan response: {exc}") from exc


def span_to_wire(span: Span) -> dict:
    """One finished span tree as canonical JSON-safe nested dicts.

    Shipped inside a plan response's (unpinned) ``trace`` key so the client
    can adopt the server's half of the request timeline; attributes are
    stringified when not JSON-scalar, keys sorted for byte determinism.
    """
    attributes = {}
    for key in sorted(span.attributes):
        value = span.attributes[key]
        if isinstance(value, (bool, int, float, str)) or value is None:
            attributes[key] = value
        else:
            attributes[key] = str(value)
    out: dict = {
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "attributes": attributes,
        "children": [span_to_wire(child) for child in span.children],
    }
    if span.trace_id is not None:
        out["trace_id"] = span.trace_id
    if span.span_id is not None:
        out["span_id"] = span.span_id
    if span.parent_span_id is not None:
        out["parent_span_id"] = span.parent_span_id
    if span.links:
        out["links"] = [dict(link) for link in span.links]
    return out


def span_from_wire(data: object) -> Span:
    """Rebuild one span tree; grammar violations raise ``WireProtocolError``."""
    if not isinstance(data, dict):
        raise WireProtocolError("wire span must be an object")
    name = data.get("name")
    if not isinstance(name, str):
        raise WireProtocolError("wire span 'name' must be a string")
    start = data.get("start")
    end = data.get("end")
    if not isinstance(start, (int, float)) or isinstance(start, bool):
        raise WireProtocolError("wire span 'start' must be a number")
    if end is not None and (
        not isinstance(end, (int, float)) or isinstance(end, bool)
    ):
        raise WireProtocolError("wire span 'end' must be null or a number")
    attributes = data.get("attributes", {})
    if not isinstance(attributes, dict):
        raise WireProtocolError("wire span 'attributes' must be an object")
    children = data.get("children", [])
    if not isinstance(children, list):
        raise WireProtocolError("wire span 'children' must be an array")
    for field_name in ("trace_id", "span_id", "parent_span_id"):
        value = data.get(field_name)
        if value is not None and not isinstance(value, str):
            raise WireProtocolError(
                f"wire span {field_name!r} must be a string"
            )
    links = data.get("links", [])
    if not isinstance(links, list) or any(
        not isinstance(link, dict) for link in links
    ):
        raise WireProtocolError("wire span 'links' must be an array of objects")
    for link in links:
        if any(not isinstance(value, str) for value in link.values()):
            raise WireProtocolError(
                "wire span link values must be strings"
            )
    return Span(
        name=name,
        attributes=dict(attributes),
        start=float(start),
        end=None if end is None else float(end),
        children=[span_from_wire(child) for child in children],
        trace_id=data.get("trace_id"),
        span_id=data.get("span_id"),
        parent_span_id=data.get("parent_span_id"),
        links=[dict(link) for link in links],
    )


def parse_address(address: str) -> tuple[str, int]:
    """``(host, port)`` from a ``HOST:PORT`` string (runner flag syntax)."""
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise WireProtocolError(
            f"address {address!r} is not HOST:PORT"
        )
    try:
        port = int(port_text)
    except ValueError as exc:
        raise WireProtocolError(
            f"address {address!r} has a non-numeric port"
        ) from exc
    if not 0 <= port <= 65535:
        raise WireProtocolError(f"port {port} out of range in {address!r}")
    return host, port


def error_to_wire(exc: BaseException) -> dict:
    """The error body a server sends for one failed request."""
    return {"error": type(exc).__name__, "message": str(exc)}


def error_from_wire(data: object) -> Exception:
    """The local exception to raise for one received error body."""
    if not isinstance(data, dict):
        return WireProtocolError("error body must be an object")
    name = data.get("error")
    message = data.get("message")
    if not isinstance(name, str) or not isinstance(message, str):
        return WireProtocolError(
            f"error body must carry string 'error' and 'message', got {data!r}"
        )
    mapped = WIRE_ERRORS.get(name)
    if mapped is not None:
        return mapped(message)
    return RemoteError(f"{name}: {message}")
