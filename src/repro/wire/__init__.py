"""Out-of-process plan serving: wire protocol, server, and client.

The paper's benchmark DB amortizes autotuning across processes on one
machine; this package amortizes it across *machines*: a
:class:`PlanServer` wraps one :class:`~repro.service.PlanService` (ideally
backed by a :class:`~repro.persistence.PersistentPlanStore`) behind a
length-prefixed JSON protocol, and :class:`PlanClient` gives remote
training processes the same blocking ``plan(request) -> response`` call
they would have in-process -- same plans, same taxonomy errors, plus a
network in between.

See :mod:`repro.wire.protocol` for the byte-level grammar.
"""

from repro.wire.admin import AdminServer
from repro.wire.client import PlanClient
from repro.wire.protocol import (
    MAX_FRAME_BYTES,
    REQUEST_TYPES,
    WIRE_ERRORS,
    WIRE_VERSION,
    decode_envelope,
    encode_envelope,
    encode_frame,
    error_from_wire,
    error_to_wire,
    parse_address,
    read_frame,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
    span_from_wire,
    span_to_wire,
    write_frame,
)
from repro.wire.server import PlanServer, WireStats

__all__ = [
    "AdminServer",
    "MAX_FRAME_BYTES",
    "PlanClient",
    "PlanServer",
    "REQUEST_TYPES",
    "WIRE_ERRORS",
    "WIRE_VERSION",
    "WireStats",
    "decode_envelope",
    "encode_envelope",
    "encode_frame",
    "error_from_wire",
    "error_to_wire",
    "parse_address",
    "read_frame",
    "request_from_wire",
    "request_to_wire",
    "response_from_wire",
    "response_to_wire",
    "span_from_wire",
    "span_to_wire",
    "write_frame",
]
