"""Blocking client for the plan-serving wire protocol.

One connection, strictly request/response: the client assigns monotonically
increasing request ids, sends one frame, and blocks for the matching reply.
Replies are verified three ways before anything is returned -- envelope
version, echoed id, and echoed type -- so a desynchronized or misbehaving
server surfaces as :class:`~repro.errors.WireProtocolError` instead of a
wrong answer.  ``error`` envelopes are raised as their mapped taxonomy
class (see :data:`repro.wire.protocol.WIRE_ERRORS`): a remote
:class:`~repro.errors.ServiceOverloadedError` is catchable exactly like a
local one, which is the whole point of typed error transport.
"""

from __future__ import annotations

import dataclasses
import socket

import repro.telemetry as telemetry
from repro.errors import DeadlineExceededError, WireProtocolError
from repro.service.requests import PlanRequest, PlanResponse
from repro.telemetry.locks import new_lock
from repro.telemetry.trace import TraceIdSource
from repro.wire.protocol import (
    decode_envelope,
    encode_envelope,
    error_from_wire,
    read_frame,
    request_to_wire,
    response_from_wire,
    span_from_wire,
    write_frame,
)


class PlanClient:
    """Connect to a :class:`~repro.wire.PlanServer` at ``host:port``.

    ``timeout_s`` bounds each socket operation (connect/send/receive); it is
    transport protection, not a plan deadline -- put the plan deadline in
    :attr:`PlanRequest.deadline_s`, where the server's degradation ladder
    enforces it.  Thread-safe: concurrent calls serialize on the connection.
    """

    def __init__(
        self, host: str, port: int, timeout_s: float | None = None
    ) -> None:
        self.host = host
        self.port = port
        #: Owning lock: one request/response exchange at a time on the wire.
        self._lock = new_lock("wire.client")
        self._next_id = 1
        self._closed = False
        #: Deterministic trace-id mint for traced ``plan`` calls
        #: (``req-000001``, ...); only consulted while telemetry is enabled.
        self._trace_ids = TraceIdSource("req")
        try:
            self._sock = socket.create_connection((host, port), timeout_s)
        except TimeoutError as exc:
            # socket.timeout is a TimeoutError subclass of OSError; it must
            # map to the taxonomy's deadline class, not a protocol error --
            # a slow peer is a budget miss, not grammar damage (ERR001).
            raise DeadlineExceededError(
                f"timed out after {timeout_s} s connecting to plan server "
                f"at {host}:{port}"
            ) from exc
        except OSError as exc:
            raise WireProtocolError(
                f"cannot connect to plan server at {host}:{port}: {exc}"
            ) from exc
        if timeout_s is not None:
            self._sock.settimeout(timeout_s)

    # -- request primitives ------------------------------------------------

    def _call(self, msg_type: str, body: object) -> object:
        with self._lock:
            if self._closed:
                raise WireProtocolError("client is closed")
            msg_id = self._next_id
            self._next_id += 1
            try:
                write_frame(self._sock, encode_envelope(msg_type, body, msg_id))
                payload = read_frame(self._sock)
            except TimeoutError as exc:
                # A silent server is a missed budget, not protocol damage:
                # surface the taxonomy's deadline error so callers handle
                # local and remote deadline misses identically (ERR001).
                raise DeadlineExceededError(
                    f"no reply from plan server {self.host}:{self.port} "
                    f"within the socket timeout for request {msg_id}"
                ) from exc
            except OSError as exc:
                raise WireProtocolError(
                    f"transport failure talking to {self.host}:{self.port}: "
                    f"{exc}"
                ) from exc
        if payload is None:
            raise WireProtocolError(
                f"server {self.host}:{self.port} closed the connection "
                f"instead of answering request {msg_id}"
            )
        reply_type, reply_id, reply_body = decode_envelope(payload)
        if reply_id != msg_id:
            raise WireProtocolError(
                f"reply id {reply_id} does not match request id {msg_id} "
                "(connection desynchronized)"
            )
        if reply_type == "error":
            raise error_from_wire(reply_body)
        if reply_type != msg_type:
            raise WireProtocolError(
                f"reply type {reply_type!r} does not match request type "
                f"{msg_type!r}"
            )
        return reply_body

    # -- the protocol's verbs ----------------------------------------------

    def plan(self, request: PlanRequest) -> PlanResponse:
        """Solve one plan request on the server; blocks for the answer.

        With telemetry enabled, the call opens a ``wire.client.request``
        span, mints a trace id (unless the request already carries one),
        sends the trace context in the plan body, and -- when the server
        replies with its own span trees under the body's ``trace`` key --
        adopts them into the local tracer, so one Chrome-trace export
        renders the whole cross-process request timeline.  With telemetry
        off this method allocates no trace state at all.
        """
        if not telemetry.enabled():
            return response_from_wire(
                self._call("plan", request_to_wire(request))
            )
        with telemetry.span(
            "wire.client.request", kernel=request.kernel,
            server=f"{self.host}:{self.port}",
        ) as cspan:
            if not request.trace_id:
                request = dataclasses.replace(
                    request, trace_id=self._trace_ids.next()
                )
            tracer = telemetry.get_tracer()
            cspan.trace_id = request.trace_id  # type: ignore[attr-defined]
            cspan.span_id = tracer.new_span_id()  # type: ignore[attr-defined]
            request = dataclasses.replace(
                request, parent_span_id=cspan.span_id  # type: ignore[attr-defined]
            )
            body = self._call("plan", request_to_wire(request))
            response = response_from_wire(body)
            cspan.set("source", response.source)
            remote = body.get("trace") if isinstance(body, dict) else None
            if isinstance(remote, list):
                for tree in remote:
                    tracer.adopt_remote(
                        span_from_wire(tree), origin="server", anchor=cspan
                    )
            return response

    def ping(self) -> dict:
        """Liveness probe; returns the server's GPU model and wire version."""
        body = self._call("ping", {})
        if not isinstance(body, dict):
            raise WireProtocolError("ping reply body must be an object")
        return body

    def stats(self) -> dict:
        """The server's metrics summary (service + store + wire counters)."""
        body = self._call("stats", {})
        if not isinstance(body, dict):
            raise WireProtocolError("stats reply body must be an object")
        return body

    def save(self) -> str:
        """Ask the server to snapshot its store; returns the saved path."""
        body = self._call("save", {})
        if not isinstance(body, dict) or not isinstance(body.get("path"), str):
            raise WireProtocolError("save reply body must carry a 'path'")
        return body["path"]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sock = self._sock
        try:
            sock.close()
        except OSError:
            pass

    def __enter__(self) -> "PlanClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
