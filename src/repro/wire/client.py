"""Blocking client for the plan-serving wire protocol.

One connection, strictly request/response: the client assigns monotonically
increasing request ids, sends one frame, and blocks for the matching reply.
Replies are verified three ways before anything is returned -- envelope
version, echoed id, and echoed type -- so a desynchronized or misbehaving
server surfaces as :class:`~repro.errors.WireProtocolError` instead of a
wrong answer.  ``error`` envelopes are raised as their mapped taxonomy
class (see :data:`repro.wire.protocol.WIRE_ERRORS`): a remote
:class:`~repro.errors.ServiceOverloadedError` is catchable exactly like a
local one, which is the whole point of typed error transport.
"""

from __future__ import annotations

import socket
import threading

from repro.errors import WireProtocolError
from repro.service.requests import PlanRequest, PlanResponse
from repro.wire.protocol import (
    decode_envelope,
    encode_envelope,
    error_from_wire,
    read_frame,
    request_to_wire,
    response_from_wire,
    write_frame,
)


class PlanClient:
    """Connect to a :class:`~repro.wire.PlanServer` at ``host:port``.

    ``timeout_s`` bounds each socket operation (connect/send/receive); it is
    transport protection, not a plan deadline -- put the plan deadline in
    :attr:`PlanRequest.deadline_s`, where the server's degradation ladder
    enforces it.  Thread-safe: concurrent calls serialize on the connection.
    """

    def __init__(
        self, host: str, port: int, timeout_s: float | None = None
    ) -> None:
        self.host = host
        self.port = port
        #: Owning lock: one request/response exchange at a time on the wire.
        self._lock = threading.Lock()
        self._next_id = 1
        self._closed = False
        try:
            self._sock = socket.create_connection((host, port), timeout_s)
        except OSError as exc:
            raise WireProtocolError(
                f"cannot connect to plan server at {host}:{port}: {exc}"
            ) from exc
        if timeout_s is not None:
            self._sock.settimeout(timeout_s)

    # -- request primitives ------------------------------------------------

    def _call(self, msg_type: str, body: object) -> object:
        with self._lock:
            if self._closed:
                raise WireProtocolError("client is closed")
            msg_id = self._next_id
            self._next_id += 1
            try:
                write_frame(self._sock, encode_envelope(msg_type, body, msg_id))
                payload = read_frame(self._sock)
            except OSError as exc:
                raise WireProtocolError(
                    f"transport failure talking to {self.host}:{self.port}: "
                    f"{exc}"
                ) from exc
        if payload is None:
            raise WireProtocolError(
                f"server {self.host}:{self.port} closed the connection "
                f"instead of answering request {msg_id}"
            )
        reply_type, reply_id, reply_body = decode_envelope(payload)
        if reply_id != msg_id:
            raise WireProtocolError(
                f"reply id {reply_id} does not match request id {msg_id} "
                "(connection desynchronized)"
            )
        if reply_type == "error":
            raise error_from_wire(reply_body)
        if reply_type != msg_type:
            raise WireProtocolError(
                f"reply type {reply_type!r} does not match request type "
                f"{msg_type!r}"
            )
        return reply_body

    # -- the protocol's verbs ----------------------------------------------

    def plan(self, request: PlanRequest) -> PlanResponse:
        """Solve one plan request on the server; blocks for the answer."""
        return response_from_wire(self._call("plan", request_to_wire(request)))

    def ping(self) -> dict:
        """Liveness probe; returns the server's GPU model and wire version."""
        body = self._call("ping", {})
        if not isinstance(body, dict):
            raise WireProtocolError("ping reply body must be an object")
        return body

    def stats(self) -> dict:
        """The server's metrics summary (service + store + wire counters)."""
        body = self._call("stats", {})
        if not isinstance(body, dict):
            raise WireProtocolError("stats reply body must be an object")
        return body

    def save(self) -> str:
        """Ask the server to snapshot its store; returns the saved path."""
        body = self._call("save", {})
        if not isinstance(body, dict) or not isinstance(body.get("path"), str):
            raise WireProtocolError("save reply body must carry a 'path'")
        return body["path"]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sock = self._sock
        try:
            sock.close()
        except OSError:
            pass

    def __enter__(self) -> "PlanClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
