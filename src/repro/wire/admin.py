"""Threaded HTTP admin listener: live introspection of one plan server.

Four read-only endpoints, designed to be ``curl``-able while the wire
server is under load:

``/metrics``
    Prometheus text exposition: the service/store/wire counters (always),
    plus the full telemetry registry -- labelled latency histograms with
    trace-id exemplars included -- when telemetry is enabled.
``/healthz``
    Process liveness; always ``200`` while the listener answers at all.
``/readyz``
    Serving readiness: ``200`` with store occupancy and warm-start status
    while the service accepts work, ``503`` once it is closed.
``/requestz``
    The bounded ring of recent request records
    (:class:`~repro.service.introspection.RequestLog`) as canonical JSON --
    byte-identical across identical runs under a manual clock, which CI
    verifies with a plain ``cmp`` of two scrapes.

Everything here *reads* lock-guarded state maintained elsewhere; the
listener holds no mutable state of its own beyond the socket, so it adds
introspection without new coherence hazards.  Unknown paths return ``404``;
non-GET methods get the stdlib handler's ``501``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Callable

import repro.telemetry as telemetry
from repro.service.plan_service import PlanService
from repro.telemetry.exporters import prometheus_sample, prometheus_text
from repro.telemetry.locks import new_lock

if TYPE_CHECKING:
    from repro.cluster.service import ClusterService

#: ``(status, content_type, body)`` produced by one endpoint handler.
_Reply = "tuple[int, str, bytes]"


def _json_reply(status: int, document: object) -> tuple[int, str, bytes]:
    body = json.dumps(document, indent=2, sort_keys=True) + "\n"
    return status, "application/json", body.encode("utf-8")


class AdminServer:
    """Serve the admin endpoints for one :class:`PlanService`.

    Parameters
    ----------
    service:
        The service to introspect (its ``metrics_summary``, ``request_log``,
        store snapshot, and closed flag feed the endpoints).
    wire_stats:
        Optional callable returning the fronting wire server's counter dict
        (:meth:`~repro.wire.server.WireStats.as_dict`); merged into
        ``/metrics`` when given.
    host / port:
        Bind address; port 0 picks an ephemeral port, readable from
        :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        service: "PlanService | ClusterService",
        wire_stats: "Callable[[], dict[str, int]] | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.wire_stats = wire_stats
        self.host = host
        self.port = port
        #: Owning lock for the listener lifecycle state below (start/close
        #: may race with each other and with handler threads reading port).
        self._lock = new_lock("admin")
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "AdminServer":
        admin = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:
                status, content_type, body = admin._route(self.path)
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: object) -> None:
                pass  # scrapes are routine; stderr noise helps nobody

        httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        httpd.daemon_threads = True
        thread = threading.Thread(
            target=httpd.serve_forever, name="plan-admin", daemon=True
        )
        with self._lock:
            self._httpd = httpd
            self._thread = thread
            self.port = httpd.server_address[1]
        thread.start()
        return self

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def close(self) -> None:
        with self._lock:
            httpd, self._httpd = self._httpd, None
            thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "AdminServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- endpoints ---------------------------------------------------------

    def _route(self, path: str) -> tuple[int, str, bytes]:
        path = path.split("?", 1)[0]
        if path == "/metrics":
            return self._metrics()
        if path == "/healthz":
            return _json_reply(200, {"status": "ok"})
        if path == "/readyz":
            return self._readyz()
        if path == "/requestz":
            return self._requestz()
        return _json_reply(
            404,
            {"error": f"unknown path {path!r}",
             "paths": ["/healthz", "/metrics", "/readyz", "/requestz"]},
        )

    def _metrics(self) -> tuple[int, str, bytes]:
        """Service/store/wire counters (always) + telemetry registry (if on)."""
        lines: list[str] = []
        summary = self.service.metrics_summary()
        service_counts = summary.get("service", {})
        if isinstance(service_counts, dict):
            for name in sorted(service_counts):
                lines.append(prometheus_sample(
                    f"service.{name}", {}, service_counts[name]
                ))
        store = summary.get("store", {})
        if isinstance(store, dict):
            for name in sorted(store):
                lines.append(prometheus_sample(
                    f"store.{name}", {}, store[name]
                ))
        if self.wire_stats is not None:
            wire = self.wire_stats()
            for name in sorted(wire):
                lines.append(prometheus_sample(f"wire.{name}", {}, wire[name]))
        log = self.service.request_log
        if log is not None:
            lines.append(prometheus_sample(
                "requestz.records", {}, len(log)
            ))
            lines.append(prometheus_sample(
                "requestz.dropped", {}, log.dropped
            ))
        text = "\n".join(lines) + ("\n" if lines else "")
        session = telemetry.session()
        if session is not None:
            text += prometheus_text(session.metrics)
        return 200, "text/plain; version=0.0.4", text.encode("utf-8")

    def _readyz(self) -> tuple[int, str, bytes]:
        """Readiness: the store's occupancy/warm state, 503 once closed."""
        snapshot = self.service.store.snapshot()
        ready = not self.service.closed
        warm_hits = 0
        if isinstance(snapshot, dict):
            raw = snapshot.get("warm_hits", 0)
            if isinstance(raw, int):
                warm_hits = raw
        document = {
            "gpu": self.service.gpu_name,
            "ready": ready,
            "store": snapshot,
            "warm": warm_hits > 0,
        }
        return _json_reply(200 if ready else 503, document)

    def _requestz(self) -> tuple[int, str, bytes]:
        """The recent-request ring; an empty ring shape when none attached."""
        log = self.service.request_log
        if log is None:
            return _json_reply(
                200, {"capacity": 0, "dropped": 0, "records": []}
            )
        return 200, "application/json", log.to_json().encode("utf-8")


__all__ = ["AdminServer"]
