"""Threaded socket server exposing one :class:`PlanService` over the wire.

One accept thread plus one handler thread per connection -- the same
concurrency shape as the in-process service (whose worker pool already
coalesces and bounds admission), so the server adds transport and nothing
else.  Request dispatch:

``plan``
    Deserialize the :class:`~repro.service.PlanRequest` (its ``deadline_s``
    rides along, so the server's degradation ladder enforces the *client's*
    budget) and answer with the serialized :class:`PlanResponse`.
``ping``
    Liveness + identity: returns the serving GPU model and wire version.
``stats``
    The service's :meth:`metrics_summary` plus per-server wire counters.
``save``
    Snapshot the backing store to disk (the server's configured
    ``snapshot_path``, or the :class:`PersistentPlanStore`'s own file).

Taxonomy errors raised by dispatch become typed ``error`` envelopes that
the client maps back to the same classes; the connection survives.  Frames
that violate the protocol itself get a best-effort ``error`` envelope
(id 0) and the connection is dropped -- once framing is lost there is no
way to know where the next message starts.
"""

from __future__ import annotations

import dataclasses
import socket
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

import repro.telemetry as telemetry
from repro.errors import PersistenceError, ReproError, WireProtocolError
from repro.persistence.snapshot import save_snapshot, snapshot_service
from repro.persistence.store import PersistentPlanStore
from repro.service.plan_service import PlanService
from repro.telemetry.locks import new_lock
from repro.wire.protocol import (
    WIRE_VERSION,
    decode_envelope,
    encode_envelope,
    error_to_wire,
    read_frame,
    request_from_wire,
    response_to_wire,
    span_to_wire,
    write_frame,
)

if TYPE_CHECKING:
    from repro.cluster.service import ClusterService


@dataclass
class WireStats:
    """Monotonic per-server wire counters (mutated under the server lock)."""

    connections: int = 0
    requests: int = 0
    errors: int = 0
    protocol_errors: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    frames_in: int = 0
    frames_out: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "connections": self.connections,
            "requests": self.requests,
            "errors": self.errors,
            "protocol_errors": self.protocol_errors,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "frames_in": self.frames_in,
            "frames_out": self.frames_out,
        }


class PlanServer:
    """Serve ``service`` on ``host:port`` (port 0 picks an ephemeral port).

    Use as a context manager or call :meth:`start` / :meth:`close`.  The
    bound port is available as :attr:`port` after :meth:`start` -- tests
    and the runner print it so clients know where to connect.
    """

    def __init__(
        self,
        service: "PlanService | ClusterService",
        host: str = "127.0.0.1",
        port: int = 0,
        snapshot_path: "str | None" = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.snapshot_path = snapshot_path
        #: Owning lock for the stats and the connection registry below.
        self._lock = new_lock("wire")
        self.stats = WireStats()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._handlers: list[threading.Thread] = []
        self._connections: dict[int, socket.socket] = {}
        self._closing = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "PlanServer":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen()
        thread = threading.Thread(
            target=self._accept_loop, name="plan-server-accept", daemon=True
        )
        with self._lock:
            self.port = listener.getsockname()[1]
            self._listener = listener
            self._accept_thread = thread
        thread.start()
        telemetry.event("wire.server.start", host=self.host, port=self.port)
        return self

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def close(self) -> None:
        """Stop accepting, drop live connections, join handler threads."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            listener = self._listener
            connections = list(self._connections.values())
            handlers = list(self._handlers)
            accept_thread = self._accept_thread
        if listener is not None:
            listener.close()
        for conn in connections:
            _quiet_close(conn)
        if accept_thread is not None:
            accept_thread.join(timeout=5.0)
        for thread in handlers:
            thread.join(timeout=5.0)
        telemetry.event("wire.server.stop", host=self.host, port=self.port)

    def __enter__(self) -> "PlanServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- accept / per-connection loops ------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None, "start() assigns the listener first"
        while True:
            try:
                conn, _addr = listener.accept()
            except OSError:
                # The listener was closed (shutdown) or is otherwise dead;
                # either way accepting is over.
                return
            with self._lock:
                closing = self._closing
                if not closing:
                    self.stats.connections += 1
                    self._connections[conn.fileno()] = conn
                    thread = threading.Thread(
                        target=self._serve_connection,
                        args=(conn, conn.fileno()),
                        name=f"plan-server-conn-{self.stats.connections}",
                        daemon=True,
                    )
                    self._handlers.append(thread)
            if closing:
                # Close outside the lock: socket teardown can block, and
                # close() may already hold the lock on another thread.
                _quiet_close(conn)
                return
            if telemetry.enabled():
                telemetry.count("wire.server.connections",
                                help="connections accepted by plan servers")
            thread.start()

    def _serve_connection(self, conn: socket.socket, conn_id: int) -> None:
        try:
            while True:
                try:
                    payload = read_frame(conn)
                except WireProtocolError as exc:
                    self._reply_protocol_error(conn, exc)
                    return
                except OSError:
                    return  # connection reset under us; nothing to answer
                if payload is None:
                    return  # clean goodbye
                with self._lock:
                    self.stats.bytes_in += len(payload) + 4
                    self.stats.frames_in += 1
                try:
                    msg_type, msg_id, body = decode_envelope(payload)
                except WireProtocolError as exc:
                    self._reply_protocol_error(conn, exc)
                    return
                if not self._serve_request(conn, msg_type, msg_id, body):
                    return
        finally:
            _quiet_close(conn)
            with self._lock:
                self._connections.pop(conn_id, None)

    def _serve_request(
        self, conn: socket.socket, msg_type: str, msg_id: int, body: object
    ) -> bool:
        """Answer one request; False when the connection must drop."""
        with self._lock:
            self.stats.requests += 1
        if telemetry.enabled():
            telemetry.count("wire.server.requests",
                            help="requests dispatched by plan servers")
        try:
            result = self._dispatch(msg_type, body)
        except ReproError as exc:
            # Typed failure: serialize it back; the conversation continues.
            self._send(conn, encode_envelope("error", error_to_wire(exc), msg_id))
            with self._lock:
                self.stats.errors += 1
            if telemetry.enabled():
                telemetry.count("wire.server.errors",
                                help="requests answered with error envelopes")
            return True
        self._send(conn, encode_envelope(msg_type, result, msg_id))
        return True

    def _dispatch(self, msg_type: str, body: object) -> dict:
        if msg_type == "ping":
            return {"gpu": self.service.gpu_name, "v": WIRE_VERSION}
        if msg_type == "plan":
            return self._dispatch_plan(body)
        if msg_type == "stats":
            with self._lock:
                wire = self.stats.as_dict()
            summary = self.service.metrics_summary()
            summary["wire"] = wire
            return summary
        if msg_type == "save":
            return {"path": str(self._save_snapshot())}
        raise WireProtocolError(f"unknown request type {msg_type!r}")

    def _dispatch_plan(self, body: object) -> dict:
        """Serve one plan request, continuing its distributed trace.

        A traced request's ``wire.server.request`` span adopts the client's
        trace context and parents everything the service does for it (the
        ``service.request`` span opens on this same thread, the solve span
        links back via span ids).  After serving, every finished span tree
        belonging to this trace id is serialized into the response body's
        ``trace`` key so the client can stitch the two processes into one
        timeline.  Response-serialization time is attributed to the
        request's ``serialize`` stage on the service's request log.
        """
        request = request_from_wire(body)
        traced = telemetry.enabled() and bool(request.trace_id)
        with telemetry.span(
            "wire.server.request", kernel=request.kernel,
            client=request.client,
        ) as sspan:
            if traced:
                sspan.trace_id = request.trace_id  # type: ignore[attr-defined]
                sspan.span_id = (  # type: ignore[attr-defined]
                    telemetry.get_tracer().new_span_id()
                )
                if request.parent_span_id:
                    sspan.parent_span_id = (  # type: ignore[attr-defined]
                        request.parent_span_id
                    )
                request = dataclasses.replace(
                    request, parent_span_id=sspan.span_id  # type: ignore[attr-defined]
                )
            response = self.service.request(request)
            sspan.set("source", response.source)
        clock = self.service.clock
        serialize_start = clock.now()
        out = response_to_wire(response)
        if traced:
            out["trace"] = [
                span_to_wire(root)
                for root in telemetry.get_tracer().roots()
                if root.trace_id == request.trace_id and root.end is not None
            ]
        serialize_s = max(0.0, clock.now() - serialize_start)
        if request.trace_id and self.service.request_log is not None:
            self.service.request_log.amend_stage(
                request.trace_id, "serialize", serialize_s
            )
        if telemetry.enabled():
            telemetry.observe(
                "service.stage_seconds", serialize_s,
                help="request latency by pipeline stage",
                labels={"stage": "serialize"},
            )
        return out

    def _save_snapshot(self) -> str:
        store = self.service.store
        if isinstance(store, PersistentPlanStore):
            return str(store.save())
        if self.snapshot_path is not None:
            return str(save_snapshot(self.snapshot_path,
                                     snapshot_service(self.service)))
        raise PersistenceError(
            "server has no snapshot path: configure snapshot_path or back "
            "the service with a PersistentPlanStore"
        )

    # -- replies -----------------------------------------------------------

    def _send(self, conn: socket.socket, payload: bytes) -> None:
        sent = write_frame(conn, payload)
        with self._lock:
            self.stats.bytes_out += sent
            self.stats.frames_out += 1

    def _reply_protocol_error(
        self, conn: socket.socket, exc: WireProtocolError
    ) -> None:
        """Best-effort typed goodbye when framing is lost (request id 0)."""
        with self._lock:
            self.stats.protocol_errors += 1
        if telemetry.enabled():
            telemetry.count("wire.server.protocol_errors",
                            help="connections dropped for protocol violations")
        try:
            self._send(conn, encode_envelope("error", error_to_wire(exc), 0))
        except OSError:
            pass  # the peer is gone; the error was theirs to begin with


def _quiet_close(conn: socket.socket) -> None:
    try:
        conn.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        conn.close()
    except OSError:
        pass
