"""Memory accounting, per-layer reporting (Fig. 12), and the vDNN-style
offload analysis (the paper's section V composition argument)."""

from repro.memory.offload import OffloadPlan, plan_offload
from repro.memory.report import LayerMemory, MemoryReport, memory_report
from repro.memory.tracker import MemorySnapshot, PeakTracker

__all__ = [
    "LayerMemory",
    "MemoryReport",
    "MemorySnapshot",
    "OffloadPlan",
    "PeakTracker",
    "memory_report",
    "plan_offload",
]
