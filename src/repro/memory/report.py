"""Per-layer memory breakdown (the paper's Fig. 12).

For every layer of a set-up network, report the bytes held by:

* **data** -- the layer's output activations (one forward propagation, as
  the figure's caption specifies);
* **params** -- weights and biases;
* **workspace** -- the convolution workspace attributable to the layer:
  the framework-allocated slot under plain cuDNN, or the sum of the layer's
  per-kernel micro-batched workspaces under mu-cuDNN ("each bar segment
  represents the maximum workspace size of the layer").

The Fig. 12 reproduction compares cuDNN at a 512 MiB per-layer limit
against mu-cuDNN at 64 MiB, where the paper observes up to 3.43x (AlexNet)
and 2.73x (ResNet-18) per-layer reductions with negligible slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.handle import UcudnnHandle
from repro.cudnn.enums import ConvType
from repro.frameworks.layers.conv import Convolution
from repro.frameworks.net import Net
from repro.units import format_bytes


@dataclass
class LayerMemory:
    name: str
    is_conv: bool
    data_bytes: int
    param_bytes: int
    workspace_bytes: int

    @property
    def total(self) -> int:
        return self.data_bytes + self.param_bytes + self.workspace_bytes


@dataclass
class MemoryReport:
    net_name: str
    layers: list[LayerMemory] = field(default_factory=list)

    @property
    def total_workspace(self) -> int:
        return sum(l.workspace_bytes for l in self.layers)

    @property
    def total(self) -> int:
        return sum(l.total for l in self.layers)

    def by_name(self) -> dict[str, LayerMemory]:
        return {l.name: l for l in self.layers}

    def peak_layer(self) -> LayerMemory:
        return max(self.layers, key=lambda l: l.total)

    def render(self) -> str:
        """Fixed-width text rendering of the breakdown."""
        width = max((len(l.name) for l in self.layers), default=4)
        lines = [
            f"{'layer':<{width}}  {'data':>10}  {'params':>10}  "
            f"{'workspace':>10}  {'total':>10}"
        ]
        for l in self.layers:
            lines.append(
                f"{l.name:<{width}}  {format_bytes(l.data_bytes):>10}  "
                f"{format_bytes(l.param_bytes):>10}  "
                f"{format_bytes(l.workspace_bytes):>10}  "
                f"{format_bytes(l.total):>10}"
            )
        lines.append(
            f"{'TOTAL':<{width}}  {'':>10}  {'':>10}  "
            f"{format_bytes(self.total_workspace):>10}  {format_bytes(self.total):>10}"
        )
        return "\n".join(lines)


def _ucudnn_layer_workspace(handle: UcudnnHandle, conv: Convolution) -> int:
    """The layer's workspace under mu-cuDNN.

    Fig. 12's caption: "each bar segment represents the *maximum* workspace
    size of the layer" -- i.e. one slot serves the layer's three operations
    (they never run concurrently), mirroring how the plain-cuDNN baseline
    sizes its single per-layer slot.
    """
    configs = handle.configurations()
    sizes = [
        configs[conv.geometry(ct)].workspace
        for ct in ConvType
        if conv.geometry(ct) in configs
    ]
    return max(sizes, default=0)


def memory_report(net: Net, handle=None) -> MemoryReport:
    """Per-layer memory of a set-up (and, for mu-cuDNN, executed) net.

    ``handle`` is needed only to attribute mu-cuDNN-owned workspace; pass
    the net's handle when it is a :class:`UcudnnHandle` *after* at least one
    forward/backward pass (the configurations are computed lazily).

    Note on totals: layers with identical geometry (replicated ResNet
    blocks, repeated Inception modules) *share* one mu-cuDNN workspace slot,
    so summing this per-layer attribution can exceed the physical footprint;
    the allocator's live books (``handle.total_workspace_bytes()``) are the
    ground truth for that.
    """
    report = MemoryReport(net_name=net.name)
    for entry in net.entries:
        layer = entry.layer
        # In-place layers share their bottom blob; its storage is charged to
        # the producing layer, so count nothing here.
        data = 0 if entry.inplace else sum(
            net.blobs[t].size_bytes for t in entry.tops
        )
        params = layer.param_bytes
        if isinstance(layer, Convolution):
            if isinstance(handle, UcudnnHandle):
                workspace = _ucudnn_layer_workspace(handle, layer)
            else:
                workspace = layer.workspace_slot
        else:
            workspace = 0
        report.layers.append(
            LayerMemory(
                name=layer.name,
                is_conv=layer.IS_CONV,
                data_bytes=data,
                param_bytes=params,
                workspace_bytes=workspace,
            )
        )
    return report
