"""vDNN-style activation offloading model (the paper's §V, Rhu et al.).

vDNN virtualizes GPU memory by offloading forward activations to host RAM
over PCIe and prefetching them back during the backward pass.  The paper
argues micro-batching *composes* with such memory managers: "even in such
memory-efficient implementation ... mu-cuDNN is expected to save the peak
memory usage of each layer" -- because workspaces cannot be offloaded (they
are live during the kernel), only micro-batching shrinks them.

This module quantifies that composition: given a network's timing report
and per-layer memory, it computes

* the resident-activation footprint with an offload window of ``k`` layers
  (layer L's input must be on-device while L runs; everything older may be
  in host RAM),
* the PCIe traffic and how much of it hides behind compute,
* the resulting peak device memory *including workspace* -- where mu-cuDNN's
  contribution shows up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frameworks.net import Net
from repro.frameworks.timing import TimingReport
from repro.memory.report import MemoryReport

#: Host link bandwidth for offload traffic (PCIe 3.0 x16 effective).
PCIE_BANDWIDTH = 12e9


@dataclass
class OffloadPlan:
    """Outcome of the vDNN-style analysis for one network configuration."""

    #: Largest sum of ``window`` consecutive layers' activations -- the
    #: resident working set the offload scheme cannot evict.
    resident_activation_bytes: int
    #: Parameters are never offloaded (needed every iteration).
    param_bytes: int
    #: Peak single-layer workspace -- live during its kernel, unoffloadable.
    peak_workspace_bytes: int
    #: Total bytes shipped to host and back per iteration.
    pcie_traffic_bytes: int
    #: Compute time per iteration (the window PCIe transfers can hide in).
    compute_time: float

    @property
    def peak_device_bytes(self) -> int:
        return (self.resident_activation_bytes + self.param_bytes
                + self.peak_workspace_bytes)

    @property
    def transfer_time(self) -> float:
        return self.pcie_traffic_bytes / PCIE_BANDWIDTH

    @property
    def exposed_transfer_time(self) -> float:
        """PCIe time not hidden behind compute (simple overlap model)."""
        return max(0.0, self.transfer_time - self.compute_time)

    @property
    def iteration_time(self) -> float:
        return self.compute_time + self.exposed_transfer_time

    @property
    def slowdown_vs_no_offload(self) -> float:
        return self.iteration_time / self.compute_time


def plan_offload(
    net: Net,
    memory: MemoryReport,
    report: TimingReport,
    window: int = 2,
) -> OffloadPlan:
    """Analyze vDNN-style offloading for a set-up, timed network.

    ``window`` is how many consecutive layers' activations must stay
    resident (the transfer pipeline depth); vDNN's ``all`` policy
    corresponds to a small window, its conservative variants to larger ones.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    layers = memory.layers
    activations = [l.data_bytes for l in layers]
    resident = 0
    for start in range(len(activations)):
        resident = max(resident, sum(activations[start:start + window]))
    offloadable = sum(
        a for i, a in enumerate(activations) if a > 0
    )
    return OffloadPlan(
        resident_activation_bytes=resident,
        param_bytes=sum(l.param_bytes for l in layers),
        peak_workspace_bytes=max((l.workspace_bytes for l in layers), default=0),
        # Each offloaded activation travels out (forward) and back (backward).
        pcie_traffic_bytes=2 * offloadable,
        compute_time=report.total,
    )
