"""Device-memory accounting helpers.

The allocator (:class:`repro.cudnn.device.DeviceMemory`) already tags every
allocation; this module aggregates those books into the per-category and
per-layer views the paper's memory experiments report (Fig. 12 and the
workspace totals quoted in section IV-B1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cudnn.device import DeviceMemory


@dataclass
class MemorySnapshot:
    """Usage by tag at one point in time, in bytes."""

    by_tag: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.by_tag.values())

    def get(self, tag: str) -> int:
        return self.by_tag.get(tag, 0)

    @classmethod
    def capture(cls, memory: DeviceMemory) -> "MemorySnapshot":
        return cls(by_tag=memory.live_by_tag())

    def diff(self, earlier: "MemorySnapshot") -> "MemorySnapshot":
        tags = set(self.by_tag) | set(earlier.by_tag)
        return MemorySnapshot(
            by_tag={t: self.get(t) - earlier.get(t) for t in tags if self.get(t) != earlier.get(t)}
        )


class PeakTracker:
    """Track the peak total usage across a scoped region of execution."""

    def __init__(self, memory: DeviceMemory):
        self.memory = memory
        self.start_peak = 0
        self.observed_peak = 0

    def __enter__(self) -> "PeakTracker":
        self.start_peak = self.memory.peak
        # Reset the high-water mark so the scope measures its own peak.
        self.memory.peak = self.memory.in_use
        return self

    def __exit__(self, *exc) -> None:
        self.observed_peak = self.memory.peak
        self.memory.peak = max(self.start_peak, self.memory.peak)
